// hsdf_conversion.cpp — the two SDF→HSDF conversions side by side on a
// real application graph (the MP3 playback chain, the paper's biggest
// Table 1 case: 10601 firings per iteration).
//
// Demonstrates:
//   * why the classical conversion explodes (one actor per firing),
//   * the symbolic max-plus iteration matrix of Algorithm 1,
//   * the Figure 4 reduced HSDF and its equivalence in iteration period,
//   * exporting the artefacts (XML for tools, DOT for humans).
#include <iostream>

#include "analysis/throughput.hpp"
#include "gen/benchmarks.hpp"
#include "io/dot.hpp"
#include "io/xml.hpp"
#include "sdf/repetition.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/symbolic.hpp"

int main() {
    using namespace sdf;

    const Graph app = mp3_playback();
    std::cout << "Application: " << app.name() << " — " << app.actor_count()
              << " actors, " << app.channel_count() << " channels\n";

    const std::vector<Int> q = repetition_vector(app);
    std::cout << "Repetition vector:";
    for (ActorId a = 0; a < app.actor_count(); ++a) {
        std::cout << " " << app.actor(a).name << "=" << q[a];
    }
    std::cout << "\nIteration length (= classical HSDF size): " << iteration_length(app)
              << "\n\n";

    // --- The classical conversion [11, 15]. ---
    const ClassicHsdf classic = to_hsdf_classic(app);
    std::cout << "Classical HSDF: " << classic.graph.actor_count() << " actors, "
              << classic.graph.channel_count() << " channels\n";

    // --- Algorithm 1: symbolic execution of one iteration. ---
    const SymbolicIteration iteration = symbolic_iteration(app);
    std::cout << "\nIteration matrix over the " << iteration.tokens.size()
              << " initial tokens (entry (j,k): min distance of new token k "
                 "to old token j):\n"
              << iteration.matrix.to_string();

    // --- Figure 4: the reduced HSDF. ---
    const Graph reduced = to_hsdf_reduced(app);
    std::cout << "Reduced HSDF: " << reduced.actor_count() << " actors, "
              << reduced.channel_count() << " channels — "
              << classic.graph.actor_count() / reduced.actor_count()
              << "x fewer actors than the classical conversion\n";

    // --- Equivalence: same iteration period either way. ---
    const Rational period = iteration_period(app);
    std::cout << "\nIteration period: original " << period.to_string() << ", reduced "
              << iteration_period(reduced).to_string() << ", classical "
              << iteration_period(classic.graph).to_string() << "\n";
    std::cout << "MP3 frame throughput (MP3 actor): "
              << throughput_symbolic(app).per_actor[*app.find_actor("MP3")].to_string()
              << " firings per time unit\n";

    // --- Export. ---
    write_xml_file("mp3_playback.xml", app);
    write_dot_file("mp3_playback_reduced.dot", reduced);
    std::cout << "\nWrote mp3_playback.xml (SDF3-style) and "
                 "mp3_playback_reduced.dot (Graphviz).\n";
    return 0;
}
