// csdf_pipeline.cpp — cyclo-static dataflow in practice: a three-stage
// video scaler whose middle stage alternates between luma and chroma work.
//
// Demonstrates the CSDF substrate (csdf/) and that the paper's Section 6
// reduction extends to CSDF: the symbolic iteration matrix exists at phase
// granularity, and the Figure 4 construction produces a small throughput-
// equivalent HSDF.
#include <iostream>

#include "analysis/throughput.hpp"
#include "csdf/analysis.hpp"
#include "io/dot.hpp"

int main() {
    using namespace sdf;

    // Stage 1: line reader (one phase, 1 line per firing).
    // Stage 2: scaler with a 3-phase cycle — two luma lines, then one
    //          chroma line that also needs the extra context line.
    // Stage 3: line writer.
    CsdfGraph g("video_scaler");
    const CsdfActorId reader = g.add_actor("reader", {4});
    const CsdfActorId scaler = g.add_actor("scaler", {10, 10, 16});
    const CsdfActorId writer = g.add_actor("writer", {3});

    // reader -> scaler: one line per reader firing; the scaler consumes one
    // line in each luma phase and two in the chroma phase.
    g.add_channel(reader, scaler, {1}, {1, 1, 2}, 0);
    // scaler -> writer: each phase emits one scaled line, chroma two.
    g.add_channel(scaler, writer, {1, 1, 2}, {1}, 0);
    // writer -> reader: line-buffer credits (4 lines of memory).
    g.add_channel(writer, reader, {1}, {1}, 4);
    // Stage state: one-token self-loops (all phases sequential).
    g.add_channel(reader, reader, {1}, {1}, 1);
    g.add_channel(scaler, scaler, {1, 1, 1}, {1, 1, 1}, 1);
    g.add_channel(writer, writer, {1}, {1}, 1);

    std::cout << "CSDF video scaler: " << g.actor_count() << " actors, "
              << g.channel_count() << " channels, "
              << g.total_initial_tokens() << " initial tokens\n";

    const std::vector<Int> cycles = csdf_repetition(g);
    std::cout << "Cycle repetition vector:";
    for (CsdfActorId a = 0; a < g.actor_count(); ++a) {
        std::cout << " " << g.actor(a).name << "=" << cycles[a] << "("
                  << g.actor(a).phase_count() << " phases)";
    }
    std::cout << "\n";

    const std::vector<CsdfFiring> schedule = csdf_sequential_schedule(g);
    std::cout << "One iteration fires " << schedule.size() << " phases: ";
    for (const CsdfFiring& f : schedule) {
        std::cout << g.actor(f.actor).name[0] << f.phase << " ";
    }
    std::cout << "\n\n";

    const CsdfThroughput t = csdf_throughput(g);
    std::cout << "Iteration period: " << t.period.to_string() << " time units\n";
    std::cout << "Scaler cycles (2 luma + 1 chroma lines) per time unit: "
              << t.per_actor[scaler].to_string() << "\n";

    // The paper's reduction applied to CSDF.
    const Graph reduced = csdf_to_reduced_hsdf(g);
    std::cout << "\nReduced HSDF over the " << g.total_initial_tokens()
              << " initial tokens: " << reduced.actor_count() << " actors, period "
              << throughput_symbolic(reduced).period.to_string()
              << " (same as the CSDF graph)\n";
    std::cout << "\n" << write_dot_string(reduced);
    return 0;
}
