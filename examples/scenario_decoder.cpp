// scenario_decoder.cpp — worst-case throughput of a mode-switching decoder.
//
// A video decoder processes I-frames (everything from the bitstream, heavy
// entropy decoding) and P-frames (motion compensation heavy); which mode
// runs next depends on the input, so a guarantee must hold for EVERY
// interleaving.  Each mode is an SDF graph over the same buffers; the
// scenario analysis (transform/scenarios.hpp, after the paper's companion
// work [7]) composes their max-plus matrices and bounds the worst case
// exactly — plus a sensitivity report showing where optimisation pays.
#include <iostream>

#include "analysis/sensitivity.hpp"
#include "analysis/throughput.hpp"
#include "transform/scenarios.hpp"

namespace {

sdf::Graph decoder_mode(const std::string& name, sdf::Int entropy_time,
                        sdf::Int predict_time) {
    using namespace sdf;
    Graph g(name);
    const ActorId vld = g.add_actor("VLD", entropy_time);
    const ActorId pred = g.add_actor("PRED", predict_time);
    const ActorId out = g.add_actor("OUT", 2);
    g.add_channel(vld, pred, 0);
    g.add_channel(pred, out, 0);
    g.add_channel(out, vld, 2);   // two frame buffers
    g.add_channel(vld, vld, 1);   // bitstream state
    g.add_channel(pred, pred, 1); // reference frame state
    return g;
}

}  // namespace

int main() {
    using namespace sdf;

    const std::vector<Scenario> modes = {
        {"I-frame", decoder_mode("iframe", /*entropy=*/9, /*predict=*/2)},
        {"P-frame", decoder_mode("pframe", /*entropy=*/3, /*predict=*/7)},
    };

    const ScenarioAnalysis analysis = analyse_scenarios(modes);
    std::cout << "Standalone iteration periods:\n";
    for (std::size_t s = 0; s < analysis.names.size(); ++s) {
        std::cout << "  " << analysis.names[s] << ": "
                  << analysis.periods[s].to_string() << "\n";
    }
    std::cout << "Worst case over ANY frame-type sequence: "
              << analysis.worst_case_period.to_string() << "\n";
    std::cout << "(mixing modes can be worse than either alone when their\n"
                 " critical tokens differ — the envelope matrix captures it)\n\n";

    // One graph that certifies the worst case for all sequences.
    const Graph envelope = scenario_envelope_hsdf(analysis, "decoder_envelope");
    std::cout << "Envelope HSDF: " << envelope.actor_count() << " actors, period "
              << throughput_symbolic(envelope).period.to_string() << "\n\n";

    // Where does optimisation help the worst case?  Probe the envelope.
    const SensitivityReport report = sensitivity_analysis(envelope);
    std::cout << "Critical envelope actors (optimise these):\n";
    for (ActorId a = 0; a < envelope.actor_count(); ++a) {
        if (report.critical[a]) {
            std::cout << "  " << envelope.actor(a).name << " (+1 time => +"
                      << report.delta[a].to_string() << " period)\n";
        }
    }
    return 0;
}
