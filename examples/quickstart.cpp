// quickstart.cpp — build a small timed SDF graph, analyse it, reduce it.
//
// Walks through the library's main entry points on the paper's running
// example (Figure 1, n = 6):
//   1. build / load a graph,
//   2. consistency, liveness, throughput and latency analysis,
//   3. the two reduction techniques: abstraction (Sections 4-5) and the
//      novel HSDF conversion (Section 6), with the classical conversion as
//      the baseline.
#include <iostream>

#include "analysis/latency.hpp"
#include "analysis/throughput.hpp"
#include "gen/regular.hpp"
#include "io/dot.hpp"
#include "sdf/repetition.hpp"
#include "transform/abstraction.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/hsdf_reduced.hpp"

int main() {
    using namespace sdf;

    // ---- 1. A graph.  figure1_graph(6) is the paper's Figure 1(a); build
    // your own with Graph::add_actor / add_channel exactly the same way.
    const Graph graph = figure1_graph(6);
    std::cout << "graph '" << graph.name() << "': " << graph.actor_count()
              << " actors, " << graph.channel_count() << " channels, "
              << graph.total_initial_tokens() << " initial tokens\n";

    // ---- 2. Analysis.
    const std::vector<Int> repetition = repetition_vector(graph);
    std::cout << "iteration length (sum of repetition vector): "
              << iteration_length(graph) << "\n";
    std::cout << "one iteration takes " << iteration_makespan(graph)
              << " time units\n";  // the paper's "23 time units"

    const ThroughputResult throughput = throughput_symbolic(graph);
    std::cout << "iteration period lambda = " << throughput.period.to_string()
              << "; throughput of A1 = "
              << throughput.per_actor[*graph.find_actor("A1")].to_string() << "\n";

    // ---- 3a. Abstraction: group A1..A6 into A and B1..B4 into B (derived
    // from the actor names), then bound the original throughput from the
    // small graph (Theorem 1: tau(a) >= tau(alpha(a)) / N).
    const AbstractionSpec spec = abstraction_by_name_suffix(graph);
    const Graph abstract = abstract_graph(graph, spec);
    std::cout << "\nabstract graph: " << abstract.actor_count() << " actors, "
              << abstract.channel_count() << " channels\n";
    const ThroughputResult abstract_throughput = throughput_symbolic(abstract);
    const Rational bound =
        abstract_throughput.per_actor[*abstract.find_actor("A")] / Rational(spec.fold());
    std::cout << "conservative throughput bound for every Ai: " << bound.to_string()
              << " (actual " << throughput.per_actor[*graph.find_actor("A1")].to_string()
              << ")\n";

    // ---- 3b. HSDF conversions: classical [11,15] vs. the paper's novel
    // symbolic conversion (both preserve the iteration period).
    const ClassicHsdf classic = to_hsdf_classic(graph);
    const Graph reduced = to_hsdf_reduced(graph);
    std::cout << "\nclassical HSDF: " << classic.graph.actor_count()
              << " actors; reduced HSDF: " << reduced.actor_count() << " actors\n";
    std::cout << "reduced HSDF period = "
              << throughput_symbolic(reduced).period.to_string() << "\n";

    // DOT export for visual inspection.
    std::cout << "\nDOT of the abstract graph:\n" << write_dot_string(abstract);
    return 0;
}
