// buffer_explorer.cpp — throughput/buffer trade-off exploration on the
// CD→DAT sample-rate converter (the paper's Table 1 case 7; buffer sizing
// is the application domain of its citations [18, 19]).
//
// Channel capacities are modelled by reverse channels carrying free-space
// tokens (analysis/buffers.hpp); the closed graph is then analysed with the
// ordinary throughput machinery.  The example finds the minimum deadlock-
// free capacities and sweeps a uniform capacity factor to print the
// trade-off curve.
#include <iostream>
#include <vector>

#include "analysis/buffers.hpp"
#include "analysis/liveness.hpp"
#include "analysis/throughput.hpp"
#include "gen/benchmarks.hpp"
#include "sdf/repetition.hpp"

int main() {
    using namespace sdf;

    const Graph app = samplerate_converter();
    std::cout << "Application: " << app.name() << " (CD 44.1kHz -> DAT 48kHz)\n";
    const Rational unbuffered = throughput_symbolic(app).per_actor[5];
    std::cout << "DAT-side throughput with unbounded channels: "
              << unbuffered.to_string() << "\n\n";

    // Minimum live capacity per data channel (self-loops are state, skip).
    std::cout << "Minimum deadlock-free capacity per channel:\n";
    std::vector<Int> min_capacity(app.channel_count(), 0);
    for (ChannelId c = 0; c < app.channel_count(); ++c) {
        const Channel& ch = app.channel(c);
        if (ch.is_self_loop()) {
            min_capacity[c] = ch.initial_tokens;
            continue;
        }
        min_capacity[c] = minimum_live_capacity(app, c, 4096);
        std::cout << "  " << app.actor(ch.src).name << " -> " << app.actor(ch.dst).name
                  << " (" << ch.production << ":" << ch.consumption
                  << "): " << min_capacity[c] << " tokens\n";
    }

    // Sweep: all channels at factor * minimum capacity.
    std::cout << "\nThroughput vs uniform capacity factor:\n";
    std::cout << "  factor   DAT throughput      of unbounded\n";
    for (const Int factor : {1, 2, 3, 4, 6, 8, 16}) {
        std::vector<Int> capacities;
        capacities.reserve(app.channel_count());
        for (ChannelId c = 0; c < app.channel_count(); ++c) {
            capacities.push_back(min_capacity[c] * factor);
        }
        const Graph bounded = with_buffer_capacities(app, capacities);
        const ThroughputResult t = throughput_symbolic(bounded);
        if (t.outcome == ThroughputOutcome::deadlocked) {
            std::cout << "  " << factor << "        deadlock\n";
            continue;
        }
        const Rational dat = t.per_actor[5];
        std::cout << "  " << factor << "        " << dat.to_string() << "      "
                  << 100.0 * dat.to_double() / unbuffered.to_double() << "%\n";
    }

    std::cout << "\nAt small capacities the reverse channels throttle the "
                 "pipeline; the curve saturates at the unbuffered rate.\n";
    return 0;
}
