// prefetch_abstraction.cpp — the paper's Section 7 case study end to end.
//
// A full-search block-matching motion estimator (H.263/MPEG-2 class) runs
// on a multiprocessor system-on-chip; frame data lives in a remote memory
// tile and is pre-fetched over the network-on-chip through communication
// assists [16].  Modelling every one of the 1584 block computations yields
// a 4752-actor SDF graph; the regular structure makes it a showcase for the
// abstraction technique, and here the abstraction is *exact*.
//
// The example also demonstrates sweeping the pre-fetch parameters: what if
// the network transfer (M) were slower than the computation (C)?
#include <iostream>

#include "analysis/latency.hpp"
#include "analysis/throughput.hpp"
#include "gen/regular.hpp"
#include "io/dot.hpp"
#include "sdf/graph.hpp"
#include "transform/abstraction.hpp"

namespace {

using namespace sdf;

/// Like gen/regular.hpp's prefetch_graph but with configurable stage times,
/// to explore what happens when the bottleneck moves.
Graph prefetch_variant(Int blocks, Int request_time, Int transfer_time,
                       Int compute_time) {
    Graph g = prefetch_graph(blocks);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        const char kind = g.actor(a).name[0];
        g.set_execution_time(a, kind == 'R' ? request_time
                                            : (kind == 'M' ? transfer_time : compute_time));
    }
    return g;
}

void analyse(const std::string& label, const Graph& g) {
    const AbstractionSpec spec = abstraction_by_name_suffix(g);
    const Graph abstract = abstract_graph(g, spec);
    const ThroughputResult original = throughput_symbolic(g);
    const ThroughputResult reduced = throughput_symbolic(abstract);
    const ActorId c1 = *g.find_actor("C1");
    const Rational actual = original.per_actor[c1];
    const Rational estimate =
        reduced.per_actor[*abstract.find_actor("C")] / Rational(spec.fold());
    std::cout << label << ":\n"
              << "  blocks per time unit (exact)     : " << actual.to_string() << "\n"
              << "  bound from the 3-actor abstraction: " << estimate.to_string()
              << (actual == estimate ? "  (tight!)" : "  (conservative)") << "\n";
}

}  // namespace

int main() {
    using namespace sdf;

    // The paper's configuration: request 2, NoC transfer 8, compute 10.
    const Graph frame = prefetch_graph(1584);
    std::cout << "Remote-memory-access model: " << frame.actor_count() << " actors, "
              << frame.channel_count() << " channels, one video frame = 1584 blocks\n";
    std::cout << "Frame latency (one iteration): " << iteration_makespan(frame)
              << " time units\n\n";

    analyse("compute-bound (paper setting, R=2 M=8 C=10)", frame);

    // Move the bottleneck to the interconnect: with the pre-fetch window of
    // two, the transfer chain now dominates and the abstraction stays exact.
    analyse("transfer-bound variant (R=2 M=14 C=10)",
            prefetch_variant(1584, 2, 14, 10));

    // Balanced stages: the cross-stage cycle (R+M+C over the window of 2)
    // becomes critical; the abstract graph tracks it through its C->R edge
    // with two tokens.
    analyse("balanced variant (R=9 M=9 C=9)", prefetch_variant(1584, 9, 9, 9));

    // The 3-actor abstraction, for inspection with Graphviz.
    const Graph abstract =
        abstract_graph(frame, abstraction_by_name_suffix(frame));
    std::cout << "\nAbstract model (render with `dot -Tpng`):\n"
              << write_dot_string(abstract);
    return 0;
}
