// design_space.cpp — a small design-space exploration on top of the
// library, the kind of automated flow the paper's reductions accelerate.
//
// For the granule-level MP3 decoder application:
//   1. explore the throughput/buffer trade-off (Pareto curve),
//   2. pick the smallest allocation achieving the target rate,
//   3. derive a rate-optimal static periodic schedule of its reduced HSDF,
//   4. diagnose what breaks when the budget is cut below the minimum.
#include <iostream>

#include "analysis/deadlock.hpp"
#include "analysis/buffers.hpp"
#include "analysis/pareto.hpp"
#include "analysis/static_schedule.hpp"
#include "analysis/throughput.hpp"
#include "gen/benchmarks.hpp"
#include "transform/hsdf_reduced.hpp"

int main() {
    using namespace sdf;

    const Graph app = mp3_decoder_granule();
    std::cout << "Application: " << app.name() << " (" << app.actor_count()
              << " actors)\n\n";

    // --- 1. Pareto curve. ---
    std::cout << "Throughput/buffer trade-off (greedy Pareto ascent):\n";
    std::cout << "  total buffer   iteration period   frames/time\n";
    const std::vector<ParetoPoint> curve = buffer_throughput_tradeoff(app);
    for (const ParetoPoint& point : curve) {
        std::cout << "  " << point.total_buffer << "\t\t" << point.period.to_string()
                  << "\t   " << point.period.reciprocal().to_string() << "\n";
    }

    // --- 2. Smallest allocation at the best rate. ---
    const ParetoPoint& chosen = curve.back();
    std::cout << "\nChosen allocation (reaches the unbounded-buffer rate with "
              << chosen.total_buffer << " tokens of memory):\n";
    for (ChannelId c = 0; c < app.channel_count(); ++c) {
        const Channel& ch = app.channel(c);
        if (!ch.is_self_loop()) {
            std::cout << "  " << app.actor(ch.src).name << " -> "
                      << app.actor(ch.dst).name << ": " << chosen.capacities[c]
                      << " tokens\n";
        }
    }

    // --- 3. Static periodic schedule of the bounded design. ---
    const Graph bounded = with_buffer_capacities(app, chosen.capacities);
    const Graph reduced = to_hsdf_reduced(bounded);
    const PeriodicSchedule schedule = periodic_schedule(reduced);
    std::cout << "\nRate-optimal static schedule of the reduced HSDF ("
              << reduced.actor_count() << " actors, period "
              << schedule.period.to_string() << "):\n";
    for (ActorId a = 0; a < reduced.actor_count() && a < 8; ++a) {
        std::cout << "  " << reduced.actor(a).name << " starts at "
                  << schedule.start[a].to_string() << " + k*"
                  << schedule.period.to_string() << "\n";
    }
    if (reduced.actor_count() > 8) {
        std::cout << "  ... (" << reduced.actor_count() - 8 << " more)\n";
    }

    // --- 4. What happens below the minimum? ---
    std::vector<Int> starved = curve.front().capacities;
    for (ChannelId c = 0; c < app.channel_count(); ++c) {
        if (!app.channel(c).is_self_loop() && starved[c] > app.channel(c).initial_tokens) {
            --starved[c];
            break;
        }
    }
    const Graph broken = with_buffer_capacities(app, starved);
    std::cout << "\nCutting one token below the minimal allocation:\n"
              << diagnose_deadlock(broken).describe(broken);
    return 0;
}
