#include "verify/verdict.hpp"

namespace sdf {

const char* verdict_status_name(VerdictStatus status) {
    switch (status) {
        case VerdictStatus::pass: return "pass";
        case VerdictStatus::skip: return "skip";
        case VerdictStatus::reject: return "reject";
        case VerdictStatus::fail: return "fail";
    }
    return "unknown";
}

std::string Disagreement::describe() const {
    return quantity + ": " + left_route + " says " + left_value + ", " + right_route +
           " says " + right_value;
}

std::string Verdict::describe() const {
    std::string text = "[" + std::string(verdict_status_name(status)) + "] " + oracle;
    if (!detail.empty()) {
        text += ": " + detail;
    }
    for (const Disagreement& d : disagreements) {
        text += "\n  " + d.describe();
    }
    return text;
}

Verdict Verdict::pass(std::string oracle) {
    Verdict v;
    v.status = VerdictStatus::pass;
    v.oracle = std::move(oracle);
    return v;
}

Verdict Verdict::skip(std::string oracle, std::string reason) {
    Verdict v;
    v.status = VerdictStatus::skip;
    v.oracle = std::move(oracle);
    v.detail = std::move(reason);
    return v;
}

Verdict Verdict::reject(std::string oracle, std::string reason) {
    Verdict v;
    v.status = VerdictStatus::reject;
    v.oracle = std::move(oracle);
    v.detail = std::move(reason);
    return v;
}

Verdict Verdict::fail(std::string oracle, std::string detail,
                      std::vector<Disagreement> disagreements) {
    Verdict v;
    v.status = VerdictStatus::fail;
    v.oracle = std::move(oracle);
    v.detail = std::move(detail);
    v.disagreements = std::move(disagreements);
    return v;
}

}  // namespace sdf
