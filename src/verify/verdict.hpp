// verdict.hpp — structured outcomes of a differential oracle run.
//
// Every oracle reduces to one Verdict.  The four states partition what can
// happen when redundant engines are pitted against each other on an
// arbitrary (possibly inconsistent, deadlocked or degenerate) graph:
//
//   pass    all routes agree and every invariant holds;
//   skip    the graph is outside the oracle's domain by *policy* (too large
//           for an exponential route, wrong shape for the proposition);
//   reject  the library refused the graph with a typed error (Error
//           subclass) — the graceful-degradation contract at work;
//   fail    routes disagree, an invariant broke, or the library crashed
//           with an untyped exception — the bug the fuzzer exists to find.
#pragma once

#include <string>
#include <vector>

namespace sdf {

enum class VerdictStatus { pass, skip, reject, fail };

const char* verdict_status_name(VerdictStatus status);

/// One quantity two independent routes disagree on, with both values.
struct Disagreement {
    std::string quantity;     ///< e.g. "iteration period"
    std::string left_route;   ///< e.g. "symbolic+karp"
    std::string left_value;
    std::string right_route;  ///< e.g. "self-timed simulation"
    std::string right_value;

    [[nodiscard]] std::string describe() const;
};

/// The structured result of running one oracle on one graph.
struct Verdict {
    VerdictStatus status = VerdictStatus::pass;
    std::string oracle;                       ///< id of the producing oracle
    std::string detail;                       ///< reject reason / skip reason / context
    std::vector<Disagreement> disagreements;  ///< non-empty only when failing

    [[nodiscard]] bool failed() const { return status == VerdictStatus::fail; }

    /// Multi-line human-readable report.
    [[nodiscard]] std::string describe() const;

    static Verdict pass(std::string oracle);
    static Verdict skip(std::string oracle, std::string reason);
    static Verdict reject(std::string oracle, std::string reason);
    static Verdict fail(std::string oracle, std::string detail,
                        std::vector<Disagreement> disagreements = {});
};

}  // namespace sdf
