// shrink.hpp — delta-debugging shrinker for failing graphs.
//
// A fuzzer-found counterexample is typically a 7-actor, 20-channel graph in
// which almost nothing is relevant.  shrink_failure() greedily minimises it
// while preserving the failure predicate: whole actors (with their incident
// channels) are dropped first, then individual channels, then every numeric
// attribute is pulled towards its neutral value (rates towards 1, tokens
// and execution times towards 0, via halving so large values shrink in
// O(log) steps).  Passes repeat until a fixpoint, so the result is
// 1-minimal with respect to these operations: removing any single actor or
// channel, or simplifying any single attribute further, makes the failure
// disappear.
#pragma once

#include <cstddef>
#include <functional>

#include "sdf/graph.hpp"

namespace sdf {

struct ShrinkOptions {
    std::size_t max_attempts = 5000;  ///< predicate-evaluation budget
};

struct ShrinkOutcome {
    Graph graph;                ///< the minimised counterexample
    std::size_t attempts = 0;   ///< predicate evaluations spent
    std::size_t rounds = 0;     ///< full passes until fixpoint
};

/// Minimises `failing` while `still_fails` stays true.  The predicate must
/// be true for `failing` itself (callers pass the graph that just produced
/// a failing verdict); candidates that throw inside the predicate count as
/// not failing.  Deterministic: candidates are tried in a fixed order.
ShrinkOutcome shrink_failure(const Graph& failing,
                             const std::function<bool(const Graph&)>& still_fails,
                             const ShrinkOptions& options = {});

}  // namespace sdf
