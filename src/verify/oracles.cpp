#include "verify/oracles.hpp"

#include <new>
#include <optional>
#include <typeinfo>

#include "absint/certificate.hpp"
#include "absint/reachability.hpp"
#include "absint/token_intervals.hpp"
#include "analysis/buffers.hpp"
#include "analysis/deadlock.hpp"
#include "analysis/governed.hpp"
#include "analysis/incremental.hpp"
#include "analysis/liveness.hpp"
#include "analysis/throughput.hpp"
#include "base/cpudispatch.hpp"
#include "base/errors.hpp"
#include "base/portable_rng.hpp"
#include "robust/fault.hpp"
#include "csdf/analysis.hpp"
#include "csdf/simulate.hpp"
#include "maxplus/mcm.hpp"
#include "pass/executor.hpp"
#include "pass/pipeline.hpp"
#include "sdf/properties.hpp"
#include "sdf/repetition.hpp"
#include "sdf/schedule.hpp"
#include "sdf/simulate.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/sdf_abstraction.hpp"
#include "transform/selfloops.hpp"
#include "transform/symbolic.hpp"
#include "transform/unfold.hpp"

namespace sdf {

namespace {

const char* outcome_name(ThroughputOutcome outcome) {
    switch (outcome) {
        case ThroughputOutcome::deadlocked: return "deadlocked";
        case ThroughputOutcome::unbounded: return "unbounded";
        case ThroughputOutcome::finite: return "finite";
    }
    return "unknown";
}

Disagreement disagree(std::string quantity, std::string left_route, std::string left,
                      std::string right_route, std::string right) {
    Disagreement d;
    d.quantity = std::move(quantity);
    d.left_route = std::move(left_route);
    d.left_value = std::move(left);
    d.right_route = std::move(right_route);
    d.right_value = std::move(right);
    return d;
}

/// Compares two full ThroughputResults route-against-route; appends any
/// disagreements (outcome, period, per-actor values).
void compare_throughput(const std::string& left_route, const ThroughputResult& left,
                        const std::string& right_route, const ThroughputResult& right,
                        const Graph& graph, std::vector<Disagreement>& out) {
    if (left.outcome != right.outcome) {
        out.push_back(disagree("throughput outcome", left_route,
                               outcome_name(left.outcome), right_route,
                               outcome_name(right.outcome)));
        return;
    }
    if (left.outcome != ThroughputOutcome::finite) {
        return;
    }
    if (left.period != right.period) {
        out.push_back(disagree("iteration period", left_route, left.period.to_string(),
                               right_route, right.period.to_string()));
    }
    for (ActorId a = 0; a < graph.actor_count() && a < left.per_actor.size() &&
                        a < right.per_actor.size();
         ++a) {
        if (left.per_actor[a] != right.per_actor[a]) {
            out.push_back(disagree("throughput of actor '" + graph.actor(a).name + "'",
                                   left_route, left.per_actor[a].to_string(), right_route,
                                   right.per_actor[a].to_string()));
        }
    }
}

Verdict settle(const char* id, std::vector<Disagreement> disagreements) {
    if (disagreements.empty()) {
        return Verdict::pass(id);
    }
    return Verdict::fail(id, "independent routes disagree", std::move(disagreements));
}

// ---- throughput-routes ------------------------------------------------

Verdict run_throughput_routes(const Graph& graph, const OracleLimits& limits) {
    constexpr const char* kId = "throughput-routes";
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    if (graph.actor_count() > limits.max_actors) {
        return Verdict::skip(kId, "actor count above limit");
    }
    // iteration_length throws the typed inconsistency error for graphs with
    // no repetition vector — run_oracle turns that into a reject.
    const Int firings = iteration_length(graph);
    if (firings > limits.max_iteration_length) {
        return Verdict::skip(kId, "iteration length above expansion limit");
    }
    const ThroughputResult symbolic = throughput_symbolic(graph);
    const ThroughputResult classic = throughput_via_classic_hsdf(graph);
    std::vector<Disagreement> disagreements;
    compare_throughput("symbolic+karp", symbolic, "classic-hsdf+mcr", classic, graph,
                       disagreements);
    // Simulation needs a recurrent state: only meaningful for graphs whose
    // every actor sits on a cycle, and either deadlocked or with a positive
    // period (zero-time cycles never reach a recurrent state).
    const bool period_positive = symbolic.is_finite() && !symbolic.period.is_zero();
    const bool expect_deadlock = symbolic.outcome == ThroughputOutcome::deadlocked;
    if ((period_positive || expect_deadlock) && every_actor_on_cycle(graph)) {
        const ThroughputResult simulated =
            throughput_simulation(graph, limits.sim_max_events);
        compare_throughput("symbolic+karp", symbolic, "self-timed simulation", simulated,
                           graph, disagreements);
    }
    return settle(kId, disagreements);
}

// ---- reduced-hsdf -----------------------------------------------------

Verdict run_reduced_hsdf(const Graph& graph, const OracleLimits& limits) {
    constexpr const char* kId = "reduced-hsdf";
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    if (graph.total_initial_tokens() > limits.max_tokens) {
        return Verdict::skip(kId, "token count above matrix limit");
    }
    const ThroughputResult original = throughput_symbolic(graph);
    if (original.outcome == ThroughputOutcome::deadlocked) {
        return Verdict::skip(kId, "deadlocked graph has no iteration matrix");
    }
    std::vector<Disagreement> disagreements;
    for (const bool elide : {true, false}) {
        ReducedHsdfOptions options;
        options.elide_single_client_muxes = elide;
        const Graph reduced = to_hsdf_reduced(graph, options);
        const std::string route =
            elide ? "reduced-hsdf (elided muxes)" : "reduced-hsdf (full muxes)";
        if (!reduced.is_homogeneous()) {
            disagreements.push_back(disagree("homogeneity", route, "multi-rate channels",
                                             "Section 6", "HSDF output"));
            continue;
        }
        const ThroughputResult converted = throughput_symbolic(reduced);
        if (original.is_finite() && !original.period.is_zero()) {
            if (!converted.is_finite() || converted.period != original.period) {
                disagreements.push_back(disagree(
                    "iteration period", "symbolic+karp on original",
                    original.period.to_string(), route,
                    converted.is_finite() ? converted.period.to_string()
                                          : outcome_name(converted.outcome)));
            }
        } else {
            // Unbounded original (no cycle, or only zero-time cycles): the
            // reduced graph must not deadlock and must not invent a
            // positive period.
            if (converted.outcome == ThroughputOutcome::deadlocked) {
                disagreements.push_back(disagree("liveness", "original",
                                                 outcome_name(original.outcome), route,
                                                 "deadlocked"));
            } else if (converted.is_finite() && !converted.period.is_zero()) {
                disagreements.push_back(disagree("iteration period", "original",
                                                 outcome_name(original.outcome), route,
                                                 converted.period.to_string()));
            }
        }
    }
    return settle(kId, disagreements);
}

// ---- abstraction (Theorem 1) ------------------------------------------

Verdict run_abstraction(const Graph& graph, const OracleLimits& limits) {
    constexpr const char* kId = "abstraction";
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    if (graph.actor_count() > limits.max_actors) {
        return Verdict::skip(kId, "actor count above limit");
    }
    const Int firings = iteration_length(graph);
    if (firings > limits.max_iteration_length) {
        return Verdict::skip(kId, "iteration length above expansion limit");
    }
    const SdfAbstraction abstraction = abstract_sdf(graph);
    std::vector<Disagreement> disagreements;
    if (abstraction.abstract.actor_count() != graph.actor_count()) {
        disagreements.push_back(
            disagree("abstract actor count", "abstract_sdf",
                     std::to_string(abstraction.abstract.actor_count()), "original",
                     std::to_string(graph.actor_count())));
    }
    const std::vector<Rational> bound = conservative_throughput_bound(graph, abstraction);
    const ThroughputResult actual = throughput_symbolic(graph);
    if (actual.is_finite()) {
        for (ActorId a = 0; a < graph.actor_count(); ++a) {
            if (bound[a] > actual.per_actor[a]) {
                disagreements.push_back(disagree(
                    "Theorem 1 bound for actor '" + graph.actor(a).name + "'",
                    "abstraction bound", bound[a].to_string(), "concrete throughput",
                    actual.per_actor[a].to_string()));
            }
        }
    } else if (actual.outcome == ThroughputOutcome::deadlocked) {
        // A deadlocked graph has throughput zero; conservativity demands
        // the abstract bound collapse to zero as well.
        for (ActorId a = 0; a < graph.actor_count(); ++a) {
            if (!bound[a].is_zero()) {
                disagreements.push_back(
                    disagree("Theorem 1 bound for actor '" + graph.actor(a).name + "'",
                             "abstraction bound", bound[a].to_string(),
                             "concrete throughput", "0 (deadlocked)"));
            }
        }
    }
    return settle(kId, disagreements);
}

// ---- unfold (Proposition 2) -------------------------------------------

Verdict run_unfold(const Graph& graph, const OracleLimits& limits) {
    constexpr const char* kId = "unfold";
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    if (!graph.is_homogeneous()) {
        return Verdict::skip(kId, "Proposition 2's exact mimicry is stated for HSDF");
    }
    if (graph.total_initial_tokens() > limits.max_tokens / 2) {
        return Verdict::skip(kId, "token count above matrix limit");
    }
    const ThroughputResult base = throughput_symbolic(graph);
    std::vector<Disagreement> disagreements;
    for (const Int n : {Int{2}, Int{3}}) {
        const Graph unfolded = unfold(graph, n);
        const std::string route = "unfold(" + std::to_string(n) + ")";
        if (unfolded.total_initial_tokens() != graph.total_initial_tokens()) {
            disagreements.push_back(
                disagree("initial token count", "original",
                         std::to_string(graph.total_initial_tokens()), route,
                         std::to_string(unfolded.total_initial_tokens())));
        }
        const ThroughputResult scaled = throughput_symbolic(unfolded);
        if (scaled.outcome != base.outcome) {
            disagreements.push_back(disagree("throughput outcome", "original",
                                             outcome_name(base.outcome), route,
                                             outcome_name(scaled.outcome)));
            continue;
        }
        if (base.is_finite() && scaled.period != base.period * Rational(n)) {
            disagreements.push_back(disagree(
                "iteration period (Proposition 2: scales by N)",
                "original × " + std::to_string(n), (base.period * Rational(n)).to_string(),
                route, scaled.period.to_string()));
        }
    }
    return settle(kId, disagreements);
}

// ---- repetition / consistency -----------------------------------------

Verdict run_repetition(const Graph& graph, const OracleLimits&) {
    constexpr const char* kId = "repetition";
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    std::vector<Disagreement> disagreements;
    if (!is_consistent(graph)) {
        // The negative side of the agreement: the solver must throw the
        // typed inconsistency error, not return a vector.
        try {
            repetition_vector(graph);
            disagreements.push_back(disagree("consistency", "is_consistent", "false",
                                             "repetition_vector", "returned a vector"));
        } catch (const InconsistentGraphError&) {
            // agreement
        }
        return settle(kId, disagreements);
    }
    const std::vector<Int> q = repetition_vector(graph);
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        if (q[a] < 1) {
            disagreements.push_back(disagree("repetition entry of '" +
                                                 graph.actor(a).name + "'",
                                             "repetition_vector", std::to_string(q[a]),
                                             "Lee & Messerschmitt", ">= 1"));
        }
    }
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        const Channel& ch = graph.channel(c);
        if (checked_mul(q[ch.src], ch.production) != checked_mul(q[ch.dst], ch.consumption)) {
            disagreements.push_back(disagree(
                "balance equation of channel " + graph.actor(ch.src).name + " -> " +
                    graph.actor(ch.dst).name,
                "q(src)*p", std::to_string(checked_mul(q[ch.src], ch.production)),
                "q(dst)*c", std::to_string(checked_mul(q[ch.dst], ch.consumption))));
        }
    }
    Int total = 0;
    for (const Int entry : q) {
        total = checked_add(total, entry);
    }
    if (total != iteration_length(graph)) {
        disagreements.push_back(disagree("iteration length", "sum of q",
                                         std::to_string(total), "iteration_length",
                                         std::to_string(iteration_length(graph))));
    }
    return settle(kId, disagreements);
}

// ---- liveness / deadlock agreement ------------------------------------

Verdict run_liveness(const Graph& graph, const OracleLimits& limits) {
    constexpr const char* kId = "liveness";
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    std::vector<Disagreement> disagreements;
    if (!is_consistent(graph)) {
        // Inconsistent graphs: the HSDF characterisation answers "not
        // live"; the schedulability test must refuse with a typed error.
        if (is_live_via_hsdf(graph)) {
            disagreements.push_back(disagree("liveness", "is_live_via_hsdf", "true",
                                             "consistency", "graph is inconsistent"));
        }
        try {
            diagnose_deadlock(graph);
            disagreements.push_back(disagree("deadlock diagnosis", "diagnose_deadlock",
                                             "returned", "consistency",
                                             "graph is inconsistent"));
        } catch (const InconsistentGraphError&) {
            // agreement
        }
        return settle(kId, disagreements);
    }
    const bool live = is_live(graph);
    const DeadlockDiagnosis diagnosis = diagnose_deadlock(graph);
    if (live == diagnosis.deadlocked) {
        disagreements.push_back(disagree("liveness", "is_live", live ? "true" : "false",
                                         "diagnose_deadlock",
                                         diagnosis.deadlocked ? "deadlocked" : "completes"));
    }
    if (diagnosis.deadlocked) {
        if (diagnosis.blocked.empty()) {
            disagreements.push_back(disagree("deadlock witness", "diagnose_deadlock",
                                             "no starving actor reported", "contract",
                                             "at least one"));
        }
        for (const Starvation& s : diagnosis.blocked) {
            const bool valid = s.channel < graph.channel_count() &&
                               graph.channel(s.channel).dst == s.actor &&
                               s.available < s.required && s.remaining_firings > 0;
            if (!valid) {
                disagreements.push_back(disagree("deadlock witness", "diagnose_deadlock",
                                                 "inconsistent starvation record",
                                                 "contract",
                                                 "starving input of the blocked actor"));
            }
        }
    }
    if (iteration_length(graph) <= limits.max_iteration_length &&
        is_live_via_hsdf(graph) != live) {
        disagreements.push_back(disagree("liveness", "is_live (schedulability)",
                                         live ? "true" : "false",
                                         "is_live_via_hsdf (zero-token cycle)",
                                         live ? "false" : "true"));
    }
    const ThroughputResult throughput = throughput_symbolic(graph);
    const bool reported_deadlock = throughput.outcome == ThroughputOutcome::deadlocked;
    if (reported_deadlock == live) {
        disagreements.push_back(disagree("deadlock", "throughput_symbolic",
                                         outcome_name(throughput.outcome), "is_live",
                                         live ? "live" : "deadlocked"));
    }
    return settle(kId, disagreements);
}

// ---- csdf lift --------------------------------------------------------

Verdict run_csdf_lift(const Graph& graph, const OracleLimits& limits) {
    constexpr const char* kId = "csdf-lift";
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    const CsdfGraph lifted = csdf_from_sdf(graph);
    std::vector<Disagreement> disagreements;
    const bool consistent = is_consistent(graph);
    if (csdf_is_consistent(lifted) != consistent) {
        disagreements.push_back(disagree("consistency", "sdf",
                                         consistent ? "consistent" : "inconsistent",
                                         "csdf lift",
                                         csdf_is_consistent(lifted) ? "consistent"
                                                                    : "inconsistent"));
    }
    if (!consistent) {
        return settle(kId, disagreements);
    }
    if (csdf_is_live(lifted) != is_live(graph)) {
        disagreements.push_back(disagree("liveness", "sdf",
                                         is_live(graph) ? "live" : "deadlocked",
                                         "csdf lift",
                                         csdf_is_live(lifted) ? "live" : "deadlocked"));
    }
    if (graph.total_initial_tokens() <= limits.max_tokens) {
        const CsdfThroughput lifted_throughput = csdf_throughput(lifted);
        const ThroughputResult base = throughput_symbolic(graph);
        const char* base_outcome = outcome_name(base.outcome);
        const char* lifted_outcome = lifted_throughput.deadlocked  ? "deadlocked"
                                     : lifted_throughput.unbounded ? "unbounded"
                                                                   : "finite";
        if (std::string(base_outcome) != lifted_outcome) {
            disagreements.push_back(disagree("throughput outcome", "sdf symbolic",
                                             base_outcome, "csdf symbolic",
                                             lifted_outcome));
        } else if (base.is_finite()) {
            if (lifted_throughput.period != base.period) {
                disagreements.push_back(disagree("iteration period", "sdf symbolic",
                                                 base.period.to_string(), "csdf symbolic",
                                                 lifted_throughput.period.to_string()));
            }
            for (ActorId a = 0; a < graph.actor_count(); ++a) {
                if (lifted_throughput.per_actor[a] != base.per_actor[a]) {
                    disagreements.push_back(
                        disagree("throughput of actor '" + graph.actor(a).name + "'",
                                 "sdf symbolic", base.per_actor[a].to_string(),
                                 "csdf symbolic",
                                 lifted_throughput.per_actor[a].to_string()));
                }
            }
        }
    }
    if (is_live(graph) && every_actor_on_cycle(graph) &&
        iteration_length(graph) <= limits.max_iteration_length) {
        const Int sdf_makespan = simulate_iterations(graph, 2).makespan;
        const Int csdf_makespan = csdf_simulate_iterations(lifted, 2).makespan;
        if (sdf_makespan != csdf_makespan) {
            disagreements.push_back(disagree("makespan of 2 iterations", "sdf simulate",
                                             std::to_string(sdf_makespan),
                                             "csdf simulate",
                                             std::to_string(csdf_makespan)));
        }
    }
    return settle(kId, disagreements);
}

// ---- makespan vs matrix power -----------------------------------------

bool every_actor_has_unit_self_loop(const Graph& graph) {
    std::vector<bool> covered(graph.actor_count(), false);
    for (const Channel& ch : graph.channels()) {
        if (ch.is_self_loop() && ch.is_homogeneous() && ch.initial_tokens > 0) {
            covered[ch.src] = true;
        }
    }
    for (const bool c : covered) {
        if (!c) {
            return false;
        }
    }
    return true;
}

Verdict run_makespan(const Graph& graph, const OracleLimits& limits) {
    constexpr const char* kId = "makespan";
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    // The equality "makespan of k iterations == max entry of G^k" needs
    // every actor's final completion recorded in a surviving token, which a
    // marked homogeneous self-loop guarantees.
    if (!every_actor_has_unit_self_loop(graph)) {
        return Verdict::skip(kId, "needs a marked unit self-loop on every actor");
    }
    if (graph.total_initial_tokens() > limits.max_tokens ||
        iteration_length(graph) > limits.max_iteration_length) {
        return Verdict::skip(kId, "size above limit");
    }
    std::vector<Disagreement> disagreements;
    for (const Int k : {Int{1}, Int{2}}) {
        const MpMatrix power = symbolic_iteration_power(graph, k);
        const FiniteRun run = simulate_iterations(graph, k);
        if (!power.max_entry().is_finite() ||
            run.makespan != power.max_entry().value()) {
            disagreements.push_back(disagree(
                "makespan of " + std::to_string(k) + " iteration(s)", "simulation",
                std::to_string(run.makespan), "max entry of G^k",
                power.max_entry().is_finite() ? std::to_string(power.max_entry().value())
                                              : "-inf"));
        }
    }
    return settle(kId, disagreements);
}

// ---- symbolic engines and max-plus kernels ----------------------------

Verdict run_symbolic_engines(const Graph& graph, const OracleLimits& limits) {
    constexpr const char* kId = "symbolic-engines";
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    if (graph.total_initial_tokens() > limits.max_tokens) {
        return Verdict::skip(kId, "token count above matrix limit");
    }
    const SymbolicIteration sparse = symbolic_iteration(graph, SymbolicEngine::sparse);
    const SymbolicIteration dense = symbolic_iteration(graph, SymbolicEngine::dense);
    std::vector<Disagreement> disagreements;
    if (!(sparse.matrix == dense.matrix)) {
        disagreements.push_back(disagree("iteration matrix", "sparse stamps",
                                         "matrix differs", "dense vectors",
                                         "matrix differs"));
    }
    // Kernel sweep: the checked blocked kernel and, per supported ISA tier,
    // the dispatched SIMD multiply must all reproduce the naive reference on
    // every mutated graph — this is the fuzzer's eye on the unchecked SIMD
    // fast path and its safe-magnitude routing.
    const MpMatrix naive = sparse.matrix.multiply_naive(sparse.matrix);
    if (!(sparse.matrix.multiply_checked(sparse.matrix) == naive)) {
        disagreements.push_back(disagree("G*G", "checked blocked multiply",
                                         "matrix differs", "naive multiply",
                                         "matrix differs"));
    }
    const IsaTier entry_tier = active_isa_tier();
    for (const IsaTier tier : supported_isa_tiers()) {
        set_active_isa_tier(tier);
        if (!(sparse.matrix.multiply(sparse.matrix) == naive)) {
            disagreements.push_back(disagree(
                "G*G", std::string("simd multiply (") + isa_tier_name(tier) + ")",
                "matrix differs", "naive multiply", "matrix differs"));
        }
    }
    set_active_isa_tier(entry_tier);
    const Digraph precedence = sparse.matrix.precedence_graph();
    const CycleMetric pooled = max_cycle_mean_karp(precedence);
    const CycleMetric serial = max_cycle_mean_karp_serial(precedence);
    if (pooled.outcome != serial.outcome ||
        (pooled.is_finite() && pooled.value != serial.value)) {
        disagreements.push_back(
            disagree("max cycle mean", "pooled karp",
                     pooled.is_finite() ? pooled.value.to_string() : "no finite cycle",
                     "serial karp",
                     serial.is_finite() ? serial.value.to_string() : "no finite cycle"));
    }
    return settle(kId, disagreements);
}

// ---- self-test oracle (injected off-by-one) ---------------------------

Verdict run_self_test(const Graph& graph, const OracleLimits& limits) {
    constexpr const char* kId = "selftest-offbyone";
    if (graph.actor_count() == 0 || graph.actor_count() > limits.max_actors) {
        return Verdict::skip(kId, "outside domain");
    }
    const ThroughputResult symbolic = throughput_symbolic(graph);
    if (!symbolic.is_finite() || symbolic.period.is_zero()) {
        return Verdict::skip(kId, "needs a positive finite period");
    }
    // The deliberate bug: this copied route believes every period is one
    // time unit longer than it is.  (See run_self_test's caller for why
    // this oracle lives outside the registry.)
    const Rational buggy_period = symbolic.period + Rational(1);
    std::vector<Disagreement> disagreements;
    if (buggy_period != symbolic.period) {
        disagreements.push_back(disagree("iteration period", "symbolic+karp",
                                         symbolic.period.to_string(),
                                         "copied oracle (injected off-by-one)",
                                         buggy_period.to_string()));
    }
    return settle(kId, disagreements);
}

// ---- governed-bound ---------------------------------------------------

/// Flags any way `bound` over-claims against the exact result: a degraded
/// answer may only ever under-estimate throughput (Theorem 1 / the
/// sequential-schedule argument), so anything above the exact value is a
/// soundness bug in the degradation ladder.
void check_conservative(const Graph& graph, const ThroughputResult& exact,
                        const std::string& bound_route, const ThroughputResult& bound,
                        std::vector<Disagreement>& out) {
    if (exact.outcome == ThroughputOutcome::unbounded) {
        return;  // every claim is below +infinity
    }
    if (bound.outcome == ThroughputOutcome::unbounded) {
        out.push_back(disagree("throughput outcome", "exact route",
                               outcome_name(exact.outcome), bound_route,
                               "unbounded (over-claims a bounded graph)"));
        return;
    }
    if (exact.outcome == ThroughputOutcome::deadlocked) {
        // Exact throughput is zero everywhere; only a zero bound is sound.
        for (ActorId a = 0; a < graph.actor_count() && a < bound.per_actor.size(); ++a) {
            if (!bound.per_actor[a].is_zero()) {
                out.push_back(disagree(
                    "throughput of actor '" + graph.actor(a).name + "'", "exact route",
                    "0 (deadlocked)", bound_route, bound.per_actor[a].to_string()));
            }
        }
        return;
    }
    // Finite exact result: the bound must sit at or below it per actor, and
    // a finite implied period must sit at or above the exact one.
    if (bound.outcome == ThroughputOutcome::finite) {
        if (bound.period < exact.period) {
            out.push_back(disagree("iteration period bound", "exact route",
                                   exact.period.to_string(), bound_route,
                                   bound.period.to_string() + " (below exact)"));
        }
        for (ActorId a = 0; a < graph.actor_count() && a < bound.per_actor.size() &&
                            a < exact.per_actor.size();
             ++a) {
            if (bound.per_actor[a] > exact.per_actor[a]) {
                out.push_back(disagree("throughput of actor '" + graph.actor(a).name + "'",
                                       "exact route", exact.per_actor[a].to_string(),
                                       bound_route,
                                       bound.per_actor[a].to_string() + " (over-claim)"));
            }
        }
    }
    // A deadlocked bound against a finite exact result is vacuous but
    // sound (zero is below everything), so it passes.
}

// ---- pipeline-routes --------------------------------------------------

/// The pass pipeline "selfloops,prune,hsdf-reduced" through the
/// PipelineExecutor (analysis adoption, budget slicing and all) against the
/// direct function route: close the graph with add_self_loops and take the
/// symbolic period.  Both must report the same outcome and exact period —
/// prune and the Figure 4 construction preserve λ, so any disagreement is
/// a bug in the executor's analysis threading or in a pass wrapper.
Verdict run_pipeline_routes(const Graph& graph, const OracleLimits& limits) {
    constexpr const char* kId = "pipeline-routes";
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    if (graph.actor_count() > limits.max_actors) {
        return Verdict::skip(kId, "actor count above limit");
    }
    // Closing adds one token per open actor; the symbolic matrix dimension
    // is the closed graph's token count.
    if (graph.total_initial_tokens() + static_cast<Int>(graph.actor_count()) >
        limits.max_tokens) {
        return Verdict::skip(kId, "token count above matrix limit");
    }
    const Graph closed = add_self_loops(graph, 1);
    const ThroughputResult direct = throughput_symbolic(closed);
    if (direct.outcome == ThroughputOutcome::deadlocked) {
        // The pipeline's hsdf-reduced step needs an iteration matrix.
        return Verdict::skip(kId, "closed graph deadlocks: no iteration matrix");
    }
    const PipelineRun run = PipelineExecutor().run(
        parse_pipeline("selfloops,prune,hsdf-reduced"), graph);
    const ThroughputResult via = throughput_symbolic(run.graph);
    std::vector<Disagreement> disagreements;
    if (via.outcome != direct.outcome) {
        disagreements.push_back(disagree("throughput outcome",
                                         "symbolic on closed graph",
                                         outcome_name(direct.outcome),
                                         "pipeline selfloops,prune,hsdf-reduced",
                                         outcome_name(via.outcome)));
    } else if (direct.is_finite() && via.period != direct.period) {
        disagreements.push_back(disagree("iteration period",
                                         "symbolic on closed graph",
                                         direct.period.to_string(),
                                         "pipeline selfloops,prune,hsdf-reduced",
                                         via.period.to_string()));
    }
    return settle(kId, disagreements);
}

Verdict run_governed_bound(const Graph& graph, const OracleLimits& limits) {
    constexpr const char* kId = "governed-bound";
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    if (graph.actor_count() > limits.max_actors) {
        return Verdict::skip(kId, "actor count above limit");
    }
    if (graph.total_initial_tokens() > limits.max_tokens) {
        return Verdict::skip(kId, "token count above limit");
    }
    if (iteration_length(graph) > limits.max_iteration_length) {
        return Verdict::skip(kId, "iteration length above expansion limit");
    }
    const ThroughputResult exact = throughput_symbolic(graph);
    std::vector<Disagreement> disagreements;

    // Leg 1: a one-step budget starves the exact rung at its very first
    // checkpoint; the ladder must still deliver a conservative answer.
    GovernOptions starved;
    starved.budget.max_steps = 1;
    const Governed<ThroughputResult> degraded = governed_throughput(graph, starved);
    if (!degraded.ok()) {
        disagreements.push_back(disagree(
            "governed availability", "exact route", outcome_name(exact.outcome),
            "ladder under max_steps=1",
            std::string("aborted: ") + budget_cause_name(degraded.cause)));
    } else if (degraded.status == GovernedStatus::exact) {
        compare_throughput("exact route", exact, "ladder (exact status)", *degraded.value,
                           graph, disagreements);
    } else {
        check_conservative(graph, exact, "ladder:" + degraded.method, *degraded.value,
                           disagreements);
    }

    // Leg 2: deterministic fault sweep.  Each spec arms one fault that
    // fires inside the governed run; whatever comes out must still be
    // conservative, and the library state must survive unharmed.
    for (const char* spec : {"alloc:1", "alloc:3", "step:4", "deadline:2"}) {
        const FaultInjectionScope fault(spec);
        const Governed<ThroughputResult> result = governed_throughput(graph, {});
        if (!result.ok()) {
            disagreements.push_back(
                disagree("governed availability", "exact route",
                         outcome_name(exact.outcome), std::string("ladder under ") + spec,
                         std::string("aborted: ") + budget_cause_name(result.cause)));
        } else if (result.status == GovernedStatus::exact) {
            compare_throughput("exact route", exact,
                               std::string("ladder under ") + spec + " (exact status)",
                               *result.value, graph, disagreements);
        } else {
            check_conservative(graph, exact,
                               std::string("ladder under ") + spec + ":" + result.method,
                               *result.value, disagreements);
        }
    }

    // Leg 3: the faults above must not have corrupted any shared state —
    // the exact route re-run fault-free must reproduce itself bit for bit.
    const ThroughputResult retry = throughput_symbolic(graph);
    compare_throughput("exact route (before fault sweep)", exact,
                       "exact route (after fault sweep)", retry, graph, disagreements);
    return settle(kId, disagreements);
}

// ---- absint-soundness -------------------------------------------------

std::string channel_route_label(const Graph& graph, ChannelId c) {
    const Channel& ch = graph.channel(c);
    return "channel #" + std::to_string(c) + " (" + graph.actor(ch.src).name +
           " -> " + graph.actor(ch.dst).name + ")";
}

std::string bound_to_string(const std::optional<Int>& bound) {
    return bound.has_value() ? std::to_string(*bound) : "unbounded";
}

/// Shared body of the production soundness oracle and its hidden unsound
/// twin.  The abstract results claim to over-approximate EVERY admissible
/// execution; this replays one deterministic pseudo-random admissible
/// firing sequence (seeded from the graph shape, so repro needs only the
/// graph) and holds each intermediate state against those claims, then
/// cross-checks the reachability verdicts against the exact liveness
/// analysis and the certified bounds against the buffer-capacity model.
Verdict run_absint_soundness_impl(const char* kId, const Graph& graph,
                                  const OracleLimits& limits, bool narrow) {
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    if (graph.actor_count() > limits.max_actors) {
        return Verdict::skip(kId, "actor count above limit");
    }
    if (graph.total_initial_tokens() > limits.max_tokens) {
        return Verdict::skip(kId, "token count above limit");
    }
    absint::TokenIntervalOptions options;
    options.selftest_narrow = narrow;
    const absint::TokenIntervals ti = absint::token_intervals(graph, options);
    const absint::Reachability reach = absint::compute_reachability(graph);
    const absint::CertifiedBounds certified = absint::certify_buffer_bounds(graph, ti);
    std::vector<Disagreement> disagreements;

    // Leg 1: the certificate must convince its independent checker — the
    // checker trusts nothing but the graph and verified arithmetic, so a
    // rejection here means the solver's fixpoint is not actually inductive.
    const absint::CertificateCheck check = absint::verify_certificate(graph, certified);
    if (!check.ok) {
        disagreements.push_back(disagree("certificate validity", "verify_certificate",
                                         "rejected: " + check.reason,
                                         "certify_buffer_bounds", "claims inductive"));
    }

    // Leg 2: replay a random admissible firing sequence.  Seed from the
    // graph shape so the trace is a pure function of the input graph.
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
    const auto mix = [&seed](std::uint64_t v) {
        seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
    };
    mix(graph.actor_count());
    mix(graph.channel_count());
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        const Channel& ch = graph.channel(c);
        mix(static_cast<std::uint64_t>(ch.src));
        mix(static_cast<std::uint64_t>(ch.dst));
        mix(static_cast<std::uint64_t>(ch.production));
        mix(static_cast<std::uint64_t>(ch.consumption));
        mix(static_cast<std::uint64_t>(ch.initial_tokens));
    }
    std::mt19937 rng(static_cast<std::uint32_t>(seed ^ (seed >> 32)));

    std::vector<Int> tokens(graph.channel_count());
    std::vector<Int> max_seen(graph.channel_count());
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        tokens[c] = graph.channel(c).initial_tokens;
        max_seen[c] = tokens[c];
    }
    std::vector<Int> fired(graph.actor_count(), 0);
    const auto check_containment = [&](const char* when) {
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            if (!ti.channels[c].contains(tokens[c])) {
                disagreements.push_back(disagree(
                    "token count of " + channel_route_label(graph, c),
                    std::string("admissible replay (") + when + ")",
                    std::to_string(tokens[c]), "interval fixpoint",
                    ti.channels[c].to_string()));
                return false;
            }
        }
        return true;
    };
    bool contained = check_containment("initial state");
    const Int max_steps = checked_mul(limits.max_iteration_length, Int{4});
    for (Int step = 0; contained && step < max_steps; ++step) {
        std::vector<ActorId> enabled;
        for (ActorId a = 0; a < graph.actor_count(); ++a) {
            bool ok = true;
            for (ChannelId c = 0; c < graph.channel_count() && ok; ++c) {
                const Channel& ch = graph.channel(c);
                ok = ch.dst != a || tokens[c] >= ch.consumption;
            }
            if (ok) {
                enabled.push_back(a);
            }
        }
        if (enabled.empty()) {
            break;
        }
        const ActorId a = enabled[draw_index(rng, enabled.size())];
        // Fire a: consume on inputs, produce on outputs (self-loops both).
        // Compute the next state off to the side so an overflowing product
        // aborts the replay without committing a half-applied firing.
        std::vector<Int> next = tokens;
        bool overflowed = false;
        try {
            for (ChannelId c = 0; c < graph.channel_count(); ++c) {
                const Channel& ch = graph.channel(c);
                if (ch.dst == a) {
                    next[c] = checked_sub(next[c], ch.consumption);
                }
                if (ch.src == a) {
                    next[c] = checked_add(next[c], ch.production);
                }
            }
        } catch (const ArithmeticError&) {
            overflowed = true;  // out of the modelled range; the interval
        }                       // side saturates, so stopping here is sound
        if (overflowed) {
            break;
        }
        tokens = std::move(next);
        fired[a] += 1;
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            max_seen[c] = max_seen[c] > tokens[c] ? max_seen[c] : tokens[c];
        }
        contained = check_containment("after a firing");
    }
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        if (fired[a] > 0 && !ti.possibly_enabled[a]) {
            disagreements.push_back(disagree(
                "enabledness of actor '" + graph.actor(a).name + "'",
                "admissible replay", "fired " + std::to_string(fired[a]) + " times",
                "interval fixpoint", "claims never enabled"));
        }
        if (reach.max_firings[a].has_value() && fired[a] > *reach.max_firings[a]) {
            disagreements.push_back(disagree(
                "firing count of actor '" + graph.actor(a).name + "'",
                "admissible replay", std::to_string(fired[a]),
                "reachability bound", std::to_string(*reach.max_firings[a])));
        }
    }
    for (const absint::BoundCertificate& cert : certified.certificates) {
        if (cert.bound.has_value() && max_seen[cert.channel] > *cert.bound) {
            disagreements.push_back(disagree(
                "peak occupancy of " + channel_route_label(graph, cert.channel),
                "admissible replay", std::to_string(max_seen[cert.channel]),
                "certified bound", std::to_string(*cert.bound)));
        }
    }

    // Leg 3: hold the abstract verdicts against the exact liveness
    // characterisation where the exact route is affordable.
    if (is_consistent(graph) && iteration_length(graph) <= limits.max_iteration_length) {
        const std::vector<Int> q = repetition_vector(graph);
        const bool live = is_live(graph);
        for (ActorId a = 0; a < graph.actor_count(); ++a) {
            // A live graph completes iterations forever: every actor fires
            // unboundedly often, so any finite firing bound — in particular
            // a dead-actor (0) or certified-deadlock (< q) verdict — and
            // any never-enabled claim contradicts it.
            if (live && reach.max_firings[a].has_value()) {
                disagreements.push_back(disagree(
                    "lifetime firings of actor '" + graph.actor(a).name + "'",
                    "is_live", "unbounded (graph is live)", "reachability bound",
                    bound_to_string(reach.max_firings[a])));
            }
            if (live && !ti.possibly_enabled[a]) {
                disagreements.push_back(disagree(
                    "enabledness of actor '" + graph.actor(a).name + "'",
                    "is_live", "fires in every iteration", "interval fixpoint",
                    "claims never enabled"));
            }
        }
        // Leg 4: a certified occupancy bound imposed as a physical buffer
        // capacity can never strangle a live graph — every admissible
        // execution already respects it, so back-pressure at that capacity
        // never binds.
        if (live && graph.channel_count() <= 16) {
            for (const absint::BoundCertificate& cert : certified.certificates) {
                const Channel& ch = graph.channel(cert.channel);
                if (!cert.bound.has_value() || ch.is_self_loop()) {
                    continue;
                }
                if (*cert.bound < ch.initial_tokens) {
                    // Below the initial occupancy: unsound on its face, and
                    // with_buffer_capacity would (rightly) refuse it.
                    disagreements.push_back(disagree(
                        "certified bound of " + channel_route_label(graph, cert.channel),
                        "initial tokens", std::to_string(ch.initial_tokens),
                        "certified bound", std::to_string(*cert.bound)));
                    continue;
                }
                if (!is_live(with_buffer_capacity(graph, cert.channel, *cert.bound))) {
                    disagreements.push_back(disagree(
                        "liveness under certified capacity of " +
                            channel_route_label(graph, cert.channel),
                        "is_live on bounded graph", "deadlocks", "certified bound",
                        std::to_string(*cert.bound) + " (claims every execution fits)"));
                }
            }
        }
    }
    return settle(kId, disagreements);
}

Verdict run_absint_soundness(const Graph& graph, const OracleLimits& limits) {
    return run_absint_soundness_impl("absint-soundness", graph, limits, false);
}

Verdict run_absint_self_test(const Graph& graph, const OracleLimits& limits) {
    return run_absint_soundness_impl("selftest-absint-unsound", graph, limits, true);
}

// ---- incremental-route ------------------------------------------------

/// One step of the deterministic edit script the incremental oracle drives.
struct ScriptEdit {
    int kind = 0;         ///< 0 execution-time, 1 initial-tokens, 2 rates
    std::size_t idx = 0;  ///< actor (kind 0) or channel (kinds 1, 2)
    Int a = 0;            ///< new time / tokens / production
    Int b = 0;            ///< new consumption (kind 2 only)
};

std::string script_to_string(const std::vector<ScriptEdit>& script) {
    std::string out;
    for (const ScriptEdit& e : script) {
        if (!out.empty()) {
            out += "; ";
        }
        switch (e.kind) {
            case 0:
                out += "time(actor " + std::to_string(e.idx) + ") <- " +
                       std::to_string(e.a);
                break;
            case 1:
                out += "tokens(channel " + std::to_string(e.idx) + ") <- " +
                       std::to_string(e.a);
                break;
            default:
                out += "rates(channel " + std::to_string(e.idx) + ") <- " +
                       std::to_string(e.a) + ":" + std::to_string(e.b);
                break;
        }
    }
    return out.empty() ? "(empty script)" : out;
}

/// A structural clone with a FRESH AnalysisManager: the from-scratch route.
/// (A plain Graph copy shares the manager, which is exactly what the oracle
/// must not let the cold route do.)
Graph rebuild_cold(const Graph& graph) {
    Graph out(graph.name());
    for (const Actor& actor : graph.actors()) {
        out.add_actor(actor.name, actor.execution_time);
    }
    for (const Channel& channel : graph.channels()) {
        out.add_channel(channel.src, channel.dst, channel.production,
                        channel.consumption, channel.initial_tokens);
    }
    return out;
}

void apply_script_edit(Graph& graph, const ScriptEdit& e) {
    switch (e.kind) {
        case 0: graph.set_execution_time(e.idx, e.a); break;
        case 1: graph.set_initial_tokens(e.idx, e.a); break;
        default: graph.set_rates(e.idx, e.a, e.b); break;
    }
}

/// Queries both routes on the current state and appends disagreements.  The
/// incremental route answers through `inc`'s refined AnalysisManager; the
/// cold route rebuilds the graph element by element so every analysis
/// recomputes from scratch.  Schedules are compared as certificates —
/// admissibility and length, never canonical bytes (SDF determinacy makes
/// every admissible schedule equivalent); throughput must be bit-exact.
void compare_incremental_state(const Graph& inc, const OracleLimits& limits,
                               const std::string& stage,
                               std::vector<Disagreement>& out) {
    const Graph cold = rebuild_cold(inc);
    const bool inc_consistent = is_consistent(inc);
    const bool cold_consistent = is_consistent(cold);
    if (inc_consistent != cold_consistent) {
        out.push_back(disagree("consistency " + stage, "incremental cache",
                               inc_consistent ? "consistent" : "inconsistent",
                               "from-scratch rebuild",
                               cold_consistent ? "consistent" : "inconsistent"));
        return;
    }
    if (!cold_consistent) {
        return;  // nothing else is defined on an inconsistent graph
    }
    const auto inc_q = inc.analyses()->get<RepetitionVectorAnalysis>(inc);
    const auto cold_q = cold.analyses()->get<RepetitionVectorAnalysis>(cold);
    if (*inc_q != *cold_q) {
        out.push_back(disagree("repetition vector " + stage, "incremental cache",
                               "refined vector", "from-scratch rebuild",
                               "differs"));
        return;
    }
    // Edits may drive the iteration length past what the timed analyses can
    // afford on fuzzing volume; the cheap untimed comparisons above already
    // ran, so this is a partial pass, not a reject.
    if (iteration_length(cold) > limits.max_iteration_length) {
        return;
    }
    const bool inc_live = *inc.analyses()->get<LivenessAnalysis>(inc);
    const bool cold_live = *cold.analyses()->get<LivenessAnalysis>(cold);
    if (inc_live != cold_live) {
        out.push_back(disagree("liveness " + stage, "incremental cache",
                               inc_live ? "live" : "deadlocked",
                               "from-scratch rebuild",
                               cold_live ? "live" : "deadlocked"));
        return;
    }
    if (inc_live) {
        const auto inc_s = inc.analyses()->get<SequentialScheduleAnalysis>(inc);
        const auto cold_s = cold.analyses()->get<SequentialScheduleAnalysis>(cold);
        if (inc_s->size() != cold_s->size()) {
            out.push_back(disagree(
                "schedule length " + stage, "incremental cache",
                std::to_string(inc_s->size()), "from-scratch rebuild",
                std::to_string(cold_s->size())));
        } else if (!validate_schedule(cold, *inc_s)) {
            out.push_back(disagree("schedule admissibility " + stage,
                                   "incremental cache",
                                   "refined schedule is not admissible",
                                   "from-scratch rebuild", "admissible"));
        }
    }
    compare_throughput("incremental cache " + stage, *cached_throughput(inc),
                       "from-scratch rebuild", *cached_throughput(cold), inc, out);
}

/// Runs one edit script over a warm lineage, comparing against from-scratch
/// rebuilds at interleaved points.  `fault_spec`, when non-null, re-arms
/// that fault-injection plan around EVERY edit, so each refinement runs
/// with a live countdown — a tripped hook must degrade to a dropped slot
/// (a later cache miss), never to a wrong cached value.
std::vector<Disagreement> run_incremental_script(
    const Graph& base, const std::vector<ScriptEdit>& script,
    const OracleLimits& limits, const char* fault_spec) {
    std::vector<Disagreement> out;
    Graph inc = rebuild_cold(base);
    // Prime every slot so the edits below REFINE warm state: the initial
    // comparison fills the untimed slots and the plain throughput slot, and
    // warm_throughput seeds the incremental max-plus state the timing edits
    // are meant to exercise.
    compare_incremental_state(inc, limits, "before any edit", out);
    if (!out.empty()) {
        return out;
    }
    if (is_consistent(inc) &&
        iteration_length(inc) <= limits.max_iteration_length) {
        try {
            warm_throughput(inc);
        } catch (const Error&) {
            // Deadlocked or otherwise out of the warm path's domain: edits
            // then refine whatever the manager does hold.
        }
    }
    for (std::size_t step = 0; step < script.size(); ++step) {
        if (fault_spec != nullptr) {
            const FaultInjectionScope fault(fault_spec);
            apply_script_edit(inc, script[step]);
        } else {
            apply_script_edit(inc, script[step]);
        }
        // Interleave queries with edits: compare after every other edit and
        // always after the last, so refinement chains of length > 1 run.
        if (step + 1 == script.size() || step % 2 == 0) {
            compare_incremental_state(
                inc, limits, "after edit #" + std::to_string(step), out);
            if (!out.empty()) {
                return out;
            }
        }
    }
    return out;
}

/// Greedily drops edits whose removal keeps the divergence, to a fixed
/// point: the classic delta-debugging reduction, cheap here because scripts
/// are short and each trial is a handful of small-graph analyses.
std::vector<ScriptEdit> shrink_incremental_script(const Graph& base,
                                                  std::vector<ScriptEdit> script,
                                                  const OracleLimits& limits) {
    bool progress = true;
    while (progress && script.size() > 1) {
        progress = false;
        for (std::size_t i = 0; i < script.size(); ++i) {
            std::vector<ScriptEdit> candidate = script;
            candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
            if (!run_incremental_script(base, candidate, limits, nullptr).empty()) {
                script = std::move(candidate);
                progress = true;
                break;
            }
        }
    }
    return script;
}

Verdict run_incremental_route(const Graph& graph, const OracleLimits& limits) {
    constexpr const char* kId = "incremental-route";
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph");
    }
    if (graph.actor_count() > limits.max_actors) {
        return Verdict::skip(kId, "actor count above limit");
    }
    if (graph.total_initial_tokens() > limits.max_tokens) {
        return Verdict::skip(kId, "token count above limit");
    }

    // The script is a pure function of the graph's content, so reproducing
    // a failure needs only the graph — the same repro contract as the
    // absint replay.
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
    const auto mix = [&seed](std::uint64_t v) {
        seed ^= v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
    };
    mix(graph.actor_count());
    mix(graph.channel_count());
    for (const Actor& actor : graph.actors()) {
        mix(static_cast<std::uint64_t>(actor.execution_time));
    }
    for (const Channel& channel : graph.channels()) {
        mix(channel.src);
        mix(channel.dst);
        mix(static_cast<std::uint64_t>(channel.production));
        mix(static_cast<std::uint64_t>(channel.consumption));
        mix(static_cast<std::uint64_t>(channel.initial_tokens));
    }
    const auto next = [&seed]() {
        seed += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = seed;
        z ^= z >> 30;
        z *= 0xbf58476d1ce4e5b9ull;
        z ^= z >> 27;
        z *= 0x94d049bb133111ebull;
        z ^= z >> 31;
        return z;
    };

    std::vector<ScriptEdit> script;
    const std::size_t steps = 4 + next() % 5;
    for (std::size_t i = 0; i < steps; ++i) {
        ScriptEdit e;
        const std::uint64_t pick =
            next() % (graph.channel_count() > 0 ? 3 : 1);
        if (pick == 0) {
            e.kind = 0;
            e.idx = next() % graph.actor_count();
            e.a = static_cast<Int>(next() % 9);
        } else if (pick == 1) {
            e.kind = 1;
            e.idx = next() % graph.channel_count();
            e.a = static_cast<Int>(next() % 4);
        } else {
            // Rates stay small so edited graphs keep affordable iteration
            // lengths most of the time (the compare guards the rest).
            e.kind = 2;
            e.idx = next() % graph.channel_count();
            e.a = static_cast<Int>(1 + next() % 3);
            e.b = static_cast<Int>(1 + next() % 3);
        }
        script.push_back(e);
    }

    std::vector<Disagreement> disagreements =
        run_incremental_script(graph, script, limits, nullptr);

    // Fault-injection leg: the same script with an allocation fault re-armed
    // around every edit.  A refinement hook that trips mid-flight must drop
    // its slot (refine_from's contract) — the comparisons must still agree.
    // Skipped under an installed Governor: the armed countdown would also
    // fire inside the governed from-scratch route and reject the whole run.
    if (disagreements.empty() && current_governor() == nullptr) {
        disagreements = run_incremental_script(graph, script, limits, "alloc:1");
        if (!disagreements.empty()) {
            return Verdict::fail(kId,
                                 "refinement under injected allocation faults "
                                 "published a wrong cached value; script: " +
                                     script_to_string(script),
                                 std::move(disagreements));
        }
    }

    if (!disagreements.empty()) {
        script = shrink_incremental_script(graph, std::move(script), limits);
        disagreements = run_incremental_script(graph, script, limits, nullptr);
        return Verdict::fail(
            kId,
            "incremental refinement diverges from from-scratch recomputation; "
            "minimal script: " +
                script_to_string(script),
            std::move(disagreements));
    }
    return Verdict::pass(kId);
}

std::vector<Oracle>& mutable_registry() {
    static std::vector<Oracle> registry = {
        {"throughput-routes",
         "self-timed simulation == MCM of symbolic matrix == classic HSDF",
         "all independent throughput routes report the same outcome, period and "
         "per-actor rates",
         &run_throughput_routes},
        {"reduced-hsdf", "Section 6 conversion preserves the iteration period",
         "the reduced HSDF (with and without mux elision) is homogeneous and has the "
         "original graph's period",
         &run_reduced_hsdf},
        {"abstraction", "Theorem 1: abstract throughput never over-estimates",
         "conservative_throughput_bound <= concrete throughput per actor; zero for "
         "deadlocked graphs",
         &run_abstraction},
        {"unfold", "Proposition 2: N-fold unfolding scales the period by N",
         "unfold(g, N) preserves tokens, outcome, and multiplies a finite period by N "
         "(homogeneous graphs)",
         &run_unfold},
        {"repetition", "repetition vector solves the balance equations minimally",
         "q >= 1, q(src)*p == q(dst)*c per channel, sum q == iteration length; "
         "inconsistent graphs raise the typed error",
         &run_repetition},
        {"liveness", "deadlock and liveness characterisations agree",
         "is_live == !diagnose_deadlock().deadlocked == is_live_via_hsdf; "
         "throughput reports deadlock exactly for non-live graphs; witnesses are valid",
         &run_liveness},
        {"csdf-lift", "single-phase CSDF embedding mirrors the SDF analyses",
         "consistency, liveness, throughput and simulated makespan survive "
         "csdf_from_sdf unchanged",
         &run_csdf_lift},
        {"makespan", "simulated makespan equals the symbolic matrix power",
         "makespan of k iterations == max entry of G^k when every actor's completion "
         "lands in a token",
         &run_makespan},
        {"symbolic-engines", "sparse == dense stamps; all ISA kernels == naive",
         "both stamp engines produce bit-identical matrices; the checked blocked "
         "kernel and every supported SIMD tier reproduce naive multiply, and pooled "
         "Karp matches its serial baseline",
         &run_symbolic_engines},
        {"governed-bound", "anytime ladder bounds never exceed the exact throughput",
         "governed_throughput under starvation and injected faults always returns a "
         "conservative per-actor lower bound (period upper bound), exact status means "
         "exact values, and injected faults never corrupt later exact runs",
         &run_governed_bound},
        {"pipeline-routes", "the pass pipeline matches the direct function route",
         "executor run of selfloops,prune,hsdf-reduced reports the same outcome and "
         "exact period as the symbolic route on the self-loop-closed graph",
         &run_pipeline_routes},
        {"absint-soundness",
         "abstract token intervals contain every admissible execution",
         "a replayed random admissible firing sequence stays inside the interval "
         "fixpoint, below the certified buffer bounds and the reachability firing "
         "bounds; the bound certificate passes its independent checker; on live "
         "graphs no actor carries a finite firing bound and every certified "
         "capacity keeps the bounded graph live",
         &run_absint_soundness},
        {"incremental-route",
         "delta refinement equals from-scratch recomputation",
         "over a deterministic interleaved edit/query script, every analysis "
         "served from the mutation-refined cache (consistency, repetition, "
         "liveness, an admissible schedule, bit-exact throughput) matches a "
         "cold rebuild, with and without allocation faults injected into the "
         "refinement hooks; divergent scripts shrink to a minimal repro",
         &run_incremental_route},
    };
    return registry;
}

}  // namespace

const std::vector<Oracle>& oracle_registry() { return mutable_registry(); }

void register_extra_oracle(Oracle oracle) {
    oracle.extra = true;
    for (Oracle& existing : mutable_registry()) {
        if (existing.id == oracle.id) {
            existing = std::move(oracle);
            return;
        }
    }
    mutable_registry().push_back(std::move(oracle));
}

const Oracle* find_oracle(const std::string& id) {
    for (const Oracle& oracle : oracle_registry()) {
        if (oracle.id == id) {
            return &oracle;
        }
    }
    if (self_test_oracle().id == id) {
        return &self_test_oracle();
    }
    if (absint_self_test_oracle().id == id) {
        return &absint_self_test_oracle();
    }
    return nullptr;
}

Verdict run_oracle(const Oracle& oracle, const Graph& graph, const OracleLimits& limits) {
    // A budget in the limits puts the whole oracle run under governance, so
    // hostile graphs that slip past the size guards hit a checkpoint instead
    // of stalling the fuzzing loop.
    std::optional<Governor> governor;
    std::optional<GovernorScope> scope;
    if (!limits.budget.unlimited()) {
        governor.emplace(limits.budget);
        scope.emplace(*governor);
    }
    try {
        Verdict verdict = oracle.run(graph, limits);
        verdict.oracle = oracle.id;
        return verdict;
    } catch (const BudgetExceeded& e) {
        return Verdict::reject(oracle.id, std::string("BudgetExceeded(") +
                                              budget_cause_name(e.cause()) + "): " + e.what());
    } catch (const ResourceLimitError& e) {
        return Verdict::reject(oracle.id, std::string("ResourceLimitError: ") + e.what());
    } catch (const std::bad_alloc&) {
        // Graceful degradation: refusing an unaffordable allocation is a
        // typed outcome, not a crash.
        return Verdict::reject(oracle.id, "bad_alloc: allocation refused or failed");
    } catch (const InconsistentGraphError& e) {
        return Verdict::reject(oracle.id, std::string("InconsistentGraphError: ") + e.what());
    } catch (const DeadlockError& e) {
        return Verdict::reject(oracle.id, std::string("DeadlockError: ") + e.what());
    } catch (const InvalidGraphError& e) {
        return Verdict::reject(oracle.id, std::string("InvalidGraphError: ") + e.what());
    } catch (const InvalidAbstractionError& e) {
        return Verdict::reject(oracle.id,
                               std::string("InvalidAbstractionError: ") + e.what());
    } catch (const ArithmeticError& e) {
        return Verdict::reject(oracle.id, std::string("ArithmeticError: ") + e.what());
    } catch (const Error& e) {
        return Verdict::reject(oracle.id, std::string("Error: ") + e.what());
    } catch (const std::exception& e) {
        // Untyped escape — the graceful-degradation contract is broken.
        return Verdict::fail(oracle.id, std::string("crash: untyped exception ") +
                                            typeid(e).name() + ": " + e.what());
    } catch (...) {
        return Verdict::fail(oracle.id, "crash: unknown exception");
    }
}

const Oracle& self_test_oracle() {
    static const Oracle oracle = {
        "selftest-offbyone",
        "copied throughput oracle with an injected off-by-one period",
        "intentionally broken: believes every finite period is one unit longer; the "
        "harness must find and shrink this",
        &run_self_test};
    return oracle;
}

const Oracle& absint_self_test_oracle() {
    static const Oracle oracle = {
        "selftest-absint-unsound",
        "token-interval analysis with deliberately pinched intervals",
        "intentionally broken: every non-constant interval is narrowed by one on "
        "each side after solving, so the inductive check and the admissible "
        "replay must both catch the escape; the harness has to find this",
        &run_absint_self_test};
    return oracle;
}

}  // namespace sdf
