#include "verify/mutate.hpp"

#include <algorithm>

#include "base/portable_rng.hpp"

namespace sdf {

namespace {

/// A plain editable mirror of a Graph.  Graph itself is validate-on-build
/// and has no structural mutators (by design); mutations edit this mirror
/// and rebuild, so every mutated graph re-passes construction validation.
struct EditableGraph {
    struct EditChannel {
        std::size_t src = 0;
        std::size_t dst = 0;
        Int production = 1;
        Int consumption = 1;
        Int tokens = 0;
    };

    std::string name;
    std::vector<Actor> actors;
    std::vector<EditChannel> channels;

    static EditableGraph from(const Graph& graph) {
        EditableGraph e;
        e.name = graph.name();
        e.actors = graph.actors();
        e.channels.reserve(graph.channel_count());
        for (const Channel& ch : graph.channels()) {
            e.channels.push_back({ch.src, ch.dst, ch.production, ch.consumption,
                                  ch.initial_tokens});
        }
        return e;
    }

    [[nodiscard]] Graph build() const {
        Graph graph(name);
        for (const Actor& actor : actors) {
            graph.add_actor(actor.name, actor.execution_time);
        }
        for (const EditChannel& ch : channels) {
            graph.add_channel(ch.src, ch.dst, ch.production, ch.consumption, ch.tokens);
        }
        return graph;
    }

    [[nodiscard]] bool has_name(const std::string& candidate) const {
        return std::any_of(actors.begin(), actors.end(),
                           [&](const Actor& a) { return a.name == candidate; });
    }

    [[nodiscard]] std::string fresh_name(const std::string& base) const {
        for (Int i = 0;; ++i) {
            const std::string candidate = base + "+s" + std::to_string(i);
            if (!has_name(candidate)) {
                return candidate;
            }
        }
    }
};

void note(std::vector<std::string>* trace, std::string entry) {
    if (trace != nullptr) {
        trace->push_back(std::move(entry));
    }
}

/// Applies one mutation of `kind`; returns false when the kind does not
/// apply to the current shape (caller re-draws).
bool apply(EditableGraph& g, FuzzMutationKind kind, std::mt19937& rng,
           std::vector<std::string>* trace) {
    switch (kind) {
        case FuzzMutationKind::rate_perturb: {
            if (g.channels.empty()) {
                return false;
            }
            auto& ch = g.channels[draw_index(rng, g.channels.size())];
            Int& rate = draw_chance(rng, 0.5) ? ch.production : ch.consumption;
            const Int before = rate;
            rate = std::max<Int>(1, rate + (draw_chance(rng, 0.5) ? 1 : -1));
            if (rate == before) {
                rate = before + 1;
            }
            note(trace, std::string("rate_perturb: ") + g.actors[ch.src].name + "->" +
                            g.actors[ch.dst].name + " rate " + std::to_string(before) +
                            " -> " + std::to_string(rate));
            return true;
        }
        case FuzzMutationKind::token_add: {
            if (g.channels.empty()) {
                return false;
            }
            auto& ch = g.channels[draw_index(rng, g.channels.size())];
            const Int extra = draw_int(rng, 1, 3);
            ch.tokens += extra;
            note(trace, std::string("token_add: ") + g.actors[ch.src].name + "->" +
                            g.actors[ch.dst].name + " +" + std::to_string(extra));
            return true;
        }
        case FuzzMutationKind::token_remove: {
            std::vector<std::size_t> marked;
            for (std::size_t c = 0; c < g.channels.size(); ++c) {
                if (g.channels[c].tokens > 0) {
                    marked.push_back(c);
                }
            }
            if (marked.empty()) {
                return false;
            }
            auto& ch = g.channels[marked[draw_index(rng, marked.size())]];
            const Int removed = draw_int(rng, 1, ch.tokens);
            ch.tokens -= removed;
            note(trace, std::string("token_remove: ") + g.actors[ch.src].name + "->" +
                            g.actors[ch.dst].name + " -" + std::to_string(removed));
            return true;
        }
        case FuzzMutationKind::edge_rewire: {
            if (g.channels.empty() || g.actors.empty()) {
                return false;
            }
            auto& ch = g.channels[draw_index(rng, g.channels.size())];
            const std::size_t target = draw_index(rng, g.actors.size());
            std::size_t& endpoint = draw_chance(rng, 0.5) ? ch.src : ch.dst;
            const std::size_t before = endpoint;
            endpoint = target;
            note(trace, "edge_rewire: endpoint " + g.actors[before].name + " -> " +
                            g.actors[target].name);
            return true;
        }
        case FuzzMutationKind::actor_split: {
            if (g.actors.empty()) {
                return false;
            }
            const std::size_t original = draw_index(rng, g.actors.size());
            Actor clone;
            clone.name = g.fresh_name(g.actors[original].name);
            clone.execution_time = g.actors[original].execution_time;
            g.actors.push_back(clone);
            const std::size_t added = g.actors.size() - 1;
            for (auto& ch : g.channels) {
                if (ch.src == original && draw_chance(rng, 0.5)) {
                    ch.src = added;
                }
            }
            // Keep the halves adjacent so the split stays a local reshaping
            // rather than a guaranteed disconnect.
            g.channels.push_back({original, added, 1, 1, 0});
            note(trace, "actor_split: " + g.actors[original].name + " -> +" + clone.name);
            return true;
        }
        case FuzzMutationKind::actor_merge: {
            if (g.actors.size() < 2) {
                return false;
            }
            const std::size_t keep = draw_index(rng, g.actors.size());
            std::size_t gone = draw_index(rng, g.actors.size() - 1);
            if (gone >= keep) {
                ++gone;
            }
            note(trace,
                 "actor_merge: " + g.actors[gone].name + " into " + g.actors[keep].name);
            for (auto& ch : g.channels) {
                if (ch.src == gone) {
                    ch.src = keep;
                }
                if (ch.dst == gone) {
                    ch.dst = keep;
                }
                if (ch.src > gone) {
                    --ch.src;
                }
                if (ch.dst > gone) {
                    --ch.dst;
                }
            }
            g.actors.erase(g.actors.begin() + static_cast<std::ptrdiff_t>(gone));
            return true;
        }
        case FuzzMutationKind::time_jitter: {
            if (g.actors.empty()) {
                return false;
            }
            Actor& actor = g.actors[draw_index(rng, g.actors.size())];
            const Int before = actor.execution_time;
            const Int delta = draw_int(rng, 1, 3);
            actor.execution_time =
                std::max<Int>(0, actor.execution_time + (draw_chance(rng, 0.5) ? delta
                                                                               : -delta));
            note(trace, "time_jitter: " + actor.name + " " + std::to_string(before) +
                            " -> " + std::to_string(actor.execution_time));
            return true;
        }
    }
    return false;
}

}  // namespace

const char* fuzz_mutation_kind_name(FuzzMutationKind kind) {
    switch (kind) {
        case FuzzMutationKind::rate_perturb: return "rate_perturb";
        case FuzzMutationKind::token_add: return "token_add";
        case FuzzMutationKind::token_remove: return "token_remove";
        case FuzzMutationKind::edge_rewire: return "edge_rewire";
        case FuzzMutationKind::actor_split: return "actor_split";
        case FuzzMutationKind::actor_merge: return "actor_merge";
        case FuzzMutationKind::time_jitter: return "time_jitter";
    }
    return "unknown";
}

Graph mutate_graph(const Graph& graph, std::mt19937& rng, int count,
                   std::vector<std::string>* trace) {
    if (graph.actor_count() == 0) {
        return graph;
    }
    EditableGraph editable = EditableGraph::from(graph);
    constexpr int kKinds = 7;
    for (int applied = 0; applied < count;) {
        bool progressed = false;
        // A drawn kind may not apply (no channels, no tokens); re-draw a
        // bounded number of times, then give up on this slot.
        for (int attempt = 0; attempt < 8 && !progressed; ++attempt) {
            const auto kind =
                static_cast<FuzzMutationKind>(draw_index(rng, static_cast<std::size_t>(kKinds)));
            progressed = apply(editable, kind, rng, trace);
        }
        if (!progressed) {
            break;
        }
        ++applied;
    }
    return editable.build();
}

}  // namespace sdf
