#include "verify/shrink.hpp"

#include <optional>
#include <vector>

namespace sdf {

namespace {

/// Editable mirror (same idea as mutate.cpp's): shrink candidates are
/// edits of this plain structure, rebuilt and re-validated per attempt.
struct Candidate {
    struct EditChannel {
        std::size_t src = 0;
        std::size_t dst = 0;
        Int production = 1;
        Int consumption = 1;
        Int tokens = 0;
    };

    std::string name;
    std::vector<Actor> actors;
    std::vector<EditChannel> channels;

    static Candidate from(const Graph& graph) {
        Candidate c;
        c.name = graph.name();
        c.actors = graph.actors();
        c.channels.reserve(graph.channel_count());
        for (const Channel& ch : graph.channels()) {
            c.channels.push_back({ch.src, ch.dst, ch.production, ch.consumption,
                                  ch.initial_tokens});
        }
        return c;
    }

    [[nodiscard]] Graph build() const {
        Graph graph(name);
        for (const Actor& actor : actors) {
            graph.add_actor(actor.name, actor.execution_time);
        }
        for (const EditChannel& ch : channels) {
            graph.add_channel(ch.src, ch.dst, ch.production, ch.consumption, ch.tokens);
        }
        return graph;
    }

    [[nodiscard]] Candidate without_actor(std::size_t actor) const {
        Candidate next;
        next.name = name;
        next.actors = actors;
        next.actors.erase(next.actors.begin() + static_cast<std::ptrdiff_t>(actor));
        for (const EditChannel& ch : channels) {
            if (ch.src == actor || ch.dst == actor) {
                continue;
            }
            EditChannel moved = ch;
            if (moved.src > actor) {
                --moved.src;
            }
            if (moved.dst > actor) {
                --moved.dst;
            }
            next.channels.push_back(moved);
        }
        return next;
    }

    [[nodiscard]] Candidate without_channel(std::size_t channel) const {
        Candidate next = *this;
        next.channels.erase(next.channels.begin() +
                            static_cast<std::ptrdiff_t>(channel));
        return next;
    }
};

class Shrinker {
public:
    Shrinker(Candidate best, std::function<bool(const Graph&)> still_fails,
             const ShrinkOptions& options)
        : best_(std::move(best)), still_fails_(std::move(still_fails)),
          options_(options) {}

    ShrinkOutcome run() {
        bool progressed = true;
        while (progressed && attempts_ < options_.max_attempts) {
            progressed = false;
            progressed |= drop_actors();
            progressed |= drop_channels();
            progressed |= simplify_attributes();
            ++rounds_;
        }
        ShrinkOutcome outcome;
        outcome.graph = best_.build();
        outcome.attempts = attempts_;
        outcome.rounds = rounds_;
        return outcome;
    }

private:
    /// Adopts `candidate` when it still fails; false otherwise.
    bool adopt_if_failing(const Candidate& candidate) {
        if (attempts_ >= options_.max_attempts) {
            return false;
        }
        ++attempts_;
        try {
            if (still_fails_(candidate.build())) {
                best_ = candidate;
                return true;
            }
        } catch (...) {
            // An unbuildable candidate (or a predicate that threw) is
            // simply not a smaller counterexample.
        }
        return false;
    }

    bool drop_actors() {
        bool progressed = false;
        // Descending so indices stay stable across failed attempts.
        for (std::size_t a = best_.actors.size(); a-- > 0;) {
            if (best_.actors.size() <= 1) {
                break;
            }
            progressed |= adopt_if_failing(best_.without_actor(a));
        }
        return progressed;
    }

    bool drop_channels() {
        bool progressed = false;
        for (std::size_t c = best_.channels.size(); c-- > 0;) {
            progressed |= adopt_if_failing(best_.without_channel(c));
        }
        return progressed;
    }

    bool simplify_attributes() {
        bool progressed = false;
        for (std::size_t c = 0; c < best_.channels.size(); ++c) {
            progressed |= pull_towards(c, &Candidate::EditChannel::production, 1);
            progressed |= pull_towards(c, &Candidate::EditChannel::consumption, 1);
            progressed |= pull_towards(c, &Candidate::EditChannel::tokens, 0);
        }
        for (std::size_t a = 0; a < best_.actors.size(); ++a) {
            progressed |= pull_time_towards_zero(a);
        }
        return progressed;
    }

    /// Tries `field = target`, then repeated halving towards it.
    bool pull_towards(std::size_t channel, Int Candidate::EditChannel::* field,
                      Int target) {
        bool progressed = false;
        for (;;) {
            const Int current = best_.channels[channel].*field;
            if (current == target) {
                return progressed;
            }
            Candidate direct = best_;
            direct.channels[channel].*field = target;
            if (adopt_if_failing(direct)) {
                progressed = true;
                continue;
            }
            const Int halved = target + (current - target) / 2;
            if (halved == current) {
                return progressed;
            }
            Candidate half = best_;
            half.channels[channel].*field = halved;
            if (!adopt_if_failing(half)) {
                return progressed;
            }
            progressed = true;
        }
    }

    bool pull_time_towards_zero(std::size_t actor) {
        bool progressed = false;
        for (;;) {
            const Int current = best_.actors[actor].execution_time;
            if (current == 0) {
                return progressed;
            }
            Candidate direct = best_;
            direct.actors[actor].execution_time = 0;
            if (adopt_if_failing(direct)) {
                progressed = true;
                continue;
            }
            const Int halved = current / 2;
            if (halved == current) {
                return progressed;
            }
            Candidate half = best_;
            half.actors[actor].execution_time = halved;
            if (!adopt_if_failing(half)) {
                return progressed;
            }
            progressed = true;
        }
    }

    Candidate best_;
    std::function<bool(const Graph&)> still_fails_;
    ShrinkOptions options_;
    std::size_t attempts_ = 0;
    std::size_t rounds_ = 0;
};

}  // namespace

ShrinkOutcome shrink_failure(const Graph& failing,
                             const std::function<bool(const Graph&)>& still_fails,
                             const ShrinkOptions& options) {
    return Shrinker(Candidate::from(failing), still_fails, options).run();
}

}  // namespace sdf
