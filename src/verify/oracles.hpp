// oracles.hpp — the differential oracle registry.
//
// The library deliberately carries redundant engines for its central
// quantities: throughput has a symbolic route, a classical-expansion route
// and a state-space simulation; symbolic execution has a sparse and a dense
// stamp engine; max-plus multiplication has a blocked and a naive kernel;
// conversion has the reduced and the classic construction; CSDF embeds SDF.
// Each oracle below pits those independent paths against each other on one
// graph and also checks the paper's ordering invariants (Theorem 1
// conservativity, Proposition 2 unfolding).  Agreement is strong evidence of
// correctness precisely because the routes share no code beyond the graph
// itself.
//
// Oracles accept ARBITRARY graphs — inconsistent, deadlocked, degenerate —
// and must resolve every one to a Verdict: out-of-domain graphs are
// rejected via the library's typed errors or skipped by size policy, never
// crashed on.  run_oracle() enforces that contract: an untyped exception
// escaping an oracle is itself a failing verdict.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "robust/budget.hpp"
#include "sdf/graph.hpp"
#include "verify/verdict.hpp"

namespace sdf {

/// Size guards that keep the exponential routes (classical expansion,
/// state-space simulation) and the O(tokens²) matrix routes affordable on
/// fuzzing volume.  Oracles skip (not reject) above these.
struct OracleLimits {
    Int max_iteration_length = 128;     ///< firings/iteration for expansion & simulation
    Int max_tokens = 128;               ///< symbolic matrix dimension
    std::size_t max_actors = 64;        ///< blanket actor-count guard
    std::size_t sim_max_events = 1u << 20;  ///< event budget per simulation
    /// When any limit is set, run_oracle installs a Governor for the
    /// oracle's duration, so a hostile graph that slips past the size
    /// guards is cut off by a checkpoint instead of stalling the fuzzer.
    ExecutionBudget budget;
};

/// One differential oracle: an independent way to compute and cross-check
/// one quantity of the paper.
struct Oracle {
    std::string id;         ///< stable kebab-case identifier
    std::string summary;    ///< one-line description
    std::string invariant;  ///< the invariant checked, in paper terms
    Verdict (*run)(const Graph&, const OracleLimits&) = nullptr;
    /// Registered at runtime via register_extra_oracle() rather than built
    /// in.  Extra oracles may themselves drive whole registry sweeps (the
    /// serve-route oracle runs the daemon's fuzz-smoke op), so sweeps that
    /// an extra oracle triggers skip other extras to stay recursion-free.
    bool extra = false;
};

/// All production oracles, in registry order: the built-in battery first,
/// then anything added through register_extra_oracle().
const std::vector<Oracle>& oracle_registry();

/// Appends an oracle from a higher layer to the registry (marked `extra`).
/// sdfred_verify sits below the layers that own some cross-checkable
/// machinery — the serve daemon links verify, not the other way round — so
/// those layers contribute their oracle at startup instead of at link time.
/// Re-registering an id replaces the previous entry (idempotent).  Not
/// thread-safe; call during startup, before any fuzzing or sweeps run.
void register_extra_oracle(Oracle oracle);

/// The oracle with this id (registry or self-test), or nullptr.
const Oracle* find_oracle(const std::string& id);

/// Runs an oracle under the graceful-degradation contract: typed library
/// errors (Error subclasses) become `reject` verdicts labelled with the
/// error class; anything else escaping (std::exception, ...) becomes a
/// `fail` verdict with a "crash" detail — exactly the bug class the fuzzer
/// hunts beside route disagreements.
Verdict run_oracle(const Oracle& oracle, const Graph& graph,
                   const OracleLimits& limits = {});

/// The self-test oracle: a copy of the throughput comparison with a
/// deliberately injected off-by-one in the expected iteration period.  It
/// fails on every finite-period graph.  Not part of oracle_registry();
/// `sdfred fuzz --self-test` runs the harness against it and asserts that
/// the bug is found and shrunk to a minimal repro.
const Oracle& self_test_oracle();

/// The abstract-interpretation twin of the self-test: the soundness oracle
/// run against deliberately pinched (hence unsound) token intervals.  Fails
/// on any graph whose intervals are not all constant — the harness must
/// catch it via the certificate checker or the admissible replay.  Not part
/// of oracle_registry(); resolvable by id through find_oracle().
const Oracle& absint_self_test_oracle();

}  // namespace sdf
