// fuzz.hpp — the differential fuzzing harness (`sdfred fuzz`).
//
// One iteration = one seed: draw a base graph (random generators,
// structured families, bundled benchmarks, or a saved corpus entry), apply
// a few semantic mutations (mutate.hpp), then run every selected oracle
// (oracles.hpp).  Verdicts are tallied; a FAIL triggers the shrinker
// (shrink.hpp) and the failure is persisted as a loadable model file plus a
// ready-to-paste regression test.  Everything is deterministic in the seed
// (portable_rng.hpp), so `sdfred fuzz --seed S --iterations 1` reproduces
// any corpus failure bit-for-bit on any platform.
//
// Corpus persistence: with a corpus directory configured, *.sdf files in it
// join the seed pool, and the harness writes back any graph that produces a
// (oracle, status) combination not seen before in the run — a cheap
// coverage signal that accumulates rejection- and skip-path exercisers
// across runs.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sdf/graph.hpp"
#include "verify/oracles.hpp"
#include "verify/shrink.hpp"

namespace sdf {

struct FuzzOptions {
    std::uint64_t seed = 1;           ///< first seed; iteration i uses seed + i
    std::uint64_t iterations = 1000;
    std::vector<std::string> oracles; ///< oracle ids to run; empty = whole registry
    int max_mutations = 4;            ///< mutations per iteration drawn from [0, max]
    std::string corpus_dir;           ///< "" disables corpus load/store
    std::string failures_dir = "fuzz-failures";
    bool write_failures = true;       ///< persist model + regression test per failure
    bool shrink = true;               ///< delta-debug failures to minimal repros
    std::size_t max_failures = 10;    ///< stop the run after this many failures
    OracleLimits limits;
    ShrinkOptions shrink_options;
    std::ostream* log = nullptr;      ///< progress/failure stream (optional)
};

/// One found-and-processed failure.
struct FuzzFailure {
    std::uint64_t seed = 0;
    std::string oracle;
    Verdict verdict;                 ///< the original failing verdict
    Graph original;                  ///< graph as generated+mutated
    Graph shrunk;                    ///< minimal repro (== original when shrinking off)
    std::vector<std::string> mutation_trace;
    std::string model_path;          ///< written .sdf file ("" when not persisted)
    std::string test_path;           ///< written regression test ("" when not persisted)
};

/// Aggregate statistics of a run.
struct FuzzReport {
    std::uint64_t iterations = 0;
    std::uint64_t checks = 0;  ///< oracle executions (iterations × oracles)
    std::uint64_t passes = 0;
    std::uint64_t skips = 0;
    std::uint64_t rejects = 0;
    /// Per-oracle verdict tally: id -> {pass, skip, reject, fail} counts.
    std::map<std::string, std::array<std::uint64_t, 4>> by_oracle;
    std::vector<FuzzFailure> failures;

    [[nodiscard]] bool clean() const { return failures.empty(); }
};

/// Runs the harness.  Throws Error on unknown oracle ids or unwritable
/// artifact directories; never throws on any graph the fuzzer produces.
FuzzReport run_fuzz(const FuzzOptions& options);

/// Outcome of the harness self-test (`sdfred fuzz --self-test`).
struct SelfTestReport {
    bool bug_found = false;        ///< the injected off-by-one produced a failure
    bool shrunk_minimal = false;   ///< the shrunk repro has <= 4 actors and still fails
    std::size_t shrunk_actors = 0;
    FuzzReport report;             ///< the underlying run

    [[nodiscard]] bool ok() const { return bug_found && shrunk_minimal; }
};

/// Fault injection for the harness itself: runs the fuzzer against the
/// deliberately broken self_test_oracle() and checks that the harness (a)
/// finds the injected bug and (b) shrinks the repro to a minimal graph.
/// A harness that cannot find a planted off-by-one cannot be trusted to
/// find real ones.
SelfTestReport run_fuzz_self_test(FuzzOptions options);

/// The C++ source of a ready-to-paste GoogleTest regression test that
/// rebuilds `graph` inline and asserts that oracle `oracle_id` does not
/// fail on it.  `tag` individualises the test name (e.g. the seed).
std::string regression_test_source(const Graph& graph, const std::string& oracle_id,
                                   const std::string& tag);

}  // namespace sdf
