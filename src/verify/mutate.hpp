// mutate.hpp — semantic graph mutations for the differential fuzzer.
//
// gen::random_sdf is consistent, live and bounded BY CONSTRUCTION — exactly
// the graphs on which nothing interesting can go wrong in the rejection
// paths.  The mutations below deliberately step outside that set: a single
// rate perturbation makes a graph inconsistent, removing tokens deadlocks
// it, rewiring edges disconnects it or takes actors off every cycle,
// splitting and merging actors reshapes repetition vectors.  Mutated graphs
// remain STRUCTURALLY valid (positive rates, non-negative delays, unique
// names — Graph's constructor invariants), so every analysis entry point
// must either answer or refuse with a typed error; the oracles check that
// contract.
#pragma once

#include <random>
#include <string>
#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

/// The available mutation kinds, applied with equal probability.
enum class FuzzMutationKind {
    rate_perturb,   ///< bump a channel's production or consumption by ±1
    token_add,      ///< add 1..3 initial tokens to a channel
    token_remove,   ///< remove initial tokens from a marked channel
    edge_rewire,    ///< re-point one endpoint of a channel
    actor_split,    ///< split an actor in two, moving some outputs
    actor_merge,    ///< merge two actors, redirecting all channels
    time_jitter,    ///< perturb an execution time by ±1..3
};

const char* fuzz_mutation_kind_name(FuzzMutationKind kind);

/// Applies `count` random mutations to a copy of `graph`; deterministic in
/// `rng` (portable draws only).  Appends a human-readable description of
/// every applied mutation to `trace` when non-null.  Mutations that do not
/// apply to the current shape (e.g. token_remove with no tokens anywhere)
/// are re-drawn; graphs with no actors are returned unchanged.
Graph mutate_graph(const Graph& graph, std::mt19937& rng, int count,
                   std::vector<std::string>* trace = nullptr);

}  // namespace sdf
