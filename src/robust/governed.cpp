#include "robust/governed.hpp"

namespace sdf {

const char* governed_status_name(GovernedStatus status) {
    switch (status) {
        case GovernedStatus::exact: return "exact";
        case GovernedStatus::degraded: return "degraded";
        case GovernedStatus::aborted: return "aborted";
    }
    return "unknown";
}

}  // namespace sdf
