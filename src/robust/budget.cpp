#include "robust/budget.hpp"

#include <mutex>

#include "base/arena.hpp"
#include "base/thread_pool.hpp"
#include "robust/fault.hpp"

namespace sdf {

namespace {

thread_local Governor* t_governor = nullptr;

/// Deadline/cancellation polls happen every 64 steps: a steady_clock read
/// costs tens of nanoseconds, and checkpoint sites charge thousands of loop
/// iterations per tick, so the poll is noise while keeping overrun small.
constexpr std::uint64_t kSlowCheckMask = 63;

/// Registers the pool context hooks and the arena accounting hook exactly
/// once, the first time any GovernorScope is created.  Until then the pool
/// carries no context, arena growth has no governed budget to charge, and
/// governed code has never run, so nothing is missed.
void ensure_pool_hooks() {
    static std::once_flag once;
    std::call_once(once, [] {
        ParallelContextHooks hooks;
        hooks.capture = [] { return static_cast<void*>(t_governor); };
        hooks.install = [](void* context) { t_governor = static_cast<Governor*>(context); };
        hooks.uninstall = [](void*) { t_governor = nullptr; };
        set_parallel_context_hooks(hooks);
        set_arena_account_hook(&robust_account_bytes);
    });
}

}  // namespace

const char* budget_cause_name(BudgetCause cause) {
    switch (cause) {
        case BudgetCause::none: return "none";
        case BudgetCause::deadline: return "deadline";
        case BudgetCause::steps: return "steps";
        case BudgetCause::memory: return "memory";
        case BudgetCause::cancelled: return "cancelled";
        case BudgetCause::capacity: return "capacity";
    }
    return "unknown";
}

Governor::Governor(const ExecutionBudget& budget, CancellationToken token)
    : budget_(budget),
      token_(std::move(token)),
      start_(std::chrono::steady_clock::now()),
      deadline_at_(budget.deadline ? start_ + *budget.deadline
                                   : std::chrono::steady_clock::time_point::max()),
      max_steps_(budget.max_steps.value_or(0)),
      max_bytes_(budget.max_bytes.value_or(0)) {}

void Governor::trip(BudgetCause cause, const std::string& what) {
    int expected = -1;
    tripped_.compare_exchange_strong(expected, static_cast<int>(cause),
                                     std::memory_order_relaxed);
    // Re-read: whoever won the race defines the cause every thread reports.
    const auto actual = static_cast<BudgetCause>(tripped_.load(std::memory_order_relaxed));
    throw BudgetExceeded(actual, actual == cause
                                     ? what
                                     : std::string("budget exhausted: ") +
                                           budget_cause_name(actual));
}

void Governor::slow_check() {
    if (token_.cancelled()) {
        trip(BudgetCause::cancelled, "analysis cancelled");
    }
    if (std::chrono::steady_clock::now() >= deadline_at_) {
        trip(BudgetCause::deadline,
             "wall-clock deadline of " +
                 std::to_string(budget_.deadline->count()) + " ms exceeded");
    }
}

void Governor::tick() {
    const std::uint64_t n = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
    const int earlier = tripped_.load(std::memory_order_relaxed);
    if (earlier >= 0) {
        // Another thread (or an earlier checkpoint on this one whose
        // exception was swallowed) already exhausted the budget.
        throw BudgetExceeded(static_cast<BudgetCause>(earlier),
                             std::string("budget exhausted: ") +
                                 budget_cause_name(static_cast<BudgetCause>(earlier)));
    }
    if (fault_injection_armed()) {
        switch (detail::fault_consume_checkpoint()) {
            case 1:
                trip(BudgetCause::steps, "fault injection: step budget tripped");
            case 2:
                trip(BudgetCause::deadline, "fault injection: deadline tripped");
            default:
                break;
        }
    }
    if (max_steps_ != 0 && n > max_steps_) {
        trip(BudgetCause::steps,
             "step budget of " + std::to_string(max_steps_) + " exhausted");
    }
    // The very first tick also runs the slow check, so a cancellation
    // requested (or a deadline already blown) before the analysis started
    // is observed promptly even on runs far shorter than 64 steps.
    if ((n & kSlowCheckMask) == 0 || n == 1) {
        slow_check();
    }
}

void Governor::account_bytes(std::uint64_t bytes) {
    const std::uint64_t total = bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    const int earlier = tripped_.load(std::memory_order_relaxed);
    if (earlier >= 0) {
        throw BudgetExceeded(static_cast<BudgetCause>(earlier),
                             std::string("budget exhausted: ") +
                                 budget_cause_name(static_cast<BudgetCause>(earlier)));
    }
    if (fault_injection_armed() && detail::fault_consume_alloc()) {
        throw std::bad_alloc();
    }
    if (max_bytes_ != 0 && total > max_bytes_) {
        trip(BudgetCause::memory,
             "memory budget of " + std::to_string(max_bytes_) + " bytes exceeded (" +
                 std::to_string(total) + " accounted)");
    }
}

ResourceUsage Governor::usage() const {
    ResourceUsage usage;
    usage.steps = steps_.load(std::memory_order_relaxed);
    usage.accounted_bytes = bytes_.load(std::memory_order_relaxed);
    usage.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    return usage;
}

Governor* current_governor() noexcept {
    return t_governor;
}

GovernorScope::GovernorScope(Governor& governor) : previous_(t_governor) {
    ensure_pool_hooks();
    t_governor = &governor;
}

GovernorScope::~GovernorScope() {
    t_governor = previous_;
}

void robust_checkpoint() {
    if (Governor* governor = t_governor) {
        governor->tick();
    }
}

void robust_account_bytes(std::uint64_t bytes) {
    if (Governor* governor = t_governor) {
        governor->account_bytes(bytes);
    }
}

}  // namespace sdf
