// governed.hpp — the anytime result wrapper for budgeted analyses.
//
// A governed entry point never hangs and never returns silently wrong data:
// it answers exactly when the budget allows, answers with a *certified
// conservative bound* when it does not (status `degraded`), and only when
// even the cheap bound is unaffordable — or degradation is disabled —
// reports `aborted` with the cause.  The paper's Theorem 1 is what makes
// the middle outcome sound: abstraction can only under-estimate throughput,
// so a degraded answer is still a safe number to provision against.
#pragma once

#include <optional>
#include <string>

#include "robust/budget.hpp"

namespace sdf {

/// Fidelity of a governed result.
enum class GovernedStatus {
    exact,     ///< the full analysis completed within budget
    degraded,  ///< a conservative lower bound certified by Theorem 1 (or the
               ///< sequential-schedule argument); never an over-estimate
    aborted,   ///< no result: budget exhausted before even the cheap bound
};

/// Stable lower-case name ("exact", "degraded", "aborted").
const char* governed_status_name(GovernedStatus status);

/// Whether a governed analysis may fall back to conservative bounds.
enum class DegradeMode {
    never,  ///< budget blow aborts instead of degrading
    auto_,  ///< descend the degradation ladder (default)
};

/// Budget + policy for one governed call.
struct GovernOptions {
    ExecutionBudget budget;
    CancellationToken token;
    DegradeMode degrade = DegradeMode::auto_;
};

/// Outcome of a governed analysis: the value (absent when aborted) plus
/// fidelity, the cause of any degradation, and the resources consumed.
template <typename T>
struct Governed {
    GovernedStatus status = GovernedStatus::exact;
    BudgetCause cause = BudgetCause::none;  ///< why the exact route stopped
    std::string detail;                     ///< human-readable trip message
    std::string method;                     ///< rung that produced the value
    std::optional<T> value;
    ResourceUsage used;

    [[nodiscard]] bool ok() const { return value.has_value(); }
};

}  // namespace sdf
