// fault.hpp — deterministic fault injection for exception-safety testing.
//
// A fault plan arms countdowns in two classes.  The GOVERNED class:
//
//   alloc:N     the Nth robust_account_bytes call throws std::bad_alloc
//   step:N      the Nth checkpoint trips the budget with cause `steps`
//   deadline:N  the Nth checkpoint trips the budget with cause `deadline`
//
// and the I/O class, consumed by the crash-safe persistence layer
// (serve/persist.hpp):
//
//   io-write:N   the Nth persistence write fails as if write(2) returned EIO
//   io-fsync:N   the Nth persistence fsync fails
//   io-read:N    the Nth entry read at warm-start fails (entry quarantined)
//   torn-write:B the NEXT persistence write is torn after B bytes — the
//                file appears, the rename lands, but the tail (and with it
//                the CRC trailer) is missing, exactly what a crash between
//                write and flush leaves behind
//
// Several clauses combine with '|' or ',' (SDFRED_FAULT_INJECT="alloc:3|step:7").
// Counters are process-global.  The governed class fires only on governed
// threads (a Governor must be installed): ungoverned code paths never see
// injected faults, so a stray environment variable cannot destabilise plain
// library use.  The I/O class fires wherever the persistence layer consumes
// it — persistence is deliberately NOT governed (a budget trip must never
// half-write a cache entry), so its faults cannot hide behind a governor.
//
// The injector exists to prove three properties the robustness tests sweep:
// an injected bad_alloc never leaks (ASan) or corrupts state (identical
// results on retry), a budget trip at *any* checkpoint still yields a
// conservative degraded result through the ladder, and an injected I/O
// failure at any persistence point degrades the cache to a clean miss —
// never to a corrupt replay.
#pragma once

#include <optional>
#include <string>

namespace sdf {

/// Arms the fault plan described by `spec` (see file comment for grammar).
/// Replaces any previously armed plan.  Throws sdf::Error on a malformed
/// spec.  An empty spec disarms everything.
void set_fault_injection(const std::string& spec);

/// Disarms all fault countdowns.
void clear_fault_injection();

/// True when at least one countdown is armed (checked by the hot paths
/// before touching any countdown).
[[nodiscard]] bool fault_injection_armed() noexcept;

/// Arms from the SDFRED_FAULT_INJECT environment variable, if set.  Called
/// by the CLI at startup; returns the spec it armed, if any.
std::optional<std::string> install_fault_injection_from_env();

/// RAII plan for tests: arms on construction, disarms on destruction even
/// when the governed computation under test throws.
class FaultInjectionScope {
public:
    explicit FaultInjectionScope(const std::string& spec) { set_fault_injection(spec); }
    ~FaultInjectionScope() { clear_fault_injection(); }
    FaultInjectionScope(const FaultInjectionScope&) = delete;
    FaultInjectionScope& operator=(const FaultInjectionScope&) = delete;
};

namespace detail {

/// Consumes one unit of the alloc countdown; true = throw bad_alloc now.
bool fault_consume_alloc() noexcept;

/// Consumes one unit of the step/deadline countdowns; 0 = nothing fired,
/// 1 = trip cause `steps`, 2 = trip cause `deadline`.
int fault_consume_checkpoint() noexcept;

/// Consumes one unit of the io-write countdown; true = fail this write.
bool fault_consume_io_write() noexcept;

/// Consumes one unit of the io-fsync countdown; true = fail this fsync.
bool fault_consume_io_fsync() noexcept;

/// Consumes one unit of the io-read countdown; true = fail this read.
bool fault_consume_io_read() noexcept;

/// The armed torn-write byte offset, consumed at most once: the first call
/// after arming returns the offset, every other call returns -1.
long long fault_consume_torn_write() noexcept;

}  // namespace detail

}  // namespace sdf
