// fault.hpp — deterministic fault injection for exception-safety testing.
//
// A fault plan arms up to three countdowns:
//
//   alloc:N     the Nth robust_account_bytes call throws std::bad_alloc
//   step:N      the Nth checkpoint trips the budget with cause `steps`
//   deadline:N  the Nth checkpoint trips the budget with cause `deadline`
//
// Several clauses combine with '|' or ',' (SDFRED_FAULT_INJECT="alloc:3|step:7").
// Counters are process-global and fire only on governed threads (a Governor
// must be installed): ungoverned code paths never see injected faults, so a
// stray environment variable cannot destabilise plain library use.
//
// The injector exists to prove two properties the robustness tests sweep:
// an injected bad_alloc never leaks (ASan) or corrupts state (identical
// results on retry), and a budget trip at *any* checkpoint still yields a
// conservative degraded result through the ladder.
#pragma once

#include <optional>
#include <string>

namespace sdf {

/// Arms the fault plan described by `spec` (see file comment for grammar).
/// Replaces any previously armed plan.  Throws sdf::Error on a malformed
/// spec.  An empty spec disarms everything.
void set_fault_injection(const std::string& spec);

/// Disarms all fault countdowns.
void clear_fault_injection();

/// True when at least one countdown is armed (checked by the hot paths
/// before touching any countdown).
[[nodiscard]] bool fault_injection_armed() noexcept;

/// Arms from the SDFRED_FAULT_INJECT environment variable, if set.  Called
/// by the CLI at startup; returns the spec it armed, if any.
std::optional<std::string> install_fault_injection_from_env();

/// RAII plan for tests: arms on construction, disarms on destruction even
/// when the governed computation under test throws.
class FaultInjectionScope {
public:
    explicit FaultInjectionScope(const std::string& spec) { set_fault_injection(spec); }
    ~FaultInjectionScope() { clear_fault_injection(); }
    FaultInjectionScope(const FaultInjectionScope&) = delete;
    FaultInjectionScope& operator=(const FaultInjectionScope&) = delete;
};

namespace detail {

/// Consumes one unit of the alloc countdown; true = throw bad_alloc now.
bool fault_consume_alloc() noexcept;

/// Consumes one unit of the step/deadline countdowns; 0 = nothing fired,
/// 1 = trip cause `steps`, 2 = trip cause `deadline`.
int fault_consume_checkpoint() noexcept;

}  // namespace detail

}  // namespace sdf
