// budget.hpp — resource governance for long-running analyses.
//
// Every potentially unbounded kernel in the library (self-timed simulation,
// the symbolic iteration engines, Karp/MCR, max-plus matrix powers, the
// classical HSDF expansion) calls SDFRED_CHECKPOINT() inside its hot loop
// and routes its large allocations through robust_account_bytes().  When a
// Governor is installed for the current thread (via GovernorScope), a
// checkpoint charges one logical step and periodically re-checks the
// wall-clock deadline and the cancellation token; a blown budget raises the
// typed BudgetExceeded error, which unwinds the kernel and lets the
// degradation ladder (analysis/governed.hpp) fall back to a cheaper,
// provably conservative analysis.  With no governor installed a checkpoint
// is a thread-local load and a branch, so ungoverned callers pay nothing.
//
// The governor is cooperative, not preemptive: deadlines are detected at
// checkpoints, so overrun is bounded by the longest checkpoint-free stretch
// (kept small by placing checkpoints every few thousand loop iterations).
//
// Thread model: one Governor may be shared by many threads — the pool
// propagates the caller's governor into its workers (see the context hooks
// in base/thread_pool.hpp), so a parallel Karp run under a deadline stops
// on every lane.  All counters are relaxed atomics; the first thread to
// observe exhaustion records the cause and every subsequent checkpoint on
// any thread re-raises it, which drains parallel loops promptly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "base/errors.hpp"

namespace sdf {

/// Why a governed computation stopped early.
enum class BudgetCause {
    none,       ///< not tripped
    deadline,   ///< wall-clock deadline passed
    steps,      ///< logical step budget exhausted
    memory,     ///< accounted allocation bytes exceeded the budget
    cancelled,  ///< CancellationToken fired
    capacity,   ///< a kernel refused the input as too large up front
};

/// Stable lower-case name ("deadline", "steps", ...) for reports and CLI.
const char* budget_cause_name(BudgetCause cause);

/// Typed error raised when an ExecutionBudget is exhausted.  Derives from
/// sdf::Error so existing catch-cascades (the fuzz harness, the CLI) treat
/// a budget trip as a typed refusal, never as a crash.
class BudgetExceeded : public Error {
public:
    BudgetExceeded(BudgetCause cause, const std::string& what)
        : Error(what), cause_(cause) {}
    [[nodiscard]] BudgetCause cause() const { return cause_; }

private:
    BudgetCause cause_;
};

/// Typed refusal raised *before* allocating when a transformation's output
/// could not possibly be materialised (e.g. a classical expansion with 1e12
/// firing copies).  Distinct from BudgetExceeded — no budget is needed to
/// hit it — but handled the same way by the degradation ladder: both mean
/// "the exact route is unaffordable, certify a bound instead".
class ResourceLimitError : public Error {
public:
    explicit ResourceLimitError(const std::string& what) : Error(what) {}
};

/// Declarative resource limits.  Unset members are unlimited.
struct ExecutionBudget {
    std::optional<std::chrono::milliseconds> deadline;  ///< wall clock, from Governor creation
    std::optional<std::uint64_t> max_steps;             ///< logical checkpoints
    std::optional<std::uint64_t> max_bytes;             ///< accounted allocation bytes

    [[nodiscard]] bool unlimited() const {
        return !deadline && !max_steps && !max_bytes;
    }
};

/// Shared-state cancellation flag; copies observe the same flag, so a
/// controller thread can cancel an analysis running elsewhere.
class CancellationToken {
public:
    CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}
    void request_cancel() const { flag_->store(true, std::memory_order_relaxed); }
    [[nodiscard]] bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/// What a governed computation consumed, reported alongside its result.
struct ResourceUsage {
    std::uint64_t steps = 0;            ///< checkpoints passed
    std::uint64_t accounted_bytes = 0;  ///< bytes routed through robust_account_bytes
    double wall_ms = 0.0;               ///< wall-clock time
};

/// Enforces one ExecutionBudget.  Create one per governed computation and
/// install it with GovernorScope; see the file comment for the threading
/// model.
class Governor {
public:
    explicit Governor(const ExecutionBudget& budget, CancellationToken token = {});

    Governor(const Governor&) = delete;
    Governor& operator=(const Governor&) = delete;

    /// One checkpoint: charges a step, re-raises an earlier trip, checks the
    /// step budget, and every 64 steps checks deadline + cancellation.
    /// Throws BudgetExceeded when any limit is exhausted.
    void tick();

    /// Charges `bytes` against the memory budget (and the alloc fault
    /// injector).  Throws BudgetExceeded{memory} past the limit.
    void account_bytes(std::uint64_t bytes);

    [[nodiscard]] const ExecutionBudget& budget() const { return budget_; }
    [[nodiscard]] ResourceUsage usage() const;

private:
    [[noreturn]] void trip(BudgetCause cause, const std::string& what);
    void slow_check();

    ExecutionBudget budget_;
    CancellationToken token_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point deadline_at_;  ///< time_point::max() = none
    std::uint64_t max_steps_ = 0;  ///< 0 = unlimited (cached from budget_)
    std::uint64_t max_bytes_ = 0;  ///< 0 = unlimited (cached from budget_)
    std::atomic<std::uint64_t> steps_{0};
    std::atomic<std::uint64_t> bytes_{0};
    std::atomic<int> tripped_{-1};  ///< -1 = live, otherwise int(BudgetCause)
};

/// The governor installed for the current thread, or nullptr.
[[nodiscard]] Governor* current_governor() noexcept;

/// RAII install/restore of the thread's governor.  Also registers the
/// thread-pool context hooks (once per process) so pool workers inherit the
/// caller's governor for the duration of a parallel loop.
class GovernorScope {
public:
    explicit GovernorScope(Governor& governor);
    ~GovernorScope();
    GovernorScope(const GovernorScope&) = delete;
    GovernorScope& operator=(const GovernorScope&) = delete;

private:
    Governor* previous_;
};

/// Checkpoint the current thread's governor, if any.
void robust_checkpoint();
inline void robust_checkpoint(Governor& governor) { governor.tick(); }

/// Account `bytes` of imminent allocation against the current thread's
/// governor (no-op when ungoverned).  Call *before* the allocation so the
/// budget refuses it rather than observing it.
void robust_account_bytes(std::uint64_t bytes);

/// The cheap cooperative checkpoint used by the kernels.  Callable with no
/// argument (thread-local governor) or with an explicit Governor.
#define SDFRED_CHECKPOINT(...) ::sdf::robust_checkpoint(__VA_ARGS__)

}  // namespace sdf
