#include "robust/fault.hpp"

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "base/errors.hpp"

namespace sdf {

namespace {

// -1 = disarmed; k >= 0 counts *remaining* events before the fault fires
// (alloc:1 fires on the very first accounted allocation).  fetch_sub makes
// each armed countdown fire exactly once even under concurrent governed
// threads.
std::atomic<std::int64_t> g_alloc_countdown{-1};
std::atomic<std::int64_t> g_step_countdown{-1};
std::atomic<std::int64_t> g_deadline_countdown{-1};
// The I/O class (consumed by serve/persist.cpp, not by checkpoints).
std::atomic<std::int64_t> g_io_write_countdown{-1};
std::atomic<std::int64_t> g_io_fsync_countdown{-1};
std::atomic<std::int64_t> g_io_read_countdown{-1};
std::atomic<std::int64_t> g_torn_write_byte{-1};
std::atomic<bool> g_armed{false};

void refresh_armed() {
    g_armed.store(g_alloc_countdown.load(std::memory_order_relaxed) >= 0 ||
                      g_step_countdown.load(std::memory_order_relaxed) >= 0 ||
                      g_deadline_countdown.load(std::memory_order_relaxed) >= 0 ||
                      g_io_write_countdown.load(std::memory_order_relaxed) >= 0 ||
                      g_io_fsync_countdown.load(std::memory_order_relaxed) >= 0 ||
                      g_io_read_countdown.load(std::memory_order_relaxed) >= 0 ||
                      g_torn_write_byte.load(std::memory_order_relaxed) >= 0,
                  std::memory_order_release);
}

/// True when `countdown` just reached zero for this event.
bool consume(std::atomic<std::int64_t>& countdown) noexcept {
    if (countdown.load(std::memory_order_relaxed) < 0) {
        return false;
    }
    // 1 -> fire now; anything smaller was already consumed.
    return countdown.fetch_sub(1, std::memory_order_relaxed) == 1;
}

}  // namespace

void set_fault_injection(const std::string& spec) {
    std::int64_t alloc = -1;
    std::int64_t step = -1;
    std::int64_t deadline = -1;
    std::int64_t io_write = -1;
    std::int64_t io_fsync = -1;
    std::int64_t io_read = -1;
    std::int64_t torn_write = -1;
    std::string clause;
    const auto flush = [&] {
        if (clause.empty()) {
            return;
        }
        const std::size_t colon = clause.find(':');
        if (colon == std::string::npos) {
            throw Error("fault injection clause '" + clause + "' is not kind:N");
        }
        const std::string kind = clause.substr(0, colon);
        const std::string count = clause.substr(colon + 1);
        char* end = nullptr;
        const long long n = std::strtoll(count.c_str(), &end, 10);
        // torn-write:B is a byte OFFSET, so zero (tear everything) is legal;
        // the countdown kinds need at least one event to count down to.
        const long long minimum = kind == "torn-write" ? 0 : 1;
        if (end == count.c_str() || *end != '\0' || n < minimum) {
            throw Error("fault injection count '" + count +
                        "' is not a valid integer for kind '" + kind + "'");
        }
        if (kind == "alloc") {
            alloc = n;
        } else if (kind == "step") {
            step = n;
        } else if (kind == "deadline") {
            deadline = n;
        } else if (kind == "io-write") {
            io_write = n;
        } else if (kind == "io-fsync") {
            io_fsync = n;
        } else if (kind == "io-read") {
            io_read = n;
        } else if (kind == "torn-write") {
            torn_write = n;
        } else {
            throw Error("unknown fault injection kind '" + kind +
                        "' (expected alloc, step, deadline, io-write, "
                        "io-fsync, io-read or torn-write)");
        }
        clause.clear();
    };
    for (const char c : spec) {
        if (c == '|' || c == ',') {
            flush();
        } else if (c != ' ') {
            clause += c;
        }
    }
    flush();
    g_alloc_countdown.store(alloc, std::memory_order_relaxed);
    g_step_countdown.store(step, std::memory_order_relaxed);
    g_deadline_countdown.store(deadline, std::memory_order_relaxed);
    g_io_write_countdown.store(io_write, std::memory_order_relaxed);
    g_io_fsync_countdown.store(io_fsync, std::memory_order_relaxed);
    g_io_read_countdown.store(io_read, std::memory_order_relaxed);
    g_torn_write_byte.store(torn_write, std::memory_order_relaxed);
    refresh_armed();
}

void clear_fault_injection() {
    g_alloc_countdown.store(-1, std::memory_order_relaxed);
    g_step_countdown.store(-1, std::memory_order_relaxed);
    g_deadline_countdown.store(-1, std::memory_order_relaxed);
    g_io_write_countdown.store(-1, std::memory_order_relaxed);
    g_io_fsync_countdown.store(-1, std::memory_order_relaxed);
    g_io_read_countdown.store(-1, std::memory_order_relaxed);
    g_torn_write_byte.store(-1, std::memory_order_relaxed);
    refresh_armed();
}

bool fault_injection_armed() noexcept {
    return g_armed.load(std::memory_order_acquire);
}

std::optional<std::string> install_fault_injection_from_env() {
    const char* env = std::getenv("SDFRED_FAULT_INJECT");
    if (env == nullptr || *env == '\0') {
        return std::nullopt;
    }
    set_fault_injection(env);
    return std::string(env);
}

namespace detail {

bool fault_consume_alloc() noexcept {
    return consume(g_alloc_countdown);
}

int fault_consume_checkpoint() noexcept {
    if (consume(g_step_countdown)) {
        return 1;
    }
    if (consume(g_deadline_countdown)) {
        return 2;
    }
    return 0;
}

bool fault_consume_io_write() noexcept { return consume(g_io_write_countdown); }

bool fault_consume_io_fsync() noexcept { return consume(g_io_fsync_countdown); }

bool fault_consume_io_read() noexcept { return consume(g_io_read_countdown); }

long long fault_consume_torn_write() noexcept {
    // exchange() makes the tear one-shot even under concurrent writers.
    return g_torn_write_byte.exchange(-1, std::memory_order_relaxed);
}

}  // namespace detail

}  // namespace sdf
