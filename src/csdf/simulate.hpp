// simulate.hpp (csdf) — concrete self-timed execution of CSDF graphs.
//
// The phase-aware twin of sdf/simulate.hpp: an actor's phases start in
// cyclic order as soon as their per-phase consumption is available (phase
// k+1 may overlap phase k in time — the same auto-concurrency the symbolic
// execution assumes); a phase occupies its own execution time between
// consuming and producing.  Used to cross-validate the CSDF symbolic
// machinery: the makespan of k iterations equals the largest entry of the
// k-th matrix power when every actor's last completion lands in a final
// token (e.g. all-ones self-loops).
#pragma once

#include <vector>

#include "csdf/graph.hpp"

namespace sdf {

/// Outcome of a finite CSDF run.
struct CsdfFiniteRun {
    Int makespan = 0;
    std::vector<Int> phase_firings;  ///< per-actor completed phase firings
};

/// Executes exactly `iterations` iterations (q'(a)·P(a)·iterations phase
/// firings per actor) self-timed from time 0.  Throws DeadlockError when
/// execution stalls.
CsdfFiniteRun csdf_simulate_iterations(const CsdfGraph& graph, Int iterations);

}  // namespace sdf
