// graph.hpp (csdf) — cyclo-static dataflow graphs.
//
// CSDF (Bilsen et al.) generalises SDF: an actor cycles through a fixed
// sequence of phases, and rates and execution times vary per phase.  The
// buffer-sizing work the paper builds towards ([18, 19] in its reference
// list) is formulated on CSDF, and the paper's symbolic reduction machinery
// extends to it naturally: a firing is simply a phase execution, so the
// max-plus iteration matrix — and with it throughput analysis and the
// Figure 4 reduced-HSDF construction — carries over unchanged (see
// csdf/analysis.hpp).
//
// Conventions: phase vectors are indexed 0..P(a)-1; a channel's production
// vector has one entry per phase of its source actor, its consumption
// vector one per phase of its destination; entries may be zero (a phase
// that does not touch the channel), but each vector must have at least one
// positive entry.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/checked.hpp"

namespace sdf {

using CsdfActorId = std::size_t;
using CsdfChannelId = std::size_t;

/// One cyclo-static actor: a cyclic sequence of phases with per-phase
/// execution times.
struct CsdfActor {
    std::string name;
    std::vector<Int> phase_times;  ///< execution time of each phase

    [[nodiscard]] std::size_t phase_count() const { return phase_times.size(); }
};

/// One cyclo-static channel.
struct CsdfChannel {
    CsdfActorId src = 0;
    CsdfActorId dst = 0;
    std::vector<Int> production;   ///< per phase of src
    std::vector<Int> consumption;  ///< per phase of dst
    Int initial_tokens = 0;

    [[nodiscard]] Int production_per_cycle() const;
    [[nodiscard]] Int consumption_per_cycle() const;
};

/// A cyclo-static dataflow graph.
class CsdfGraph {
public:
    CsdfGraph() = default;
    explicit CsdfGraph(std::string name) : name_(std::move(name)) {}

    [[nodiscard]] const std::string& name() const { return name_; }

    /// Adds an actor with the given per-phase execution times (at least one
    /// phase, all non-negative).
    CsdfActorId add_actor(const std::string& name, std::vector<Int> phase_times);

    /// Adds a channel; vector lengths must match the endpoint phase counts,
    /// entries must be non-negative with a positive sum.
    CsdfChannelId add_channel(CsdfActorId src, CsdfActorId dst,
                              std::vector<Int> production, std::vector<Int> consumption,
                              Int initial_tokens);

    [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }
    [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
    [[nodiscard]] const CsdfActor& actor(CsdfActorId id) const { return actors_.at(id); }
    [[nodiscard]] const CsdfChannel& channel(CsdfChannelId id) const {
        return channels_.at(id);
    }
    [[nodiscard]] const std::vector<CsdfActor>& actors() const { return actors_; }
    [[nodiscard]] const std::vector<CsdfChannel>& channels() const { return channels_; }

    [[nodiscard]] std::optional<CsdfActorId> find_actor(const std::string& name) const;

    [[nodiscard]] Int total_initial_tokens() const;

private:
    std::string name_;
    std::vector<CsdfActor> actors_;
    std::vector<CsdfChannel> channels_;
    std::unordered_map<std::string, CsdfActorId> actor_by_name_;
};

}  // namespace sdf
