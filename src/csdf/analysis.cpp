#include "csdf/analysis.hpp"

#include <deque>

#include "base/errors.hpp"
#include "maxplus/mcm.hpp"
#include "maxplus/vector.hpp"
#include "sdf/repetition.hpp"
#include "transform/hsdf_reduced.hpp"

namespace sdf {

namespace {

/// Surrogate SDF graph with the aggregate (per-cycle) rates: its
/// repetition vector is exactly the CSDF cycle-count vector q'.
Graph aggregate_sdf(const CsdfGraph& graph) {
    Graph surrogate(graph.name());
    for (const CsdfActor& a : graph.actors()) {
        surrogate.add_actor(a.name, 0);
    }
    for (const CsdfChannel& c : graph.channels()) {
        surrogate.add_channel(c.src, c.dst, c.production_per_cycle(),
                              c.consumption_per_cycle(), c.initial_tokens);
    }
    return surrogate;
}

}  // namespace

std::vector<Int> csdf_repetition(const CsdfGraph& graph) {
    return repetition_vector(aggregate_sdf(graph));
}

bool csdf_is_consistent(const CsdfGraph& graph) {
    return is_consistent(aggregate_sdf(graph));
}

std::vector<CsdfFiring> csdf_sequential_schedule(const CsdfGraph& graph) {
    const std::vector<Int> cycles = csdf_repetition(graph);
    const std::size_t n = graph.actor_count();

    std::vector<std::vector<CsdfChannelId>> inputs(n);
    std::vector<std::vector<CsdfChannelId>> outputs(n);
    for (CsdfChannelId c = 0; c < graph.channel_count(); ++c) {
        inputs[graph.channel(c).dst].push_back(c);
        outputs[graph.channel(c).src].push_back(c);
    }

    std::vector<Int> tokens;
    tokens.reserve(graph.channel_count());
    for (const CsdfChannel& c : graph.channels()) {
        tokens.push_back(c.initial_tokens);
    }
    std::vector<Int> phase(n, 0);      // next phase per actor
    std::vector<Int> remaining(n, 0);  // phase firings still due
    Int total_remaining = 0;
    for (CsdfActorId a = 0; a < n; ++a) {
        remaining[a] =
            checked_mul(cycles[a], static_cast<Int>(graph.actor(a).phase_count()));
        total_remaining = checked_add(total_remaining, remaining[a]);
    }

    const auto enabled = [&](CsdfActorId a) {
        for (const CsdfChannelId ci : inputs[a]) {
            const Int need =
                graph.channel(ci).consumption[static_cast<std::size_t>(phase[a])];
            if (tokens[ci] < need) {
                return false;
            }
        }
        return true;
    };

    std::vector<CsdfFiring> schedule;
    schedule.reserve(static_cast<std::size_t>(total_remaining));
    std::deque<CsdfActorId> worklist;
    std::vector<bool> queued(n, false);
    for (CsdfActorId a = 0; a < n; ++a) {
        worklist.push_back(a);
        queued[a] = true;
    }
    while (!worklist.empty()) {
        const CsdfActorId a = worklist.front();
        worklist.pop_front();
        queued[a] = false;
        while (remaining[a] > 0 && enabled(a)) {
            const auto p = static_cast<std::size_t>(phase[a]);
            for (const CsdfChannelId ci : inputs[a]) {
                tokens[ci] -= graph.channel(ci).consumption[p];
            }
            for (const CsdfChannelId ci : outputs[a]) {
                tokens[ci] = checked_add(tokens[ci], graph.channel(ci).production[p]);
            }
            schedule.push_back(CsdfFiring{a, phase[a]});
            phase[a] = (phase[a] + 1) % static_cast<Int>(graph.actor(a).phase_count());
            --remaining[a];
            --total_remaining;
            for (const CsdfChannelId ci : outputs[a]) {
                const CsdfActorId consumer = graph.channel(ci).dst;
                if (!queued[consumer] && remaining[consumer] > 0) {
                    worklist.push_back(consumer);
                    queued[consumer] = true;
                }
            }
        }
    }
    if (total_remaining != 0) {
        throw DeadlockError("CSDF graph '" + graph.name() +
                            "' deadlocks: no admissible sequential schedule");
    }
    return schedule;
}

bool csdf_is_live(const CsdfGraph& graph) {
    try {
        csdf_sequential_schedule(graph);
        return true;
    } catch (const DeadlockError&) {
        return false;
    } catch (const InconsistentGraphError&) {
        return false;
    }
}

CsdfSymbolicIteration csdf_symbolic_iteration(const CsdfGraph& graph) {
    const std::vector<CsdfFiring> schedule = csdf_sequential_schedule(graph);
    const Int token_count = graph.total_initial_tokens();
    const auto n = static_cast<std::size_t>(token_count);

    std::vector<std::deque<MpVector>> fifo(graph.channel_count());
    {
        std::size_t global = 0;
        for (CsdfChannelId c = 0; c < graph.channel_count(); ++c) {
            for (Int i = 0; i < graph.channel(c).initial_tokens; ++i) {
                fifo[c].push_back(MpVector::unit(n, global++));
            }
        }
    }
    std::vector<std::vector<CsdfChannelId>> inputs(graph.actor_count());
    std::vector<std::vector<CsdfChannelId>> outputs(graph.actor_count());
    for (CsdfChannelId c = 0; c < graph.channel_count(); ++c) {
        inputs[graph.channel(c).dst].push_back(c);
        outputs[graph.channel(c).src].push_back(c);
    }

    for (const CsdfFiring& firing : schedule) {
        const auto p = static_cast<std::size_t>(firing.phase);
        MpVector start(n);
        for (const CsdfChannelId ci : inputs[firing.actor]) {
            const Int need = graph.channel(ci).consumption[p];
            for (Int i = 0; i < need; ++i) {
                if (fifo[ci].empty()) {
                    throw Error("internal: CSDF schedule underflowed a channel");
                }
                start = start.max_with(fifo[ci].front());
                fifo[ci].pop_front();
            }
        }
        const MpVector finish = start.plus(graph.actor(firing.actor).phase_times[p]);
        for (const CsdfChannelId ci : outputs[firing.actor]) {
            for (Int i = 0; i < graph.channel(ci).production[p]; ++i) {
                fifo[ci].push_back(finish);
            }
        }
    }

    CsdfSymbolicIteration result;
    result.token_count = token_count;
    result.matrix = MpMatrix(n, n);
    {
        std::size_t global = 0;
        for (CsdfChannelId c = 0; c < graph.channel_count(); ++c) {
            const Int expected = graph.channel(c).initial_tokens;
            if (static_cast<Int>(fifo[c].size()) != expected) {
                throw Error("internal: CSDF channel token count changed");
            }
            for (Int i = 0; i < expected; ++i) {
                result.matrix.set_column(global++, fifo[c][static_cast<std::size_t>(i)]);
            }
        }
    }
    return result;
}

CsdfThroughput csdf_throughput(const CsdfGraph& graph) {
    CsdfThroughput result;
    CsdfSymbolicIteration iteration;
    try {
        iteration = csdf_symbolic_iteration(graph);
    } catch (const DeadlockError&) {
        result.deadlocked = true;
        result.per_actor.assign(graph.actor_count(), Rational(0));
        return result;
    }
    const CycleMetric metric = max_cycle_mean_karp(iteration.matrix.precedence_graph());
    if (metric.outcome != CycleOutcome::finite || metric.value.is_zero()) {
        result.unbounded = true;
        return result;
    }
    result.period = metric.value;
    const std::vector<Int> cycles = csdf_repetition(graph);
    result.per_actor.reserve(cycles.size());
    for (const Int q : cycles) {
        result.per_actor.push_back(Rational(q) / result.period);
    }
    return result;
}

Graph csdf_to_reduced_hsdf(const CsdfGraph& graph) {
    const CsdfSymbolicIteration iteration = csdf_symbolic_iteration(graph);
    return reduced_hsdf_from_matrix(iteration.matrix, graph.name() + "_rhsdf");
}

CsdfGraph csdf_with_buffer_capacity(const CsdfGraph& graph, CsdfChannelId channel,
                                    Int capacity) {
    require(channel < graph.channel_count(), "channel id out of range");
    const CsdfChannel& ch = graph.channel(channel);
    require(ch.src != ch.dst, "buffer capacity on a self-loop channel");
    require(capacity >= ch.initial_tokens,
            "capacity smaller than the channel's initial token count");
    CsdfGraph result = graph;
    // Reverse channel: the consumer's phases RELEASE what they consumed,
    // the producer's phases CLAIM what they produce.
    result.add_channel(ch.dst, ch.src, ch.consumption, ch.production,
                       checked_sub(capacity, ch.initial_tokens));
    return result;
}

CsdfGraph csdf_from_sdf(const Graph& graph) {
    CsdfGraph result(graph.name());
    for (const Actor& a : graph.actors()) {
        result.add_actor(a.name, {a.execution_time});
    }
    for (const Channel& c : graph.channels()) {
        result.add_channel(c.src, c.dst, {c.production}, {c.consumption},
                           c.initial_tokens);
    }
    return result;
}

}  // namespace sdf
