#include "csdf/hsdf.hpp"

#include <map>
#include <utility>

#include "base/errors.hpp"
#include "csdf/analysis.hpp"

namespace sdf {

namespace {

/// Cumulative per-firing profile of a rate vector: how many tokens the
/// first k phase firings move, for k within one cycle, plus the cycle
/// total.
struct RateProfile {
    std::vector<Int> cumulative;  ///< cumulative[k] = tokens after k firings (k <= P)
    Int per_cycle = 0;

    explicit RateProfile(const std::vector<Int>& rates) {
        cumulative.reserve(rates.size() + 1);
        cumulative.push_back(0);
        for (const Int r : rates) {
            cumulative.push_back(checked_add(cumulative.back(), r));
        }
        per_cycle = cumulative.back();
    }

    /// Tokens moved by the first `firings` phase firings (firings >= 0).
    [[nodiscard]] Int tokens_after(Int firings, Int phases) const {
        const Int cycles = floor_div(firings, phases);
        const Int rem = floor_mod(firings, phases);
        return checked_add(checked_mul(cycles, per_cycle),
                           cumulative[static_cast<std::size_t>(rem)]);
    }

    /// The 1-based firing that moves token index `i` (i >= 1): smallest f
    /// with tokens_after(f) >= i.
    [[nodiscard]] Int firing_of_token(Int i, Int phases) const {
        // Locate the cycle, then scan the profile within it.
        require(per_cycle > 0, "rate profile with zero total");
        const Int cycles = floor_div(checked_sub(i, 1), per_cycle);
        const Int rem = checked_sub(i, checked_mul(cycles, per_cycle));  // 1..per_cycle
        Int firing_in_cycle = 1;
        while (cumulative[static_cast<std::size_t>(firing_in_cycle)] < rem) {
            ++firing_in_cycle;
        }
        return checked_add(checked_mul(cycles, phases), firing_in_cycle);
    }
};

}  // namespace

Int csdf_iteration_length(const CsdfGraph& graph) {
    const std::vector<Int> cycles = csdf_repetition(graph);
    Int total = 0;
    for (CsdfActorId a = 0; a < graph.actor_count(); ++a) {
        total = checked_add(
            total, checked_mul(cycles[a], static_cast<Int>(graph.actor(a).phase_count())));
    }
    return total;
}

CsdfClassicHsdf csdf_to_hsdf_classic(const CsdfGraph& graph) {
    const std::vector<Int> cycles = csdf_repetition(graph);

    CsdfClassicHsdf result;
    result.graph.set_name(graph.name() + "_hsdf");
    result.copy_of.resize(graph.actor_count());
    std::vector<Int> firings_per_iteration(graph.actor_count());
    for (CsdfActorId a = 0; a < graph.actor_count(); ++a) {
        const CsdfActor& actor = graph.actor(a);
        const auto phases = static_cast<Int>(actor.phase_count());
        firings_per_iteration[a] = checked_mul(cycles[a], phases);
        for (Int f = 0; f < firings_per_iteration[a]; ++f) {
            const Int phase = floor_mod(f, phases);
            result.copy_of[a].push_back(result.graph.add_actor(
                actor.name + "#" + std::to_string(f) + "." + std::to_string(phase),
                actor.phase_times[static_cast<std::size_t>(phase)]));
        }
    }

    for (const CsdfChannel& ch : graph.channels()) {
        const RateProfile produce(ch.production);
        // Initial tokens map to firings of PAST iterations, which are
        // located by walking the producer's phase cycle backwards.
        const RateProfile produce_reversed(
            std::vector<Int>(ch.production.rbegin(), ch.production.rend()));
        const RateProfile consume(ch.consumption);
        const auto src_phases = static_cast<Int>(graph.actor(ch.src).phase_count());
        const auto dst_phases = static_cast<Int>(graph.actor(ch.dst).phase_count());
        const Int q_src = firings_per_iteration[ch.src];
        const Int q_dst = firings_per_iteration[ch.dst];

        std::map<std::pair<ActorId, ActorId>, Int> min_delay;
        for (Int k = 1; k <= q_dst; ++k) {
            const ActorId dst_copy = result.copy_of[ch.dst][static_cast<std::size_t>(k - 1)];
            const Int first = checked_add(consume.tokens_after(k - 1, dst_phases), 1);
            const Int last = consume.tokens_after(k, dst_phases);
            for (Int token = first; token <= last; ++token) {
                const Int produced_index = checked_sub(token, ch.initial_tokens);
                Int f;  // 1-based producing firing; <= 0 means prior iterations
                if (produced_index >= 1) {
                    f = produce.firing_of_token(produced_index, src_phases);
                } else {
                    // Initial token: the (1 - produced_index)-th most recent
                    // production before the iteration started.  Firing b of
                    // the reversed profile is global firing 1 - b (firing 0
                    // executes the last phase of the previous cycle).
                    const Int behind = checked_sub(1, produced_index);  // >= 1
                    const Int b = produce_reversed.firing_of_token(behind, src_phases);
                    f = checked_sub(1, b);  // f <= 0
                }
                const Int f0 = checked_sub(f, 1);
                const Int copy = floor_mod(f0, q_src);
                const Int delay = checked_sub(0, floor_div(f0, q_src));
                const ActorId src_copy =
                    result.copy_of[ch.src][static_cast<std::size_t>(copy)];
                const auto key = std::make_pair(src_copy, dst_copy);
                const auto it = min_delay.find(key);
                if (it == min_delay.end() || delay < it->second) {
                    min_delay[key] = delay;
                }
            }
        }
        for (const auto& [key, delay] : min_delay) {
            result.graph.add_channel(key.first, key.second, 1, 1, delay);
        }
    }
    return result;
}

}  // namespace sdf
