#include "csdf/graph.hpp"

#include <numeric>

#include "base/errors.hpp"

namespace sdf {

Int CsdfChannel::production_per_cycle() const {
    Int total = 0;
    for (const Int p : production) {
        total = checked_add(total, p);
    }
    return total;
}

Int CsdfChannel::consumption_per_cycle() const {
    Int total = 0;
    for (const Int c : consumption) {
        total = checked_add(total, c);
    }
    return total;
}

CsdfActorId CsdfGraph::add_actor(const std::string& name, std::vector<Int> phase_times) {
    require(!name.empty(), "actor name must be non-empty");
    require(!phase_times.empty(), "actor '" + name + "' needs at least one phase");
    for (const Int t : phase_times) {
        require(t >= 0, "actor '" + name + "' has a negative phase time");
    }
    require(actor_by_name_.find(name) == actor_by_name_.end(),
            "duplicate actor name '" + name + "'");
    const CsdfActorId id = actors_.size();
    actors_.push_back(CsdfActor{name, std::move(phase_times)});
    actor_by_name_.emplace(name, id);
    return id;
}

CsdfChannelId CsdfGraph::add_channel(CsdfActorId src, CsdfActorId dst,
                                     std::vector<Int> production,
                                     std::vector<Int> consumption, Int initial_tokens) {
    require(src < actors_.size() && dst < actors_.size(),
            "channel endpoint out of range");
    require(production.size() == actors_[src].phase_count(),
            "production vector length must equal the source's phase count");
    require(consumption.size() == actors_[dst].phase_count(),
            "consumption vector length must equal the destination's phase count");
    require(initial_tokens >= 0, "channel initial tokens must be non-negative");
    const auto check_rates = [](const std::vector<Int>& rates, const char* kind) {
        Int total = 0;
        for (const Int r : rates) {
            require(r >= 0, std::string(kind) + " rates must be non-negative");
            total = checked_add(total, r);
        }
        require(total > 0, std::string(kind) + " rates must not be all zero");
    };
    check_rates(production, "production");
    check_rates(consumption, "consumption");
    const CsdfChannelId id = channels_.size();
    channels_.push_back(CsdfChannel{src, dst, std::move(production),
                                    std::move(consumption), initial_tokens});
    return id;
}

std::optional<CsdfActorId> CsdfGraph::find_actor(const std::string& name) const {
    const auto it = actor_by_name_.find(name);
    if (it == actor_by_name_.end()) {
        return std::nullopt;
    }
    return it->second;
}

Int CsdfGraph::total_initial_tokens() const {
    Int total = 0;
    for (const CsdfChannel& c : channels_) {
        total = checked_add(total, c.initial_tokens);
    }
    return total;
}

}  // namespace sdf
