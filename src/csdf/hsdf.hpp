// hsdf.hpp (csdf) — classical firing-level expansion of CSDF graphs.
//
// The CSDF analogue of the traditional SDF→HSDF conversion [11, 15]: every
// phase firing of an iteration becomes one homogeneous actor, and token-
// level dependencies become channels with iteration-crossing dependencies
// as initial tokens.  Because per-phase rates vary, the producing firing of
// a token is located through the cumulative rate profile of the producer's
// phase cycle instead of a single division.
//
// This is the expensive baseline that csdf_to_reduced_hsdf (the paper's
// Section 6 construction lifted to CSDF) improves on, and an independent
// route for cross-validating the CSDF throughput analysis.
#pragma once

#include <vector>

#include "csdf/graph.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// Result of the expansion.
struct CsdfClassicHsdf {
    Graph graph;
    /// copy_of[a][f] is the HSDF actor for the f-th phase firing of CSDF
    /// actor a within one iteration (0 <= f < q'(a)·P(a)).
    std::vector<std::vector<ActorId>> copy_of;
};

/// Expands a consistent CSDF graph; copy f of actor "X" executing phase p
/// is named "X#f.p".
CsdfClassicHsdf csdf_to_hsdf_classic(const CsdfGraph& graph);

/// Number of phase firings in one iteration (the expansion's actor count).
Int csdf_iteration_length(const CsdfGraph& graph);

}  // namespace sdf
