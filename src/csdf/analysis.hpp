// analysis.hpp (csdf) — consistency, scheduling, symbolic reduction and
// throughput for cyclo-static dataflow graphs.
//
// Everything here is the SDF machinery lifted to phases:
//
//  * consistency / repetition: the balance equations use the per-cycle
//    aggregate rates, q'(a)·Σp = q'(b)·Σc, where q'(a) counts full phase
//    cycles per iteration (Bilsen et al.);
//  * scheduling: a PASS fires (actor, phase) pairs;
//  * Algorithm 1 carries over verbatim — a firing consumes/produces
//    per-phase amounts, stamps are max-plus vectors over the initial
//    tokens, and one iteration yields the same kind of N×N matrix.  Its
//    eigenvalue is the iteration period, and feeding it into the paper's
//    Figure 4 construction gives a *reduced HSDF equivalent of a CSDF
//    graph* — the natural extension of the paper's Section 6 result.
#pragma once

#include <vector>

#include "base/rational.hpp"
#include "csdf/graph.hpp"
#include "maxplus/matrix.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// Per-actor full-cycle repetition counts q' (smallest positive integer
/// solution of the aggregate balance equations).  Throws
/// InconsistentGraphError when unsolvable.
std::vector<Int> csdf_repetition(const CsdfGraph& graph);

/// True when the aggregate balance equations are solvable.
bool csdf_is_consistent(const CsdfGraph& graph);

/// One firing of a PASS: actor id plus the phase it executes.
struct CsdfFiring {
    CsdfActorId actor = 0;
    Int phase = 0;

    friend bool operator==(const CsdfFiring&, const CsdfFiring&) = default;
};

/// A sequential schedule for one iteration (every actor fires
/// q'(a)·P(a) phases, channels return to their initial token counts).
/// Throws DeadlockError when none exists.
std::vector<CsdfFiring> csdf_sequential_schedule(const CsdfGraph& graph);

/// True when the graph is consistent and one iteration can execute.
bool csdf_is_live(const CsdfGraph& graph);

/// The max-plus iteration matrix over the initial tokens (Algorithm 1
/// applied at phase granularity) together with the token count.
struct CsdfSymbolicIteration {
    MpMatrix matrix;
    Int token_count = 0;
};
CsdfSymbolicIteration csdf_symbolic_iteration(const CsdfGraph& graph);

/// Throughput of a CSDF graph.
struct CsdfThroughput {
    bool deadlocked = false;
    bool unbounded = false;
    Rational period;                 ///< iteration period λ
    std::vector<Rational> per_actor; ///< full phase cycles of a per time unit
};
CsdfThroughput csdf_throughput(const CsdfGraph& graph);

/// The paper's Section 6 conversion applied to CSDF: an HSDF graph (over
/// the N initial tokens) with the same iteration period.
Graph csdf_to_reduced_hsdf(const CsdfGraph& graph);

/// Embeds an SDF graph as a single-phase CSDF graph (for cross-validation
/// and for mixing SDF actors into CSDF models).
CsdfGraph csdf_from_sdf(const Graph& graph);

/// Bounds channel `channel` to `capacity` tokens by the reverse-channel
/// construction, phase-wise (the CSDF buffer model of the paper's citation
/// [19], Wiggers et al.): the reverse channel releases space as the
/// consumer's phases complete and grants it as the producer's phases
/// start.  `capacity` must cover the initial tokens; self-loop channels
/// are rejected.
CsdfGraph csdf_with_buffer_capacity(const CsdfGraph& graph, CsdfChannelId channel,
                                    Int capacity);

}  // namespace sdf
