#include "csdf/simulate.hpp"

#include <queue>
#include <tuple>

#include "base/errors.hpp"
#include "csdf/analysis.hpp"

namespace sdf {

CsdfFiniteRun csdf_simulate_iterations(const CsdfGraph& graph, Int iterations) {
    require(iterations >= 0, "negative iteration count");
    const std::vector<Int> cycles = csdf_repetition(graph);
    const std::size_t n = graph.actor_count();

    std::vector<std::vector<CsdfChannelId>> inputs(n);
    std::vector<std::vector<CsdfChannelId>> outputs(n);
    for (CsdfChannelId c = 0; c < graph.channel_count(); ++c) {
        inputs[graph.channel(c).dst].push_back(c);
        outputs[graph.channel(c).src].push_back(c);
    }
    std::vector<Int> tokens;
    tokens.reserve(graph.channel_count());
    for (const CsdfChannel& ch : graph.channels()) {
        tokens.push_back(ch.initial_tokens);
    }
    std::vector<Int> next_phase(n, 0);
    std::vector<Int> remaining(n);
    for (CsdfActorId a = 0; a < n; ++a) {
        remaining[a] = checked_mul(
            checked_mul(cycles[a], static_cast<Int>(graph.actor(a).phase_count())),
            iterations);
    }

    // Min-heap of (finish time, actor, phase).
    using Event = std::tuple<Int, CsdfActorId, Int>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> in_flight;
    Int now = 0;
    Int makespan = 0;
    CsdfFiniteRun run;
    run.phase_firings.assign(n, 0);

    const auto enabled = [&](CsdfActorId a) {
        const auto p = static_cast<std::size_t>(next_phase[a]);
        for (const CsdfChannelId ci : inputs[a]) {
            if (tokens[ci] < graph.channel(ci).consumption[p]) {
                return false;
            }
        }
        return true;
    };
    const auto start_enabled = [&] {
        bool progress = true;
        while (progress) {
            progress = false;
            for (CsdfActorId a = 0; a < n; ++a) {
                while (remaining[a] > 0 && enabled(a)) {
                    const auto p = static_cast<std::size_t>(next_phase[a]);
                    for (const CsdfChannelId ci : inputs[a]) {
                        tokens[ci] -= graph.channel(ci).consumption[p];
                    }
                    in_flight.emplace(
                        checked_add(now, graph.actor(a).phase_times[p]), a,
                        next_phase[a]);
                    next_phase[a] = (next_phase[a] + 1) %
                                    static_cast<Int>(graph.actor(a).phase_count());
                    --remaining[a];
                    progress = true;
                }
            }
        }
    };

    start_enabled();
    while (!in_flight.empty()) {
        now = std::get<0>(in_flight.top());
        while (!in_flight.empty() && std::get<0>(in_flight.top()) == now) {
            const auto [finish, actor, phase] = in_flight.top();
            in_flight.pop();
            const auto p = static_cast<std::size_t>(phase);
            for (const CsdfChannelId ci : outputs[actor]) {
                tokens[ci] = checked_add(tokens[ci], graph.channel(ci).production[p]);
            }
            ++run.phase_firings[actor];
            makespan = std::max(makespan, now);
        }
        start_enabled();
    }
    for (CsdfActorId a = 0; a < n; ++a) {
        if (remaining[a] != 0) {
            throw DeadlockError("CSDF graph '" + graph.name() +
                                "' deadlocked during finite run");
        }
    }
    run.makespan = makespan;
    return run;
}

}  // namespace sdf
