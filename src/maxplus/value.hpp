// value.hpp — the max-plus semiring scalar (ℤ ∪ {−∞}, max, +).
//
// Symbolic time stamps in Algorithm 1 of the paper are vectors over this
// semiring: −∞ marks "no dependency on that initial token" (the neutral
// element of max and the absorbing element of +, cf. Baccelli et al. [1]).
// Execution times in the paper are naturals, so an exact 64-bit integer
// carrier suffices; additions are overflow-checked.
#pragma once

#include <compare>
#include <iosfwd>
#include <limits>
#include <string>

#include "base/checked.hpp"

namespace sdf {

/// Raw structure-of-arrays encoding of a max-plus scalar: one int64_t lane
/// with INT64_MIN standing in for −∞ (it is the neutral element of signed
/// max, so plain integer max implements ⊕ on raw lanes).  The finite value
/// INT64_MIN itself is reserved — MpMatrix::set rejects it — which the
/// SIMD kernels (maxplus/kernels.hpp) rely on.
inline constexpr Int kMpRawMinusInf = std::numeric_limits<Int>::min();

/// A max-plus scalar: either a finite 64-bit integer or minus infinity.
class MpValue {
public:
    /// Minus infinity (the default: "no dependency").
    constexpr MpValue() = default;

    /// A finite value.
    constexpr MpValue(Int value) : finite_(true), value_(value) {}  // NOLINT: implicit by design

    /// Named constructor for −∞, for call sites where intent matters.
    static constexpr MpValue minus_infinity() { return MpValue{}; }

    [[nodiscard]] constexpr bool is_finite() const { return finite_; }
    [[nodiscard]] constexpr bool is_minus_infinity() const { return !finite_; }

    /// The finite payload; throws ArithmeticError on −∞.
    [[nodiscard]] Int value() const {
        if (!finite_) {
            throw ArithmeticError("value() called on max-plus minus infinity");
        }
        return value_;
    }

    /// Max-plus addition ⊕ (= max); −∞ is the neutral element.
    friend MpValue mp_max(MpValue a, MpValue b) {
        if (!a.finite_) {
            return b;
        }
        if (!b.finite_) {
            return a;
        }
        return MpValue(a.value_ > b.value_ ? a.value_ : b.value_);
    }

    /// Max-plus multiplication ⊗ (= +); −∞ is absorbing.
    friend MpValue mp_plus(MpValue a, MpValue b) {
        if (!a.finite_ || !b.finite_) {
            return minus_infinity();
        }
        return MpValue(checked_add(a.value_, b.value_));
    }

    friend constexpr bool operator==(MpValue a, MpValue b) {
        if (a.finite_ != b.finite_) {
            return false;
        }
        return !a.finite_ || a.value_ == b.value_;
    }

    /// Total order with −∞ below every finite value.
    friend constexpr std::strong_ordering operator<=>(MpValue a, MpValue b) {
        if (a.finite_ != b.finite_) {
            return a.finite_ ? std::strong_ordering::greater : std::strong_ordering::less;
        }
        if (!a.finite_) {
            return std::strong_ordering::equal;
        }
        return a.value_ <=> b.value_;
    }

    /// "-inf" or the decimal value.
    [[nodiscard]] std::string to_string() const {
        return finite_ ? std::to_string(value_) : std::string("-inf");
    }

private:
    bool finite_ = false;
    Int value_ = 0;
};

std::ostream& operator<<(std::ostream& os, MpValue v);

}  // namespace sdf
