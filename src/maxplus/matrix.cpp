#include "maxplus/matrix.hpp"

#include <cstdint>
#include <limits>
#include <ostream>
#include <utility>

#include "base/errors.hpp"
#include "base/thread_pool.hpp"
#include "robust/budget.hpp"

namespace sdf {

std::size_t MpMatrix::checked_entry_count(std::size_t rows, std::size_t cols) {
    if (rows != 0 && cols > std::numeric_limits<std::size_t>::max() / rows) {
        throw ArithmeticError("matrix size overflow: " + std::to_string(rows) + " x " +
                              std::to_string(cols) + " entries");
    }
    // Runs in the member initialiser, i.e. before the entry vector
    // allocates — a governed memory budget refuses the matrix up front.
    robust_account_bytes(rows * cols * sizeof(MpValue));
    return rows * cols;
}

MpMatrix MpMatrix::identity(std::size_t size) {
    MpMatrix m(size, size);
    for (std::size_t i = 0; i < size; ++i) {
        m.set(i, i, MpValue(0));
    }
    return m;
}

void MpMatrix::set_column(std::size_t col, const MpVector& stamp) {
    if (stamp.size() != rows_) {
        throw ArithmeticError("column stamp length does not match matrix rows");
    }
    for (std::size_t row = 0; row < rows_; ++row) {
        set(row, col, stamp[row]);
    }
}

MpVector MpMatrix::column(std::size_t col) const {
    MpVector stamp(rows_);
    for (std::size_t row = 0; row < rows_; ++row) {
        stamp[row] = at(row, col);
    }
    return stamp;
}

std::size_t MpMatrix::finite_entry_count() const {
    std::size_t count = 0;
    for (const MpValue v : entries_) {
        if (v.is_finite()) {
            ++count;
        }
    }
    return count;
}

double MpMatrix::density() const {
    if (entries_.empty()) {
        return 0.0;
    }
    return static_cast<double>(finite_entry_count()) / static_cast<double>(entries_.size());
}

namespace {

/// Per-row finite supports of a matrix, split into column blocks: block b
/// holds, row by row, the finite entries with column in
/// [b·block_cols, (b+1)·block_cols).  Iterating one block across all the
/// rows an output row depends on keeps the touched output segment inside
/// L1 no matter how wide the matrix is.
struct BlockedSupport {
    std::size_t block_cols = 0;
    std::size_t num_blocks = 0;
    // Per block: CSR arrays over rows (start has rows+1 entries).
    std::vector<std::vector<std::size_t>> start;
    std::vector<std::vector<std::uint32_t>> col;
    std::vector<std::vector<Int>> val;
};

// 512 columns × 16 bytes per MpValue = 8 KiB of output per block, well
// inside L1 alongside the block's own entries.
constexpr std::size_t kBlockCols = 512;

BlockedSupport build_blocked_support(const MpMatrix& m) {
    BlockedSupport s;
    s.block_cols = kBlockCols;
    s.num_blocks = (m.cols() + kBlockCols - 1) / kBlockCols;
    if (s.num_blocks == 0) {
        s.num_blocks = 1;
    }
    s.start.assign(s.num_blocks, std::vector<std::size_t>(m.rows() + 1, 0));
    // Counting pass, then prefix sums, then the fill pass: two linear scans
    // instead of per-row push_back reallocation churn.
    for (std::size_t j = 0; j < m.rows(); ++j) {
        for (std::size_t k = 0; k < m.cols(); ++k) {
            if (m.at(j, k).is_finite()) {
                ++s.start[k / kBlockCols][j + 1];
            }
        }
    }
    s.col.resize(s.num_blocks);
    s.val.resize(s.num_blocks);
    for (std::size_t b = 0; b < s.num_blocks; ++b) {
        for (std::size_t j = 0; j < m.rows(); ++j) {
            s.start[b][j + 1] += s.start[b][j];
        }
        s.col[b].resize(s.start[b][m.rows()]);
        s.val[b].resize(s.start[b][m.rows()]);
    }
    std::vector<std::size_t> cursor(s.num_blocks);
    for (std::size_t j = 0; j < m.rows(); ++j) {
        for (std::size_t b = 0; b < s.num_blocks; ++b) {
            cursor[b] = s.start[b][j];
        }
        for (std::size_t k = 0; k < m.cols(); ++k) {
            const MpValue v = m.at(j, k);
            if (v.is_finite()) {
                const std::size_t b = k / kBlockCols;
                s.col[b][cursor[b]] = static_cast<std::uint32_t>(k);
                s.val[b][cursor[b]] = v.value();
                ++cursor[b];
            }
        }
    }
    return s;
}

}  // namespace

MpMatrix MpMatrix::multiply(const MpMatrix& other) const {
    if (cols_ != other.rows_) {
        throw ArithmeticError("max-plus matrix dimension mismatch in multiply");
    }
    MpMatrix result(rows_, other.cols_);
    if (rows_ == 0 || cols_ == 0 || other.cols_ == 0) {
        return result;
    }
    const BlockedSupport b = build_blocked_support(other);

    const auto compute_row = [&](std::size_t i) {
        SDFRED_CHECKPOINT();
        // Gather row i's finite support once; every block pass replays it.
        const MpValue* arow = &entries_[i * cols_];
        std::vector<std::pair<std::uint32_t, Int>> asup;
        for (std::size_t j = 0; j < cols_; ++j) {
            if (arow[j].is_finite()) {
                asup.emplace_back(static_cast<std::uint32_t>(j), arow[j].value());
            }
        }
        if (asup.empty()) {
            return;
        }
        MpValue* out = &result.entries_[i * other.cols_];
        for (std::size_t blk = 0; blk < b.num_blocks; ++blk) {
            const std::size_t* start = b.start[blk].data();
            const std::uint32_t* cols = b.col[blk].data();
            const Int* vals = b.val[blk].data();
            for (const auto& [j, a] : asup) {
                for (std::size_t t = start[j]; t < start[j + 1]; ++t) {
                    const Int candidate = checked_add(a, vals[t]);
                    MpValue& slot = out[cols[t]];
                    if (!slot.is_finite() || slot.value() < candidate) {
                        slot = MpValue(candidate);
                    }
                }
            }
        }
    };

    // Row blocks are independent; dispatch them on the pool once the matrix
    // is big enough for the fan-out to pay for itself.
    const std::size_t grain = rows_ >= 128 ? 16 : rows_;
    parallel_for(0, rows_, grain, compute_row);
    return result;
}

MpMatrix MpMatrix::multiply_naive(const MpMatrix& other) const {
    if (cols_ != other.rows_) {
        throw ArithmeticError("max-plus matrix dimension mismatch in multiply");
    }
    MpMatrix result(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        SDFRED_CHECKPOINT();
        for (std::size_t j = 0; j < cols_; ++j) {
            const MpValue a = at(i, j);
            if (!a.is_finite()) {
                continue;
            }
            for (std::size_t k = 0; k < other.cols_; ++k) {
                const MpValue b = other.at(j, k);
                if (!b.is_finite()) {
                    continue;
                }
                result.set(i, k, mp_max(result.at(i, k), mp_plus(a, b)));
            }
        }
    }
    return result;
}

MpMatrix MpMatrix::power(Int exponent) const {
    if (rows_ != cols_) {
        throw ArithmeticError("max-plus power of a non-square matrix");
    }
    if (exponent < 0) {
        throw ArithmeticError("negative max-plus matrix power");
    }
    if (exponent == 0) {
        return identity(rows_);
    }
    if (exponent == 1) {
        return *this;
    }
    MpMatrix result = identity(rows_);
    MpMatrix base = *this;
    while (exponent > 0) {
        if ((exponent & 1) != 0) {
            result = result.multiply(base);
        }
        exponent >>= 1;
        if (exponent > 0) {
            base = base.multiply(base);
        }
    }
    return result;
}

MpValue MpMatrix::max_entry() const {
    MpValue best = MpValue::minus_infinity();
    for (const MpValue v : entries_) {
        best = mp_max(best, v);
    }
    return best;
}

Digraph MpMatrix::precedence_graph() const {
    if (rows_ != cols_) {
        throw ArithmeticError("precedence graph of a non-square matrix");
    }
    Digraph g(rows_);
    for (std::size_t j = 0; j < rows_; ++j) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const MpValue v = at(j, k);
            if (v.is_finite()) {
                g.add_edge(j, k, v.value(), /*tokens=*/1);
            }
        }
    }
    return g;
}

std::string MpMatrix::to_string() const {
    std::string out;
    for (std::size_t i = 0; i < rows_; ++i) {
        out += "[";
        for (std::size_t j = 0; j < cols_; ++j) {
            if (j > 0) {
                out += ", ";
            }
            out += at(i, j).to_string();
        }
        out += "]\n";
    }
    return out;
}

std::ostream& operator<<(std::ostream& os, const MpMatrix& m) {
    return os << m.to_string();
}

}  // namespace sdf
