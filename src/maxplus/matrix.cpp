#include "maxplus/matrix.hpp"

#include <ostream>

#include "base/errors.hpp"

namespace sdf {

MpMatrix MpMatrix::identity(std::size_t size) {
    MpMatrix m(size, size);
    for (std::size_t i = 0; i < size; ++i) {
        m.set(i, i, MpValue(0));
    }
    return m;
}

void MpMatrix::set_column(std::size_t col, const MpVector& stamp) {
    if (stamp.size() != rows_) {
        throw ArithmeticError("column stamp length does not match matrix rows");
    }
    for (std::size_t row = 0; row < rows_; ++row) {
        set(row, col, stamp[row]);
    }
}

MpVector MpMatrix::column(std::size_t col) const {
    MpVector stamp(rows_);
    for (std::size_t row = 0; row < rows_; ++row) {
        stamp[row] = at(row, col);
    }
    return stamp;
}

std::size_t MpMatrix::finite_entry_count() const {
    std::size_t count = 0;
    for (const MpValue v : entries_) {
        if (v.is_finite()) {
            ++count;
        }
    }
    return count;
}

MpMatrix MpMatrix::multiply(const MpMatrix& other) const {
    if (cols_ != other.rows_) {
        throw ArithmeticError("max-plus matrix dimension mismatch in multiply");
    }
    MpMatrix result(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < cols_; ++j) {
            const MpValue a = at(i, j);
            if (!a.is_finite()) {
                continue;
            }
            for (std::size_t k = 0; k < other.cols_; ++k) {
                const MpValue b = other.at(j, k);
                if (!b.is_finite()) {
                    continue;
                }
                result.set(i, k, mp_max(result.at(i, k), mp_plus(a, b)));
            }
        }
    }
    return result;
}

MpMatrix MpMatrix::power(Int exponent) const {
    if (rows_ != cols_) {
        throw ArithmeticError("max-plus power of a non-square matrix");
    }
    if (exponent < 0) {
        throw ArithmeticError("negative max-plus matrix power");
    }
    MpMatrix result = identity(rows_);
    MpMatrix base = *this;
    while (exponent > 0) {
        if ((exponent & 1) != 0) {
            result = result.multiply(base);
        }
        exponent >>= 1;
        if (exponent > 0) {
            base = base.multiply(base);
        }
    }
    return result;
}

MpValue MpMatrix::max_entry() const {
    MpValue best = MpValue::minus_infinity();
    for (const MpValue v : entries_) {
        best = mp_max(best, v);
    }
    return best;
}

Digraph MpMatrix::precedence_graph() const {
    if (rows_ != cols_) {
        throw ArithmeticError("precedence graph of a non-square matrix");
    }
    Digraph g(rows_);
    for (std::size_t j = 0; j < rows_; ++j) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const MpValue v = at(j, k);
            if (v.is_finite()) {
                g.add_edge(j, k, v.value(), /*tokens=*/1);
            }
        }
    }
    return g;
}

std::string MpMatrix::to_string() const {
    std::string out;
    for (std::size_t i = 0; i < rows_; ++i) {
        out += "[";
        for (std::size_t j = 0; j < cols_; ++j) {
            if (j > 0) {
                out += ", ";
            }
            out += at(i, j).to_string();
        }
        out += "]\n";
    }
    return out;
}

std::ostream& operator<<(std::ostream& os, const MpMatrix& m) {
    return os << m.to_string();
}

}  // namespace sdf
