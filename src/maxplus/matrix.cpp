#include "maxplus/matrix.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>
#include <utility>

#include "base/arena.hpp"
#include "base/checked.hpp"
#include "base/errors.hpp"
#include "base/thread_pool.hpp"
#include "maxplus/kernels.hpp"
#include "robust/budget.hpp"

namespace sdf {

std::size_t MpMatrix::checked_entry_count(std::size_t rows, std::size_t cols) {
    if (rows != 0 && cols > std::numeric_limits<std::size_t>::max() / rows) {
        throw ArithmeticError("matrix size overflow: " + std::to_string(rows) + " x " +
                              std::to_string(cols) + " entries");
    }
    // Runs in the member initialiser, i.e. before the entry vector
    // allocates — a governed memory budget refuses the matrix up front.
    robust_account_bytes(rows * cols * sizeof(Int));
    return rows * cols;
}

Int MpMatrix::checked_raw(MpValue value) {
    if (!value.is_finite()) {
        return kMpRawMinusInf;
    }
    const Int raw = value.value();
    if (raw == kMpRawMinusInf) {
        throw ArithmeticError(
            "finite max-plus value INT64_MIN is reserved for the -inf sentinel");
    }
    return raw;
}

MpMatrix MpMatrix::identity(std::size_t size) {
    MpMatrix m(size, size);
    for (std::size_t i = 0; i < size; ++i) {
        m.set(i, i, MpValue(0));
    }
    return m;
}

void MpMatrix::set_column(std::size_t col, const MpVector& stamp) {
    if (stamp.size() != rows_) {
        throw ArithmeticError("column stamp length does not match matrix rows");
    }
    for (std::size_t row = 0; row < rows_; ++row) {
        set(row, col, stamp[row]);
    }
}

MpVector MpMatrix::column(std::size_t col) const {
    MpVector stamp(rows_);
    for (std::size_t row = 0; row < rows_; ++row) {
        stamp[row] = at(row, col);
    }
    return stamp;
}

std::size_t MpMatrix::finite_entry_count() const {
    std::size_t count = 0;
    for (const Int v : entries_) {
        if (v != kMpRawMinusInf) {
            ++count;
        }
    }
    return count;
}

double MpMatrix::density() const {
    if (entries_.empty()) {
        return 0.0;
    }
    return static_cast<double>(finite_entry_count()) / static_cast<double>(entries_.size());
}

std::uint64_t MpMatrix::max_abs_finite() const {
    std::uint64_t best = 0;
    for (const Int v : entries_) {
        if (v == kMpRawMinusInf) {
            continue;
        }
        // v > INT64_MIN is guaranteed by the sentinel encoding, so -v is safe.
        const std::uint64_t magnitude = static_cast<std::uint64_t>(v < 0 ? -v : v);
        if (magnitude > best) {
            best = magnitude;
        }
    }
    return best;
}

namespace {

/// Per-row finite supports of a matrix, split into column blocks: block b
/// holds, row by row, the finite entries with column in
/// [b·block_cols, (b+1)·block_cols).  Iterating one block across all the
/// rows an output row depends on keeps the touched output segment inside
/// L1 no matter how wide the matrix is.
///
/// Rows dense enough for the SIMD lane kernel to beat the scalar CSR loop
/// are flagged instead of copied out: the SoA layout makes the row itself
/// (raw_row) the kernel operand, so the support carries no data for them.
/// All arrays live in the caller's scratch arena.
struct BlockedSupport {
    std::size_t block_cols = 0;
    std::size_t num_blocks = 0;
    std::size_t rows = 0;
    const std::size_t* start = nullptr;  ///< CSR starts: [b * (rows+1) + j]
    const std::uint32_t* col = nullptr;  ///< global column indices
    const Int* val = nullptr;            ///< raw finite values
    const unsigned char* dense = nullptr;  ///< 1 = serve row from raw lanes
};

// 512 columns × 8 bytes per lane = 4 KiB of output per block, well inside
// L1 alongside the block's own entries.
constexpr std::size_t kBlockCols = 512;

/// A row goes through the SIMD lane kernel once at least 1/8 of its lanes
/// are finite: the vector tiers process 4–8 lanes per op, so reading the
/// full row beats chasing a sparse index list from that density on.
bool dense_enough(std::size_t finite, std::size_t cols) {
    return finite * 8 >= cols;
}

BlockedSupport build_blocked_support(const MpMatrix& m, Arena& arena, bool allow_dense) {
    BlockedSupport s;
    s.block_cols = kBlockCols;
    s.num_blocks = (m.cols() + kBlockCols - 1) / kBlockCols;
    if (s.num_blocks == 0) {
        s.num_blocks = 1;
    }
    s.rows = m.rows();
    unsigned char* dense = arena.alloc_array<unsigned char>(m.rows());
    std::size_t* start = arena.alloc_array<std::size_t>(s.num_blocks * (m.rows() + 1));
    std::fill(start, start + s.num_blocks * (m.rows() + 1), std::size_t{0});
    // Counting pass, then prefix sums, then the fill pass: two linear scans
    // instead of per-row push_back reallocation churn.
    for (std::size_t j = 0; j < m.rows(); ++j) {
        const Int* row = m.raw_row(j);
        std::size_t finite = 0;
        for (std::size_t k = 0; k < m.cols(); ++k) {
            if (row[k] != kMpRawMinusInf) {
                ++finite;
            }
        }
        dense[j] = allow_dense && finite > 0 && dense_enough(finite, m.cols()) ? 1 : 0;
        if (dense[j] != 0) {
            continue;  // served straight from raw_row, nothing to copy
        }
        for (std::size_t k = 0; k < m.cols(); ++k) {
            if (row[k] != kMpRawMinusInf) {
                ++start[(k / kBlockCols) * (m.rows() + 1) + j + 1];
            }
        }
    }
    std::size_t total = 0;
    for (std::size_t b = 0; b < s.num_blocks; ++b) {
        std::size_t* bstart = start + b * (m.rows() + 1);
        for (std::size_t j = 0; j < m.rows(); ++j) {
            bstart[j + 1] += bstart[j];
        }
        total += bstart[m.rows()];
    }
    std::uint32_t* col = arena.alloc_array<std::uint32_t>(total);
    Int* val = arena.alloc_array<Int>(total);
    // Per-block write offsets; the fill pass restores them row by row.
    std::size_t* base = arena.alloc_array<std::size_t>(s.num_blocks + 1);
    base[0] = 0;
    for (std::size_t b = 0; b < s.num_blocks; ++b) {
        base[b + 1] = base[b] + start[b * (m.rows() + 1) + m.rows()];
    }
    std::size_t* cursor = arena.alloc_array<std::size_t>(s.num_blocks);
    for (std::size_t j = 0; j < m.rows(); ++j) {
        if (dense[j] != 0) {
            continue;
        }
        for (std::size_t b = 0; b < s.num_blocks; ++b) {
            cursor[b] = base[b] + start[b * (m.rows() + 1) + j];
        }
        const Int* row = m.raw_row(j);
        for (std::size_t k = 0; k < m.cols(); ++k) {
            if (row[k] != kMpRawMinusInf) {
                const std::size_t b = k / kBlockCols;
                col[cursor[b]] = static_cast<std::uint32_t>(k);
                val[cursor[b]] = row[k];
                ++cursor[b];
            }
        }
    }
    // Rebase the per-block CSR starts to the flat col/val arrays.
    for (std::size_t b = 0; b < s.num_blocks; ++b) {
        std::size_t* bstart = start + b * (m.rows() + 1);
        for (std::size_t j = 0; j <= m.rows(); ++j) {
            bstart[j] += base[b];
        }
    }
    s.start = start;
    s.col = col;
    s.val = val;
    s.dense = dense;
    return s;
}

}  // namespace

MpMatrix MpMatrix::multiply(const MpMatrix& other) const {
    if (cols_ != other.rows_) {
        throw ArithmeticError("max-plus matrix dimension mismatch in multiply");
    }
    MpMatrix result(rows_, other.cols_);
    // Safe-magnitude bound: every product entry is a(i,j) + b(j,k), so when
    // the two finite-magnitude maxima sum within int64 nothing can overflow
    // (and nothing can land on the INT64_MIN sentinel), making the
    // unchecked SIMD fast path exact.  Past the bound, fall back to the
    // overflow-checked kernel — same results, same ArithmeticError on a
    // genuine overflow as multiply_naive.
    const std::uint64_t bound = max_abs_finite() + other.max_abs_finite();
    const bool checked = bound > static_cast<std::uint64_t>(std::numeric_limits<Int>::max());
    multiply_into(other, result, checked);
    return result;
}

MpMatrix MpMatrix::multiply_checked(const MpMatrix& other) const {
    if (cols_ != other.rows_) {
        throw ArithmeticError("max-plus matrix dimension mismatch in multiply");
    }
    MpMatrix result(rows_, other.cols_);
    multiply_into(other, result, /*checked=*/true);
    return result;
}

void MpMatrix::multiply_into(const MpMatrix& other, MpMatrix& result, bool checked) const {
    if (rows_ == 0 || cols_ == 0 || other.cols_ == 0) {
        return;
    }
    // The support is built once on the calling thread and read by every
    // worker; per-row gather buffers live in each worker's own arena.
    Arena& arena = scratch_arena();
    const Arena::Scope support_scope(arena);
    const BlockedSupport b = build_blocked_support(other, arena, /*allow_dense=*/!checked);
    const auto axpy = mp_kernels().axpy_max;
    const std::size_t out_cols = other.cols_;

    // Dense-A fast path: per-row processing streams all of B once per
    // output row, which turns the SIMD loop memory-bound on large dense
    // operands.  Tiling kRowTile output rows against each B row slice
    // reuses the slice while it is hot in L1, dividing B traffic by the
    // tile height.  Reading A(i,j) straight from the raw lanes costs a
    // sentinel check per (tile row, j), so only dense A earns the path.
    if (!checked && finite_entry_count() * 8 >= rows_ * cols_) {
        constexpr std::size_t kRowTile = 8;
        const std::size_t tiles = (rows_ + kRowTile - 1) / kRowTile;
        const auto compute_tile = [&](std::size_t t) {
            SDFRED_CHECKPOINT();
            const std::size_t i0 = t * kRowTile;
            const std::size_t i1 = std::min(i0 + kRowTile, rows_);
            for (std::size_t blk = 0; blk < b.num_blocks; ++blk) {
                const std::size_t blk_begin = blk * b.block_cols;
                const std::size_t blk_width =
                    std::min(b.block_cols, out_cols - std::min(out_cols, blk_begin));
                const std::size_t* start = b.start + blk * (b.rows + 1);
                for (std::size_t j = 0; j < cols_; ++j) {
                    const bool jdense = b.dense[j] != 0;
                    if (!jdense && start[j] == start[j + 1]) {
                        continue;
                    }
                    for (std::size_t i = i0; i < i1; ++i) {
                        const Int a = entries_[i * cols_ + j];
                        if (a == kMpRawMinusInf) {
                            continue;
                        }
                        Int* out = result.raw_row(i);
                        if (jdense) {
                            axpy(out + blk_begin, other.raw_row(j) + blk_begin, a,
                                 blk_width);
                            continue;
                        }
                        for (std::size_t u = start[j]; u < start[j + 1]; ++u) {
                            const Int candidate = a + b.val[u];  // bound-proven
                            Int& slot = out[b.col[u]];
                            if (slot < candidate) {
                                slot = candidate;
                            }
                        }
                    }
                }
            }
        };
        parallel_for(0, tiles, 1, compute_tile);
        return;
    }

    const auto compute_row = [&](std::size_t i) {
        SDFRED_CHECKPOINT();
        Arena& row_arena = scratch_arena();
        const Arena::Scope row_scope(row_arena);
        // Gather row i's finite support once; every block pass replays it.
        const Int* arow = raw_row(i);
        auto* asup = row_arena.alloc_array<std::pair<std::uint32_t, Int>>(cols_);
        std::size_t na = 0;
        for (std::size_t j = 0; j < cols_; ++j) {
            if (arow[j] != kMpRawMinusInf) {
                asup[na++] = {static_cast<std::uint32_t>(j), arow[j]};
            }
        }
        if (na == 0) {
            return;
        }
        Int* out = result.raw_row(i);
        for (std::size_t blk = 0; blk < b.num_blocks; ++blk) {
            const std::size_t blk_begin = blk * b.block_cols;
            const std::size_t blk_width =
                std::min(b.block_cols, out_cols - std::min(out_cols, blk_begin));
            const std::size_t* start = b.start + blk * (b.rows + 1);
            for (std::size_t t = 0; t < na; ++t) {
                const std::uint32_t j = asup[t].first;
                const Int a = asup[t].second;
                if (b.dense[j] != 0) {
                    // Dense B row: the raw lane array itself is the kernel
                    // operand (unchecked mode only; bound proven upfront).
                    axpy(out + blk_begin, other.raw_row(j) + blk_begin, a, blk_width);
                    continue;
                }
                if (checked) {
                    for (std::size_t u = start[j]; u < start[j + 1]; ++u) {
                        const Int candidate = checked_add(a, b.val[u]);
                        Int& slot = out[b.col[u]];
                        if (slot == kMpRawMinusInf || slot < candidate) {
                            slot = candidate;
                        }
                    }
                } else {
                    for (std::size_t u = start[j]; u < start[j + 1]; ++u) {
                        const Int candidate = a + b.val[u];  // bound-proven
                        Int& slot = out[b.col[u]];
                        if (slot < candidate) {  // sentinel loses: INT64_MIN < finite
                            slot = candidate;
                        }
                    }
                }
            }
        }
    };

    // Row blocks are independent; dispatch them on the pool once the matrix
    // is big enough for the fan-out to pay for itself.
    const std::size_t grain = rows_ >= 128 ? 16 : rows_;
    parallel_for(0, rows_, grain, compute_row);
}

MpMatrix MpMatrix::multiply_naive(const MpMatrix& other) const {
    if (cols_ != other.rows_) {
        throw ArithmeticError("max-plus matrix dimension mismatch in multiply");
    }
    MpMatrix result(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        SDFRED_CHECKPOINT();
        for (std::size_t j = 0; j < cols_; ++j) {
            const MpValue a = at(i, j);
            if (!a.is_finite()) {
                continue;
            }
            for (std::size_t k = 0; k < other.cols_; ++k) {
                const MpValue b = other.at(j, k);
                if (!b.is_finite()) {
                    continue;
                }
                result.set(i, k, mp_max(result.at(i, k), mp_plus(a, b)));
            }
        }
    }
    return result;
}

MpMatrix MpMatrix::power(Int exponent) const {
    if (rows_ != cols_) {
        throw ArithmeticError("max-plus power of a non-square matrix");
    }
    if (exponent < 0) {
        throw ArithmeticError("negative max-plus matrix power");
    }
    if (exponent == 0) {
        return identity(rows_);
    }
    if (exponent == 1) {
        return *this;
    }
    MpMatrix result = identity(rows_);
    MpMatrix base = *this;
    while (exponent > 0) {
        if ((exponent & 1) != 0) {
            result = result.multiply(base);
        }
        exponent >>= 1;
        if (exponent > 0) {
            base = base.multiply(base);
        }
    }
    return result;
}

MpValue MpMatrix::max_entry() const {
    // The sentinel is the smallest int64, so a plain max over raw lanes is
    // the max-plus ⊕ fold; all-−∞ (or empty) folds to the sentinel itself.
    Int best = kMpRawMinusInf;
    for (const Int v : entries_) {
        if (v > best) {
            best = v;
        }
    }
    return best == kMpRawMinusInf ? MpValue::minus_infinity() : MpValue(best);
}

Digraph MpMatrix::precedence_graph() const {
    if (rows_ != cols_) {
        throw ArithmeticError("precedence graph of a non-square matrix");
    }
    Digraph g(rows_);
    for (std::size_t j = 0; j < rows_; ++j) {
        const Int* row = raw_row(j);
        for (std::size_t k = 0; k < cols_; ++k) {
            if (row[k] != kMpRawMinusInf) {
                g.add_edge(j, k, row[k], /*tokens=*/1);
            }
        }
    }
    return g;
}

std::string MpMatrix::to_string() const {
    std::string out;
    for (std::size_t i = 0; i < rows_; ++i) {
        out += "[";
        for (std::size_t j = 0; j < cols_; ++j) {
            if (j > 0) {
                out += ", ";
            }
            out += at(i, j).to_string();
        }
        out += "]\n";
    }
    return out;
}

std::ostream& operator<<(std::ostream& os, const MpMatrix& m) {
    return os << m.to_string();
}

}  // namespace sdf
