// kernels_avx2.cpp — AVX2 tier of the raw max-plus kernels.
//
// Compiled with -mavx2 (only when the compiler supports it; otherwise this
// TU degrades to the null-table stub below and the dispatcher never offers
// the tier).  AVX2 has 64-bit adds and 64-bit signed compares but no
// vpmaxsq, so the signed max is emulated as cmpgt + byte blend; the −∞
// sentinel is handled with an equality compare against INT64_MIN feeding a
// second blend.  Four lanes per vector, unaligned loads/stores throughout
// (matrix rows are not 32-byte aligned by construction).
#include "maxplus/kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace sdf {

namespace {

void axpy_max_avx2(Int* out, const Int* row, Int a, std::size_t n) {
    const __m256i va = _mm256_set1_epi64x(a);
    const __m256i sentinel = _mm256_set1_epi64x(kMpRawMinusInf);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
        // Wrapping add is fine even on sentinel lanes: the result there is
        // discarded by the blend before it can win the max.
        __m256i sum = _mm256_add_epi64(b, va);
        const __m256i is_inf = _mm256_cmpeq_epi64(b, sentinel);
        sum = _mm256_blendv_epi8(sum, sentinel, is_inf);
        const __m256i o = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
        const __m256i gt = _mm256_cmpgt_epi64(sum, o);  // emulated vpmaxsq
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                            _mm256_blendv_epi8(o, sum, gt));
    }
    for (; i < n; ++i) {
        const Int b = row[i];
        if (b == kMpRawMinusInf) {
            continue;
        }
        const Int sum = b + a;
        if (sum > out[i]) {
            out[i] = sum;
        }
    }
}

constexpr MpKernels kAvx2Kernels{IsaTier::avx2, &axpy_max_avx2};

}  // namespace

const MpKernels* mp_kernels_avx2() {
    return &kAvx2Kernels;
}

}  // namespace sdf

#else  // !__AVX2__

namespace sdf {

const MpKernels* mp_kernels_avx2() {
    return nullptr;
}

}  // namespace sdf

#endif
