#include "maxplus/mcm_certificate.hpp"

#include <algorithm>
#include <utility>

#include "base/errors.hpp"
#include "base/thread_pool.hpp"
#include "robust/budget.hpp"

namespace sdf {

namespace {

/// q·w − p, overflow-checked: the Karp reweighting that turns "mean vs p/q"
/// into "sign of a cycle sum".
Int reweight(Int weight, Int p, Int q) {
    return checked_sub(checked_mul(q, weight), p);
}

/// One directed cycle among the tight edges (π(u) + w′ = π(v)), as local
/// edge indices in traversal order; empty when none exists.  Iterative DFS
/// — certificate SCCs can be as deep as the precedence graph is long.
std::vector<std::size_t> find_tight_cycle(std::size_t n,
                                          const std::vector<DigraphEdge>& edges,
                                          const std::vector<std::size_t>& tight) {
    std::vector<std::vector<std::size_t>> adj(n);
    for (const std::size_t l : tight) {
        adj[edges[l].from].push_back(l);
    }
    std::vector<int> state(n, 0);  // 0 white, 1 on stack, 2 done
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // (node, adj cursor)
    std::vector<std::size_t> path;  // path[j]: edge from stack[j] to stack[j+1]
    for (std::size_t start = 0; start < n; ++start) {
        if (state[start] != 0) {
            continue;
        }
        stack.clear();
        path.clear();
        stack.emplace_back(start, 0);
        state[start] = 1;
        while (!stack.empty()) {
            SDFRED_CHECKPOINT();
            const std::size_t v = stack.back().first;
            std::size_t& cursor = stack.back().second;
            if (cursor == adj[v].size()) {
                state[v] = 2;
                stack.pop_back();
                if (!path.empty()) {
                    path.pop_back();
                }
                continue;
            }
            const std::size_t l = adj[v][cursor++];
            const std::size_t to = edges[l].to;
            if (state[to] == 1) {
                std::size_t i = 0;
                while (stack[i].first != to) {
                    ++i;
                }
                std::vector<std::size_t> cycle(path.begin() + static_cast<std::ptrdiff_t>(i),
                                               path.end());
                cycle.push_back(l);
                return cycle;
            }
            if (state[to] == 0) {
                state[to] = 1;
                path.push_back(l);
                stack.emplace_back(to, 0);
            }
        }
    }
    return {};
}

/// Fills lambda/potential/critical/certified of a cert whose
/// nodes/edges/edge_ids/cyclic are already set.  Runs Karp, then tries to
/// build the witnesses; any checked-arithmetic overflow or a failed
/// convergence downgrades to certified=false (λ stays exact).
void solve_and_certify(McmSccCert& cert) {
    const std::size_t n = cert.nodes.size();
    cert.potential.clear();
    cert.critical.clear();
    cert.certified = false;
    if (!cert.cyclic) {
        cert.lambda = Rational();
        cert.certified = true;  // no cycles: nothing to witness, nothing to re-solve
        return;
    }
    cert.lambda = karp_on_component(cert.edges, n);
    const Int p = cert.lambda.num();
    const Int q = cert.lambda.den();
    try {
        // Longest-path potentials under w′ = q·w − p from an implicit
        // super-source (all-zero start).  No strictly positive cycle exists
        // (λ is the maximum mean), so the iteration converges within n
        // rounds; a round still changing afterwards can only mean overflow
        // territory — bail to the uncertified fallback.
        std::vector<Int> dist(n, 0);
        bool converged = false;
        for (std::size_t round = 0; round <= n && !converged; ++round) {
            SDFRED_CHECKPOINT();
            converged = true;
            for (const DigraphEdge& e : cert.edges) {
                const Int candidate = checked_add(dist[e.from], reweight(e.weight, p, q));
                if (candidate > dist[e.to]) {
                    dist[e.to] = candidate;
                    converged = false;
                }
            }
        }
        if (!converged) {
            return;
        }
        std::vector<std::size_t> tight;
        for (std::size_t l = 0; l < cert.edges.size(); ++l) {
            const DigraphEdge& e = cert.edges[l];
            if (checked_add(dist[e.from], reweight(e.weight, p, q)) == dist[e.to]) {
                tight.push_back(l);
            }
        }
        std::vector<std::size_t> cycle = find_tight_cycle(n, cert.edges, tight);
        if (cycle.empty()) {
            return;  // λ not witnessed by a tight cycle: numerically impossible,
                     // but an uncertified cert is always safe
        }
        cert.potential = std::move(dist);
        cert.critical = std::move(cycle);
        cert.certified = true;
    } catch (const ArithmeticError&) {
        // leave certified=false
    }
}

bool component_has_cycle(const McmSccCert& cert) {
    if (cert.nodes.size() > 1) {
        return !cert.edges.empty();
    }
    return std::any_of(cert.edges.begin(), cert.edges.end(),
                       [](const DigraphEdge& e) { return e.from == e.to; });
}

/// metric = max λ over cyclic SCCs — the same fold max_cycle_mean_karp
/// performs, so the two entry points agree bit-for-bit.
CycleMetric fold_metric(const std::vector<std::shared_ptr<const McmSccCert>>& sccs) {
    CycleMetric metric;
    for (const auto& cert : sccs) {
        if (!cert->cyclic) {
            continue;
        }
        if (metric.outcome != CycleOutcome::finite || cert->lambda > metric.value) {
            metric.outcome = CycleOutcome::finite;
            metric.value = cert->lambda;
        }
    }
    return metric;
}

}  // namespace

McmCertificate max_cycle_mean_certified(const Digraph& graph) {
    std::size_t component_count = 0;
    const std::vector<std::size_t> component =
        graph.strongly_connected_components(&component_count);

    std::vector<std::shared_ptr<McmSccCert>> building(component_count);
    for (std::size_t c = 0; c < component_count; ++c) {
        building[c] = std::make_shared<McmSccCert>();
    }
    std::vector<std::size_t> local_index(graph.node_count(), 0);
    for (std::size_t v = 0; v < graph.node_count(); ++v) {
        McmSccCert& cert = *building[component[v]];
        local_index[v] = cert.nodes.size();
        cert.nodes.push_back(v);
    }

    McmCertificate result;
    result.edge_home.resize(graph.edge_count());
    for (std::size_t g = 0; g < graph.edge_count(); ++g) {
        const DigraphEdge& e = graph.edge(g);
        if (component[e.from] != component[e.to]) {
            continue;  // edge_home stays kCross
        }
        McmSccCert& cert = *building[component[e.from]];
        result.edge_home[g] = McmCertificate::EdgeHome{
            static_cast<std::uint32_t>(component[e.from]),
            static_cast<std::uint32_t>(cert.edges.size())};
        cert.edges.push_back(
            DigraphEdge{local_index[e.from], local_index[e.to], e.weight, e.tokens});
        cert.edge_ids.push_back(g);
    }

    // Independent per-SCC solves on the global pool, mirroring
    // max_cycle_mean_karp's dispatch (each solve owns its Bellman table).
    parallel_for(0, component_count, 1, [&](std::size_t c) {
        building[c]->cyclic = component_has_cycle(*building[c]);
        solve_and_certify(*building[c]);
    });

    result.sccs.assign(building.begin(), building.end());
    result.metric = fold_metric(result.sccs);
    return result;
}

McmCertificate refine_cycle_mean(const McmCertificate& cert,
                                 const std::vector<EdgeWeightDelta>& deltas,
                                 std::size_t* rescored) {
    McmCertificate out;
    out.sccs = cert.sccs;  // clean SCCs share their certificate
    out.edge_home = cert.edge_home;
    std::size_t resolved = 0;

    // Group the deltas by home SCC; cross-SCC edges lie on no cycle and are
    // absorbed without any work.
    std::vector<std::vector<std::pair<std::uint32_t, Int>>> dirty(cert.sccs.size());
    for (const EdgeWeightDelta& d : deltas) {
        const McmCertificate::EdgeHome home = cert.edge_home.at(d.edge);
        if (home.scc == McmCertificate::kCross) {
            continue;
        }
        dirty[home.scc].emplace_back(home.local, d.weight);
    }

    for (std::size_t c = 0; c < dirty.size(); ++c) {
        if (dirty[c].empty()) {
            continue;
        }
        const McmSccCert& old = *cert.sccs[c];
        auto next = std::make_shared<McmSccCert>(old);
        for (const auto& [local, weight] : dirty[c]) {
            next->edges.at(local).weight = weight;
        }
        if (!old.cyclic) {
            out.sccs[c] = std::move(next);  // acyclic: weights are unconstrained
            continue;
        }
        bool witnesses_hold = old.certified;
        if (witnesses_hold) {
            const Int p = old.lambda.num();
            const Int q = old.lambda.den();
            try {
                // (1) Optimality: every changed edge must still have
                // non-positive reweighted slack under the OLD potentials —
                // unchanged edges kept theirs, so summing around any cycle
                // still bounds its mean by λ.
                for (const auto& [local, weight] : dirty[c]) {
                    const DigraphEdge& e = next->edges[local];
                    const Int slack = checked_sub(
                        checked_add(old.potential[e.from], reweight(weight, p, q)),
                        old.potential[e.to]);
                    if (slack > 0) {
                        witnesses_hold = false;
                        break;
                    }
                }
                // (2) Achievement: the stored critical cycle must still sum
                // to zero with the NEW weights.
                if (witnesses_hold) {
                    Int sum = 0;
                    for (const std::size_t l : old.critical) {
                        sum = checked_add(sum, reweight(next->edges[l].weight, p, q));
                    }
                    witnesses_hold = sum == 0;
                }
            } catch (const ArithmeticError&) {
                witnesses_hold = false;
            }
        }
        if (!witnesses_hold) {
            // λ may have moved: re-run the byte-identical Karp kernel on
            // this one component and rebuild its witnesses.
            solve_and_certify(*next);
            ++resolved;
        }
        out.sccs[c] = std::move(next);
    }

    out.metric = fold_metric(out.sccs);
    if (rescored != nullptr) {
        *rescored = resolved;
    }
    return out;
}

}  // namespace sdf
