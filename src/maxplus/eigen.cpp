#include "maxplus/eigen.hpp"

#include <optional>

#include "base/digraph.hpp"
#include "base/errors.hpp"
#include "maxplus/mcm.hpp"

namespace sdf {

MpEigen mp_eigen(const MpMatrix& matrix) {
    if (matrix.rows() != matrix.cols()) {
        throw ArithmeticError("mp_eigen requires a square matrix");
    }
    const std::size_t n = matrix.rows();
    const Digraph graph = matrix.precedence_graph();
    std::size_t component_count = 0;
    (void)graph.strongly_connected_components(&component_count);
    if (n == 0 || component_count != 1 || !graph.has_cycle()) {
        throw ArithmeticError("mp_eigen requires an irreducible matrix "
                              "(strongly connected precedence graph)");
    }
    const CycleMetric metric = max_cycle_mean_karp(graph);
    if (!metric.is_finite()) {
        throw ArithmeticError("mp_eigen: no cycle in the precedence graph");
    }
    const Rational lambda = metric.value;

    // 1. Longest-path potentials of the (weight − λ)-reweighted graph from
    //    an implicit super-source.  They converge because no reweighted
    //    cycle is positive at λ = MCM.
    std::vector<Rational> h(n, Rational(0));
    bool converged = false;
    for (std::size_t round = 0; round <= n && !converged; ++round) {
        converged = true;
        for (const auto& e : graph.edges()) {
            const Rational candidate = h[e.from] + Rational(e.weight) - lambda;
            if (candidate > h[e.to]) {
                h[e.to] = candidate;
                converged = false;
            }
        }
    }
    if (!converged) {
        throw ArithmeticError("mp_eigen: potentials failed to converge");
    }

    // 2. A critical node: any node on a cycle of the tight subgraph
    //    (edges with h[u] + w − λ == h[v]); such a cycle has mean exactly λ.
    Digraph tight(n);
    for (const auto& e : graph.edges()) {
        if (h[e.from] + Rational(e.weight) - lambda == h[e.to]) {
            tight.add_edge(e.from, e.to);
        }
    }
    std::size_t tight_components = 0;
    const auto component = tight.strongly_connected_components(&tight_components);
    std::vector<std::size_t> component_size(tight_components, 0);
    for (std::size_t v = 0; v < n; ++v) {
        ++component_size[component[v]];
    }
    std::optional<std::size_t> critical;
    for (const auto& e : tight.edges()) {
        if (e.from == e.to || component[e.from] == component[e.to]) {
            if (e.from == e.to || component_size[component[e.from]] > 1) {
                critical = e.from;
                break;
            }
        }
    }
    if (!critical) {
        throw ArithmeticError("mp_eigen: no critical cycle found");
    }

    // 3. The eigenvector is the column of the metric closure at the
    //    critical node: v[k] = longest reweighted walk critical → k.  It is
    //    finite everywhere (strong connectivity) and satisfies
    //    max_j (v[j] + G(j,k)) = λ + v[k]: "<=" because appending an edge
    //    to a walk gives a walk, ">=" because any optimal walk can be
    //    padded with the zero-weight critical cycle to have length >= 1.
    std::vector<std::optional<Rational>> dist(n);
    dist[*critical] = Rational(0);
    converged = false;
    for (std::size_t round = 0; round <= n && !converged; ++round) {
        converged = true;
        for (const auto& e : graph.edges()) {
            if (!dist[e.from]) {
                continue;
            }
            const Rational candidate = *dist[e.from] + Rational(e.weight) - lambda;
            if (!dist[e.to] || candidate > *dist[e.to]) {
                dist[e.to] = candidate;
                converged = false;
            }
        }
    }
    if (!converged) {
        throw ArithmeticError("mp_eigen: closure failed to converge");
    }
    MpEigen result;
    result.eigenvalue = lambda;
    result.eigenvector.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
        if (!dist[k]) {
            throw ArithmeticError("mp_eigen: node unreachable from the critical cycle");
        }
        result.eigenvector.push_back(*dist[k]);
    }
    return result;
}

bool is_eigenpair(const MpMatrix& matrix, const MpEigen& eigen) {
    const std::size_t n = matrix.rows();
    if (matrix.cols() != n || eigen.eigenvector.size() != n) {
        return false;
    }
    for (std::size_t k = 0; k < n; ++k) {
        std::optional<Rational> best;
        for (std::size_t j = 0; j < n; ++j) {
            const MpValue g = matrix.at(j, k);
            if (!g.is_finite()) {
                continue;
            }
            const Rational candidate = eigen.eigenvector[j] + Rational(g.value());
            if (!best || candidate > *best) {
                best = candidate;
            }
        }
        if (!best || *best != eigen.eigenvalue + eigen.eigenvector[k]) {
            return false;
        }
    }
    return true;
}

}  // namespace sdf
