// vector.hpp — max-plus vectors: the symbolic time stamps of Algorithm 1.
//
// A token produced during the symbolic execution of one graph iteration
// carries the vector g with t = max_i (t_i + g_i) over the production times
// t_i of the initial tokens.  Firing an actor takes the element-wise max of
// the consumed stamps (synchronisation) and adds the execution time
// (computation), which are exactly the two operations below.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "maxplus/value.hpp"

namespace sdf {

/// A fixed-length vector over the max-plus semiring.
class MpVector {
public:
    MpVector() = default;

    /// A vector of `size` entries, all −∞.
    explicit MpVector(std::size_t size) : entries_(size) {}

    /// The i-th max-plus unit vector of length `size`: 0 at `index`, −∞
    /// elsewhere.  This is the initial stamp of the `index`-th initial token
    /// (t_index depends on itself with distance 0).
    static MpVector unit(std::size_t size, std::size_t index);

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] MpValue operator[](std::size_t i) const { return entries_[i]; }
    MpValue& operator[](std::size_t i) { return entries_[i]; }

    /// Element-wise max (synchronisation of two symbolic stamps).
    [[nodiscard]] MpVector max_with(const MpVector& other) const;

    /// Adds a finite scalar to every finite entry (elapsing execution time).
    [[nodiscard]] MpVector plus(Int scalar) const;

    /// The largest entry (−∞ for the all-−∞ vector): the completion time of
    /// this stamp when all initial tokens are available at time 0.
    [[nodiscard]] MpValue max_entry() const;

    /// True when every entry is −∞.
    [[nodiscard]] bool is_bottom() const;

    friend bool operator==(const MpVector& a, const MpVector& b) = default;

    /// "[0, -inf, 3]"
    [[nodiscard]] std::string to_string() const;

private:
    std::vector<MpValue> entries_;
};

std::ostream& operator<<(std::ostream& os, const MpVector& v);

}  // namespace sdf
