// kernels.hpp — runtime-dispatched raw max-plus lane kernels.
//
// The SoA matrix layout (matrix.hpp) stores a row as a contiguous int64_t
// lane array with kMpRawMinusInf == INT64_MIN encoding −∞.  Every dense
// hot loop in the library — the column-block inner loop of
// MpMatrix::multiply, the dense-SCC relaxation of Karp, the Floyd row
// update of mp_closure — is the same primitive over such rows:
//
//     out[i] = max(out[i], row[i] ⊗ a)        (⊗ = max-plus multiply = +)
//
// with the sentinel absorbing: row[i] == −∞ contributes nothing, and
// INT64_MIN being the smallest int64 makes plain signed max correct for
// every other lane.  That one primitive is what gets vectorized: AVX-512
// uses native vpmaxsq plus a compare mask for the sentinel blend; AVX2
// emulates the 64-bit signed max with vpcmpgtq + blend; the scalar tier is
// the portable fallback (and the differential baseline the others are
// tested against).
//
// OVERFLOW CONTRACT: axpy_max adds *unchecked*.  Callers must prove, before
// entering the kernel, that |row[i]| + |a| cannot exceed INT64_MAX for any
// finite lane (see MpMatrix::max_abs_finite and the per-kernel safe-bound
// checks); inputs outside that bound take the checked scalar fallback paths
// instead, so exactness is never at risk.  The bound also keeps a finite
// sum from colliding with the INT64_MIN sentinel.
#pragma once

#include <cstddef>

#include "base/cpudispatch.hpp"
#include "maxplus/value.hpp"

namespace sdf {

/// One tier's kernel table.  Grown as more primitives vectorize; every
/// entry must be bit-identical to the scalar tier on every input that
/// satisfies the overflow contract.
struct MpKernels {
    IsaTier tier = IsaTier::scalar;

    /// out[i] = max(out[i], row[i] + a) for i in [0, n); lanes equal to
    /// kMpRawMinusInf in `row` are skipped (−∞ is absorbing for ⊗).
    /// `out` lanes may be kMpRawMinusInf (it loses every signed max).
    /// Unchecked: see the overflow contract above.  `out` and `row` may
    /// alias exactly (in-place row relaxation); partial overlap is UB.
    void (*axpy_max)(Int* out, const Int* row, Int a, std::size_t n) = nullptr;
};

/// Per-tier tables; null when the tier is not compiled into this build.
/// (CPU support is the dispatcher's job, not the tables'.)
const MpKernels* mp_kernels_scalar();
const MpKernels* mp_kernels_avx2();
const MpKernels* mp_kernels_avx512();

/// The table for `tier`, or null when it is not compiled in.
const MpKernels* mp_kernels_for(IsaTier tier);

/// The table for active_isa_tier() (base/cpudispatch.hpp): detection plus
/// the SDFRED_ISA override.  Fetch once per kernel invocation, not per row.
const MpKernels& mp_kernels();

}  // namespace sdf
