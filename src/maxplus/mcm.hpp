// mcm.hpp — maximum cycle mean / maximum cycle ratio solvers.
//
// Throughput of a strongly dependent SDF graph is 1/λ per iteration, where
// λ is:
//   * the max-plus eigenvalue of the iteration's symbolic matrix, i.e. the
//     maximum cycle MEAN (sum of weights / number of edges) of the matrix's
//     precedence graph — computed exactly with Karp's algorithm; or
//   * the maximum cycle RATIO (sum of execution times / sum of initial
//     tokens) of an HSDF graph — computed exactly with a Lawler-style
//     parametric search that walks the Stern–Brocot tree, each step deciding
//     "is there a cycle with ratio > p/q?" by integer Bellman–Ford on the
//     reweighted graph q·w − p·d.  A floating-point Howard policy-iteration
//     solver is provided as an ablation baseline (cf. Dasdan/Irani/Gupta,
//     DAC'99, cited as [5] in the paper).
#pragma once

#include <optional>

#include "base/digraph.hpp"
#include "base/rational.hpp"

namespace sdf {

/// Classification of a cycle-metric query.
enum class CycleOutcome {
    no_cycle,  ///< the graph is acyclic: no constraint, period −∞
    infinite,  ///< a cycle with positive weight and zero tokens: deadlock
    finite,    ///< a well-defined maximum exists
};

/// Result of an exact cycle-metric computation; `value` is meaningful only
/// when `outcome == finite`.
struct CycleMetric {
    CycleOutcome outcome = CycleOutcome::no_cycle;
    Rational value;

    [[nodiscard]] bool is_finite() const { return outcome == CycleOutcome::finite; }
};

/// Result of the floating-point Howard solver.
struct CycleMetricDouble {
    CycleOutcome outcome = CycleOutcome::no_cycle;
    double value = 0.0;
};

/// Maximum cycle mean max_C (Σ weight) / |C| over all directed cycles C,
/// by Karp's theorem applied per strongly connected component.  Edge token
/// counts are ignored (every edge counts as one step).  Exact.  The
/// independent per-SCC runs are dispatched on the global thread pool
/// (base/thread_pool.hpp; sized by SDFRED_THREADS).
CycleMetric max_cycle_mean_karp(const Digraph& graph);

/// Karp's algorithm on ONE strongly connected component, given as local
/// edges over `n` dense nodes with at least one edge on a cycle.  The
/// building block behind max_cycle_mean_karp, exposed for the certificate
/// layer (maxplus/mcm_certificate.hpp) so a dirty-SCC re-solve runs the
/// byte-identical kernel the full solve would.
Rational karp_on_component(const std::vector<DigraphEdge>& edges, std::size_t n);

/// Single-threaded max_cycle_mean_karp: the serial baseline the benchmarks
/// record next to the pooled version.  Identical results.
CycleMetric max_cycle_mean_karp_serial(const Digraph& graph);

/// Maximum cycle ratio max_C (Σ weight) / (Σ tokens) over directed cycles.
/// Requires non-negative weights and non-negative token counts.  Cycles with
/// zero tokens and positive weight make the ratio infinite; zero-weight
/// zero-token cycles are ignored.  Exact (Stern–Brocot parametric search).
CycleMetric max_cycle_ratio_exact(const Digraph& graph);

/// Same metric as max_cycle_ratio_exact but with Howard's policy iteration
/// on doubles; used only as an ablation/performance baseline.
CycleMetricDouble max_cycle_ratio_howard(const Digraph& graph);

/// True when the subgraph of zero-token edges contains a directed cycle
/// (an HSDF deadlock / infinite cycle ratio witness).
bool has_zero_token_cycle(const Digraph& graph);

/// Decision procedure used by the parametric search, exposed for tests:
/// true iff the graph has a directed cycle whose reweighted length
/// Σ (den·weight − num·tokens) is strictly positive.
bool has_positive_cycle(const Digraph& graph, Int num, Int den);

/// True iff after reweighting with q·w − p·d (which must admit no strictly
/// positive cycle) some cycle has reweighted length exactly zero, i.e. the
/// maximum cycle ratio equals p/q.
bool has_zero_cycle(const Digraph& graph, Int num, Int den);

}  // namespace sdf
