#include "maxplus/stamp.hpp"

#include <algorithm>
#include <ostream>

#include "base/errors.hpp"

namespace sdf {

MpStamp MpStamp::unit(std::size_t index) {
    auto data = std::make_shared<Data>();
    data->index.push_back(static_cast<std::uint32_t>(index));
    data->value.push_back(0);
    MpStamp s;
    s.data_ = std::move(data);
    return s;
}

MpStamp MpStamp::from_entries(std::vector<std::pair<std::uint32_t, Int>> entries) {
    if (entries.empty()) {
        return MpStamp{};
    }
    auto data = std::make_shared<Data>();
    data->index.reserve(entries.size());
    data->value.reserve(entries.size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i > 0 && entries[i].first <= entries[i - 1].first) {
            throw ArithmeticError("stamp entries must be sorted and unique");
        }
        data->index.push_back(entries[i].first);
        data->value.push_back(entries[i].second);
    }
    MpStamp s;
    s.data_ = std::move(data);
    return s;
}

MpStamp MpStamp::from_vector(const MpVector& dense) {
    auto data = std::make_shared<Data>();
    for (std::size_t i = 0; i < dense.size(); ++i) {
        if (dense[i].is_finite()) {
            data->index.push_back(static_cast<std::uint32_t>(i));
            data->value.push_back(dense[i].value());
        }
    }
    MpStamp s;
    if (!data->index.empty()) {
        s.data_ = std::move(data);
    }
    return s;
}

MpValue MpStamp::at(std::size_t index) const {
    if (!data_) {
        return MpValue::minus_infinity();
    }
    const auto it = std::lower_bound(data_->index.begin(), data_->index.end(),
                                     static_cast<std::uint32_t>(index));
    if (it == data_->index.end() || *it != index) {
        return MpValue::minus_infinity();
    }
    const std::size_t pos = static_cast<std::size_t>(it - data_->index.begin());
    return MpValue(checked_add(data_->value[pos], offset_));
}

MpStamp MpStamp::max_with(const MpStamp& other) const {
    if (!data_) {
        return other;
    }
    if (!other.data_) {
        return *this;
    }
    // Same storage: max(v + o1, v + o2) = v + max(o1, o2), so the handle
    // with the larger offset IS the result — no merge, no allocation.  This
    // is the hot case when an actor consumes several tokens produced by the
    // same upstream firing.
    if (data_ == other.data_) {
        return offset_ >= other.offset_ ? *this : other;
    }

    const Data& a = *data_;
    const Data& b = *other.data_;
    auto merged = std::make_shared<Data>();
    merged->index.reserve(a.index.size() + b.index.size());
    merged->value.reserve(a.index.size() + b.index.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.index.size() && j < b.index.size()) {
        if (a.index[i] < b.index[j]) {
            merged->index.push_back(a.index[i]);
            merged->value.push_back(checked_add(a.value[i], offset_));
            ++i;
        } else if (b.index[j] < a.index[i]) {
            merged->index.push_back(b.index[j]);
            merged->value.push_back(checked_add(b.value[j], other.offset_));
            ++j;
        } else {
            merged->index.push_back(a.index[i]);
            merged->value.push_back(std::max(checked_add(a.value[i], offset_),
                                             checked_add(b.value[j], other.offset_)));
            ++i;
            ++j;
        }
    }
    for (; i < a.index.size(); ++i) {
        merged->index.push_back(a.index[i]);
        merged->value.push_back(checked_add(a.value[i], offset_));
    }
    for (; j < b.index.size(); ++j) {
        merged->index.push_back(b.index[j]);
        merged->value.push_back(checked_add(b.value[j], other.offset_));
    }
    MpStamp s;
    s.data_ = std::move(merged);
    return s;
}

MpStamp MpStamp::max_of(const std::vector<MpStamp>& stamps) {
    // Cheap exits first: empty batches, a single non-bottom stamp, and the
    // all-same-storage case (one refcounted handle wins outright).
    const MpStamp* single = nullptr;
    std::size_t non_bottom = 0;
    std::size_t total = 0;
    for (const MpStamp& s : stamps) {
        if (s.is_bottom()) {
            continue;
        }
        ++non_bottom;
        total += s.support();
        if (!single || (single->data_ == s.data_ && s.offset_ > single->offset_)) {
            single = &s;
        }
    }
    if (non_bottom == 0) {
        return MpStamp{};
    }
    if (non_bottom == 1) {
        return *single;
    }
    bool all_shared = true;
    for (const MpStamp& s : stamps) {
        if (!s.is_bottom() && s.data_ != single->data_) {
            all_shared = false;
            break;
        }
    }
    if (all_shared) {
        return *single;
    }
    // Gather every finite entry with its offset applied, sort by index, and
    // keep the maximum per index.
    std::vector<std::pair<std::uint32_t, Int>> gathered;
    gathered.reserve(total);
    for (const MpStamp& s : stamps) {
        if (s.is_bottom()) {
            continue;
        }
        for (std::size_t i = 0; i < s.data_->index.size(); ++i) {
            gathered.emplace_back(s.data_->index[i], checked_add(s.data_->value[i], s.offset_));
        }
    }
    std::sort(gathered.begin(), gathered.end());
    auto data = std::make_shared<Data>();
    data->index.reserve(gathered.size());
    data->value.reserve(gathered.size());
    for (const auto& [index, value] : gathered) {
        if (!data->index.empty() && data->index.back() == index) {
            data->value.back() = std::max(data->value.back(), value);
        } else {
            data->index.push_back(index);
            data->value.push_back(value);
        }
    }
    MpStamp result;
    result.data_ = std::move(data);
    return result;
}

MpStamp MpStamp::plus(Int scalar) const {
    if (!data_) {
        return MpStamp{};  // −∞ absorbs the addition
    }
    MpStamp s = *this;
    s.offset_ = checked_add(s.offset_, scalar);
    return s;
}

MpValue MpStamp::max_entry() const {
    if (!data_) {
        return MpValue::minus_infinity();
    }
    Int best = data_->value[0];
    for (const Int v : data_->value) {
        best = std::max(best, v);
    }
    return MpValue(checked_add(best, offset_));
}

MpVector MpStamp::to_vector(std::size_t size) const {
    MpVector dense(size);
    for_each([&](std::size_t index, Int value) {
        if (index >= size) {
            throw ArithmeticError("stamp support index out of densify range");
        }
        dense[index] = MpValue(value);
    });
    return dense;
}

bool operator==(const MpStamp& a, const MpStamp& b) {
    if (a.support() != b.support()) {
        return false;
    }
    if (!a.data_) {
        return true;
    }
    for (std::size_t i = 0; i < a.data_->index.size(); ++i) {
        if (a.data_->index[i] != b.data_->index[i] ||
            checked_add(a.data_->value[i], a.offset_) !=
                checked_add(b.data_->value[i], b.offset_)) {
            return false;
        }
    }
    return true;
}

std::string MpStamp::to_string() const {
    std::string out = "{";
    bool first = true;
    for_each([&](std::size_t index, Int value) {
        if (!first) {
            out += ", ";
        }
        first = false;
        out += std::to_string(index) + ": " + std::to_string(value);
    });
    out += "}";
    return out;
}

std::ostream& operator<<(std::ostream& os, const MpStamp& s) {
    return os << s.to_string();
}

}  // namespace sdf
