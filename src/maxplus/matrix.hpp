// matrix.hpp — max-plus matrices.
//
// The symbolic execution of one SDF iteration (Algorithm 1) produces a
// square matrix G over the initial tokens: the stamp of new token k is
// t'_k = max_j (t_j + G(j,k)).  In max-plus algebra one iteration is the
// linear map t' = Gᵀ ⊗ t, and the iteration period of the graph — hence its
// throughput — is the max-plus eigenvalue of G, i.e. the maximum cycle mean
// of G's precedence graph (see mcm.hpp).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "base/digraph.hpp"
#include "maxplus/vector.hpp"

namespace sdf {

/// A square or rectangular matrix over the max-plus semiring, stored dense
/// row-major.  Row index j, column index k; entry (j,k) is read throughout
/// the library as "new token k keeps distance G(j,k) to old token j".
class MpMatrix {
public:
    MpMatrix() = default;

    /// rows×cols matrix of −∞ entries.  Throws ArithmeticError when the
    /// entry count overflows size_t (an unchecked rows*cols would wrap and
    /// allocate a too-small buffer, turning every set() into UB).
    MpMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), entries_(checked_entry_count(rows, cols)) {}

    /// The max-plus identity: 0 on the diagonal, −∞ elsewhere.
    static MpMatrix identity(std::size_t size);

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }

    [[nodiscard]] MpValue at(std::size_t row, std::size_t col) const {
        return entries_[row * cols_ + col];
    }
    void set(std::size_t row, std::size_t col, MpValue value) {
        entries_[row * cols_ + col] = value;
    }

    /// Installs max-plus vector `stamp` as column `col` (the stamp of the
    /// col-th new token).
    void set_column(std::size_t col, const MpVector& stamp);

    /// Extracts column `col` as a vector.
    [[nodiscard]] MpVector column(std::size_t col) const;

    /// Number of finite entries.
    [[nodiscard]] std::size_t finite_entry_count() const;

    /// Fraction of entries that are finite (0 for an empty matrix).
    [[nodiscard]] double density() const;

    /// Max-plus matrix product (A ⊗ B)(i,k) = max_j A(i,j) + B(j,k);
    /// composing two iterations of the graph.  Sparsity-aware: B is indexed
    /// by per-row finite supports (−∞ rows and columns cost nothing), the
    /// inner loops run over raw entry pointers in column blocks sized for
    /// L1, and independent row blocks are dispatched on the global thread
    /// pool.  Produces exactly the same matrix as multiply_naive.
    [[nodiscard]] MpMatrix multiply(const MpMatrix& other) const;

    /// The reference O(rows·cols·cols) triple loop the optimized kernel is
    /// differentially tested against.
    [[nodiscard]] MpMatrix multiply_naive(const MpMatrix& other) const;

    /// Max-plus matrix power by repeated squaring; `exponent` >= 0; the
    /// matrix must be square.  Power 0 is the identity, power 1 a copy —
    /// both short-circuit without any multiply.
    [[nodiscard]] MpMatrix power(Int exponent) const;

    /// Largest finite entry (−∞ when there is none).
    [[nodiscard]] MpValue max_entry() const;

    /// The precedence graph of a square matrix: one node per index, one edge
    /// j -> k with weight G(j,k) and one token per finite entry.  Its maximum
    /// cycle mean is the max-plus eigenvalue of the matrix.
    [[nodiscard]] Digraph precedence_graph() const;

    friend bool operator==(const MpMatrix& a, const MpMatrix& b) = default;

    /// Multi-line rendering for debugging and the experiment logs.
    [[nodiscard]] std::string to_string() const;

private:
    static std::size_t checked_entry_count(std::size_t rows, std::size_t cols);

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<MpValue> entries_;
};

std::ostream& operator<<(std::ostream& os, const MpMatrix& m);

}  // namespace sdf
