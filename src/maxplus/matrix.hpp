// matrix.hpp — max-plus matrices.
//
// The symbolic execution of one SDF iteration (Algorithm 1) produces a
// square matrix G over the initial tokens: the stamp of new token k is
// t'_k = max_j (t_j + G(j,k)).  In max-plus algebra one iteration is the
// linear map t' = Gᵀ ⊗ t, and the iteration period of the graph — hence its
// throughput — is the max-plus eigenvalue of G, i.e. the maximum cycle mean
// of G's precedence graph (see mcm.hpp).
//
// Storage is structure-of-arrays: a row is one contiguous int64_t lane
// array with kMpRawMinusInf (INT64_MIN) encoding −∞, not an array of
// 16-byte MpValue structs.  That halves the footprint and lets the dense
// inner loops run the runtime-dispatched SIMD kernels of kernels.hpp
// directly over raw rows.  The MpValue accessors convert at the edge; the
// one semantic consequence is that the finite value INT64_MIN is reserved
// for the sentinel and set() rejects it (it is unreachable from SDF inputs,
// whose times are naturals, and from checked arithmetic over them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "base/digraph.hpp"
#include "maxplus/vector.hpp"

namespace sdf {

/// A square or rectangular matrix over the max-plus semiring, stored dense
/// row-major.  Row index j, column index k; entry (j,k) is read throughout
/// the library as "new token k keeps distance G(j,k) to old token j".
class MpMatrix {
public:
    MpMatrix() = default;

    /// rows×cols matrix of −∞ entries.  Throws ArithmeticError when the
    /// entry count overflows size_t (an unchecked rows*cols would wrap and
    /// allocate a too-small buffer, turning every set() into UB).
    MpMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols),
          entries_(checked_entry_count(rows, cols), kMpRawMinusInf) {}

    /// The max-plus identity: 0 on the diagonal, −∞ elsewhere.
    static MpMatrix identity(std::size_t size);

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }

    [[nodiscard]] MpValue at(std::size_t row, std::size_t col) const {
        const Int raw = entries_[row * cols_ + col];
        return raw == kMpRawMinusInf ? MpValue::minus_infinity() : MpValue(raw);
    }
    void set(std::size_t row, std::size_t col, MpValue value) {
        entries_[row * cols_ + col] = checked_raw(value);
    }

    /// Row `row` as a raw sentinel-encoded lane array of cols() entries
    /// (see the file comment); the storage the SIMD kernels run over.
    [[nodiscard]] const Int* raw_row(std::size_t row) const {
        return entries_.data() + row * cols_;
    }
    [[nodiscard]] Int* raw_row(std::size_t row) { return entries_.data() + row * cols_; }

    /// Installs max-plus vector `stamp` as column `col` (the stamp of the
    /// col-th new token).
    void set_column(std::size_t col, const MpVector& stamp);

    /// Extracts column `col` as a vector.
    [[nodiscard]] MpVector column(std::size_t col) const;

    /// Number of finite entries.
    [[nodiscard]] std::size_t finite_entry_count() const;

    /// Fraction of entries that are finite (0 for an empty matrix).
    [[nodiscard]] double density() const;

    /// Max-plus matrix product (A ⊗ B)(i,k) = max_j A(i,j) + B(j,k);
    /// composing two iterations of the graph.  Sparsity-aware and blocked
    /// for L1 as before, with a two-speed overflow strategy: when
    /// max_abs_finite(A) + max_abs_finite(B) fits int64 no product entry
    /// can overflow, so the inner loops run unchecked — dense B rows
    /// through the runtime-dispatched SIMD kernels (kernels.hpp), sparse
    /// rows through an unchecked scalar CSR loop.  Otherwise every addition
    /// goes through multiply_checked.  Independent row blocks run on the
    /// global thread pool; temporaries live in per-thread arenas.  Produces
    /// exactly the same matrix (or the same ArithmeticError) as
    /// multiply_naive.
    [[nodiscard]] MpMatrix multiply(const MpMatrix& other) const;

    /// The pre-SIMD blocked kernel: sparsity-aware column-blocked loops
    /// with overflow-checked additions.  It is the fallback multiply takes
    /// when the safe-magnitude bound fails, and the baseline the bench
    /// gate measures the SIMD path against.
    [[nodiscard]] MpMatrix multiply_checked(const MpMatrix& other) const;

    /// The reference O(rows·cols·cols) triple loop the optimized kernels
    /// are differentially tested against.
    [[nodiscard]] MpMatrix multiply_naive(const MpMatrix& other) const;

    /// Largest |value| over the finite entries (0 when there are none).
    /// multiply's safe-magnitude bound: a ⊗-product of two matrices cannot
    /// overflow when the two maxima sum below INT64_MAX.
    [[nodiscard]] std::uint64_t max_abs_finite() const;

    /// Max-plus matrix power by repeated squaring; `exponent` >= 0; the
    /// matrix must be square.  Power 0 is the identity, power 1 a copy —
    /// both short-circuit without any multiply.
    [[nodiscard]] MpMatrix power(Int exponent) const;

    /// Largest finite entry (−∞ when there is none).
    [[nodiscard]] MpValue max_entry() const;

    /// The precedence graph of a square matrix: one node per index, one edge
    /// j -> k with weight G(j,k) and one token per finite entry.  Its maximum
    /// cycle mean is the max-plus eigenvalue of the matrix.
    [[nodiscard]] Digraph precedence_graph() const;

    friend bool operator==(const MpMatrix& a, const MpMatrix& b) = default;

    /// Multi-line rendering for debugging and the experiment logs.
    [[nodiscard]] std::string to_string() const;

private:
    static std::size_t checked_entry_count(std::size_t rows, std::size_t cols);

    /// The raw lane for `value`; rejects finite INT64_MIN, which would
    /// alias the −∞ sentinel (see the file comment).
    static Int checked_raw(MpValue value);

    void multiply_into(const MpMatrix& other, MpMatrix& result, bool checked) const;

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Int> entries_;  ///< row-major raw lanes; kMpRawMinusInf = −∞
};

std::ostream& operator<<(std::ostream& os, const MpMatrix& m);

}  // namespace sdf
