// eigen.hpp — max-plus eigenvalue and eigenvector.
//
// For an irreducible max-plus matrix G (strongly connected precedence
// graph) the eigenvalue λ is the maximum cycle mean (mcm.hpp) and an
// eigenvector v satisfies G ⊗ v = λ ⊗ v.  The eigenvector is the steady
// slope of repeated iteration — for an SDF iteration matrix it gives the
// asymptotic token production offsets within a period, the algebraic twin
// of the static schedule in analysis/static_schedule.hpp (cf. Baccelli et
// al. [1]).
//
// Construction: reweight edge (j,k) of the precedence graph to
// G(j,k) − λ (no positive cycles remain, the critical cycles become zero)
// and take longest-path distances *to* a critical node.  Entries are exact
// Rationals because λ is rational while matrix entries are integers.
#pragma once

#include <vector>

#include "base/rational.hpp"
#include "maxplus/matrix.hpp"

namespace sdf {

/// Eigenvalue/eigenvector pair of an irreducible max-plus matrix.
struct MpEigen {
    Rational eigenvalue;
    std::vector<Rational> eigenvector;  ///< one finite entry per index
};

/// Computes λ and an eigenvector of a square matrix whose precedence graph
/// is strongly connected with at least one edge; throws ArithmeticError
/// otherwise.
MpEigen mp_eigen(const MpMatrix& matrix);

/// Verifies G ⊗ v = λ ⊗ v exactly, reading the matrix with the library's
/// column convention (new index k depends on old j): for every k,
/// max_j (v[j] + G(j,k)) == λ + v[k].
bool is_eigenpair(const MpMatrix& matrix, const MpEigen& eigen);

}  // namespace sdf
