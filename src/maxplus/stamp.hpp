// stamp.hpp — sparse symbolic time stamps for Algorithm 1.
//
// The stamps pushed around by the symbolic execution are max-plus vectors
// indexed by the initial tokens, and they are overwhelmingly −∞: a token
// produced early in the iteration depends on a handful of initial tokens,
// not on all N of them.  MpStamp stores only the finite entries as sorted
// (index, value) pairs in *shared immutable* storage, so
//
//   * producing p copies of a stamp is p refcount bumps, not p length-N
//     vector copies;
//   * elapsing execution time is O(1): the scalar is folded into a lazy
//     `offset` applied on read, the storage is untouched;
//   * synchronising two stamps is a sorted merge in O(support), and the
//     common case of merging a stamp with a later copy of itself (same
//     storage, different offsets) is O(1) — the larger offset wins.
//
// The dense MpVector path remains in transform/symbolic.cpp behind the same
// interface; the differential property tests hold the two representations
// equal on hundreds of random graphs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "maxplus/vector.hpp"

namespace sdf {

/// A sparse max-plus vector: finite entries only, sorted by index, behind a
/// copy-on-write shared pointer.  The all-−∞ stamp ("bottom") is the empty
/// (null-storage) stamp; it carries no length, so stamps of any nominal
/// dimension mix freely (exactly like mathematical max-plus vectors, whose
/// −∞ tail is implicit).
class MpStamp {
public:
    /// Bottom: every entry −∞.
    MpStamp() = default;

    /// The unit stamp: 0 at `index`, −∞ elsewhere (the initial stamp of
    /// initial token `index`).
    static MpStamp unit(std::size_t index);

    /// A stamp with the given sorted, duplicate-free finite entries.
    static MpStamp from_entries(std::vector<std::pair<std::uint32_t, Int>> entries);

    /// The sparse view of a dense vector (finite entries only).
    static MpStamp from_vector(const MpVector& dense);

    /// Number of finite entries.
    [[nodiscard]] std::size_t support() const { return data_ ? data_->index.size() : 0; }

    /// True when every entry is −∞.
    [[nodiscard]] bool is_bottom() const { return !data_; }

    /// The entry at `index` (−∞ when not in the support).
    [[nodiscard]] MpValue at(std::size_t index) const;

    /// Element-wise max (synchronisation of two symbolic stamps).
    [[nodiscard]] MpStamp max_with(const MpStamp& other) const;

    /// Element-wise max over a whole batch in one pass: gather, sort,
    /// reduce.  O(S log S) for S total finite entries, against the O(k·S)
    /// of folding max_with over k stamps — the difference at high-fan-in
    /// joins (an actor consuming hundreds of tokens).
    static MpStamp max_of(const std::vector<MpStamp>& stamps);

    /// Adds a finite scalar to every finite entry (elapsing execution
    /// time).  O(1): only the lazy offset moves.
    [[nodiscard]] MpStamp plus(Int scalar) const;

    /// The largest entry (−∞ for bottom).
    [[nodiscard]] MpValue max_entry() const;

    /// Densifies to an MpVector of length `size`; every support index must
    /// be < size.
    [[nodiscard]] MpVector to_vector(std::size_t size) const;

    /// Calls visit(index, value) for every finite entry in index order.
    template <typename Visit>
    void for_each(Visit&& visit) const {
        if (!data_) {
            return;
        }
        for (std::size_t i = 0; i < data_->index.size(); ++i) {
            visit(static_cast<std::size_t>(data_->index[i]),
                  checked_add(data_->value[i], offset_));
        }
    }

    /// True when both stamps denote the same max-plus vector (offsets are
    /// normalised away; storage identity does not matter).
    friend bool operator==(const MpStamp& a, const MpStamp& b);

    /// "{2: 5, 7: 0}" — finite entries only; "{}" for bottom.
    [[nodiscard]] std::string to_string() const;

private:
    /// Immutable refcounted payload: structure-of-arrays keeps the index
    /// scan of the merge kernel dense in cache.
    struct Data {
        std::vector<std::uint32_t> index;  // sorted, unique
        std::vector<Int> value;            // parallel to index
    };

    std::shared_ptr<const Data> data_;  // null encodes bottom
    Int offset_ = 0;                    // lazily added to every value
};

std::ostream& operator<<(std::ostream& os, const MpStamp& s);

}  // namespace sdf
