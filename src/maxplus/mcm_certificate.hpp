// mcm_certificate.hpp — maximum cycle mean with a re-checkable certificate.
//
// max_cycle_mean_karp (maxplus/mcm.hpp) answers "what is λ?"; this layer
// additionally answers "why is it λ?" so the answer can be *refined* after
// edge-weight edits instead of recomputed.  Per cyclic SCC the certificate
// stores the classical pair of witnesses for λ = p/q:
//
//   * feasible potentials π: under the reweighting w′ = q·w − p every edge
//     satisfies π(u) + w′ ≤ π(v), which proves NO cycle has mean > λ
//     (summing the inequality around any cycle gives Σw′ ≤ 0); and
//   * one critical cycle: a cycle whose edges are all tight
//     (π(u) + w′ = π(v)), hence Σw′ = 0, which proves λ IS achieved.
//
// After a weight-only delta both witnesses are O(1) per edge to re-check:
// if every changed edge still has non-positive reweighted slack and the
// critical cycle still sums to zero, λ is unchanged and the certificate
// carries over untouched.  Only when a check fails does the dirty SCC
// re-run Karp (via karp_on_component — the byte-identical kernel the full
// solve uses); clean SCCs are never revisited.  Weight edits cannot change
// SCC membership, so the condensation is computed once and reused forever.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/digraph.hpp"
#include "maxplus/mcm.hpp"

namespace sdf {

/// Certificate for one strongly connected component.  Node/edge endpoints
/// are LOCAL dense indices; `nodes`/`edge_ids` map them back to the global
/// graph.  Immutable once built — refinement copies-on-write.
struct McmSccCert {
    std::vector<std::size_t> nodes;     ///< global node id per local node
    std::vector<DigraphEdge> edges;     ///< local endpoints, current weights
    std::vector<std::size_t> edge_ids;  ///< global edge id per local edge
    bool cyclic = false;                ///< has at least one cycle (λ defined)
    Rational lambda;                    ///< max cycle mean; valid when cyclic
    bool certified = false;  ///< π/critical valid (false ⇒ always re-solve)
    std::vector<Int> potential;         ///< π per local node (reweighted LP)
    std::vector<std::size_t> critical;  ///< local edge indices of one tight cycle
};

/// One edge-weight change: global edge `edge` now weighs `weight`.
struct EdgeWeightDelta {
    std::size_t edge = 0;
    Int weight = 0;
};

/// The full certified answer: the metric plus per-SCC certificates and the
/// global-edge → (SCC, local edge) index used to route deltas.
struct McmCertificate {
    /// Marks a cross-SCC edge in `edge_home` (never part of any cycle).
    static constexpr std::uint32_t kCross = 0xffffffffu;

    struct EdgeHome {
        std::uint32_t scc = kCross;  ///< SCC index, or kCross
        std::uint32_t local = 0;     ///< local edge index inside that SCC
    };

    CycleMetric metric;  ///< identical to max_cycle_mean_karp on the graph
    std::vector<std::shared_ptr<const McmSccCert>> sccs;
    std::vector<EdgeHome> edge_home;  ///< per global edge id
};

/// Karp per cyclic SCC (dispatched on the global thread pool, like
/// max_cycle_mean_karp) plus certificate construction.  `metric` is
/// bit-identical to max_cycle_mean_karp(graph).  Certification can fail
/// per-SCC (checked-arithmetic overflow while reweighting); the λ is still
/// exact, the SCC just loses its fast-path and always re-solves on touch.
McmCertificate max_cycle_mean_certified(const Digraph& graph);

/// Applies weight-only `deltas` to `cert` and returns the updated
/// certificate.  Cross-SCC edges are absorbed for free; a touched SCC whose
/// witnesses still hold keeps its λ in O(changed + |critical|); otherwise
/// only that SCC re-runs Karp.  `rescored`, when non-null, receives the
/// number of SCCs that had to re-solve (the bench's honesty counter).
/// Deltas must reference edges of the graph `cert` was built from.
McmCertificate refine_cycle_mean(const McmCertificate& cert,
                                 const std::vector<EdgeWeightDelta>& deltas,
                                 std::size_t* rescored = nullptr);

}  // namespace sdf
