// transient.hpp — transient length and cyclicity of max-plus matrix powers.
//
// For a matrix G with eigenvalue λ, the powers eventually become periodic
// up to the linear growth λ (the max-plus cyclicity theorem):
//
//     G^(k+c)  =  λ·c ⊗ G^k        for all k >= k0,
//
// with c the cyclicity and k0 the transient.  For an SDF iteration matrix
// this says: after k0 warm-up iterations the self-timed execution is
// exactly periodic, repeating every c iterations with λ time units per
// iteration — the quantity the state-space method of [8] discovers by
// explicit simulation, computed here algebraically.
#pragma once

#include <optional>

#include "base/rational.hpp"
#include "maxplus/matrix.hpp"

namespace sdf {

/// Result of the transient search.
struct TransientAnalysis {
    Int transient = 0;   ///< k0: first power from which periodicity holds
    Int cyclicity = 0;   ///< c: period of the power sequence
    Rational rate;       ///< λ: growth per power (the eigenvalue)
};

/// Searches for (k0, c) with G^(k0+c) = λ·c ⊗ G^(k0), trying powers up to
/// `max_power`.  Returns std::nullopt when no periodicity shows within the
/// budget (e.g. reducible matrices with incommensurate SCC rates can have
/// very long transients).  Requires a square matrix whose precedence graph
/// has a cycle (so λ exists).
std::optional<TransientAnalysis> transient_analysis(const MpMatrix& matrix,
                                                    Int max_power = 256);

}  // namespace sdf
