// closure.hpp — the max-plus Kleene star (metric closure).
//
// A*(i,j) = max over all walks i→j (including the empty walk when i = j)
// of their weight — defined exactly when the matrix has no positive cycle
// (otherwise entries diverge).  For a (G − λ)-reweighted iteration matrix
// the closure collects the tightest cumulative distances between initial
// tokens; its columns at critical nodes are the eigenvectors (eigen.hpp),
// and A* is the algebraic form of the "minimum distances" the reduced
// HSDF's matrix actors enforce pair-wise.
#pragma once

#include <optional>

#include "maxplus/matrix.hpp"

namespace sdf {

/// Computes A* = I ⊕ A ⊕ A² ⊕ … for a square matrix.  Returns std::nullopt
/// when A has a cycle of positive weight (the series diverges).  Uses the
/// Floyd–Warshall-style max-plus recursion, O(n³).
std::optional<MpMatrix> mp_closure(const MpMatrix& matrix);

/// True when the matrix's precedence graph has a cycle of strictly
/// positive total weight.
bool has_positive_weight_cycle(const MpMatrix& matrix);

}  // namespace sdf
