#include "maxplus/transient.hpp"

#include <vector>

#include "base/errors.hpp"
#include "maxplus/mcm.hpp"
#include "robust/budget.hpp"

namespace sdf {

namespace {

/// True when b == a with every finite entry shifted by `shift` (and the
/// same −∞ pattern).  Scans the raw sentinel-encoded lanes directly — the
/// power-ladder comparison is quadratic in matrix size and runs once per
/// (k0, c) candidate, so decoding MpValues here showed up in profiles.
bool shifted_equal(const MpMatrix& a, const MpMatrix& b, Int shift) {
    SDFRED_CHECKPOINT();
    for (std::size_t i = 0; i < a.rows(); ++i) {
        const Int* ra = a.raw_row(i);
        const Int* rb = b.raw_row(i);
        for (std::size_t j = 0; j < a.cols(); ++j) {
            if ((ra[j] == kMpRawMinusInf) != (rb[j] == kMpRawMinusInf)) {
                return false;
            }
            if (ra[j] != kMpRawMinusInf && checked_add(ra[j], shift) != rb[j]) {
                return false;
            }
        }
    }
    return true;
}

}  // namespace

std::optional<TransientAnalysis> transient_analysis(const MpMatrix& matrix,
                                                    Int max_power) {
    if (matrix.rows() != matrix.cols()) {
        throw ArithmeticError("transient_analysis requires a square matrix");
    }
    const CycleMetric metric = max_cycle_mean_karp(matrix.precedence_graph());
    if (!metric.is_finite()) {
        throw ArithmeticError("transient_analysis: matrix has no eigenvalue "
                              "(acyclic precedence graph)");
    }
    const Rational lambda = metric.value;
    // λ·c is integral only when c is a multiple of den(λ); only such c can
    // satisfy the integer matrix equation.
    const Int base_cycle = lambda.den();

    std::vector<MpMatrix> powers;
    powers.push_back(MpMatrix::identity(matrix.rows()));  // G^0
    for (Int k = 1; k <= max_power; ++k) {
        SDFRED_CHECKPOINT();
        powers.push_back(powers.back().multiply(matrix));
    }
    for (Int k0 = 0; k0 <= max_power; ++k0) {
        for (Int c = base_cycle; k0 + c <= max_power; c += base_cycle) {
            const Int shift = (lambda * Rational(c)).num();  // integral by choice of c
            if (!shifted_equal(powers[static_cast<std::size_t>(k0)],
                               powers[static_cast<std::size_t>(k0 + c)], shift)) {
                continue;
            }
            // Candidate found; confirm it persists one more period when the
            // budget allows (G^(k0+2c) = shift ⊗ G^(k0+c)): periodicity at
            // k0 propagates to all later powers by multiplying both sides,
            // so one check suffices mathematically — this guards the
            // implementation, not the theorem.
            if (k0 + 2 * c <= max_power &&
                !shifted_equal(powers[static_cast<std::size_t>(k0 + c)],
                               powers[static_cast<std::size_t>(k0 + 2 * c)], shift)) {
                throw ArithmeticError("transient_analysis: periodicity did not persist");
            }
            return TransientAnalysis{k0, c, lambda};
        }
    }
    return std::nullopt;
}

}  // namespace sdf
