// kernels_avx512.cpp — AVX-512 tier of the raw max-plus kernels.
//
// Compiled with -mavx512f (only when the compiler supports it; otherwise
// the null-table stub below).  AVX-512F gives the native 64-bit signed max
// (vpmaxsq) and mask registers, so the −∞ sentinel costs one compare mask
// and a masked add: sentinel lanes keep −∞, every other lane takes b + a,
// and one vpmaxsq folds the result into the output.  Eight lanes per
// vector, unaligned loads/stores.
#include "maxplus/kernels.hpp"

#if defined(__AVX512F__)

// GCC's _mm512_max_epi64 expands through _mm512_undefined_epi32 (an
// intentionally uninitialised vector the mask variant never reads), which
// -Wmaybe-uninitialized flags when inlined here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <immintrin.h>

namespace sdf {

namespace {

void axpy_max_avx512(Int* out, const Int* row, Int a, std::size_t n) {
    const __m512i va = _mm512_set1_epi64(a);
    const __m512i sentinel = _mm512_set1_epi64(kMpRawMinusInf);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i b = _mm512_loadu_si512(row + i);
        const __mmask8 finite = _mm512_cmpneq_epi64_mask(b, sentinel);
        // Masked add: lanes outside `finite` take the first operand
        // (the sentinel vector), i.e. stay −∞.
        const __m512i sum = _mm512_mask_add_epi64(sentinel, finite, b, va);
        const __m512i o = _mm512_loadu_si512(out + i);
        _mm512_storeu_si512(out + i, _mm512_max_epi64(o, sum));  // vpmaxsq
    }
    for (; i < n; ++i) {
        const Int b = row[i];
        if (b == kMpRawMinusInf) {
            continue;
        }
        const Int sum = b + a;
        if (sum > out[i]) {
            out[i] = sum;
        }
    }
}

constexpr MpKernels kAvx512Kernels{IsaTier::avx512, &axpy_max_avx512};

}  // namespace

const MpKernels* mp_kernels_avx512() {
    return &kAvx512Kernels;
}

}  // namespace sdf

#else  // !__AVX512F__

namespace sdf {

const MpKernels* mp_kernels_avx512() {
    return nullptr;
}

}  // namespace sdf

#endif
