#include "maxplus/vector.hpp"

#include <ostream>

#include "base/errors.hpp"

namespace sdf {

MpVector MpVector::unit(std::size_t size, std::size_t index) {
    MpVector v(size);
    if (index >= size) {
        throw ArithmeticError("unit vector index out of range");
    }
    v.entries_[index] = MpValue(0);
    return v;
}

MpVector MpVector::max_with(const MpVector& other) const {
    if (entries_.size() != other.entries_.size()) {
        throw ArithmeticError("max of max-plus vectors of different lengths");
    }
    MpVector result(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        result.entries_[i] = mp_max(entries_[i], other.entries_[i]);
    }
    return result;
}

MpVector MpVector::plus(Int scalar) const {
    MpVector result(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        result.entries_[i] = mp_plus(entries_[i], MpValue(scalar));
    }
    return result;
}

MpValue MpVector::max_entry() const {
    MpValue best = MpValue::minus_infinity();
    for (const MpValue v : entries_) {
        best = mp_max(best, v);
    }
    return best;
}

bool MpVector::is_bottom() const {
    for (const MpValue v : entries_) {
        if (v.is_finite()) {
            return false;
        }
    }
    return true;
}

std::string MpVector::to_string() const {
    std::string out = "[";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (i > 0) {
            out += ", ";
        }
        out += entries_[i].to_string();
    }
    out += "]";
    return out;
}

std::ostream& operator<<(std::ostream& os, const MpVector& v) {
    return os << v.to_string();
}

std::ostream& operator<<(std::ostream& os, MpValue v) {
    return os << v.to_string();
}

}  // namespace sdf
