#include "maxplus/mcm.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "base/arena.hpp"
#include "base/errors.hpp"
#include "base/thread_pool.hpp"
#include "maxplus/kernels.hpp"
#include "robust/budget.hpp"

namespace sdf {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Longest-walk table for Karp's algorithm on one strongly connected
/// component, identified by a node list and the edges inside it.
struct SccView {
    std::vector<std::size_t> nodes;               // global indices
    std::vector<DigraphEdge> edges;               // endpoints remapped to local indices
};

std::vector<SccView> split_into_sccs(const Digraph& graph) {
    std::size_t component_count = 0;
    const auto component = graph.strongly_connected_components(&component_count);
    std::vector<SccView> views(component_count);
    std::vector<std::size_t> local_index(graph.node_count(), kNone);
    for (std::size_t v = 0; v < graph.node_count(); ++v) {
        local_index[v] = views[component[v]].nodes.size();
        views[component[v]].nodes.push_back(v);
    }
    for (const auto& e : graph.edges()) {
        if (component[e.from] == component[e.to]) {
            views[component[e.from]].edges.push_back(
                DigraphEdge{local_index[e.from], local_index[e.to], e.weight, e.tokens});
        }
    }
    return views;
}

/// Largest |weight| over the component's edges, in uint64 so INT64_MIN is
/// safe.
std::uint64_t max_abs_weight(const std::vector<DigraphEdge>& edges) {
    std::uint64_t best = 0;
    for (const auto& e : edges) {
        const auto raw = static_cast<std::uint64_t>(e.weight);
        const std::uint64_t mag = e.weight < 0 ? ~raw + 1 : raw;
        if (mag > best) {
            best = mag;
        }
    }
    return best;
}

Rational karp_on_scc(const SccView& scc) {
    return karp_on_component(scc.edges, scc.nodes.size());
}

}  // namespace

/// Karp's algorithm on one SCC that is known to contain at least one edge.
///
/// D[k][v] = maximum weight of a walk with exactly k edges from the source
/// (local node 0) to v, stored as one flat (n+1)×n raw lane table in the
/// calling thread's scratch arena with kMpRawMinusInf for "unreachable" —
/// the same encoding the SIMD kernels understand.  Every entry of D is a
/// walk of at most n edges, so when (n+1)·max|w| fits int64 no relaxation
/// can overflow (or alias the sentinel) and the inner loops run unchecked;
/// on dense SCCs (edges·8 ≥ n²) the per-k relaxation additionally collapses
/// into one axpy_max per reachable node over a dense adjacency built in the
/// arena.  Past the bound, the original checked edge loop runs unchanged.
Rational karp_on_component(const std::vector<DigraphEdge>& edges, std::size_t n) {
    robust_account_bytes((n + 1) * n * sizeof(Int));
    Arena& arena = scratch_arena();
    const Arena::Scope scope(arena);
    Int* dist = arena.alloc_array<Int>((n + 1) * n);
    std::fill(dist, dist + (n + 1) * n, kMpRawMinusInf);
    dist[0] = 0;  // D[0][source]

    const std::uint64_t maxw = max_abs_weight(edges);
    const bool safe =
        maxw == 0 ||
        static_cast<std::uint64_t>(n) + 1 <=
            static_cast<std::uint64_t>(std::numeric_limits<Int>::max()) / maxw;
    const bool dense = safe && n >= 8 && edges.size() * 8 >= n * n;

    if (dense) {
        // Dense adjacency: adj[u][v] = max weight over parallel u->v edges.
        robust_account_bytes(n * n * sizeof(Int));
        Int* adj = arena.alloc_array<Int>(n * n);
        std::fill(adj, adj + n * n, kMpRawMinusInf);
        for (const auto& e : edges) {
            // `safe` excludes weight INT64_MIN (its magnitude alone exceeds
            // the bound), so plain < is the max-over-parallel-edges fold.
            Int& slot = adj[e.from * n + e.to];
            if (slot < e.weight) {
                slot = e.weight;
            }
        }
        const auto axpy = mp_kernels().axpy_max;
        for (std::size_t k = 1; k <= n; ++k) {
            SDFRED_CHECKPOINT();
            const Int* prev = dist + (k - 1) * n;
            Int* cur = dist + k * n;
            for (std::size_t u = 0; u < n; ++u) {
                if (prev[u] == kMpRawMinusInf) {
                    continue;
                }
                axpy(cur, adj + u * n, prev[u], n);
            }
        }
    } else {
        std::size_t relaxations = 0;
        for (std::size_t k = 1; k <= n; ++k) {
            SDFRED_CHECKPOINT();
            const Int* prev = dist + (k - 1) * n;
            Int* cur = dist + k * n;
            for (const auto& e : edges) {
                if ((++relaxations & 0xfff) == 0) {
                    SDFRED_CHECKPOINT();
                }
                if (prev[e.from] == kMpRawMinusInf) {
                    continue;
                }
                const Int candidate =
                    safe ? prev[e.from] + e.weight : checked_add(prev[e.from], e.weight);
                if (cur[e.to] < candidate) {
                    cur[e.to] = candidate;
                }
            }
        }
    }

    // lambda = max_v min_{k < n} (D[n][v] - D[k][v]) / (n - k); the SCC is
    // strongly connected with >= 1 edge, so some D[n][v] is finite.
    std::optional<Rational> best;
    const Int* last = dist + n * n;
    for (std::size_t v = 0; v < n; ++v) {
        if (last[v] == kMpRawMinusInf) {
            continue;
        }
        std::optional<Rational> inner;
        for (std::size_t k = 0; k < n; ++k) {
            if (dist[k * n + v] == kMpRawMinusInf) {
                continue;
            }
            const Rational candidate(checked_sub(last[v], dist[k * n + v]),
                                     static_cast<Int>(n - k));
            if (!inner || candidate < *inner) {
                inner = candidate;
            }
        }
        if (inner && (!best || *inner > *best)) {
            best = inner;
        }
    }
    if (!best) {
        throw ArithmeticError("Karp: no finite walk of full length in an SCC with edges");
    }
    return *best;
}

namespace {

bool scc_has_cycle(const SccView& scc) {
    if (scc.nodes.size() > 1) {
        return !scc.edges.empty();
    }
    return std::any_of(scc.edges.begin(), scc.edges.end(),
                       [](const DigraphEdge& e) { return e.from == e.to; });
}

/// Karp over every cyclic SCC; `parallel` dispatches the per-SCC runs (which
/// are independent — each owns its local Bellman table) on the global pool.
CycleMetric karp_over_sccs(const Digraph& graph, bool parallel) {
    const std::vector<SccView> views = split_into_sccs(graph);
    std::vector<const SccView*> cyclic;
    for (const SccView& scc : views) {
        if (scc_has_cycle(scc)) {
            cyclic.push_back(&scc);
        }
    }
    CycleMetric result;
    if (cyclic.empty()) {
        return result;  // no_cycle
    }
    std::vector<Rational> lambda(cyclic.size());
    const auto run_one = [&](std::size_t i) { lambda[i] = karp_on_scc(*cyclic[i]); };
    if (parallel) {
        parallel_for(0, cyclic.size(), 1, run_one);
    } else {
        for (std::size_t i = 0; i < cyclic.size(); ++i) {
            run_one(i);
        }
    }
    result.outcome = CycleOutcome::finite;
    result.value = lambda[0];
    for (const Rational& l : lambda) {
        if (l > result.value) {
            result.value = l;
        }
    }
    return result;
}

}  // namespace

CycleMetric max_cycle_mean_karp(const Digraph& graph) {
    return karp_over_sccs(graph, /*parallel=*/true);
}

CycleMetric max_cycle_mean_karp_serial(const Digraph& graph) {
    return karp_over_sccs(graph, /*parallel=*/false);
}

bool has_zero_token_cycle(const Digraph& graph) {
    Digraph zero_token(graph.node_count());
    for (const auto& e : graph.edges()) {
        if (e.tokens == 0) {
            zero_token.add_edge(e.from, e.to, e.weight, 0);
        }
    }
    return zero_token.has_cycle();
}

bool has_positive_cycle(const Digraph& graph, Int num, Int den) {
    // Longest-path Bellman–Ford from an implicit super-source (all dist 0):
    // a relaxation still possible after node_count rounds witnesses a
    // strictly positive cycle under the reweighting den*w - num*d.
    const std::size_t n = graph.node_count();
    std::vector<Int> dist(n, 0);
    std::size_t relaxations = 0;
    for (std::size_t round = 0; round <= n; ++round) {
        SDFRED_CHECKPOINT();
        bool changed = false;
        for (const auto& e : graph.edges()) {
            if ((++relaxations & 0xfff) == 0) {
                SDFRED_CHECKPOINT();
            }
            const Int w = checked_sub(checked_mul(den, e.weight), checked_mul(num, e.tokens));
            const Int candidate = checked_add(dist[e.from], w);
            if (candidate > dist[e.to]) {
                dist[e.to] = candidate;
                changed = true;
            }
        }
        if (!changed) {
            return false;
        }
    }
    return true;
}

bool has_zero_cycle(const Digraph& graph, Int num, Int den) {
    // First compute converged longest-path potentials (no positive cycle may
    // exist, otherwise the potentials do not converge and we throw).
    const std::size_t n = graph.node_count();
    std::vector<Int> dist(n, 0);
    bool converged = false;
    for (std::size_t round = 0; round <= n && !converged; ++round) {
        SDFRED_CHECKPOINT();
        converged = true;
        for (const auto& e : graph.edges()) {
            const Int w = checked_sub(checked_mul(den, e.weight), checked_mul(num, e.tokens));
            const Int candidate = checked_add(dist[e.from], w);
            if (candidate > dist[e.to]) {
                dist[e.to] = candidate;
                converged = false;
            }
        }
    }
    if (!converged) {
        throw ArithmeticError("has_zero_cycle called with a positive cycle present");
    }
    // Every edge now satisfies dist[u] + w <= dist[v]; a cycle sums its
    // slacks to a non-positive value and is zero exactly when all of its
    // edges are tight, so look for a cycle among tight edges only.
    Digraph tight(n);
    for (const auto& e : graph.edges()) {
        const Int w = checked_sub(checked_mul(den, e.weight), checked_mul(num, e.tokens));
        if (checked_add(dist[e.from], w) == dist[e.to]) {
            tight.add_edge(e.from, e.to);
        }
    }
    return tight.has_cycle();
}

namespace {

/// An exact fraction num/den with den > 0, *not* reduced: the Stern–Brocot
/// walk relies on the raw mediant components.
struct Fraction {
    Int num;
    Int den;
};

Fraction mediant_k(const Fraction& l, const Fraction& r, Int k) {
    return Fraction{checked_add(l.num, checked_mul(k, r.num)),
                    checked_add(l.den, checked_mul(k, r.den))};
}

}  // namespace

CycleMetric max_cycle_ratio_exact(const Digraph& graph) {
    for (const auto& e : graph.edges()) {
        if (e.weight < 0 || e.tokens < 0) {
            throw ArithmeticError("max_cycle_ratio_exact requires non-negative weights/tokens");
        }
    }
    CycleMetric result;
    if (!graph.has_cycle()) {
        return result;  // no_cycle
    }
    // A cycle through zero-token edges only: infinite ratio when any such
    // cycle carries weight.  Zero-weight zero-token cycles are degenerate
    // (0/0); they impose no timing constraint, so drop their edges... they
    // cannot exist in graphs coming from SDF (a zero-token cycle in an HSDF
    // deadlocks regardless of weights), so treat every zero-token cycle as
    // infinite to stay conservative.
    if (has_zero_token_cycle(graph)) {
        result.outcome = CycleOutcome::infinite;
        return result;
    }

    Int total_weight = 0;
    for (const auto& e : graph.edges()) {
        total_weight = checked_add(total_weight, e.weight);
    }

    // Invariant: lambda* in (l, r] as real numbers, with is_above(l) true
    // and is_above(r) false, where is_above(x) <=> exists cycle ratio > x.
    Fraction l{-1, 1};
    Fraction r{checked_add(total_weight, 1), 1};

    while (true) {
        SDFRED_CHECKPOINT();
        // lambda* == r exactly when the reweighted graph at r has a zero
        // cycle (it cannot have a positive one by the invariant).
        if (has_zero_cycle(graph, r.num, r.den)) {
            result.outcome = CycleOutcome::finite;
            result.value = Rational(r.num, r.den);
            return result;
        }
        // Descend the Stern–Brocot tree with galloping: find the largest k
        // such that the k-fold mediant towards r is still strictly below
        // lambda*, i.e. is_above(mediant_k) holds.
        const Fraction m1 = mediant_k(l, r, 1);
        if (has_positive_cycle(graph, m1.num, m1.den)) {
            // Gallop left-to-right: l_k = l + k*r while still below lambda*.
            Int lo = 1;  // known: is_above(mediant_lo)
            Int hi = 2;
            while (has_positive_cycle(graph, mediant_k(l, r, hi).num, mediant_k(l, r, hi).den)) {
                lo = hi;
                hi = checked_mul(hi, 2);
            }
            // Binary search the boundary in (lo, hi).
            while (lo + 1 < hi) {
                const Int mid = lo + (hi - lo) / 2;
                const Fraction m = mediant_k(l, r, mid);
                if (has_positive_cycle(graph, m.num, m.den)) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            const Fraction new_l = mediant_k(l, r, lo);
            const Fraction new_r = mediant_k(l, r, hi);
            l = new_l;
            r = new_r;
        } else {
            // Gallop right-to-left: r_k = r + k*l while is_above stays false.
            Int lo = 1;  // known: !is_above(mediant_lo towards l)
            Int hi = 2;
            while (!has_positive_cycle(graph, mediant_k(r, l, hi).num, mediant_k(r, l, hi).den)) {
                lo = hi;
                hi = checked_mul(hi, 2);
            }
            while (lo + 1 < hi) {
                const Int mid = lo + (hi - lo) / 2;
                const Fraction m = mediant_k(r, l, mid);
                if (!has_positive_cycle(graph, m.num, m.den)) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            const Fraction new_r = mediant_k(r, l, lo);
            const Fraction new_l = mediant_k(r, l, hi);
            l = new_l;
            r = new_r;
        }
    }
}

namespace {

/// Howard policy iteration on a strongly connected graph in which every
/// node has at least one outgoing edge (guaranteed inside an SCC with a
/// cycle) — so every policy walk ends on a cycle and all lambdas stay
/// finite.
double howard_on_scc(const Digraph& graph) {
    constexpr double kEps = 1e-9;
    const std::size_t n = graph.node_count();
    const auto out = graph.out_edges();

    // Policy: one chosen out-edge per node.
    std::vector<std::size_t> policy(n, kNone);
    for (std::size_t v = 0; v < n; ++v) {
        policy[v] = out[v][0];
    }

    std::vector<double> lambda(n, -std::numeric_limits<double>::infinity());
    std::vector<double> value(n, 0.0);

    bool improved = true;
    std::size_t guard = 0;
    while (improved) {
        SDFRED_CHECKPOINT();
        if (++guard > 10000) {
            throw ArithmeticError("Howard policy iteration failed to converge");
        }
        // --- Value determination on the policy graph. -------------------
        // Each node with a policy edge has exactly one successor; walking
        // the successor chain finds the unique cycle the node feeds into.
        std::fill(lambda.begin(), lambda.end(), -std::numeric_limits<double>::infinity());
        std::vector<int> state(n, 0);  // 0 unvisited, 1 in progress, 2 done
        for (std::size_t start = 0; start < n; ++start) {
            if (state[start] != 0 || policy[start] == kNone) {
                continue;
            }
            // Walk until a visited node or a node without policy edge.
            std::vector<std::size_t> path;
            std::size_t v = start;
            while (v != kNone && state[v] == 0 && policy[v] != kNone) {
                state[v] = 1;
                path.push_back(v);
                v = graph.edge(policy[v]).to;
            }
            if (v != kNone && state[v] == 1) {
                // Found a new cycle starting at v: evaluate its ratio.
                double cycle_weight = 0;
                double cycle_tokens = 0;
                std::size_t u = v;
                do {
                    const auto& e = graph.edge(policy[u]);
                    cycle_weight += static_cast<double>(e.weight);
                    cycle_tokens += static_cast<double>(e.tokens);
                    u = e.to;
                } while (u != v);
                const double ratio = cycle_weight / cycle_tokens;
                // Fix values around the cycle: anchor value(v) = 0 and unroll
                // value(u) = w(u) - ratio*t(u) + value(succ(u)) backwards.
                std::vector<std::size_t> cycle_nodes;
                u = v;
                do {
                    lambda[u] = ratio;
                    cycle_nodes.push_back(u);
                    u = graph.edge(policy[u]).to;
                } while (u != v);
                value[v] = 0.0;
                for (std::size_t i = cycle_nodes.size(); i-- > 1;) {
                    const std::size_t node = cycle_nodes[i];
                    const auto& e = graph.edge(policy[node]);
                    value[node] = static_cast<double>(e.weight) -
                                  ratio * static_cast<double>(e.tokens) + value[e.to];
                }
            }
            // Pop the path, assigning values for the tail nodes feeding the
            // cycle (or dangling nodes without policy continuation).
            for (std::size_t i = path.size(); i-- > 0;) {
                const std::size_t node = path[i];
                if (lambda[node] > -std::numeric_limits<double>::infinity()) {
                    state[node] = 2;
                    continue;  // on the cycle, already valued
                }
                const auto& e = graph.edge(policy[node]);
                const std::size_t succ = e.to;
                lambda[node] = lambda[succ];
                value[node] = static_cast<double>(e.weight) -
                              lambda[succ] * static_cast<double>(e.tokens) + value[succ];
                state[node] = 2;
            }
        }
        // --- Policy improvement. ----------------------------------------
        improved = false;
        for (const auto& e : graph.edges()) {
            if (lambda[e.to] == -std::numeric_limits<double>::infinity()) {
                continue;  // successor leads nowhere
            }
            const double cand_lambda = lambda[e.to];
            const double cand_value = static_cast<double>(e.weight) -
                                      cand_lambda * static_cast<double>(e.tokens) + value[e.to];
            const bool better_lambda = cand_lambda > lambda[e.from] + kEps;
            const bool equal_lambda = std::abs(cand_lambda - lambda[e.from]) <= kEps;
            if (better_lambda || (equal_lambda && cand_value > value[e.from] + kEps)) {
                // Locate this edge's index to update the policy.
                for (const std::size_t ei : out[e.from]) {
                    const auto& edge = graph.edge(ei);
                    if (edge.to == e.to && edge.weight == e.weight && edge.tokens == e.tokens) {
                        policy[e.from] = ei;
                        break;
                    }
                }
                lambda[e.from] = cand_lambda;
                value[e.from] = cand_value;
                improved = true;
            }
        }
    }
    return *std::max_element(lambda.begin(), lambda.end());
}

}  // namespace

CycleMetricDouble max_cycle_ratio_howard(const Digraph& graph) {
    CycleMetricDouble result;
    if (!graph.has_cycle()) {
        return result;  // no_cycle
    }
    if (has_zero_token_cycle(graph)) {
        result.outcome = CycleOutcome::infinite;
        return result;
    }
    result.outcome = CycleOutcome::finite;
    result.value = -std::numeric_limits<double>::infinity();
    for (const auto& scc : split_into_sccs(graph)) {
        if (!scc_has_cycle(scc)) {
            continue;
        }
        Digraph local(scc.nodes.size());
        for (const auto& e : scc.edges) {
            local.add_edge(e.from, e.to, e.weight, e.tokens);
        }
        result.value = std::max(result.value, howard_on_scc(local));
    }
    return result;
}

}  // namespace sdf
