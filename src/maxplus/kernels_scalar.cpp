// kernels_scalar.cpp — portable scalar tier plus the tier dispatcher.
//
// The scalar kernel is the semantic reference for the SIMD tiers: the
// differential tests hold every compiled tier bit-identical to it, and it
// is what SDFRED_ISA=scalar (the CI forced-scalar job) runs.  It is still
// much faster than the pre-SoA MpValue loop — 8-byte lanes, no exception
// machinery — because callers only enter it under the proven no-overflow
// bound (see kernels.hpp).
#include "maxplus/kernels.hpp"

namespace sdf {

namespace {

void axpy_max_scalar(Int* out, const Int* row, Int a, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
        const Int b = row[i];
        if (b == kMpRawMinusInf) {
            continue;
        }
        const Int sum = b + a;  // no overflow: kernel contract
        if (sum > out[i]) {
            out[i] = sum;
        }
    }
}

constexpr MpKernels kScalarKernels{IsaTier::scalar, &axpy_max_scalar};

}  // namespace

const MpKernels* mp_kernels_scalar() {
    return &kScalarKernels;
}

const MpKernels* mp_kernels_for(IsaTier tier) {
    switch (tier) {
        case IsaTier::scalar: return mp_kernels_scalar();
        case IsaTier::avx2: return mp_kernels_avx2();
        case IsaTier::avx512: return mp_kernels_avx512();
    }
    return nullptr;
}

const MpKernels& mp_kernels() {
    // cpudispatch guarantees the active tier is supported, and CMake only
    // reports a tier as compiled in when its TU really carries the kernels,
    // so the fallback arm is belt-and-braces, not a silent downgrade path.
    const MpKernels* table = mp_kernels_for(active_isa_tier());
    return table != nullptr ? *table : *mp_kernels_scalar();
}

}  // namespace sdf
