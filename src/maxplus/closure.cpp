#include "maxplus/closure.hpp"

#include <cstdint>
#include <limits>

#include "base/errors.hpp"
#include "maxplus/kernels.hpp"
#include "maxplus/mcm.hpp"
#include "robust/budget.hpp"

namespace sdf {

bool has_positive_weight_cycle(const MpMatrix& matrix) {
    const CycleMetric metric = max_cycle_mean_karp(matrix.precedence_graph());
    return metric.is_finite() && metric.value > Rational(0);
}

std::optional<MpMatrix> mp_closure(const MpMatrix& matrix) {
    if (matrix.rows() != matrix.cols()) {
        throw ArithmeticError("mp_closure requires a square matrix");
    }
    if (has_positive_weight_cycle(matrix)) {
        return std::nullopt;
    }
    const std::size_t n = matrix.rows();
    // Start from I ⊕ A, then relax through every intermediate node k:
    // result(i,j) = max(result(i,j), result(i,k) + result(k,j)).
    MpMatrix result = matrix;
    for (std::size_t i = 0; i < n; ++i) {
        result.set(i, i, mp_max(result.at(i, i), MpValue(0)));
    }

    // With no positive cycle, every Floyd intermediate equals the best
    // *simple* path through the allowed nodes (dropping a non-positive cycle
    // never loses), so |entry| stays within n·max|A| throughout and the sum
    // result(i,k) + result(k,j) within 2n·max|A|.  When that bound (with
    // margin) fits int64 the whole relaxation runs unchecked through the
    // SIMD kernel: one axpy_max of row k onto row i per finite (i,k).  Row k
    // is a fixed point of its own iteration (the diagonal is exactly 0 here
    // — a positive diagonal entry is a positive cycle and was rejected
    // above), so the i == k exact-aliasing call is idempotent and safe.
    const std::uint64_t maxabs = result.max_abs_finite();
    const bool safe =
        maxabs == 0 ||
        2 * static_cast<std::uint64_t>(n) + 2 <=
            static_cast<std::uint64_t>(std::numeric_limits<Int>::max()) / maxabs;
    if (safe) {
        const auto axpy = mp_kernels().axpy_max;
        for (std::size_t k = 0; k < n; ++k) {
            SDFRED_CHECKPOINT();
            for (std::size_t i = 0; i < n; ++i) {
                const Int ik = result.raw_row(i)[k];
                if (ik == kMpRawMinusInf) {
                    continue;
                }
                axpy(result.raw_row(i), result.raw_row(k), ik, n);
            }
        }
        return result;
    }
    for (std::size_t k = 0; k < n; ++k) {
        SDFRED_CHECKPOINT();
        for (std::size_t i = 0; i < n; ++i) {
            const MpValue ik = result.at(i, k);
            if (!ik.is_finite()) {
                continue;
            }
            for (std::size_t j = 0; j < n; ++j) {
                const MpValue kj = result.at(k, j);
                if (!kj.is_finite()) {
                    continue;
                }
                result.set(i, j, mp_max(result.at(i, j), mp_plus(ik, kj)));
            }
        }
    }
    return result;
}

}  // namespace sdf
