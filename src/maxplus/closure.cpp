#include "maxplus/closure.hpp"

#include "base/errors.hpp"
#include "maxplus/mcm.hpp"

namespace sdf {

bool has_positive_weight_cycle(const MpMatrix& matrix) {
    const CycleMetric metric = max_cycle_mean_karp(matrix.precedence_graph());
    return metric.is_finite() && metric.value > Rational(0);
}

std::optional<MpMatrix> mp_closure(const MpMatrix& matrix) {
    if (matrix.rows() != matrix.cols()) {
        throw ArithmeticError("mp_closure requires a square matrix");
    }
    if (has_positive_weight_cycle(matrix)) {
        return std::nullopt;
    }
    const std::size_t n = matrix.rows();
    // Start from I ⊕ A, then relax through every intermediate node k:
    // result(i,j) = max(result(i,j), result(i,k) + result(k,j)).
    MpMatrix result = matrix;
    for (std::size_t i = 0; i < n; ++i) {
        result.set(i, i, mp_max(result.at(i, i), MpValue(0)));
    }
    for (std::size_t k = 0; k < n; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
            const MpValue ik = result.at(i, k);
            if (!ik.is_finite()) {
                continue;
            }
            for (std::size_t j = 0; j < n; ++j) {
                const MpValue kj = result.at(k, j);
                if (!kj.is_finite()) {
                    continue;
                }
                result.set(i, j, mp_max(result.at(i, j), mp_plus(ik, kj)));
            }
        }
    }
    return result;
}

}  // namespace sdf
