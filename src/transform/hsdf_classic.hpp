// hsdf_classic.hpp — the traditional SDF→HSDF conversion [11, 15].
//
// Every actor a is duplicated q(a) times (one copy per firing in an
// iteration); dependencies between individual firings become homogeneous
// channels with iteration-crossing dependencies encoded as initial tokens.
// The resulting graph has exactly iteration-length many actors — the size
// the paper's novel conversion (hsdf_reduced.hpp) improves on — and mimics
// the original firing-for-firing.
//
// Derivation of the edges for channel (a, b, p, c, d): number the tokens
// that ever travel over the channel 1, 2, ... with the d initial tokens
// first.  Firing k of b (1-based) consumes tokens (k-1)·c+1 .. k·c; token i
// with i > d is produced by firing ceil((i-d)/p) of a; producer firings
// outside 1..q(a) wrap into neighbouring iterations, which adds initial
// tokens (delay) on the copy-to-copy channel.  Dominated parallel channels
// (same endpoints, larger delay) are dropped: a dependency on an older
// firing is implied by the dependency on a newer one only when delays
// coincide, so only exact-duplicate and higher-delay parallels go.
#pragma once

#include <string>
#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

/// Result of the classical conversion: the homogeneous graph plus the
/// mapping from (original actor, firing index) to the id of its copy.
struct ClassicHsdf {
    Graph graph;
    /// copy_of[a][k] is the id (in `graph`) of the k-th firing copy of
    /// original actor a (0 <= k < q(a)).
    std::vector<std::vector<ActorId>> copy_of;
};

/// Converts a consistent SDF graph to its classical HSDF equivalent.
/// Copy k of actor "X" is named "X#k".
ClassicHsdf to_hsdf_classic(const Graph& graph);

/// Name of firing copy `k` of actor `name` in the classical HSDF.
std::string classic_copy_name(const std::string& name, Int k);

}  // namespace sdf
