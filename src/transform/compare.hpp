// compare.hpp — graph comparison utilities.
//
// covers_conservatively() checks the premises of Proposition 1 of the paper
// for an explicit actor mapping: if graph `slow` embeds `fast` with
// execution times at least as long and for every channel of `fast` a
// matching channel with at most as many initial tokens, then the throughput
// of `fast` is at least that of `slow`.  The conservativity proof
// (Propositions 3 and 4) instantiates this with σ mapping the original
// graph into the N-fold unfolding of the abstract graph — and the property
// tests verify exactly that, case by case.
//
// structurally_equal() is a strict name-based equality used by the I/O
// round-trip tests.
#pragma once

#include <string>
#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

/// Checks the premises of Proposition 1.  `image[a]` is the actor of `slow`
/// standing in for actor a of `fast`; the mapping must be injective.  When
/// the premises fail and `why` is non-null, it receives a description of
/// the first violation.
bool covers_conservatively(const Graph& fast, const Graph& slow,
                           const std::vector<ActorId>& image, std::string* why = nullptr);

/// Name-based structural equality: same graph name policy is NOT enforced,
/// but both graphs must have identical actor names with identical execution
/// times and identical channel multisets (by endpoint names, rates, delay).
bool structurally_equal(const Graph& a, const Graph& b);

}  // namespace sdf
