// retiming.hpp — retiming of homogeneous SDF graphs.
//
// A retiming assigns every actor a lag r(a) ∈ ℤ; channel (a, b, 1, 1, d)
// becomes d' = d + r(b) − r(a) (actor b is "shifted" r(b) iterations into
// the past).  Legal retimings (all d' ≥ 0) preserve every cycle's token
// count, hence liveness and the iteration period — the graph is merely
// re-pipelined.  This is Leiserson–Saxe retiming with initial tokens as
// registers and execution times as combinational delay, and it composes
// naturally with the paper's reductions: retiming the reduced HSDF
// re-balances the pipeline without touching the throughput (tested).
//
// minimize_token_free_path() implements the classical period-minimisation:
// find a legal retiming minimising the longest token-free path weight
// (the "clock period" analogue — here, the longest chain of dependent
// firings within one iteration, a latency measure).  Uses the FEAS
// iteration of Leiserson & Saxe with a binary search over the candidate
// periods.
#pragma once

#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

/// True when `lag` keeps every channel's token count non-negative.
bool is_legal_retiming(const Graph& graph, const std::vector<Int>& lag);

/// Applies a legal retiming; throws InvalidGraphError when the graph is
/// not homogeneous or the retiming is illegal.
Graph retime(const Graph& graph, const std::vector<Int>& lag);

/// The maximum total execution time along any directed path that crosses
/// no initial token (single actors count; a zero-token cycle makes the
/// value undefined and throws).  This bounds how much work of one
/// iteration is forced sequential.
Int max_token_free_path(const Graph& graph);

/// Result of the period minimisation.
struct RetimingResult {
    std::vector<Int> lag;  ///< the legal retiming found
    Graph graph;           ///< the retimed graph
    Int period = 0;        ///< its max_token_free_path (minimal over retimings)
};

/// Finds a legal retiming minimising max_token_free_path.  The graph must
/// be homogeneous and free of zero-token cycles.
RetimingResult minimize_token_free_path(const Graph& graph);

}  // namespace sdf
