#include "transform/compare.hpp"

#include <algorithm>
#include <set>
#include <tuple>

namespace sdf {

bool covers_conservatively(const Graph& fast, const Graph& slow,
                           const std::vector<ActorId>& image, std::string* why) {
    const auto fail = [why](const std::string& message) {
        if (why != nullptr) {
            *why = message;
        }
        return false;
    };
    if (image.size() != fast.actor_count()) {
        return fail("image size does not match actor count");
    }
    std::set<ActorId> seen;
    for (ActorId a = 0; a < fast.actor_count(); ++a) {
        if (image[a] >= slow.actor_count()) {
            return fail("image of '" + fast.actor(a).name + "' out of range");
        }
        if (!seen.insert(image[a]).second) {
            return fail("image mapping is not injective at '" + fast.actor(a).name + "'");
        }
        if (fast.actor(a).execution_time > slow.actor(image[a]).execution_time) {
            return fail("execution time of '" + fast.actor(a).name +
                        "' exceeds its image's");
        }
    }
    for (const Channel& ch : fast.channels()) {
        const ActorId src = image[ch.src];
        const ActorId dst = image[ch.dst];
        bool matched = false;
        for (const Channel& other : slow.channels()) {
            if (other.src == src && other.dst == dst &&
                other.production == ch.production &&
                other.consumption == ch.consumption &&
                other.initial_tokens <= ch.initial_tokens) {
                matched = true;
                break;
            }
        }
        if (!matched) {
            return fail("channel " + fast.actor(ch.src).name + " -> " +
                        fast.actor(ch.dst).name +
                        " has no matching channel with at most " +
                        std::to_string(ch.initial_tokens) + " tokens");
        }
    }
    return true;
}

bool structurally_equal(const Graph& a, const Graph& b) {
    if (a.actor_count() != b.actor_count() || a.channel_count() != b.channel_count()) {
        return false;
    }
    for (const Actor& actor : a.actors()) {
        const auto id = b.find_actor(actor.name);
        if (!id || b.actor(*id).execution_time != actor.execution_time) {
            return false;
        }
    }
    using Key = std::tuple<std::string, std::string, Int, Int, Int>;
    const auto channel_multiset = [](const Graph& g) {
        std::multiset<Key> keys;
        for (const Channel& ch : g.channels()) {
            keys.emplace(g.actor(ch.src).name, g.actor(ch.dst).name, ch.production,
                         ch.consumption, ch.initial_tokens);
        }
        return keys;
    };
    return channel_multiset(a) == channel_multiset(b);
}

}  // namespace sdf
