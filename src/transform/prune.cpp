#include "transform/prune.hpp"

#include <map>
#include <tuple>
#include <vector>

namespace sdf {

namespace {

using ChannelKey = std::tuple<ActorId, ActorId, Int, Int>;

/// Marks, per parallel-channel group, every channel except one minimum-delay
/// representative.
std::vector<bool> redundant_flags(const Graph& graph) {
    std::map<ChannelKey, ChannelId> best;
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        const Channel& ch = graph.channel(c);
        const ChannelKey key{ch.src, ch.dst, ch.production, ch.consumption};
        const auto it = best.find(key);
        if (it == best.end() ||
            ch.initial_tokens < graph.channel(it->second).initial_tokens) {
            best[key] = c;
        }
    }
    std::vector<bool> redundant(graph.channel_count(), true);
    for (const auto& [key, id] : best) {
        redundant[id] = false;
    }
    return redundant;
}

}  // namespace

Graph prune_redundant_channels(const Graph& graph) {
    const std::vector<bool> redundant = redundant_flags(graph);
    Graph result(graph.name());
    for (const Actor& a : graph.actors()) {
        result.add_actor(a.name, a.execution_time);
    }
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        if (!redundant[c]) {
            const Channel& ch = graph.channel(c);
            result.add_channel(ch.src, ch.dst, ch.production, ch.consumption,
                               ch.initial_tokens);
        }
    }
    return result;
}

std::size_t count_redundant_channels(const Graph& graph) {
    const std::vector<bool> redundant = redundant_flags(graph);
    std::size_t count = 0;
    for (const bool r : redundant) {
        if (r) {
            ++count;
        }
    }
    return count;
}

}  // namespace sdf
