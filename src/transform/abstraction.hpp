// abstraction.hpp — the paper's abstraction method (Sections 4 and 5).
//
// An abstraction (α, I) of a consistent graph maps every actor a to an
// abstract actor α(a) and an index I(a) ∈ {1..N} (Definition 3) such that
//   * actors mapped to the same abstract actor have distinct indices and
//     equal repetition-vector entries, and
//   * every zero-delay channel goes from a lower-or-equal index to a
//     higher-or-equal one (I(a) ≤ I(b) or d > 0).
//
// The abstract graph (Definition 4) has one actor per group with execution
// time max over the group, and for every original channel (a1, a2, p, c, d)
// a channel (α(a1), α(a2), p, c, I(a2) − I(a1) + N·d).  Firing k of the
// abstract actor conservatively stands in for the firing of the group
// member with index (k mod N) + 1 — Theorem 1:
//
//      τ(a)  ≥  τ(α(a)) / N            (per-actor throughput)
//
// The construction is defined in the paper for homogeneous graphs
// ("the method can be extended to non-homogeneous graphs as well", without
// giving the extension); abstract_graph() therefore requires an HSDF input.
//
// Abstractions can be specified manually, recovered from actor-name
// suffixes ("A1", "A2", ... → group "A"), or synthesised from a grouping
// alone by an index-assignment heuristic that layers the zero-delay DAG.
#pragma once

#include <string>
#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

/// An abstraction (α, I): per original actor its abstract group name and
/// its index (1-based).
struct AbstractionSpec {
    std::vector<std::string> group;  ///< α, indexed by ActorId
    std::vector<Int> index;          ///< I, indexed by ActorId

    /// N = max index.
    [[nodiscard]] Int fold() const;
};

/// Checks Definition 3 (plus basic well-formedness); throws
/// InvalidAbstractionError describing the first violation.
void validate_abstraction(const Graph& graph, const AbstractionSpec& spec);

/// True when `spec` satisfies Definition 3 for `graph`.
bool is_valid_abstraction(const Graph& graph, const AbstractionSpec& spec);

/// Builds the abstract timed graph of Definition 4.  `graph` must be
/// homogeneous; the spec is validated first.  When `prune` is set, parallel
/// abstract channels are reduced to the minimum-delay representative
/// (Section 4.2's redundant-edge pruning); this never changes timing.
Graph abstract_graph(const Graph& graph, const AbstractionSpec& spec, bool prune = true);

/// Derives a grouping from actor names: "A1", "A2" share group "A"; actors
/// without a numeric suffix form singleton groups.  Indices are taken from
/// the suffixes (shifted so the global minimum is 1; singletons get index 1)
/// when that satisfies Definition 3, otherwise they are re-assigned with
/// assign_indices().  Throws InvalidAbstractionError when no valid index
/// assignment exists for the grouping (i.e. when validate rejects the
/// layered assignment, e.g. due to unequal repetition entries in a group).
AbstractionSpec abstraction_by_name_suffix(const Graph& graph);

/// Given only the grouping (spec.group filled, spec.index ignored), assigns
/// indices by processing the zero-delay DAG in topological order: each
/// actor's lower bound is the maximum index of its zero-delay predecessors,
/// bumped to the next index unused within its group.  Zero-delay cycles
/// (which deadlock the graph anyway) are rejected.
AbstractionSpec assign_indices(const Graph& graph, std::vector<std::string> group);

/// The image actor σ(a) = α(a)_{I(a)−1} of the conservativity proof: maps
/// each original actor to the name of its copy in the N-fold unfolding of
/// the abstract graph (unfold.hpp naming).
std::string sigma_image_name(const AbstractionSpec& spec, ActorId actor);

}  // namespace sdf
