// unfold.hpp — N-fold unfolding of a timed SDF graph (Definition 5).
//
// The unfolding splits every actor a into N copies a_0..a_{N-1}; copy a_i
// performs the firings i, i+N, i+2N, ... of a.  Each channel (a, b, p, c, d)
// becomes N channels: for each i, the copy a_i feeds b_j with
// j = (i + d) mod N and delay d' = d div N (+1 when the target index wraps
// below the source index).  The unfolding mimics the original exactly
// (Proposition 2: throughput scales by 1/N per copy) and is the bridge in
// the paper's conservativity proof: the N-fold unfolding of the abstract
// graph is comparable edge-by-edge with the original graph via
// Proposition 1.
#pragma once

#include "sdf/graph.hpp"

namespace sdf {

/// The N-fold unfolding unf(graph, N).  Copy i of actor "X" is named
/// "X@i".  N must be positive.
///
/// Scope note: Definition 5 is applied mechanically to any rates, but the
/// exact-mimicry reading of Proposition 2 holds for HOMOGENEOUS graphs —
/// with p = c = 1 the token of firing i travels precisely to firing i + d,
/// which is what the (i + d) mod N copy routing encodes.  The paper unfolds
/// abstract graphs of homogeneous inputs, which are homogeneous themselves,
/// so this is exactly the case its conservativity proof needs; for
/// multi-rate channels the token-to-firing correspondence is rate-dependent
/// and this construction is not an exact mimic.
Graph unfold(const Graph& graph, Int n);

/// Name of copy `i` of actor `name` in the unfolded graph.
std::string unfolded_actor_name(const std::string& name, Int i);

}  // namespace sdf
