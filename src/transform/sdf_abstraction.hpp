// sdf_abstraction.hpp — abstraction of non-homogeneous SDF graphs.
//
// Definition 4 of the paper is stated for homogeneous inputs; the paper
// notes "the method can be extended to non-homogeneous graphs as well"
// without giving the construction.  This module provides one sound
// extension by composing two exact/conservative steps that are already
// proven:
//
//   SDF graph ──(classical expansion, exact [11,15])──► HSDF
//            ──(Definition 4 abstraction, conservative [Thm. 1])──► small HSDF
//
// Grouping all q(a) firing copies "a#0".."a#q(a)-1" of an original actor a
// back into a single abstract actor "a" yields a small HSDF of the *same
// shape* as the original SDF graph whose throughput conservatively bounds
// it: with N = max index of the abstraction,
//
//     tau(a) = q(a)/lambda  >=  q(a) * tau_abs(a) / N.
//
// The index heuristic first tries the firing indices themselves (I(a#k) =
// k+1), which is valid whenever zero-delay dependencies never point from a
// later firing to an earlier one across actors; otherwise it falls back to
// the zero-delay layering of abstraction.hpp.
#pragma once

#include "base/rational.hpp"
#include "sdf/graph.hpp"
#include "transform/abstraction.hpp"
#include "transform/hsdf_classic.hpp"

namespace sdf {

/// Result of abstracting a (possibly multi-rate) SDF graph.
struct SdfAbstraction {
    Graph abstract;        ///< small HSDF, one actor per original actor
    AbstractionSpec spec;  ///< the abstraction applied to the expansion
    Graph hsdf;            ///< the intermediate classical expansion
    Int fold = 0;          ///< N = max index of the abstraction
};

/// Expands `graph` classically and re-groups the firing copies of each
/// actor into one abstract actor.  The input must be consistent; the
/// result's actor names equal the original actor names.
SdfAbstraction abstract_sdf(const Graph& graph);

/// Conservative per-actor throughput bounds derived from an SdfAbstraction:
/// bound[a] = q(a) * tau_abs(alpha(a)) / N <= tau(a).  Deadlocked or
/// unbounded abstract graphs yield all-zero bounds (trivially sound).
std::vector<Rational> conservative_throughput_bound(const Graph& graph,
                                                    const SdfAbstraction& abstraction);

}  // namespace sdf
