// hsdf_reduced.hpp — the paper's novel SDF→HSDF conversion (Section 6).
//
// From the max-plus iteration matrix G (symbolic.hpp) an HSDF graph with the
// structure of Figure 4 is built over the N initial tokens:
//
//             (token edges, 1 initial token each)
//        mux_k ────────────────────────────► demux_k
//          ▲                                   │ fans out
//          │ collects                          ▼
//          └── g_{j,k} actors (execution time G(j,k)) ──┐
//                      ▲                                │
//                      └── demux_j ◄────────────────────┘
//
// For every finite entry G(j,k) a "matrix" actor with execution time G(j,k)
// enforces the pair-wise minimum distance between old token j and new token
// k; zero-time demux actors fan a token out to the matrix actors of its row
// and zero-time mux actors synchronise the matrix actors of a column.  The
// paper: mux/demux actors "only need to be present if there is actually
// more than one actor that needs the token or multiple actors from which
// the tokens need to synchronise" — that elision is the default and can be
// switched off to measure its effect (the N(N+2)-actor worst case).
//
// The reduced graph is throughput- and latency-equivalent to the original
// (its maximum cycle ratio equals the max-plus eigenvalue of G) but does
// not preserve the identity of individual firings.
#pragma once

#include <string>

#include "maxplus/matrix.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// Options for the reduced conversion.
struct ReducedHsdfOptions {
    /// Elide mux/demux actors with a single client (Figure 4's gray actors
    /// are always elided; this controls the zero-time (de)multiplexers).
    bool elide_single_client_muxes = true;
};

/// Builds the Figure 4 HSDF graph from an iteration matrix.  Actor names:
/// "g_<j>_<k>" for matrix actors, "mux_<k>" / "dmx_<j>" for the
/// (de)multiplexers, "src_<k>" for tokens that depend on no initial token.
Graph reduced_hsdf_from_matrix(const MpMatrix& matrix, const std::string& name,
                               const ReducedHsdfOptions& options = {});

/// Convenience: symbolic iteration + matrix-to-graph construction.
Graph to_hsdf_reduced(const Graph& graph, const ReducedHsdfOptions& options = {});

}  // namespace sdf
