#include "transform/unfold.hpp"

#include "base/errors.hpp"

namespace sdf {

std::string unfolded_actor_name(const std::string& name, Int i) {
    return name + "@" + std::to_string(i);
}

Graph unfold(const Graph& graph, Int n) {
    require(n > 0, "unfolding factor must be positive");
    Graph result(graph.name() + "_unf" + std::to_string(n));
    // Copy i of actor a gets id a*n + i.
    for (const Actor& a : graph.actors()) {
        for (Int i = 0; i < n; ++i) {
            result.add_actor(unfolded_actor_name(a.name, i), a.execution_time);
        }
    }
    const auto copy_id = [n](ActorId a, Int i) {
        return static_cast<ActorId>(checked_add(checked_mul(static_cast<Int>(a), n), i));
    };
    for (const Channel& ch : graph.channels()) {
        for (Int i = 0; i < n; ++i) {
            const Int j = floor_mod(checked_add(i, ch.initial_tokens), n);
            const Int wrap = (j < i) ? 1 : 0;
            const Int delay = checked_add(ch.initial_tokens / n, wrap);
            result.add_channel(copy_id(ch.src, i), copy_id(ch.dst, j), ch.production,
                               ch.consumption, delay);
        }
    }
    return result;
}

}  // namespace sdf
