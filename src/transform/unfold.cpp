#include "transform/unfold.hpp"

#include "base/errors.hpp"
#include "robust/budget.hpp"
#include "sdf/graph.hpp"

namespace sdf {

namespace {

/// Ceiling on the actors/channels an N-fold unfolding may materialise.
/// Far above every practical model (Table 1 tops out near 5k actors) yet
/// small enough that the copy loops below stay sub-second; larger requests
/// are refused *before* any allocation instead of grinding towards OOM.
constexpr Int kMaxUnfoldedElements = Int{1} << 22;

}  // namespace

std::string unfolded_actor_name(const std::string& name, Int i) {
    return name + "@" + std::to_string(i);
}

Graph unfold(const Graph& graph, Int n) {
    require(n > 0, "unfolding factor must be positive");
    const Int actor_copies = checked_mul(static_cast<Int>(graph.actor_count()), n);
    const Int channel_copies = checked_mul(static_cast<Int>(graph.channel_count()), n);
    if (actor_copies > kMaxUnfoldedElements || channel_copies > kMaxUnfoldedElements) {
        throw ResourceLimitError(
            "unfold(" + std::to_string(n) + ") of graph '" + graph.name() + "' needs " +
            std::to_string(actor_copies) + " actor and " + std::to_string(channel_copies) +
            " channel copies; refusing above " + std::to_string(kMaxUnfoldedElements));
    }
    robust_account_bytes(static_cast<std::size_t>(actor_copies) * sizeof(Actor) +
                         static_cast<std::size_t>(channel_copies) * sizeof(Channel));
    Graph result(graph.name() + "_unf" + std::to_string(n));
    // Copy i of actor a gets id a*n + i.
    for (const Actor& a : graph.actors()) {
        for (Int i = 0; i < n; ++i) {
            SDFRED_CHECKPOINT();
            result.add_actor(unfolded_actor_name(a.name, i), a.execution_time);
        }
    }
    const auto copy_id = [n](ActorId a, Int i) {
        return static_cast<ActorId>(checked_add(checked_mul(static_cast<Int>(a), n), i));
    };
    for (const Channel& ch : graph.channels()) {
        for (Int i = 0; i < n; ++i) {
            SDFRED_CHECKPOINT();
            const Int j = floor_mod(checked_add(i, ch.initial_tokens), n);
            const Int wrap = (j < i) ? 1 : 0;
            const Int delay = checked_add(ch.initial_tokens / n, wrap);
            result.add_channel(copy_id(ch.src, i), copy_id(ch.dst, j), ch.production,
                               ch.consumption, delay);
        }
    }
    return result;
}

}  // namespace sdf
