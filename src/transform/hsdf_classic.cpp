#include "transform/hsdf_classic.hpp"

#include <map>
#include <utility>

#include "base/errors.hpp"
#include "robust/budget.hpp"
#include "sdf/repetition.hpp"

namespace sdf {

namespace {

/// Ceilings for the classical expansion, checked *before* any copy is
/// allocated: the expansion materialises sum(q) actor copies and walks
/// q(dst)·consumption tokens per channel, both of which explode on scaled
/// rates (a single channel with rates in the billions would loop for hours).
/// The paper's largest traditional expansion (satellite, 4515 actors) sits
/// three orders of magnitude below these limits.
constexpr Int kMaxClassicCopies = Int{1} << 22;
constexpr Int kMaxClassicTokenWork = Int{1} << 26;

/// Total tokens the per-channel loops enumerate, refusing instead of
/// overflowing: factors are pre-bounded so the products stay far below the
/// Int range.
Int classic_token_work(const Graph& graph, const std::vector<Int>& repetition) {
    Int total = 0;
    for (const Channel& ch : graph.channels()) {
        const Int qb = repetition[ch.dst];
        if (qb > kMaxClassicTokenWork / ch.consumption) {
            return kMaxClassicTokenWork + 1;
        }
        total = checked_add(total, checked_mul(qb, ch.consumption));
        if (total > kMaxClassicTokenWork) {
            return total;
        }
    }
    return total;
}

}  // namespace

std::string classic_copy_name(const std::string& name, Int k) {
    return name + "#" + std::to_string(k);
}

ClassicHsdf to_hsdf_classic(const Graph& graph) {
    const std::vector<Int> repetition = repetition_vector(graph);
    const Int copies = iteration_length(graph);
    if (copies > kMaxClassicCopies) {
        throw ResourceLimitError(
            "classical expansion of graph '" + graph.name() + "' needs " +
            std::to_string(copies) + " actor copies; refusing above " +
            std::to_string(kMaxClassicCopies) +
            " (use the reduced conversion or an abstraction instead)");
    }
    const Int token_work = classic_token_work(graph, repetition);
    if (token_work > kMaxClassicTokenWork) {
        throw ResourceLimitError(
            "classical expansion of graph '" + graph.name() + "' would enumerate over " +
            std::to_string(kMaxClassicTokenWork) +
            " channel tokens; refusing (use the reduced conversion or an abstraction)");
    }
    robust_account_bytes(static_cast<std::size_t>(copies) * sizeof(Actor));

    ClassicHsdf result;
    result.graph.set_name(graph.name() + "_hsdf");
    result.copy_of.resize(graph.actor_count());
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        const Actor& actor = graph.actor(a);
        for (Int k = 0; k < repetition[a]; ++k) {
            result.copy_of[a].push_back(
                result.graph.add_actor(classic_copy_name(actor.name, k),
                                       actor.execution_time));
        }
    }

    for (const Channel& ch : graph.channels()) {
        const Int qa = repetition[ch.src];
        const Int qb = repetition[ch.dst];
        // Minimum delay per (source copy, destination copy) pair: a parallel
        // channel with a larger delay is a weaker constraint and is dropped.
        std::map<std::pair<ActorId, ActorId>, Int> min_delay;
        for (Int k = 1; k <= qb; ++k) {
            SDFRED_CHECKPOINT();
            const ActorId dst_copy = result.copy_of[ch.dst][static_cast<std::size_t>(k - 1)];
            for (Int t = checked_add(checked_mul(k - 1, ch.consumption), 1);
                 t <= checked_mul(k, ch.consumption); ++t) {
                if ((t & 0xfff) == 0) {
                    SDFRED_CHECKPOINT();
                }
                // Token t of the channel; initial tokens occupy 1..d.
                const Int f = ceil_div(checked_sub(t, ch.initial_tokens), ch.production);
                const Int f0 = checked_sub(f, 1);
                const Int copy = floor_mod(f0, qa);
                const Int iterations_back = checked_sub(0, floor_div(f0, qa));
                const ActorId src_copy =
                    result.copy_of[ch.src][static_cast<std::size_t>(copy)];
                const auto key = std::make_pair(src_copy, dst_copy);
                const auto it = min_delay.find(key);
                if (it == min_delay.end() || iterations_back < it->second) {
                    min_delay[key] = iterations_back;
                }
            }
        }
        for (const auto& [key, delay] : min_delay) {
            result.graph.add_channel(key.first, key.second, 1, 1, delay);
        }
    }
    return result;
}

}  // namespace sdf
