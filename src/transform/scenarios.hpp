// scenarios.hpp — worst-case analysis over dataflow scenarios.
//
// The paper's symbolic machinery is the foundation of scenario-aware
// dataflow (Geilen, "Synchronous dataflow scenarios", cited as [7]): an
// application switches between modes — e.g. I-frames vs. P-frames of a
// decoder — and each mode is an SDF graph over the SAME initial tokens with
// its own iteration matrix G_s.  Executing the scenario sequence s1 s2 ...
// composes the matrices, and the worst-case throughput over ARBITRARY
// scenario orders is governed by
//
//     λ_wc = max over cycles that may mix edges of all G_s
//          = maximum cycle mean of the union precedence graph,
//
// because any such cycle can be realised by scheduling the scenario that
// contributes each edge (arbitrary switching), and no product of the
// matrices can grow faster.  This module builds per-scenario matrices,
// their union graph and the worst/best-case periods, plus a reduced HSDF
// whose single graph conservatively models all scenarios at once (the
// union matrix is entry-wise max, i.e. a Proposition 1 style bound).
#pragma once

#include <string>
#include <vector>

#include "base/rational.hpp"
#include "maxplus/matrix.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// One scenario: a name plus its timed SDF graph.  All scenario graphs of
/// one analysis must agree on the number of initial tokens (they describe
/// the same buffers in different modes).
struct Scenario {
    std::string name;
    Graph graph;
};

/// Result of a scenario analysis.
struct ScenarioAnalysis {
    std::vector<std::string> names;     ///< scenario names, analysis order
    std::vector<MpMatrix> matrices;     ///< per-scenario iteration matrices
    std::vector<Rational> periods;      ///< per-scenario standalone periods
    Rational worst_case_period;         ///< over arbitrary scenario sequences
    MpMatrix envelope;                  ///< entry-wise max of all matrices
};

/// Analyses a non-empty scenario set.  Every scenario graph must be
/// consistent, deadlock-free, expose the same initial-token count, and have
/// a finite positive standalone period; otherwise Error is thrown.
ScenarioAnalysis analyse_scenarios(const std::vector<Scenario>& scenarios);

/// A single HSDF graph modelling the worst case over every scenario
/// sequence: the Figure 4 construction applied to the envelope (entry-wise
/// max) matrix.  Its period EQUALS the worst-case period (the envelope's
/// critical cycle both upper-bounds every product, entry-wise, and is
/// realisable by scheduling per step the scenario contributing the critical
/// edge), and dominates every standalone period (tested).
Graph scenario_envelope_hsdf(const ScenarioAnalysis& analysis, const std::string& name);

}  // namespace sdf
