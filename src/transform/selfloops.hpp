// selfloops.hpp — bounding auto-concurrency with self-loop channels.
//
// Self-timed SDF semantics allow unlimited concurrent firings of one actor.
// Adding a self-loop channel with k initial tokens limits an actor to k
// concurrent firings (k = 1 models a non-pipelined resource); it also puts
// every actor on a cycle, which the throughput analyses require.  This is
// the conventional closing step applied to the SDF3 benchmark graphs.
#pragma once

#include "sdf/graph.hpp"

namespace sdf {

/// Returns a copy of `graph` with a homogeneous self-loop channel carrying
/// `tokens` initial tokens added to every actor that has no self-loop yet.
/// `tokens` must be positive (zero would deadlock the actor).
Graph add_self_loops(const Graph& graph, Int tokens = 1);

}  // namespace sdf
