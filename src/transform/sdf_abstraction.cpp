#include "transform/sdf_abstraction.hpp"

#include "base/errors.hpp"
#include "maxplus/mcm.hpp"
#include "sdf/repetition.hpp"
#include "transform/symbolic.hpp"

namespace sdf {

SdfAbstraction abstract_sdf(const Graph& graph) {
    SdfAbstraction result;
    const std::vector<Int> repetition = repetition_vector(graph);
    ClassicHsdf expansion = to_hsdf_classic(graph);

    // Grouping: copy k of original actor a belongs to group "a".
    std::vector<std::string> group(expansion.graph.actor_count());
    std::vector<Int> firing_index(expansion.graph.actor_count(), 0);
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        for (Int k = 0; k < repetition[a]; ++k) {
            const ActorId copy = expansion.copy_of[a][static_cast<std::size_t>(k)];
            group[copy] = graph.actor(a).name;
            firing_index[copy] = k + 1;
        }
    }

    // First try the natural indices (the firing numbers); fall back to the
    // zero-delay layering when a cross-actor dependency violates them.
    AbstractionSpec spec;
    spec.group = group;
    spec.index = firing_index;
    if (!is_valid_abstraction(expansion.graph, spec)) {
        spec = assign_indices(expansion.graph, group);
        validate_abstraction(expansion.graph, spec);
    }

    result.abstract = abstract_graph(expansion.graph, spec);
    result.abstract.set_name(graph.name() + "_sdfabs");
    result.spec = std::move(spec);
    result.fold = result.spec.fold();
    result.hsdf = std::move(expansion.graph);
    return result;
}

std::vector<Rational> conservative_throughput_bound(const Graph& graph,
                                                    const SdfAbstraction& abstraction) {
    const std::vector<Int> repetition = repetition_vector(graph);
    std::vector<Rational> bound(graph.actor_count(), Rational(0));
    // Period of the abstract HSDF straight from its iteration matrix.
    SymbolicIteration iteration;
    try {
        iteration = symbolic_iteration(abstraction.abstract);
    } catch (const DeadlockError&) {
        return bound;  // deadlocked abstraction: trivial all-zero bound
    }
    const CycleMetric metric = max_cycle_mean_karp(iteration.matrix.precedence_graph());
    if (metric.outcome != CycleOutcome::finite || metric.value.is_zero()) {
        return bound;  // unbounded abstract throughput: no usable bound
    }
    // tau_abs(any abstract actor) = 1/lambda_abs (the abstract graph is
    // homogeneous); scale per original actor.
    const Rational tau_abs = metric.value.reciprocal();
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        bound[a] = Rational(repetition[a]) * tau_abs / Rational(abstraction.fold);
    }
    return bound;
}

}  // namespace sdf
