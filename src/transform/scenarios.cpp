#include "transform/scenarios.hpp"

#include "base/errors.hpp"
#include "maxplus/mcm.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/symbolic.hpp"

namespace sdf {

ScenarioAnalysis analyse_scenarios(const std::vector<Scenario>& scenarios) {
    if (scenarios.empty()) {
        throw Error("analyse_scenarios: no scenarios given");
    }
    ScenarioAnalysis result;
    std::size_t token_count = 0;
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
        const SymbolicIteration iteration = symbolic_iteration(scenarios[s].graph);
        if (s == 0) {
            token_count = iteration.tokens.size();
            result.envelope = MpMatrix(token_count, token_count);
        } else if (iteration.tokens.size() != token_count) {
            throw Error("scenario '" + scenarios[s].name +
                        "' has a different initial-token count");
        }
        const CycleMetric metric =
            max_cycle_mean_karp(iteration.matrix.precedence_graph());
        if (metric.outcome != CycleOutcome::finite || metric.value.is_zero()) {
            throw Error("scenario '" + scenarios[s].name +
                        "' has no finite positive standalone period");
        }
        result.names.push_back(scenarios[s].name);
        result.periods.push_back(metric.value);
        for (std::size_t j = 0; j < token_count; ++j) {
            for (std::size_t k = 0; k < token_count; ++k) {
                result.envelope.set(
                    j, k, mp_max(result.envelope.at(j, k), iteration.matrix.at(j, k)));
            }
        }
        result.matrices.push_back(iteration.matrix);
    }
    // Worst case over arbitrary switching: MCM of the union of all
    // precedence graphs — every mixed cycle is realisable by scheduling,
    // per step, the scenario contributing that edge.
    Digraph union_graph(token_count);
    for (const MpMatrix& matrix : result.matrices) {
        for (std::size_t j = 0; j < token_count; ++j) {
            for (std::size_t k = 0; k < token_count; ++k) {
                const MpValue v = matrix.at(j, k);
                if (v.is_finite()) {
                    union_graph.add_edge(j, k, v.value(), 1);
                }
            }
        }
    }
    const CycleMetric worst = max_cycle_mean_karp(union_graph);
    if (!worst.is_finite()) {
        throw Error("analyse_scenarios: union precedence graph has no cycle");
    }
    result.worst_case_period = worst.value;
    return result;
}

Graph scenario_envelope_hsdf(const ScenarioAnalysis& analysis, const std::string& name) {
    return reduced_hsdf_from_matrix(analysis.envelope, name);
}

}  // namespace sdf
