#include "transform/selfloops.hpp"

#include "base/errors.hpp"

namespace sdf {

Graph add_self_loops(const Graph& graph, Int tokens) {
    require(tokens > 0, "self-loop token count must be positive");
    Graph result = graph;
    std::vector<bool> has_self_loop(graph.actor_count(), false);
    for (const Channel& c : graph.channels()) {
        if (c.is_self_loop()) {
            has_self_loop[c.src] = true;
        }
    }
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        if (!has_self_loop[a]) {
            result.add_channel(a, a, 1, 1, tokens);
        }
    }
    return result;
}

}  // namespace sdf
