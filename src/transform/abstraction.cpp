#include "transform/abstraction.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>

#include "base/digraph.hpp"
#include "base/errors.hpp"
#include "base/string_util.hpp"
#include "sdf/repetition.hpp"
#include "transform/prune.hpp"
#include "transform/unfold.hpp"

namespace sdf {

Int AbstractionSpec::fold() const {
    Int n = 0;
    for (const Int i : index) {
        n = std::max(n, i);
    }
    return n;
}

void validate_abstraction(const Graph& graph, const AbstractionSpec& spec) {
    const std::size_t n = graph.actor_count();
    if (spec.group.size() != n || spec.index.size() != n) {
        throw InvalidAbstractionError("abstraction spec size does not match actor count");
    }
    for (ActorId a = 0; a < n; ++a) {
        if (spec.group[a].empty()) {
            throw InvalidAbstractionError("actor '" + graph.actor(a).name +
                                          "' has an empty group name");
        }
        if (spec.index[a] < 1) {
            throw InvalidAbstractionError("actor '" + graph.actor(a).name +
                                          "' has index < 1");
        }
    }
    // Same group: distinct indices, equal repetition entries.
    const std::vector<Int> repetition = repetition_vector(graph);
    std::map<std::pair<std::string, Int>, ActorId> index_in_group;
    std::unordered_map<std::string, ActorId> representative;
    for (ActorId a = 0; a < n; ++a) {
        const auto key = std::make_pair(spec.group[a], spec.index[a]);
        const auto [it, inserted] = index_in_group.emplace(key, a);
        if (!inserted) {
            throw InvalidAbstractionError(
                "actors '" + graph.actor(it->second).name + "' and '" +
                graph.actor(a).name + "' share group '" + spec.group[a] +
                "' and index " + std::to_string(spec.index[a]));
        }
        const auto [rep, fresh] = representative.emplace(spec.group[a], a);
        if (!fresh && repetition[rep->second] != repetition[a]) {
            throw InvalidAbstractionError(
                "group '" + spec.group[a] + "' mixes repetition entries " +
                std::to_string(repetition[rep->second]) + " ('" +
                graph.actor(rep->second).name + "') and " +
                std::to_string(repetition[a]) + " ('" + graph.actor(a).name + "')");
        }
    }
    // Every channel: I(src) <= I(dst) or d > 0.
    for (const Channel& ch : graph.channels()) {
        if (ch.initial_tokens == 0 && spec.index[ch.src] > spec.index[ch.dst]) {
            throw InvalidAbstractionError(
                "zero-delay channel " + graph.actor(ch.src).name + " -> " +
                graph.actor(ch.dst).name + " goes from index " +
                std::to_string(spec.index[ch.src]) + " down to " +
                std::to_string(spec.index[ch.dst]));
        }
    }
}

bool is_valid_abstraction(const Graph& graph, const AbstractionSpec& spec) {
    try {
        validate_abstraction(graph, spec);
        return true;
    } catch (const InvalidAbstractionError&) {
        return false;
    }
}

Graph abstract_graph(const Graph& graph, const AbstractionSpec& spec, bool prune) {
    validate_abstraction(graph, spec);
    require(graph.is_homogeneous(),
            "abstract_graph implements Definition 4, which is stated for "
            "homogeneous SDF graphs; convert or reformulate the input first");
    const Int fold = spec.fold();

    Graph result(graph.name() + "_abs");
    // One abstract actor per group, execution time = max over the group.
    std::unordered_map<std::string, ActorId> abstract_id;
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        const auto it = abstract_id.find(spec.group[a]);
        if (it == abstract_id.end()) {
            abstract_id.emplace(spec.group[a],
                                result.add_actor(spec.group[a],
                                                 graph.actor(a).execution_time));
        } else {
            const Int current = result.actor(it->second).execution_time;
            result.set_execution_time(
                it->second, std::max(current, graph.actor(a).execution_time));
        }
    }
    // One abstract channel per original channel:
    // (α(a1), α(a2), p, c, I(a2) − I(a1) + N·d).
    for (const Channel& ch : graph.channels()) {
        const Int delay = checked_add(
            checked_sub(spec.index[ch.dst], spec.index[ch.src]),
            checked_mul(fold, ch.initial_tokens));
        result.add_channel(abstract_id.at(spec.group[ch.src]),
                           abstract_id.at(spec.group[ch.dst]), ch.production,
                           ch.consumption, delay);
    }
    return prune ? prune_redundant_channels(result) : result;
}

AbstractionSpec assign_indices(const Graph& graph, std::vector<std::string> group) {
    require(group.size() == graph.actor_count(), "grouping size mismatch");
    // Topological order of the zero-delay sub-digraph.
    Digraph zero_delay(graph.actor_count());
    for (const Channel& ch : graph.channels()) {
        if (ch.initial_tokens == 0) {
            zero_delay.add_edge(ch.src, ch.dst);
        }
    }
    if (zero_delay.has_cycle()) {
        throw InvalidAbstractionError(
            "no valid index assignment: the zero-delay channels form a cycle "
            "(the graph deadlocks)");
    }
    AbstractionSpec spec;
    spec.group = std::move(group);
    spec.index.assign(graph.actor_count(), 0);

    std::unordered_map<std::string, std::set<Int>> used;
    for (const std::size_t a : zero_delay.topological_order()) {
        // Lower bound: indices must be monotone along zero-delay channels.
        Int bound = 1;
        for (const auto& e : zero_delay.edges()) {
            if (e.to == a) {
                bound = std::max(bound, spec.index[e.from]);
            }
        }
        // Bump to the smallest index >= bound unused within the group.
        std::set<Int>& taken = used[spec.group[a]];
        Int candidate = bound;
        while (taken.count(candidate) != 0) {
            ++candidate;
        }
        taken.insert(candidate);
        spec.index[a] = candidate;
    }
    return spec;
}

AbstractionSpec abstraction_by_name_suffix(const Graph& graph) {
    std::vector<std::string> group(graph.actor_count());
    std::vector<Int> suffix(graph.actor_count(), 0);
    bool all_suffixed_consistent = true;
    Int min_suffix = std::numeric_limits<Int>::max();
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        const NameParts parts = split_name_suffix(graph.actor(a).name);
        if (parts.index.has_value() && !parts.stem.empty()) {
            group[a] = parts.stem;
            suffix[a] = *parts.index;
            min_suffix = std::min(min_suffix, suffix[a]);
        } else {
            group[a] = graph.actor(a).name;  // singleton group
            suffix[a] = std::numeric_limits<Int>::min();
        }
    }
    if (min_suffix == std::numeric_limits<Int>::max()) {
        min_suffix = 1;  // no suffixed actor at all
    }
    // First attempt: indices straight from the suffixes (shifted so the
    // smallest becomes 1); singletons get index 1.
    AbstractionSpec spec;
    spec.group = group;
    spec.index.resize(graph.actor_count());
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        spec.index[a] = (suffix[a] == std::numeric_limits<Int>::min())
                            ? 1
                            : checked_add(checked_sub(suffix[a], min_suffix), 1);
        all_suffixed_consistent = all_suffixed_consistent && spec.index[a] >= 1;
    }
    if (all_suffixed_consistent && is_valid_abstraction(graph, spec)) {
        return spec;
    }
    // Fallback: keep the grouping, synthesise indices from the zero-delay
    // layering, and insist the result is valid.
    AbstractionSpec layered = assign_indices(graph, std::move(group));
    validate_abstraction(graph, layered);
    return layered;
}

std::string sigma_image_name(const AbstractionSpec& spec, ActorId actor) {
    // σ(a) = α(a)_{I(a)} with 1-based indices; unfold() names copies 0-based,
    // and abstract firing k stands in for the member with index (k mod N)+1,
    // so index i maps to copy i−1.
    return unfolded_actor_name(spec.group.at(actor), spec.index.at(actor) - 1);
}

}  // namespace sdf
