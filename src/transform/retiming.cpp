#include "transform/retiming.hpp"

#include <algorithm>

#include "base/digraph.hpp"
#include "base/errors.hpp"

namespace sdf {

namespace {

Int retimed_tokens(const Channel& ch, const std::vector<Int>& lag) {
    return checked_add(ch.initial_tokens, checked_sub(lag[ch.dst], lag[ch.src]));
}

}  // namespace

bool is_legal_retiming(const Graph& graph, const std::vector<Int>& lag) {
    if (lag.size() != graph.actor_count()) {
        return false;
    }
    for (const Channel& ch : graph.channels()) {
        if (retimed_tokens(ch, lag) < 0) {
            return false;
        }
    }
    return true;
}

Graph retime(const Graph& graph, const std::vector<Int>& lag) {
    require(graph.is_homogeneous(), "retiming is defined on homogeneous graphs");
    require(is_legal_retiming(graph, lag), "illegal retiming (negative tokens)");
    Graph result(graph.name() + "_ret");
    for (const Actor& a : graph.actors()) {
        result.add_actor(a.name, a.execution_time);
    }
    for (const Channel& ch : graph.channels()) {
        result.add_channel(ch.src, ch.dst, 1, 1, retimed_tokens(ch, lag));
    }
    return result;
}

Int max_token_free_path(const Graph& graph) {
    require(graph.is_homogeneous(),
            "max_token_free_path is defined on homogeneous graphs");
    // Longest path over the token-free sub-digraph, node-weighted by the
    // execution times.
    Digraph zero(graph.actor_count());
    for (const Channel& ch : graph.channels()) {
        if (ch.initial_tokens == 0) {
            zero.add_edge(ch.src, ch.dst);
        }
    }
    if (zero.has_cycle()) {
        throw InvalidGraphError("max_token_free_path: zero-token cycle (deadlock)");
    }
    std::vector<Int> best(graph.actor_count(), 0);
    const auto order = zero.topological_order();
    Int maximum = 0;
    for (const std::size_t v : order) {
        best[v] = checked_add(best[v], graph.actor(v).execution_time);
        maximum = std::max(maximum, best[v]);
        for (const auto& e : zero.edges()) {
            if (e.from == v) {
                best[e.to] = std::max(best[e.to], best[v]);
            }
        }
    }
    return maximum;
}

namespace {

/// One FEAS feasibility probe: is there a legal retiming with
/// max_token_free_path <= target?  Runs the Leiserson–Saxe iteration:
/// start from r = 0; |V| times, compute the longest token-free chain into
/// every actor under the current retiming and bump the lag of every actor
/// whose chain exceeds the target.  Feasible iff a fixpoint within budget.
bool feasible(const Graph& graph, Int target, std::vector<Int>* lag_out) {
    const std::size_t n = graph.actor_count();
    std::vector<Int> lag(n, 0);
    for (std::size_t round = 0; round <= n; ++round) {
        // Longest chains under the current lag.
        Digraph zero(n);
        for (const Channel& ch : graph.channels()) {
            // Mid-iteration lags may drive a channel negative; treat it as
            // (at least as tight as) token-free so the chain estimate stays
            // conservative until the fixpoint is checked for legality.
            if (retimed_tokens(ch, lag) <= 0) {
                zero.add_edge(ch.src, ch.dst);
            }
        }
        if (zero.has_cycle()) {
            return false;  // this lag deadlocks; FEAS does not recover
        }
        std::vector<Int> chain(n, 0);
        bool all_within = true;
        for (const std::size_t v : zero.topological_order()) {
            chain[v] = checked_add(chain[v], graph.actor(v).execution_time);
            if (chain[v] > target) {
                all_within = false;
            }
            for (const auto& e : zero.edges()) {
                if (e.from == v) {
                    chain[e.to] = std::max(chain[e.to], chain[v]);
                }
            }
        }
        if (all_within) {
            if (lag_out != nullptr) {
                *lag_out = lag;
            }
            return is_legal_retiming(graph, lag);
        }
        for (std::size_t v = 0; v < n; ++v) {
            if (chain[v] > target) {
                lag[v] = checked_add(lag[v], 1);
            }
        }
    }
    return false;
}

}  // namespace

RetimingResult minimize_token_free_path(const Graph& graph) {
    require(graph.is_homogeneous(),
            "minimize_token_free_path is defined on homogeneous graphs");
    const Int upper = max_token_free_path(graph);  // also rejects dead graphs
    // Lower bound: no retiming can split a single actor, and every cycle
    // retains its tokens, so the cycle mean bounds the achievable chain.
    Int lower = 0;
    for (const Actor& a : graph.actors()) {
        lower = std::max(lower, a.execution_time);
    }
    // Binary search the smallest feasible target.
    Int lo = lower;
    Int hi = upper;
    while (lo < hi) {
        const Int mid = lo + (hi - lo) / 2;
        if (feasible(graph, mid, nullptr)) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    RetimingResult result;
    if (!feasible(graph, lo, &result.lag)) {
        throw Error("internal: retiming feasibility lost at the optimum");
    }
    result.graph = retime(graph, result.lag);
    result.period = max_token_free_path(result.graph);
    return result;
}

}  // namespace sdf
