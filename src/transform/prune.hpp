// prune.hpp — redundant parallel-edge pruning.
//
// Section 4.2 of the paper: when an abstraction maps many original edges
// onto the same abstract edge, the abstract graph can end up with several
// parallel channels between two actors; "such a set of edges can always be
// pruned to only the one with the smallest number of initial tokens" — the
// channel with fewer initial tokens is the strictly tighter dependency, so
// removing the others never changes any firing time.
#pragma once

#include "sdf/graph.hpp"

namespace sdf {

/// Returns a copy of `graph` where, among parallel channels with identical
/// (src, dst, production, consumption), only one with the minimum number of
/// initial tokens remains.  Channel order of the survivors is preserved.
Graph prune_redundant_channels(const Graph& graph);

/// Number of channels prune_redundant_channels would remove.
std::size_t count_redundant_channels(const Graph& graph);

}  // namespace sdf
