#include "transform/hsdf_reduced.hpp"

#include <optional>
#include <vector>

#include "base/errors.hpp"
#include "transform/symbolic.hpp"

namespace sdf {

Graph reduced_hsdf_from_matrix(const MpMatrix& matrix, const std::string& name,
                               const ReducedHsdfOptions& options) {
    require(matrix.rows() == matrix.cols(), "iteration matrix must be square");
    const std::size_t n = matrix.rows();
    Graph graph(name);

    constexpr ActorId kNone = static_cast<ActorId>(-1);

    // Finite entries per row (fan-out of old token j) and per column
    // (fan-in of new token k).
    std::vector<std::vector<std::size_t>> row_clients(n);  // k's with G(j,k) finite
    std::vector<std::vector<std::size_t>> col_sources(n);  // j's with G(j,k) finite
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
            if (matrix.at(j, k).is_finite()) {
                row_clients[j].push_back(k);
                col_sources[k].push_back(j);
            }
        }
    }

    // Matrix actors.
    std::vector<std::vector<ActorId>> cell(n, std::vector<ActorId>(n, kNone));
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k : row_clients[j]) {
            cell[j][k] = graph.add_actor(
                "g_" + std::to_string(j) + "_" + std::to_string(k),
                matrix.at(j, k).value());
        }
    }

    // Demux actor of row j: needed when more than one matrix actor reads
    // token j (or unconditionally when elision is off and the row is used).
    std::vector<ActorId> demux(n, kNone);
    for (std::size_t j = 0; j < n; ++j) {
        const bool needed = options.elide_single_client_muxes
                                ? row_clients[j].size() > 1
                                : !row_clients[j].empty();
        if (needed) {
            demux[j] = graph.add_actor("dmx_" + std::to_string(j), 0);
            for (const std::size_t k : row_clients[j]) {
                graph.add_channel(demux[j], cell[j][k], 0);
            }
        }
    }

    // Mux actor of column k: needed when more than one matrix actor must
    // synchronise to produce token k.
    std::vector<ActorId> mux(n, kNone);
    std::vector<ActorId> producer(n, kNone);  // node that emits new token k
    for (std::size_t k = 0; k < n; ++k) {
        const bool needed = options.elide_single_client_muxes
                                ? col_sources[k].size() > 1
                                : !col_sources[k].empty();
        if (needed) {
            mux[k] = graph.add_actor("mux_" + std::to_string(k), 0);
            for (const std::size_t j : col_sources[k]) {
                graph.add_channel(cell[j][k], mux[k], 0);
            }
            producer[k] = mux[k];
        } else if (col_sources[k].size() == 1) {
            producer[k] = cell[col_sources[k][0]][k];
        } else {
            // Column k is all −∞: the new token depends on no initial token
            // and is available immediately each iteration.  A zero-time
            // actor recycling its own token models the unconstrained source
            // (only required when somebody consumes token k).
            if (!row_clients[k].empty()) {
                producer[k] = graph.add_actor("src_" + std::to_string(k), 0);
                graph.add_channel(producer[k], producer[k], 1);
            }
        }
    }

    // Token edges: one initial token per (used) initial token k, from the
    // producer of the new token k to the consumer side of the old token k.
    for (std::size_t k = 0; k < n; ++k) {
        if (producer[k] == kNone) {
            continue;
        }
        if (demux[k] != kNone) {
            graph.add_channel(producer[k], demux[k], 1);
        } else if (row_clients[k].size() == 1) {
            graph.add_channel(producer[k], cell[k][row_clients[k][0]], 1);
        }
        // Row k all −∞ and not a src_ self-loop: the token is reproduced
        // every iteration but constrains nothing; it can be dropped without
        // affecting any cycle.
    }
    return graph;
}

Graph to_hsdf_reduced(const Graph& graph, const ReducedHsdfOptions& options) {
    const SymbolicIteration iteration = symbolic_iteration(graph);
    return reduced_hsdf_from_matrix(iteration.matrix, graph.name() + "_rhsdf", options);
}

}  // namespace sdf
