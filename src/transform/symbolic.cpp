#include "transform/symbolic.hpp"

#include <deque>

#include "base/errors.hpp"
#include "sdf/schedule.hpp"

namespace sdf {

SymbolicIteration symbolic_iteration(const Graph& graph) {
    const std::vector<ActorId> schedule = sequential_schedule(graph);

    SymbolicIteration result;
    result.tokens = initial_tokens(graph);
    const std::size_t n = result.tokens.size();

    // FIFO of symbolic stamps per channel, seeded with unit vectors in the
    // canonical global token order.
    std::vector<std::deque<MpVector>> fifo(graph.channel_count());
    {
        std::size_t global = 0;
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            for (Int i = 0; i < graph.channel(c).initial_tokens; ++i) {
                fifo[c].push_back(MpVector::unit(n, global++));
            }
        }
    }

    std::vector<std::vector<ChannelId>> inputs(graph.actor_count());
    std::vector<std::vector<ChannelId>> outputs(graph.actor_count());
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        inputs[graph.channel(c).dst].push_back(c);
        outputs[graph.channel(c).src].push_back(c);
    }

    for (const ActorId a : schedule) {
        // Start time: element-wise max over all consumed stamps.  A firing
        // that consumes nothing starts unconstrained (all −∞).
        MpVector start(n);
        for (const ChannelId ci : inputs[a]) {
            const Int need = graph.channel(ci).consumption;
            for (Int i = 0; i < need; ++i) {
                if (fifo[ci].empty()) {
                    throw Error("internal: admissible schedule underflowed a channel");
                }
                start = start.max_with(fifo[ci].front());
                fifo[ci].pop_front();
            }
        }
        const MpVector finish = start.plus(graph.actor(a).execution_time);
        for (const ChannelId ci : outputs[a]) {
            for (Int i = 0; i < graph.channel(ci).production; ++i) {
                fifo[ci].push_back(finish);
            }
        }
    }

    // The token distribution is back to the initial one; read the stamps in
    // the same canonical order as matrix columns.
    result.matrix = MpMatrix(n, n);
    {
        std::size_t global = 0;
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            const Int expected = graph.channel(c).initial_tokens;
            if (static_cast<Int>(fifo[c].size()) != expected) {
                throw Error("internal: channel token count changed over an iteration");
            }
            for (Int i = 0; i < expected; ++i) {
                result.matrix.set_column(global++, fifo[c][static_cast<std::size_t>(i)]);
            }
        }
    }
    return result;
}

MpMatrix symbolic_iteration_power(const Graph& graph, Int iterations) {
    require(iterations >= 0, "negative iteration count");
    const SymbolicIteration one = symbolic_iteration(graph);
    // With columns-as-new-tokens, composing iterations means
    // G_n(j,k) = max_m ( G_1(j,m) + G_{n-1}(m,k) ), i.e. G_1 ⊗ G_{n-1} in
    // row-major max-plus product order.
    return one.matrix.power(iterations);
}

}  // namespace sdf
