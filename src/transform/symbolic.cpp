#include "transform/symbolic.hpp"

#include <deque>

#include "base/errors.hpp"
#include "maxplus/stamp.hpp"
#include "robust/budget.hpp"
#include "sdf/schedule.hpp"

namespace sdf {

namespace {

/// Input/output channel lists indexed by actor, shared by both engines.
struct Adjacency {
    std::vector<std::vector<ChannelId>> inputs;
    std::vector<std::vector<ChannelId>> outputs;
};

Adjacency build_adjacency(const Graph& graph) {
    Adjacency adj;
    adj.inputs.resize(graph.actor_count());
    adj.outputs.resize(graph.actor_count());
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        adj.inputs[graph.channel(c).dst].push_back(c);
        adj.outputs[graph.channel(c).src].push_back(c);
    }
    return adj;
}

/// The sparse engine: stamps are shared immutable (index, value) supports.
/// Consuming merges supports in O(support), producing pushes refcounted
/// handles, and the final matrix install walks only the finite entries.
MpMatrix run_sparse(const Graph& graph, const std::vector<ActorId>& schedule,
                    std::size_t n) {
    std::vector<std::deque<MpStamp>> fifo(graph.channel_count());
    {
        std::size_t global = 0;
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            for (Int i = 0; i < graph.channel(c).initial_tokens; ++i) {
                fifo[c].push_back(MpStamp::unit(global++));
            }
        }
    }
    const Adjacency adj = build_adjacency(graph);
    std::vector<MpStamp> consumed;  // reused across firings
    for (const ActorId a : schedule) {
        SDFRED_CHECKPOINT();
        consumed.clear();
        for (const ChannelId ci : adj.inputs[a]) {
            const Int need = graph.channel(ci).consumption;
            for (Int i = 0; i < need; ++i) {
                if (fifo[ci].empty()) {
                    throw Error("internal: admissible schedule underflowed a channel");
                }
                consumed.push_back(std::move(fifo[ci].front()));
                fifo[ci].pop_front();
            }
        }
        // One batched k-way merge per firing instead of k pairwise merges.
        const MpStamp finish = MpStamp::max_of(consumed).plus(graph.actor(a).execution_time);
        for (const ChannelId ci : adj.outputs[a]) {
            for (Int i = 0; i < graph.channel(ci).production; ++i) {
                fifo[ci].push_back(finish);
            }
        }
    }
    MpMatrix matrix(n, n);
    {
        std::size_t global = 0;
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            const Int expected = graph.channel(c).initial_tokens;
            if (static_cast<Int>(fifo[c].size()) != expected) {
                throw Error("internal: channel token count changed over an iteration");
            }
            for (Int i = 0; i < expected; ++i) {
                const std::size_t col = global++;
                fifo[c][static_cast<std::size_t>(i)].for_each(
                    [&](std::size_t row, Int value) { matrix.set(row, col, MpValue(value)); });
            }
        }
    }
    return matrix;
}

/// The dense reference engine: one full N-length MpVector per token, kept
/// as the differential-testing baseline for the sparse path above.
MpMatrix run_dense(const Graph& graph, const std::vector<ActorId>& schedule,
                   std::size_t n) {
    // Each of the n in-flight tokens carries a full n-length vector.
    robust_account_bytes(n * n * sizeof(MpValue));
    std::vector<std::deque<MpVector>> fifo(graph.channel_count());
    {
        std::size_t global = 0;
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            for (Int i = 0; i < graph.channel(c).initial_tokens; ++i) {
                fifo[c].push_back(MpVector::unit(n, global++));
            }
        }
    }
    const Adjacency adj = build_adjacency(graph);
    for (const ActorId a : schedule) {
        SDFRED_CHECKPOINT();
        // Start time: element-wise max over all consumed stamps.  A firing
        // that consumes nothing starts unconstrained (all −∞).
        MpVector start(n);
        for (const ChannelId ci : adj.inputs[a]) {
            const Int need = graph.channel(ci).consumption;
            for (Int i = 0; i < need; ++i) {
                if (fifo[ci].empty()) {
                    throw Error("internal: admissible schedule underflowed a channel");
                }
                start = start.max_with(fifo[ci].front());
                fifo[ci].pop_front();
            }
        }
        const MpVector finish = start.plus(graph.actor(a).execution_time);
        for (const ChannelId ci : adj.outputs[a]) {
            for (Int i = 0; i < graph.channel(ci).production; ++i) {
                fifo[ci].push_back(finish);
            }
        }
    }
    MpMatrix matrix(n, n);
    {
        std::size_t global = 0;
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            const Int expected = graph.channel(c).initial_tokens;
            if (static_cast<Int>(fifo[c].size()) != expected) {
                throw Error("internal: channel token count changed over an iteration");
            }
            for (Int i = 0; i < expected; ++i) {
                matrix.set_column(global++, fifo[c][static_cast<std::size_t>(i)]);
            }
        }
    }
    return matrix;
}

}  // namespace

SymbolicIteration symbolic_iteration(const Graph& graph, SymbolicEngine engine) {
    const std::vector<ActorId> schedule = sequential_schedule(graph);

    SymbolicIteration result;
    // The iteration matrix is dense n×n over the n initial tokens.  Refuse
    // up front when it could not possibly be materialised — e.g. the
    // bundled overflow stress model carries ~1e12 tokens, which would churn
    // through per-token fifo allocations for minutes before dying on a
    // multi-terabyte matrix.  16384² entries is a 4 GiB matrix, already far
    // past every practical model (lint rule SDF009 warns much earlier).
    constexpr Int kMaxSymbolicTokens = 16384;
    const Int token_count = graph.total_initial_tokens();
    if (token_count > kMaxSymbolicTokens) {
        throw ResourceLimitError(
            "symbolic iteration needs a dense " + std::to_string(token_count) +
                    "^2 max-plus matrix over the initial tokens; refusing above " +
                    std::to_string(kMaxSymbolicTokens) +
                    " tokens (model large token counts as scaled rates instead)");
    }
    result.tokens = initial_tokens(graph);
    const std::size_t n = result.tokens.size();
    result.matrix = engine == SymbolicEngine::sparse ? run_sparse(graph, schedule, n)
                                                     : run_dense(graph, schedule, n);
    return result;
}

MpMatrix symbolic_iteration_power(const Graph& graph, Int iterations) {
    require(iterations >= 0, "negative iteration count");
    if (iterations == 0) {
        // G^0 = I by definition; still validate the graph the way a real
        // execution would (consistency and deadlock-freedom), which hits
        // the memoised schedule instead of re-deriving it.
        sequential_schedule(graph);
        return MpMatrix::identity(initial_tokens(graph).size());
    }
    const SymbolicIteration one = symbolic_iteration(graph);
    if (iterations == 1) {
        return one.matrix;
    }
    // With columns-as-new-tokens, composing iterations means
    // G_n(j,k) = max_m ( G_1(j,m) + G_{n-1}(m,k) ), i.e. G_1 ⊗ G_{n-1} in
    // row-major max-plus product order.
    return one.matrix.power(iterations);
}

}  // namespace sdf
