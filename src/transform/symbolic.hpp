// symbolic.hpp — symbolic (max-plus) execution of one iteration
// (the analysis core of Algorithm 1 in the paper).
//
// Every initial token j starts with the symbolic time stamp t_j, encoded as
// the max-plus unit vector ī_j.  Executing a sequential schedule for one
// iteration, a firing that consumes tokens with stamps ḡ_1..ḡ_m starts at
// max_i(ḡ_i) (element-wise) and stamps its output tokens with
// max_i(ḡ_i) + T(a).  After the iteration the token distribution is back to
// the initial one and the stamp of new token k reads
//
//      t'_k = max_j ( t_j + G(j,k) ),
//
// i.e. the iteration is the max-plus linear map given by the N×N matrix G
// over the N initial tokens (in the canonical token order of
// sdf/properties.hpp).  SDF graphs are determinate, so G does not depend on
// which admissible schedule is executed.
//
// G is the basis of both reduction results in this library:
//  * its max-plus eigenvalue (max cycle mean of its precedence graph) is the
//    iteration period, hence the throughput (analysis/throughput.hpp);
//  * the reduced HSDF of Figure 4 is read directly off its finite entries
//    (hsdf_reduced.hpp).
#pragma once

#include <vector>

#include "maxplus/matrix.hpp"
#include "sdf/graph.hpp"
#include "sdf/properties.hpp"

namespace sdf {

/// The symbolic result of one iteration.
struct SymbolicIteration {
    /// Row j / column k: the minimum distance G(j,k) that new token k must
    /// keep to the previous production time of token j (−∞: no dependency).
    MpMatrix matrix;
    /// The initial tokens, in matrix row/column order.
    std::vector<TokenRef> tokens;
};

/// Which stamp representation drives the symbolic execution.  Both engines
/// produce bit-identical matrices (enforced by the differential property
/// tests); `sparse` is the default and the fast path — a firing costs
/// O(support of the consumed stamps) and multi-rate production pushes
/// refcounted handles, while `dense` copies a full N-length vector per
/// produced token and exists as the reference baseline.
enum class SymbolicEngine {
    sparse,  ///< MpStamp: shared immutable (index, value) storage
    dense,   ///< MpVector: one MpValue per initial token, copied eagerly
};

/// Symbolically executes one iteration of a consistent, deadlock-free SDF
/// graph and returns its max-plus iteration matrix.  Throws
/// InconsistentGraphError / DeadlockError accordingly, and plain Error when
/// the graph carries more initial tokens than the dense n×n matrix could
/// ever hold in memory (the guard fires before any allocation happens).
SymbolicIteration symbolic_iteration(const Graph& graph,
                                     SymbolicEngine engine = SymbolicEngine::sparse);

/// Symbolically executes `iterations` iterations (the matrix power G^n with
/// the row/column convention above, computed by direct execution order
/// composition).  Mostly used for tests of linearity.  `iterations` 0 and 1
/// short-circuit to the identity (after validating schedulability) and to
/// the plain iteration matrix, without entering power().
MpMatrix symbolic_iteration_power(const Graph& graph, Int iterations);

}  // namespace sdf
