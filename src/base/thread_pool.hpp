// thread_pool.hpp — a small fixed-size thread pool for data-parallel loops.
//
// The performance-critical kernels in this library (blocked max-plus matrix
// products, per-SCC Karp runs, per-model benchmark sweeps) are all
// embarrassingly parallel loops over independent chunks, so the pool is
// deliberately work-stealing-free: parallel_for hands out contiguous index
// chunks from one shared atomic cursor and every participant (workers and
// the calling thread) pulls chunks until the range is exhausted.
//
// Beyond the loops, the pool also accepts detached one-shot tasks
// (submit), which is what `sdfred serve` dispatches requests onto: a task
// runs once on some worker, may itself call parallel_for (the nested call
// participates like any other caller), and drain() lets an owner wait for
// every submitted task to finish without destroying the pool — the quiesce
// step of a clean server shutdown.
//
// Sizing: the global pool reads SDFRED_THREADS once at first use; unset,
// empty, zero or unparsable values fall back to hardware_concurrency().
// A pool of size 1 never spawns threads and runs every loop inline on the
// caller, so single-core machines and SDFRED_THREADS=1 runs stay free of
// synchronisation overhead (and of false TSan positives in client code).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sdf {

/// A fixed-size pool executing chunked parallel-for loops.  All methods are
/// safe to call from multiple threads; nested parallel_for calls (from
/// inside a loop body) degrade to inline execution instead of deadlocking.
class ThreadPool {
public:
    /// `threads` is the total parallelism including the calling thread, so
    /// size() == 1 means "no worker threads, run inline".  0 is clamped to 1.
    explicit ThreadPool(std::size_t threads);

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;
    ~ThreadPool();

    /// Total parallelism (worker threads + the calling thread).
    [[nodiscard]] std::size_t size() const { return size_; }

    /// Calls body(i) for every i in [begin, end), distributing contiguous
    /// chunks of at least `grain` indices over the pool.  Blocks until every
    /// index is done.  The first exception thrown by any body is rethrown on
    /// the caller after the loop has drained.
    void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                      const std::function<void(std::size_t)>& body);

    /// Enqueues a one-shot task to run on some worker thread and returns
    /// immediately.  Tasks run concurrently with each other and with
    /// parallel_for loops; a task may itself call parallel_for.  Tasks must
    /// not throw (an escaping exception terminates the process, like
    /// std::thread) and must not call drain() on their own pool.  On a
    /// single-lane pool (size() == 1, no workers) the task runs inline,
    /// synchronously, on the caller.
    void submit(std::function<void()> task);

    /// Blocks until every task submitted so far has finished (queue empty
    /// and no task mid-execution).  Does not stop the pool: new work may be
    /// submitted afterwards.  This is the quiesce step of a clean server
    /// shutdown — wait for in-flight requests without destroying the
    /// workers.  Must not be called from inside a task on the same pool.
    void drain();

    /// Tasks currently queued or executing; a server's queue-depth gauge.
    [[nodiscard]] std::size_t pending_tasks() const;

private:
    struct Loop;

    void worker_main();
    static void run_chunks(Loop& loop);

    std::size_t size_ = 1;
    std::vector<std::thread> workers_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;      // workers wait for a loop, a task or shutdown
    std::condition_variable finished_;  // callers wait for loops/tasks to drain
    std::shared_ptr<Loop> current_;     // loop being executed, if any
    std::deque<std::function<void()>> tasks_;  // submitted, not yet started
    std::size_t running_tasks_ = 0;     // started, not yet finished
    bool shutdown_ = false;
};

/// The process-wide pool, sized from SDFRED_THREADS (default:
/// hardware_concurrency).  Constructed on first use.
ThreadPool& global_thread_pool();

/// Chunked parallel loop on the global pool.  `grain` is the minimum number
/// of indices per chunk; pass the per-index cost's inverse order of
/// magnitude (large grain for cheap bodies).
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& body);

/// Propagation of a caller-side thread-local context into pool workers.
/// `capture` runs on the calling thread when a loop is submitted; workers
/// run `install(context)` before executing chunks of that loop and
/// `uninstall(context)` after (also on the error path).  The pool itself
/// knows nothing about the context's meaning — the robust layer uses this
/// to extend its per-thread Governor over parallel loops without the base
/// library depending on it.  All three hooks must be set together.
struct ParallelContextHooks {
    void* (*capture)() = nullptr;
    void (*install)(void* context) = nullptr;
    void (*uninstall)(void* context) = nullptr;
};

/// Registers the process-wide context hooks.  Call at most once, before or
/// during the first governed computation; loops submitted afterwards carry
/// the captured context.
void set_parallel_context_hooks(const ParallelContextHooks& hooks);

}  // namespace sdf
