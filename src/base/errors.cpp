#include "base/errors.hpp"

namespace sdf {

void require(bool condition, const std::string& message) {
    if (!condition) {
        throw InvalidGraphError(message);
    }
}

}  // namespace sdf
