// arena.hpp — bump-pointer arena for kernel temporaries.
//
// The max-plus hot paths (blocked multiply supports, per-row gather
// buffers, Karp DP tables, dense SCC adjacencies) used to build and tear
// down short-lived std::vectors on every call; under the thread pool that
// is general-heap churn on every worker.  An Arena hands out raw storage
// from a small list of geometrically growing blocks: allocation is an
// aligned bump, deallocation is rewinding to a mark, and the blocks are
// *retained* across rewinds so a steady-state kernel run stops touching
// the heap entirely.
//
// Budget integration: a block is charged to the current thread's governed
// ExecutionBudget via robust_account_bytes() *before* it is allocated, so
// a memory-budgeted analysis refuses arena growth up front and the
// SDFRED_FAULT_INJECT=alloc:N injector exercises the growth path exactly
// like any other accounted allocation.  Both failure modes leave the arena
// unchanged (strong guarantee), which the robustness tests rely on for
// retry-identity.  Rewinds and block reuse are free — the budget charges
// heap growth, not transient peak.
//
// Thread model: an Arena is single-threaded.  Kernels use the per-thread
// scratch_arena(); pool workers each get their own, so parallel row loops
// never contend.  Only trivially destructible payloads are supported —
// rewinding runs no destructors by design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "base/errors.hpp"

namespace sdf {

/// Called with the byte size of every new arena block *before* it is
/// allocated.  The robust layer installs robust_account_bytes here (once,
/// alongside its thread-pool context hooks) so arena growth is charged to
/// the per-thread governed budget without base depending on robust —
/// the same inversion thread_pool.hpp uses for governor propagation.
/// A throwing hook (BudgetExceeded, injected bad_alloc) vetoes the growth.
using ArenaAccountHook = void (*)(std::uint64_t bytes);
void set_arena_account_hook(ArenaAccountHook hook);

class Arena {
public:
    /// First block size; later blocks double up to an internal cap.
    explicit Arena(std::size_t first_block_bytes = 1u << 16);

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /// `bytes` of storage aligned to `alignment` (a power of two).  Grows a
    /// new accounted block when the retained ones are exhausted.
    void* allocate(std::size_t bytes, std::size_t alignment = alignof(std::max_align_t));

    /// A T[count] of uninitialised storage.  T must be trivially
    /// destructible (rewind runs no destructors).
    template <typename T>
    T* alloc_array(std::size_t count) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena payloads are rewound, never destroyed");
        if (count != 0 && count > static_cast<std::size_t>(-1) / sizeof(T)) {
            throw ArithmeticError("arena allocation size overflow");
        }
        return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    }

    /// A cursor into the arena; everything allocated after taking it is
    /// reclaimed (storage retained) by rewind().
    struct Position {
        std::size_t block = 0;
        std::size_t offset = 0;
    };

    [[nodiscard]] Position position() const { return Position{current_, current_used()}; }

    /// Reclaims everything allocated since `pos`.  Blocks stay allocated
    /// (and accounted) for reuse.
    void rewind(Position pos);

    /// Frees every block.  Mostly for tests that need a cold arena.
    void release();

    /// Total bytes held in blocks (retained capacity, not live payload).
    [[nodiscard]] std::size_t capacity_bytes() const;
    [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

    /// RAII mark: rewinds on scope exit, including the exception path.
    class Scope {
    public:
        explicit Scope(Arena& arena) : arena_(arena), pos_(arena.position()) {}
        ~Scope() { arena_.rewind(pos_); }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        Arena& arena_;
        Position pos_;
    };

private:
    struct Block {
        std::unique_ptr<char[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    [[nodiscard]] std::size_t current_used() const {
        return blocks_.empty() ? 0 : blocks_[current_].used;
    }
    void grow(std::size_t at_least);

    std::vector<Block> blocks_;
    std::size_t current_ = 0;  ///< block being bumped (0 when empty)
    std::size_t next_block_bytes_;
};

/// The calling thread's kernel scratch arena.  Kernels take an
/// Arena::Scope, allocate freely, and leave the capacity warm for the next
/// call on this thread.
Arena& scratch_arena();

}  // namespace sdf
