#include "base/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

namespace sdf {

namespace {

/// True while this thread is executing chunks of some loop; nested
/// parallel_for calls run inline instead of waiting on the busy pool.
thread_local bool t_inside_loop = false;

/// Context hooks, written once (set_parallel_context_hooks) before the
/// first governed loop; `ready` is the release/acquire gate that makes the
/// plain function pointers safe to read from workers.
ParallelContextHooks g_context_hooks;
std::atomic<bool> g_context_hooks_ready{false};

std::size_t pool_size_from_env() {
    if (const char* env = std::getenv("SDFRED_THREADS")) {
        char* end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0) {
            return static_cast<std::size_t>(parsed);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

}  // namespace

/// One parallel_for invocation: a shared chunk cursor plus completion and
/// error state.  `active` counts threads currently inside run_chunks.
struct ThreadPool::Loop {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t)>* body = nullptr;
    void* context = nullptr;  // caller context captured via the hooks
    std::size_t active = 0;  // guarded by the pool mutex
    std::exception_ptr error;  // first failure, guarded by the pool mutex
};

ThreadPool::ThreadPool(std::size_t threads) : size_(threads == 0 ? 1 : threads) {
    workers_.reserve(size_ - 1);
    for (std::size_t i = 0; i + 1 < size_; ++i) {
        workers_.emplace_back([this] { worker_main(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_) {
        w.join();
    }
}

void ThreadPool::run_chunks(Loop& loop) {
    const bool was_inside = t_inside_loop;
    t_inside_loop = true;
    for (;;) {
        const std::size_t start = loop.next.fetch_add(loop.grain);
        if (start >= loop.end) {
            break;
        }
        const std::size_t stop = std::min(start + loop.grain, loop.end);
        try {
            for (std::size_t i = start; i < stop; ++i) {
                (*loop.body)(i);
            }
        } catch (...) {
            // Drain the remaining chunks so every participant exits
            // promptly, then let the caller record the failure.
            loop.next.store(loop.end);
            t_inside_loop = was_inside;
            throw;
        }
    }
    t_inside_loop = was_inside;
}

void ThreadPool::worker_main() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [this] {
            return shutdown_ || current_ != nullptr || !tasks_.empty();
        });
        // One-shot tasks first: a queued request must not starve behind a
        // long parallel loop the workers are merely *helping* with (the
        // loop's caller participates, so the loop always progresses).
        if (!tasks_.empty()) {
            std::function<void()> task = std::move(tasks_.front());
            tasks_.pop_front();
            ++running_tasks_;
            lock.unlock();
            task();  // escaping exceptions terminate, like std::thread
            lock.lock();
            --running_tasks_;
            if (tasks_.empty() && running_tasks_ == 0) {
                finished_.notify_all();
            }
            continue;
        }
        if (shutdown_) {
            // The task branch above ran first, so queued tasks drain before
            // workers retire: destruction completes submitted work.
            return;
        }
        const std::shared_ptr<Loop> loop = current_;
        if (loop->next.load() >= loop->end) {
            // Drained but not yet retired by its caller; sleep until the
            // caller clears current_ (notified below), a new loop starts or
            // a task arrives.
            wake_.wait(lock, [this, &loop] {
                return shutdown_ || current_ != loop || !tasks_.empty();
            });
            continue;
        }
        ++loop->active;
        lock.unlock();
        const bool with_context =
            loop->context != nullptr && g_context_hooks_ready.load(std::memory_order_acquire);
        if (with_context) {
            g_context_hooks.install(loop->context);
        }
        std::exception_ptr error;
        try {
            run_chunks(*loop);
        } catch (...) {
            error = std::current_exception();
        }
        if (with_context) {
            g_context_hooks.uninstall(loop->context);
        }
        lock.lock();
        if (error && !loop->error) {
            loop->error = error;
        }
        --loop->active;
        if (loop->active == 0) {
            finished_.notify_all();
        }
    }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                              const std::function<void(std::size_t)>& body) {
    if (begin >= end) {
        return;
    }
    if (grain == 0) {
        grain = 1;
    }
    // Inline fast path: nothing to parallelise, a single-lane pool, a nested
    // call from inside another loop, or a range that fits one chunk.
    if (size_ == 1 || t_inside_loop || end - begin <= grain) {
        const bool was_inside = t_inside_loop;
        t_inside_loop = true;
        try {
            for (std::size_t i = begin; i < end; ++i) {
                body(i);
            }
        } catch (...) {
            t_inside_loop = was_inside;
            throw;
        }
        t_inside_loop = was_inside;
        return;
    }

    const auto loop = std::make_shared<Loop>();
    loop->next.store(begin);
    loop->end = end;
    loop->grain = grain;
    loop->body = &body;
    if (g_context_hooks_ready.load(std::memory_order_acquire)) {
        loop->context = g_context_hooks.capture();
    }

    std::unique_lock<std::mutex> lock(mutex_);
    // One loop at a time; concurrent callers queue here.
    finished_.wait(lock, [this] { return current_ == nullptr; });
    current_ = loop;
    ++loop->active;  // the caller participates
    lock.unlock();
    wake_.notify_all();

    std::exception_ptr error;
    try {
        run_chunks(*loop);
    } catch (...) {
        error = std::current_exception();
    }

    lock.lock();
    if (error && !loop->error) {
        loop->error = error;
    }
    --loop->active;
    finished_.wait(lock, [&loop] { return loop->active == 0; });
    current_.reset();
    const std::exception_ptr first = loop->error;
    lock.unlock();
    // Wake queued callers (waiting on finished_) and idle workers parked on
    // the drained loop (waiting on wake_).
    finished_.notify_all();
    wake_.notify_all();
    if (first) {
        std::rethrow_exception(first);
    }
}

void ThreadPool::submit(std::function<void()> task) {
    if (size_ == 1) {
        // No workers to hand off to: run synchronously on the caller, the
        // same degradation parallel_for applies on a single-lane pool.
        task();
        return;
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void ThreadPool::drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    finished_.wait(lock, [this] { return tasks_.empty() && running_tasks_ == 0; });
}

std::size_t ThreadPool::pending_tasks() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return tasks_.size() + running_tasks_;
}

ThreadPool& global_thread_pool() {
    static ThreadPool pool(pool_size_from_env());
    return pool;
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& body) {
    global_thread_pool().parallel_for(begin, end, grain, body);
}

void set_parallel_context_hooks(const ParallelContextHooks& hooks) {
    g_context_hooks = hooks;
    g_context_hooks_ready.store(true, std::memory_order_release);
}

}  // namespace sdf
