// string_util.hpp — small string helpers shared by the I/O layer and the
// name-based abstraction heuristics.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/checked.hpp"

namespace sdf {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Splits `text` on `separator`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char separator);

/// Splits `text` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> split_whitespace(std::string_view text);

/// Parses a decimal integer; std::nullopt when `text` is not exactly one
/// well-formed int64.
std::optional<Int> parse_int(std::string_view text);

/// Splits an actor name into a non-numeric stem and a numeric suffix:
/// "A12" -> {"A", 12}; names without a trailing number yield no suffix.
/// Used by the automatic abstraction discovery ("group all Ai into A").
struct NameParts {
    std::string stem;
    std::optional<Int> index;
};
NameParts split_name_suffix(std::string_view name);

/// True when `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace sdf
