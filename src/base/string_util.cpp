#include "base/string_util.hpp"

#include <cctype>
#include <charconv>

namespace sdf {

namespace {

bool is_space(char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

bool is_digit(char c) {
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string_view trim(std::string_view text) {
    std::size_t begin = 0;
    while (begin < text.size() && is_space(text[begin])) {
        ++begin;
    }
    std::size_t end = text.size();
    while (end > begin && is_space(text[end - 1])) {
        --end;
    }
    return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char separator) {
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(separator, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            return fields;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string> split_whitespace(std::string_view text) {
    std::vector<std::string> fields;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && is_space(text[i])) {
            ++i;
        }
        const std::size_t start = i;
        while (i < text.size() && !is_space(text[i])) {
            ++i;
        }
        if (i > start) {
            fields.emplace_back(text.substr(start, i - start));
        }
    }
    return fields;
}

std::optional<Int> parse_int(std::string_view text) {
    text = trim(text);
    if (text.empty()) {
        return std::nullopt;
    }
    Int value = 0;
    const char* first = text.data();
    const char* last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) {
        return std::nullopt;
    }
    return value;
}

NameParts split_name_suffix(std::string_view name) {
    std::size_t pos = name.size();
    while (pos > 0 && is_digit(name[pos - 1])) {
        --pos;
    }
    NameParts parts;
    parts.stem = std::string(name.substr(0, pos));
    if (pos < name.size()) {
        parts.index = parse_int(name.substr(pos));
    }
    return parts;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace sdf
