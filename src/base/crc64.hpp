// crc64.hpp — CRC-64 checksums for the crash-safe persistence layer.
//
// The persistent result cache (serve/persist.hpp) guards every entry file
// with a CRC-64 trailer so a torn write, a truncated file or a flipped bit
// is DETECTED at load time and quarantined instead of being replayed as a
// cached analysis result.  The parameters are the widely deployed
// CRC-64/XZ model (reflected polynomial 0x42F0E1EBA9EA3693, initial value
// and final xor all-ones) — the same checksum xz-utils uses — computed
// with a 256-entry table built once at startup.
//
// The checksum is a pure function of the bytes: no global state, safe to
// call from any thread, and stable across platforms (the persistence
// format is little-endian by definition, not by host).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sdf {

/// CRC-64/XZ of `size` bytes at `data`.
[[nodiscard]] std::uint64_t crc64(const void* data, std::size_t size) noexcept;

/// Convenience overload for whole strings.
[[nodiscard]] std::uint64_t crc64(const std::string& data) noexcept;

/// Continues a running checksum: crc64_update(crc64(a), b) == crc64(a + b).
/// Feed the value returned by the previous call, starting from 0.
[[nodiscard]] std::uint64_t crc64_update(std::uint64_t crc, const void* data,
                                         std::size_t size) noexcept;

}  // namespace sdf
