// portable_rng.hpp — cross-platform deterministic bounded random draws.
//
// std::mt19937 is fully specified by the standard (same seed, same raw
// 32-bit outputs everywhere), but std::uniform_int_distribution is NOT: its
// mapping from raw outputs to a bounded range is implementation-defined, so
// the same seed produces different graphs on libstdc++ and libc++.  That
// breaks reproducibility of fuzz seeds and property-test cases across
// toolchains.  The helpers below consume raw engine outputs and map them to
// bounded ranges with explicit, exactly uniform rejection sampling, so a
// seed identifies one graph on every platform.
#pragma once

#include <cstdint>
#include <limits>
#include <random>

#include "base/checked.hpp"

namespace sdf {

/// One full-width 64-bit draw (two raw 32-bit engine outputs, high first).
inline std::uint64_t draw_u64(std::mt19937& rng) {
    const std::uint64_t high = rng();
    const std::uint64_t low = rng();
    return (high << 32) | low;
}

/// Uniform draw from [0, bound); bound must be positive.  Exactly uniform:
/// draws landing in the final partial copy of the range are rejected and
/// redrawn (at most one extra draw in expectation, for any bound).
inline std::uint64_t draw_below(std::mt19937& rng, std::uint64_t bound) {
    if (bound == 0) {
        throw ArithmeticError("draw_below: bound must be positive");
    }
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    // 2^64 mod bound, computed without 2^64 itself.
    const std::uint64_t overhang = (kMax % bound + 1) % bound;
    for (;;) {
        const std::uint64_t x = draw_u64(rng);
        if (overhang == 0 || x <= kMax - overhang) {
            return x % bound;
        }
    }
}

/// Uniform draw from the inclusive range [lo, hi]; requires lo <= hi.
inline Int draw_int(std::mt19937& rng, Int lo, Int hi) {
    if (lo > hi) {
        throw ArithmeticError("draw_int: empty range [" + std::to_string(lo) + ", " +
                              std::to_string(hi) + "]");
    }
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    if (span == std::numeric_limits<std::uint64_t>::max()) {
        return static_cast<Int>(draw_u64(rng));
    }
    return static_cast<Int>(static_cast<std::uint64_t>(lo) + draw_below(rng, span + 1));
}

/// Uniform index draw from [0, n); n must be positive.
inline std::size_t draw_index(std::mt19937& rng, std::size_t n) {
    return static_cast<std::size_t>(draw_below(rng, static_cast<std::uint64_t>(n)));
}

/// True with probability `probability` (clamped to [0, 1]); consumes exactly
/// one raw 32-bit output.  The comparison against a scaled threshold is
/// plain IEEE double arithmetic, identical on all conforming platforms.
inline bool draw_chance(std::mt19937& rng, double probability) {
    return static_cast<double>(rng()) < probability * 4294967296.0;
}

}  // namespace sdf
