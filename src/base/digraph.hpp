// digraph.hpp — a small generic directed multigraph with the graph
// algorithms the analyses need: Tarjan strongly-connected components,
// topological sorting and cycle detection.
//
// Nodes are dense indices 0..node_count-1.  Every edge carries two int64
// payloads, `weight` and `tokens`; algorithms that do not need them ignore
// them.  This is deliberately untyped glue: the typed models live in
// sdf::Graph (SDF graphs) and sdf::MpMatrix (max-plus matrices), both of
// which lower onto this structure for the combinatorial work.
#pragma once

#include <cstddef>
#include <vector>

#include "base/checked.hpp"

namespace sdf {

/// One directed edge of a Digraph.
struct DigraphEdge {
    std::size_t from = 0;
    std::size_t to = 0;
    Int weight = 0;  ///< e.g. execution time along the edge
    Int tokens = 0;  ///< e.g. initial tokens (delay) on the edge
};

/// Directed multigraph over dense node indices with int64 edge payloads.
class Digraph {
public:
    Digraph() = default;
    explicit Digraph(std::size_t node_count) : node_count_(node_count) {}

    [[nodiscard]] std::size_t node_count() const { return node_count_; }
    [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
    [[nodiscard]] const std::vector<DigraphEdge>& edges() const { return edges_; }
    [[nodiscard]] const DigraphEdge& edge(std::size_t index) const { return edges_[index]; }

    /// Appends a node and returns its index.
    std::size_t add_node() { return node_count_++; }

    /// Appends an edge; both endpoints must already exist.
    std::size_t add_edge(std::size_t from, std::size_t to, Int weight = 0, Int tokens = 0);

    /// Outgoing edge indices per node (built lazily by callers that need it).
    [[nodiscard]] std::vector<std::vector<std::size_t>> out_edges() const;

    /// Tarjan SCC.  Returns the component index of every node; components
    /// are numbered in reverse topological order (an edge between distinct
    /// components goes from a higher to a lower component index).
    [[nodiscard]] std::vector<std::size_t> strongly_connected_components(
        std::size_t* component_count = nullptr) const;

    /// True when the graph contains at least one directed cycle
    /// (self-loops count).
    [[nodiscard]] bool has_cycle() const;

    /// Topological order of the nodes; throws InvalidGraphError when the
    /// graph has a cycle.
    [[nodiscard]] std::vector<std::size_t> topological_order() const;

private:
    std::size_t node_count_ = 0;
    std::vector<DigraphEdge> edges_;
};

}  // namespace sdf
