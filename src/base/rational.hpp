// rational.hpp — exact rational arithmetic on checked 64-bit integers.
//
// Throughputs, cycle means and cycle ratios in SDF analysis are ratios of
// integer execution-time sums to integer token counts.  Keeping them exact
// lets the test suite assert *equality* between independent analysis routes
// (symbolic max-plus matrix, classical HSDF conversion, state-space
// simulation) instead of comparing floating-point values with an epsilon.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "base/checked.hpp"

namespace sdf {

/// An exact rational number num/den with den > 0, always stored in lowest
/// terms.  All operations are overflow-checked.
class Rational {
public:
    /// Zero.
    constexpr Rational() = default;

    /// The integer `value` as a rational.
    Rational(Int value) : num_(value), den_(1) {}  // NOLINT: implicit by design

    /// num/den reduced to lowest terms; `den` must be non-zero.
    Rational(Int num, Int den);

    [[nodiscard]] Int num() const { return num_; }
    [[nodiscard]] Int den() const { return den_; }

    [[nodiscard]] bool is_integer() const { return den_ == 1; }
    [[nodiscard]] bool is_zero() const { return num_ == 0; }

    /// Value as double (for reporting only; analyses stay exact).
    [[nodiscard]] double to_double() const {
        return static_cast<double>(num_) / static_cast<double>(den_);
    }

    /// Decimal-ish rendering, e.g. "3/7" or "5" when the value is integral.
    [[nodiscard]] std::string to_string() const;

    Rational operator-() const;
    Rational& operator+=(const Rational& other);
    Rational& operator-=(const Rational& other);
    Rational& operator*=(const Rational& other);
    Rational& operator/=(const Rational& other);

    friend Rational operator+(Rational a, const Rational& b) { return a += b; }
    friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
    friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
    friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

    friend bool operator==(const Rational& a, const Rational& b) = default;
    friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

    /// Multiplicative inverse; throws ArithmeticError when zero.
    [[nodiscard]] Rational reciprocal() const;

    /// Largest integer <= value.
    [[nodiscard]] Int floor() const { return floor_div(num_, den_); }

    /// Smallest integer >= value.
    [[nodiscard]] Int ceil() const { return ceil_div(num_, den_); }

private:
    Int num_ = 0;
    Int den_ = 1;

    void normalize();
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Mediant (a.num+b.num)/(a.den+b.den) — the Stern–Brocot descent step used
/// by the exact cycle-ratio search.
Rational mediant(const Rational& a, const Rational& b);

}  // namespace sdf
