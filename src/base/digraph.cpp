#include "base/digraph.hpp"

#include <algorithm>
#include <stack>

#include "base/errors.hpp"

namespace sdf {

std::size_t Digraph::add_edge(std::size_t from, std::size_t to, Int weight, Int tokens) {
    require(from < node_count_ && to < node_count_, "digraph edge endpoint out of range");
    edges_.push_back(DigraphEdge{from, to, weight, tokens});
    return edges_.size() - 1;
}

std::vector<std::vector<std::size_t>> Digraph::out_edges() const {
    std::vector<std::vector<std::size_t>> out(node_count_);
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        out[edges_[i].from].push_back(i);
    }
    return out;
}

std::vector<std::size_t> Digraph::strongly_connected_components(
    std::size_t* component_count) const {
    // Iterative Tarjan to stay safe on deep graphs (the classical HSDF
    // conversion can produce chains tens of thousands of nodes long).
    constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
    const auto out = out_edges();
    std::vector<std::size_t> index(node_count_, kUnvisited);
    std::vector<std::size_t> lowlink(node_count_, 0);
    std::vector<bool> on_stack(node_count_, false);
    std::vector<std::size_t> component(node_count_, 0);
    std::vector<std::size_t> scc_stack;
    std::size_t next_index = 0;
    std::size_t next_component = 0;

    struct Frame {
        std::size_t node;
        std::size_t edge_pos;  // position in out[node] to resume at
    };
    std::vector<Frame> call_stack;

    for (std::size_t root = 0; root < node_count_; ++root) {
        if (index[root] != kUnvisited) {
            continue;
        }
        call_stack.push_back(Frame{root, 0});
        index[root] = lowlink[root] = next_index++;
        scc_stack.push_back(root);
        on_stack[root] = true;

        while (!call_stack.empty()) {
            Frame& frame = call_stack.back();
            const std::size_t v = frame.node;
            if (frame.edge_pos < out[v].size()) {
                const std::size_t w = edges_[out[v][frame.edge_pos++]].to;
                if (index[w] == kUnvisited) {
                    index[w] = lowlink[w] = next_index++;
                    scc_stack.push_back(w);
                    on_stack[w] = true;
                    call_stack.push_back(Frame{w, 0});
                } else if (on_stack[w]) {
                    lowlink[v] = std::min(lowlink[v], index[w]);
                }
            } else {
                if (lowlink[v] == index[v]) {
                    while (true) {
                        const std::size_t w = scc_stack.back();
                        scc_stack.pop_back();
                        on_stack[w] = false;
                        component[w] = next_component;
                        if (w == v) {
                            break;
                        }
                    }
                    ++next_component;
                }
                call_stack.pop_back();
                if (!call_stack.empty()) {
                    const std::size_t parent = call_stack.back().node;
                    lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
                }
            }
        }
    }
    if (component_count != nullptr) {
        *component_count = next_component;
    }
    return component;
}

bool Digraph::has_cycle() const {
    std::size_t component_count = 0;
    const auto component = strongly_connected_components(&component_count);
    // A cycle exists iff some SCC has more than one node, or a self-loop
    // exists.
    std::vector<std::size_t> size(component_count, 0);
    for (std::size_t v = 0; v < node_count_; ++v) {
        ++size[component[v]];
    }
    for (const auto& e : edges_) {
        if (e.from == e.to) {
            return true;
        }
    }
    return std::any_of(size.begin(), size.end(), [](std::size_t s) { return s > 1; });
}

std::vector<std::size_t> Digraph::topological_order() const {
    std::vector<std::size_t> in_degree(node_count_, 0);
    for (const auto& e : edges_) {
        ++in_degree[e.to];
    }
    const auto out = out_edges();
    std::vector<std::size_t> order;
    order.reserve(node_count_);
    std::vector<std::size_t> ready;
    for (std::size_t v = 0; v < node_count_; ++v) {
        if (in_degree[v] == 0) {
            ready.push_back(v);
        }
    }
    while (!ready.empty()) {
        const std::size_t v = ready.back();
        ready.pop_back();
        order.push_back(v);
        for (const std::size_t ei : out[v]) {
            if (--in_degree[edges_[ei].to] == 0) {
                ready.push_back(edges_[ei].to);
            }
        }
    }
    require(order.size() == node_count_, "topological_order called on a cyclic graph");
    return order;
}

}  // namespace sdf
