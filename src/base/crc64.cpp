#include "base/crc64.hpp"

#include <array>

namespace sdf {

namespace {

// CRC-64/XZ: reflected form of polynomial 0x42F0E1EBA9EA3693.
constexpr std::uint64_t kPolyReflected = 0xC96C5795D7870F42ull;

std::array<std::uint64_t, 256> build_table() {
    std::array<std::uint64_t, 256> table{};
    for (std::uint64_t byte = 0; byte < 256; ++byte) {
        std::uint64_t crc = byte;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc >> 1) ^ ((crc & 1) != 0 ? kPolyReflected : 0);
        }
        table[static_cast<std::size_t>(byte)] = crc;
    }
    return table;
}

const std::array<std::uint64_t, 256>& table() {
    static const std::array<std::uint64_t, 256> kTable = build_table();
    return kTable;
}

}  // namespace

std::uint64_t crc64_update(std::uint64_t crc, const void* data,
                           std::size_t size) noexcept {
    const auto& t = table();
    const auto* bytes = static_cast<const unsigned char*>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < size; ++i) {
        crc = t[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
    }
    return ~crc;
}

std::uint64_t crc64(const void* data, std::size_t size) noexcept {
    return crc64_update(0, data, size);
}

std::uint64_t crc64(const std::string& data) noexcept {
    return crc64(data.data(), data.size());
}

}  // namespace sdf
