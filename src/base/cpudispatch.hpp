// cpudispatch.hpp — runtime ISA tier selection for the SIMD kernels.
//
// The max-plus kernels (maxplus/kernels.hpp) come in up to three variants:
// portable scalar, AVX2 (64-bit max emulated with compare+blend) and
// AVX-512 (native `vpmaxsq`).  Which variant runs is decided once, at the
// first kernel use, from two independent facts:
//
//   * what this *build* contains — the AVX TUs are only compiled when the
//     compiler accepts the target flags (CMake probes them and defines
//     SDFRED_KERNELS_AVX2 / SDFRED_KERNELS_AVX512 for the whole tree);
//   * what this *machine* executes — probed with __builtin_cpu_supports,
//     so a binary built with AVX-512 kernels still runs correctly on an
//     AVX2-only host.
//
// The environment variable SDFRED_ISA=scalar|avx2|avx512 overrides the
// detection (differential tests and the CI forced-scalar job use it); a
// tier that is not available on this build+machine is a typed sdf::Error,
// never a silent downgrade — a test asking for avx512 must not quietly
// measure scalar.  Tests switch tiers at runtime via set_active_isa_tier.
#pragma once

#include <string>
#include <vector>

namespace sdf {

/// Instruction-set tiers of the max-plus kernels, in ascending width.
enum class IsaTier { scalar = 0, avx2 = 1, avx512 = 2 };

/// Stable lower-case name ("scalar", "avx2", "avx512") for reports and env.
const char* isa_tier_name(IsaTier tier);

/// Parses an SDFRED_ISA value; throws sdf::Error on anything else.
IsaTier parse_isa_tier(const std::string& name);

/// The best tier this build can run on this machine (CPUID-probed once;
/// always at least scalar).
IsaTier detected_isa_tier();

/// Every tier this build can run on this machine, ascending.  Always
/// contains scalar; the differential tests sweep exactly this list.
const std::vector<IsaTier>& supported_isa_tiers();

/// True when `tier` is compiled into this build and executable on this CPU.
bool isa_tier_supported(IsaTier tier);

/// The tier the kernels actually use: the SDFRED_ISA override when set
/// (sdf::Error if unknown or unsupported), otherwise detected_isa_tier().
/// Resolved once and cached; set_active_isa_tier replaces it.
IsaTier active_isa_tier();

/// Overrides the active tier (tests, benches, the fuzz oracle sweep).
/// Throws sdf::Error when `tier` is not supported on this build+machine.
void set_active_isa_tier(IsaTier tier);

}  // namespace sdf
