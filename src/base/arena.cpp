#include "base/arena.hpp"

#include <atomic>
#include <cstdint>

namespace sdf {

namespace {

/// Past this size, blocks stop doubling: a kernel asking for more gets a
/// dedicated block of exactly the requested size instead.
constexpr std::size_t kMaxBlockBytes = std::size_t{8} << 20;

/// Byte-accounting hook (robust installs robust_account_bytes here; see
/// set_arena_account_hook).  Read with acquire so a worker thread that
/// observes the pointer also observes the pointee's initialisation.
std::atomic<ArenaAccountHook> g_account_hook{nullptr};

/// The offset >= `used` at which an allocation in `block` is aligned to
/// `alignment` *as an address* — make_unique<char[]> storage is only
/// max_align_t-aligned, so offsets alone cannot express wider alignments.
std::size_t aligned_offset(const char* base, std::size_t used, std::size_t alignment) {
    const auto addr = reinterpret_cast<std::uintptr_t>(base) + used;
    const std::uintptr_t aligned = (addr + alignment - 1) & ~(std::uintptr_t{alignment} - 1);
    return used + static_cast<std::size_t>(aligned - addr);
}

}  // namespace

void set_arena_account_hook(ArenaAccountHook hook) {
    g_account_hook.store(hook, std::memory_order_release);
}

Arena::Arena(std::size_t first_block_bytes)
    : next_block_bytes_(first_block_bytes == 0 ? 1 : first_block_bytes) {}

void Arena::grow(std::size_t at_least) {
    std::size_t bytes = next_block_bytes_;
    while (bytes < at_least) {
        bytes *= 2;
    }
    // Charge the governed budget (and the alloc fault injector) before
    // allocating, and push the bookkeeping entry only after the allocation
    // succeeded: on any throw the arena is exactly as it was.
    if (const ArenaAccountHook hook = g_account_hook.load(std::memory_order_acquire)) {
        hook(bytes);
    }
    Block block;
    block.data = std::make_unique<char[]>(bytes);
    block.size = bytes;
    const bool was_empty = blocks_.empty();
    blocks_.push_back(std::move(block));
    current_ = was_empty ? 0 : blocks_.size() - 1;
    if (next_block_bytes_ < kMaxBlockBytes) {
        next_block_bytes_ *= 2;
    }
}

void* Arena::allocate(std::size_t bytes, std::size_t alignment) {
    if (bytes == 0) {
        bytes = 1;  // distinct non-null results keep callers simple
    }
    // Walk forward through retained blocks looking for room; blocks are
    // only appended, so Position{block, offset} marks stay valid.
    while (current_ < blocks_.size()) {
        Block& block = blocks_[current_];
        const std::size_t aligned = aligned_offset(block.data.get(), block.used, alignment);
        if (aligned <= block.size && bytes <= block.size - aligned) {
            block.used = aligned + bytes;
            return block.data.get() + aligned;
        }
        if (current_ + 1 >= blocks_.size()) {
            break;
        }
        ++current_;
    }
    // `alignment` headroom: make_unique<char[]> storage is only guaranteed
    // max_align_t-aligned, so over-sized alignments need slack in the block.
    grow(bytes + (alignment > alignof(std::max_align_t) ? alignment : 0));
    Block& block = blocks_[current_];
    const std::size_t aligned = aligned_offset(block.data.get(), block.used, alignment);
    block.used = aligned + bytes;
    return block.data.get() + aligned;
}

void Arena::rewind(Position pos) {
    if (blocks_.empty()) {
        return;
    }
    for (std::size_t b = pos.block + 1; b < blocks_.size(); ++b) {
        blocks_[b].used = 0;
    }
    current_ = pos.block < blocks_.size() ? pos.block : blocks_.size() - 1;
    blocks_[current_].used = pos.offset;
}

void Arena::release() {
    blocks_.clear();
    current_ = 0;
}

std::size_t Arena::capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& block : blocks_) {
        total += block.size;
    }
    return total;
}

Arena& scratch_arena() {
    thread_local Arena arena;
    return arena;
}

}  // namespace sdf
