// signals.hpp — async-signal-safe shutdown plumbing for long-running
// commands (`sdfred serve`).
//
// A daemon that is kill-ed mid-write corrupts nothing (the persistence
// layer is crash-only), but a daemon that is asked to stop POLITELY —
// SIGTERM from an orchestrator, Ctrl-C on a terminal — should drain: stop
// accepting work, finish in-flight requests, fsync the cache index, exit 0.
//
// The handler installed here does the only thing a signal handler may do:
// set a flag.  Everything else (draining, fsync) happens on ordinary
// threads that poll shutdown_signal_received() between requests.  Handlers
// are installed WITHOUT SA_RESTART on purpose, so a blocking read()/
// accept() returns EINTR and its loop can observe the flag instead of
// sleeping through the shutdown.
//
// SIGPIPE is a separate concern with the same remedy class: a client that
// disconnects mid-response must surface as a handled EPIPE write error on
// one connection, never as process death.  ignore_sigpipe() sets SIG_IGN
// once; transports additionally pass MSG_NOSIGNAL where available.
#pragma once

namespace sdf {

/// Installs the flag-setting handler for SIGTERM and SIGINT (idempotent).
/// Call once at daemon startup, before serving.
void install_shutdown_signal_handlers();

/// True once SIGTERM or SIGINT has been delivered since installation.
/// Async-signal-safe to query; never resets.
[[nodiscard]] bool shutdown_signal_received() noexcept;

/// Test hook: raises the flag exactly as the real handler would.
void simulate_shutdown_signal() noexcept;

/// Test hook: lowers the flag so one process can run several drain tests.
void reset_shutdown_signal() noexcept;

/// Sets SIGPIPE to SIG_IGN (idempotent) so a peer closing its socket turns
/// writes into EPIPE errors the transport handles per connection.
void ignore_sigpipe();

}  // namespace sdf
