// errors.hpp — exception hierarchy for the sdfred library.
//
// All errors raised by the library derive from sdf::Error so that callers can
// catch library failures with a single handler while still distinguishing the
// broad failure classes below.
#pragma once

#include <stdexcept>
#include <string>

namespace sdf {

/// Root of the sdfred exception hierarchy.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Arithmetic failure: integer overflow, division by zero, or an operation
/// on max-plus minus-infinity that has no defined result.
class ArithmeticError : public Error {
public:
    explicit ArithmeticError(const std::string& what) : Error(what) {}
};

/// A graph failed structural validation (dangling actor reference, zero
/// rate, negative delay, duplicate actor name, ...).
class InvalidGraphError : public Error {
public:
    explicit InvalidGraphError(const std::string& what) : Error(what) {}
};

/// The balance equations of a graph have no non-trivial solution; the graph
/// has no repetition vector (Lee & Messerschmitt consistency).
class InconsistentGraphError : public Error {
public:
    explicit InconsistentGraphError(const std::string& what) : Error(what) {}
};

/// A (partial) execution of the graph reached a state in which no actor can
/// fire although the iteration is not complete.
class DeadlockError : public Error {
public:
    explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// An abstraction specification violates Definition 3 of the paper.
class InvalidAbstractionError : public Error {
public:
    explicit InvalidAbstractionError(const std::string& what) : Error(what) {}
};

/// Failure while parsing one of the supported graph file formats.
class ParseError : public Error {
public:
    explicit ParseError(const std::string& what) : Error(what) {}
};

/// Throws InvalidGraphError with the given message when `condition` is false.
void require(bool condition, const std::string& message);

}  // namespace sdf
