#include "base/signals.hpp"

#include <atomic>
#include <csignal>

namespace sdf {

namespace {

// Written from signal context: must be lock-free.  std::atomic<bool> is
// guaranteed lock-free nowhere, but is on every platform this builds for;
// sig_atomic_t semantics are preserved by using only store/load.
std::atomic<bool> g_shutdown_requested{false};

extern "C" void sdfred_shutdown_handler(int) {
    g_shutdown_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_signal_handlers() {
    struct sigaction action {};
    action.sa_handler = &sdfred_shutdown_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: blocking reads must wake up
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);
}

bool shutdown_signal_received() noexcept {
    return g_shutdown_requested.load(std::memory_order_relaxed);
}

void simulate_shutdown_signal() noexcept {
    g_shutdown_requested.store(true, std::memory_order_relaxed);
}

void reset_shutdown_signal() noexcept {
    g_shutdown_requested.store(false, std::memory_order_relaxed);
}

void ignore_sigpipe() { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace sdf
