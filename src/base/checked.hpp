// checked.hpp — overflow-checked 64-bit integer arithmetic.
//
// All quantities in the library (execution times, token counts, symbolic
// time stamps, repetition-vector entries) are exact 64-bit integers.  The
// classical SDF->HSDF conversion can blow a graph up exponentially, so every
// arithmetic step that combines user-controlled quantities goes through the
// checked helpers below and fails loudly instead of wrapping around.
#pragma once

#include <cstdint>
#include <limits>
#include <numeric>
#include <string>

#include "base/errors.hpp"

namespace sdf {

using Int = std::int64_t;

/// Returns a + b, throwing ArithmeticError on signed overflow.
inline Int checked_add(Int a, Int b) {
    Int result = 0;
    if (__builtin_add_overflow(a, b, &result)) {
        throw ArithmeticError("integer overflow in addition: " + std::to_string(a) +
                              " + " + std::to_string(b));
    }
    return result;
}

/// Returns a - b, throwing ArithmeticError on signed overflow.
inline Int checked_sub(Int a, Int b) {
    Int result = 0;
    if (__builtin_sub_overflow(a, b, &result)) {
        throw ArithmeticError("integer overflow in subtraction: " + std::to_string(a) +
                              " - " + std::to_string(b));
    }
    return result;
}

/// Returns a * b, throwing ArithmeticError on signed overflow.
inline Int checked_mul(Int a, Int b) {
    Int result = 0;
    if (__builtin_mul_overflow(a, b, &result)) {
        throw ArithmeticError("integer overflow in multiplication: " + std::to_string(a) +
                              " * " + std::to_string(b));
    }
    return result;
}

/// Greatest common divisor of the absolute values; gcd(0, 0) == 0.
inline Int gcd(Int a, Int b) { return std::gcd(a, b); }

/// Least common multiple with overflow checking; lcm(0, x) == 0.
inline Int checked_lcm(Int a, Int b) {
    if (a == 0 || b == 0) {
        return 0;
    }
    const Int g = gcd(a, b);
    return checked_mul(a / g, b);
}

/// Floored integer division (rounds towards negative infinity).
inline Int floor_div(Int a, Int b) {
    if (b == 0) {
        throw ArithmeticError("division by zero in floor_div");
    }
    Int q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) {
        --q;
    }
    return q;
}

/// Mathematical modulus: result always in [0, |b|).
inline Int floor_mod(Int a, Int b) {
    return checked_sub(a, checked_mul(floor_div(a, b), b));
}

/// Ceiling integer division (rounds towards positive infinity).
inline Int ceil_div(Int a, Int b) {
    return -floor_div(-a, b);
}

}  // namespace sdf
