#include "base/cpudispatch.hpp"

#include <atomic>
#include <cstdlib>

#include "base/errors.hpp"

namespace sdf {

const char* isa_tier_name(IsaTier tier) {
    switch (tier) {
        case IsaTier::scalar: return "scalar";
        case IsaTier::avx2: return "avx2";
        case IsaTier::avx512: return "avx512";
    }
    return "unknown";
}

IsaTier parse_isa_tier(const std::string& name) {
    if (name == "scalar") {
        return IsaTier::scalar;
    }
    if (name == "avx2") {
        return IsaTier::avx2;
    }
    if (name == "avx512") {
        return IsaTier::avx512;
    }
    throw Error("unknown ISA tier '" + name + "' (expected scalar, avx2 or avx512)");
}

namespace {

/// CPUID probe, independent of the env override.  __builtin_cpu_supports
/// is a GCC/clang builtin (the project already relies on the overflow
/// builtins); on non-x86 targets the AVX TUs are not compiled and the
/// probe short-circuits to scalar.
IsaTier probe_isa_tier() {
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
#if defined(SDFRED_KERNELS_AVX512)
    if (__builtin_cpu_supports("avx512f")) {
        return IsaTier::avx512;
    }
#endif
#if defined(SDFRED_KERNELS_AVX2)
    if (__builtin_cpu_supports("avx2")) {
        return IsaTier::avx2;
    }
#endif
#endif
    return IsaTier::scalar;
}

/// -1 = not yet resolved, otherwise int(IsaTier).  Relaxed atomics: the
/// resolution is idempotent, so a rare double-resolve is harmless.
std::atomic<int> g_active{-1};

IsaTier resolve_from_env() {
    if (const char* env = std::getenv("SDFRED_ISA")) {
        if (*env != '\0') {
            const IsaTier requested = parse_isa_tier(env);
            if (!isa_tier_supported(requested)) {
                throw Error(std::string("SDFRED_ISA=") + env +
                            " is not available on this build/machine (best tier: " +
                            isa_tier_name(detected_isa_tier()) + ")");
            }
            return requested;
        }
    }
    return detected_isa_tier();
}

}  // namespace

IsaTier detected_isa_tier() {
    static const IsaTier tier = probe_isa_tier();
    return tier;
}

const std::vector<IsaTier>& supported_isa_tiers() {
    static const std::vector<IsaTier> tiers = [] {
        std::vector<IsaTier> out{IsaTier::scalar};
        if (detected_isa_tier() >= IsaTier::avx2) {
            out.push_back(IsaTier::avx2);
        }
        if (detected_isa_tier() >= IsaTier::avx512) {
            out.push_back(IsaTier::avx512);
        }
        return out;
    }();
    return tiers;
}

bool isa_tier_supported(IsaTier tier) {
    return tier <= detected_isa_tier();
}

IsaTier active_isa_tier() {
    const int cached = g_active.load(std::memory_order_relaxed);
    if (cached >= 0) {
        return static_cast<IsaTier>(cached);
    }
    const IsaTier resolved = resolve_from_env();
    g_active.store(static_cast<int>(resolved), std::memory_order_relaxed);
    return resolved;
}

void set_active_isa_tier(IsaTier tier) {
    if (!isa_tier_supported(tier)) {
        throw Error(std::string("ISA tier ") + isa_tier_name(tier) +
                    " is not available on this build/machine (best tier: " +
                    isa_tier_name(detected_isa_tier()) + ")");
    }
    g_active.store(static_cast<int>(tier), std::memory_order_relaxed);
}

}  // namespace sdf
