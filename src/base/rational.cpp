#include "base/rational.hpp"

#include <ostream>

namespace sdf {

Rational::Rational(Int num, Int den) : num_(num), den_(den) {
    if (den_ == 0) {
        throw ArithmeticError("rational with zero denominator");
    }
    normalize();
}

void Rational::normalize() {
    if (den_ < 0) {
        num_ = checked_sub(0, num_);
        den_ = checked_sub(0, den_);
    }
    const Int g = gcd(num_, den_);
    if (g > 1) {
        num_ /= g;
        den_ /= g;
    }
    if (num_ == 0) {
        den_ = 1;
    }
}

std::string Rational::to_string() const {
    if (den_ == 1) {
        return std::to_string(num_);
    }
    return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
    Rational r;
    r.num_ = checked_sub(0, num_);
    r.den_ = den_;
    return r;
}

Rational& Rational::operator+=(const Rational& other) {
    // Work on the gcd-reduced cross terms to delay overflow as long as
    // possible: a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d).
    const Int l = checked_lcm(den_, other.den_);
    num_ = checked_add(checked_mul(num_, l / den_), checked_mul(other.num_, l / other.den_));
    den_ = l;
    normalize();
    return *this;
}

Rational& Rational::operator-=(const Rational& other) {
    return *this += -other;
}

Rational& Rational::operator*=(const Rational& other) {
    // Cross-reduce before multiplying to keep intermediates small.
    const Int g1 = gcd(num_, other.den_);
    const Int g2 = gcd(other.num_, den_);
    num_ = checked_mul(num_ / g1, other.num_ / g2);
    den_ = checked_mul(den_ / g2, other.den_ / g1);
    normalize();
    return *this;
}

Rational& Rational::operator/=(const Rational& other) {
    return *this *= other.reciprocal();
}

Rational Rational::reciprocal() const {
    if (num_ == 0) {
        throw ArithmeticError("reciprocal of zero");
    }
    return Rational(den_, num_);
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
    // Compare a.num/a.den <=> b.num/b.den via checked cross multiplication.
    const Int lhs = checked_mul(a.num_, b.den_);
    const Int rhs = checked_mul(b.num_, a.den_);
    return lhs <=> rhs;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
    return os << r.to_string();
}

Rational mediant(const Rational& a, const Rational& b) {
    return Rational(checked_add(a.num(), b.num()), checked_add(a.den(), b.den()));
}

}  // namespace sdf
