#include "lint/diagnostic.hpp"

#include <algorithm>

namespace sdf {

std::string severity_name(Severity severity) {
    switch (severity) {
        case Severity::note: return "note";
        case Severity::warning: return "warning";
        case Severity::error: return "error";
    }
    return "unknown";
}

std::optional<Severity> parse_severity(const std::string& text) {
    if (text == "note") return Severity::note;
    if (text == "warning") return Severity::warning;
    if (text == "error") return Severity::error;
    return std::nullopt;
}

std::size_t LintReport::count(Severity severity) const {
    return static_cast<std::size_t>(
        std::count_if(diagnostics.begin(), diagnostics.end(),
                      [severity](const Diagnostic& d) { return d.severity == severity; }));
}

bool LintReport::has_at_least(Severity severity) const {
    return std::any_of(diagnostics.begin(), diagnostics.end(),
                       [severity](const Diagnostic& d) { return d.severity >= severity; });
}

std::optional<Severity> LintReport::worst() const {
    std::optional<Severity> result;
    for (const Diagnostic& d : diagnostics) {
        if (!result || d.severity > *result) {
            result = d.severity;
        }
    }
    return result;
}

}  // namespace sdf
