// rules_absint.cpp — proof-carrying rules backed by the abstract
// interpreter (src/absint): SDF017 unbounded-channel, SDF018 dead-actor,
// SDF019 dead-channel, SDF020 buffer-capacity-mismatch, SDF021
// certified-deadlock, SDF022 self-loop-token-deficit.
//
// Unlike the structural rules these cite a COMPUTED invariant in the
// diagnostic text: the token-interval fixpoint or the reachability firing
// bound that proves the finding.  The analyses are AnalysisManager slots,
// so six rules on one graph cost one solver run.
#include <optional>
#include <string>
#include <vector>

#include "absint/certificate.hpp"
#include "absint/reachability.hpp"
#include "absint/token_intervals.hpp"
#include "lint/rules.hpp"

namespace sdf::lint_internal {

namespace {

using absint::Interval;
using absint::Reachability;
using absint::TokenIntervals;
using absint::TokenIntervalsAnalysis;

std::string channel_label(const Graph& g, ChannelId id) {
    const Channel& ch = g.channel(id);
    return g.actor(ch.src).name + " -> " + g.actor(ch.dst).name;
}

const TokenIntervals& intervals_of(const LintContext& ctx) {
    return *ctx.graph.analyses()->get<TokenIntervalsAnalysis>(ctx.graph);
}

const Reachability& reachability_of(const LintContext& ctx) {
    return *ctx.graph.analyses()->get<absint::ReachabilityAnalysis>(ctx.graph);
}

}  // namespace

void check_unbounded_channel(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    if (g.channel_count() == 0) {
        return;
    }
    const TokenIntervals& ti = intervals_of(ctx);
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        const Interval& iv = ti.channels[c];
        if (iv.is_bounded()) {
            continue;
        }
        emit(out, "SDF017",
             "channel " + channel_label(g, c) + " has no finite token bound: the "
             "interval analysis reaches " + iv.to_string() +
             " (no directed cycle caps its occupancy)",
             ctx.channel_loc(c),
             "route a cycle through the channel (e.g. a credit/back-pressure "
             "channel dst -> src) to certify a finite buffer");
    }
}

void check_dead_actor(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    if (g.actor_count() == 0) {
        return;  // SDF001's report
    }
    const Reachability& reach = reachability_of(ctx);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        if (!reach.never_fires(a)) {
            continue;
        }
        // Cite a witness: an input that no admissible execution can satisfy.
        std::string witness;
        for (const ChannelId c : g.in_channels(a)) {
            const Channel& ch = g.channel(c);
            if (reach.max_firings[ch.src] == Int{0} &&
                ch.initial_tokens < ch.consumption) {
                witness = "; witness: channel " + channel_label(g, c) + " holds " +
                          std::to_string(ch.initial_tokens) + " tokens, each firing "
                          "needs " + std::to_string(ch.consumption) +
                          ", and its producer never fires either";
                break;
            }
        }
        emit(out, "SDF018",
             "actor '" + g.actor(a).name + "' can never fire: the reachability "
             "analysis proves an upper bound of 0 lifetime firings" + witness,
             ctx.actor_loc(a),
             "add initial tokens on the starved input cycle or fix the rates "
             "feeding it");
    }
}

void check_dead_channel(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    if (g.channel_count() == 0) {
        return;
    }
    const TokenIntervals& ti = intervals_of(ctx);
    const Reachability& reach = reachability_of(ctx);
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        const Interval& iv = ti.channels[c];
        if (iv != Interval::exact(0)) {
            continue;
        }
        const Channel& ch = g.channel(c);
        if (reach.never_fires(ch.src) && reach.never_fires(ch.dst)) {
            continue;  // both endpoints are SDF018's (stronger) report
        }
        emit(out, "SDF019",
             "channel " + channel_label(g, c) + " never carries a token: the "
             "interval analysis proves the invariant [0, 0]",
             ctx.channel_loc(c),
             "the channel constrains nothing and can be removed, or its producer "
             "is dead and the real bug is upstream");
    }
}

void check_buffer_capacity_mismatch(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    if (ctx.repetition == nullptr) {
        return;  // without consistency no finite caps exist; SDF002 reports
    }
    const TokenIntervals& ti = intervals_of(ctx);
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        const Channel& ch = g.channel(c);
        if (ch.is_self_loop()) {
            continue;
        }
        // A reverse channel dst -> src is the standard capacity-modelling
        // idiom: forward tokens + reverse credits = capacity.  The declared
        // capacity is the largest such budget.
        std::optional<Int> declared;
        for (ChannelId r = 0; r < g.channel_count(); ++r) {
            const Channel& rev = g.channel(r);
            if (rev.src != ch.dst || rev.dst != ch.src) {
                continue;
            }
            const Int budget = checked_add(ch.initial_tokens, rev.initial_tokens);
            if (!declared.has_value() || budget > *declared) {
                declared = budget;
            }
        }
        if (!declared.has_value()) {
            continue;
        }
        const Interval& iv = ti.channels[c];
        if (absint::upper_le(iv.hi, absint::UpperBound{*declared})) {
            continue;  // the certified bound honours the declared capacity
        }
        emit(out, "SDF020",
             "channel " + channel_label(g, c) + " has a reverse channel declaring "
             "a buffer capacity of " + std::to_string(*declared) +
             " tokens, but the certified occupancy bound is " +
             (iv.is_bounded() ? std::to_string(*iv.hi) : std::string("unbounded")) +
             "; the reverse rates do not implement back-pressure",
             ctx.channel_loc(c),
             "a capacity-B model of (a, b, p, c, d) needs the reverse channel "
             "(b, a, c, p, B - d): swapped rates, complementary tokens");
    }
}

void check_certified_deadlock(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    if (ctx.repetition == nullptr) {
        return;  // one-iteration talk needs the repetition vector
    }
    const Reachability& reach = reachability_of(ctx);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        const std::optional<Int>& bound = reach.max_firings[a];
        if (!bound.has_value() || *bound == 0 || *bound >= (*ctx.repetition)[a]) {
            continue;  // 0 is SDF018's (stronger) report
        }
        emit(out, "SDF021",
             "guaranteed deadlock: actor '" + g.actor(a).name + "' fires at most " +
                 std::to_string(*bound) + " times in ANY admissible execution, but "
                 "one iteration needs q = " + std::to_string((*ctx.repetition)[a]) +
                 " firings",
             ctx.actor_loc(a),
             "the certified firing bound comes from cumulative token supply; add "
             "initial tokens upstream until every actor can complete an iteration");
    }
}

void check_self_loop_deficit(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    if (g.channel_count() == 0) {
        return;
    }
    const TokenIntervals& ti = intervals_of(ctx);
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        const Channel& ch = g.channel(c);
        if (!ch.is_self_loop()) {
            continue;
        }
        const Interval& iv = ti.channels[c];
        if (absint::upper_le(absint::UpperBound{ch.consumption}, iv.hi)) {
            continue;
        }
        emit(out, "SDF022",
             "self-loop on actor '" + g.actor(ch.src).name + "' is provably stuck: "
             "the interval analysis certifies the occupancy invariant " +
                 iv.to_string() + ", below the consumption rate " +
                 std::to_string(ch.consumption),
             ctx.channel_loc(c),
             "no firing of any actor can raise a self-loop's token count above "
             "its start value; give it at least `consumption` initial tokens");
    }
}

}  // namespace sdf::lint_internal
