#include "lint/registry.hpp"

#include "base/errors.hpp"
#include "lint/rules.hpp"

namespace sdf {

namespace lint_internal {

const std::vector<RuleEntry>& rule_entries() {
    static const std::vector<RuleEntry> entries = {
        {{"SDF001", "empty-graph", Severity::error,
          "a graph without actors has no repetition vector and nothing to analyse"},
         check_empty_graph},
        {{"SDF002", "inconsistent-rates", Severity::error,
          "the balance equations have no solution; no repetition vector exists"},
         check_inconsistent_rates},
        {{"SDF003", "deadlock", Severity::error,
          "one iteration cannot complete from the initial tokens; throughput is zero"},
         check_deadlock},
        {{"SDF004", "actor-off-cycle", Severity::warning,
          "an actor on no directed cycle has unbounded self-timed throughput"},
         check_actor_off_cycle},
        {{"SDF005", "disconnected-graph", Severity::warning,
          "weakly disconnected components have unrelated timing; analyse them separately"},
         check_disconnected},
        {{"SDF006", "isolated-actor", Severity::warning,
          "an actor with no channels never constrains or observes the rest of the graph"},
         check_isolated_actor},
        {{"SDF007", "zero-execution-time", Severity::note,
          "zero-time actors make schedules degenerate and usually indicate a missing "
          "executionTime entry"},
         check_zero_execution_time},
        {{"SDF008", "hsdf-blowup", Severity::warning,
          "the classical SDF-to-HSDF conversion creates one actor per firing of the "
          "iteration; this iteration is impractically long"},
         check_hsdf_blowup},
        {{"SDF009", "reduced-hsdf-bound", Severity::warning,
          "the reduced conversion is bounded by N(N+2) actors for N initial tokens; "
          "this token count makes even the reduced graph impractical"},
         check_reduced_hsdf_bound},
        {{"SDF010", "overflow-risk", Severity::warning,
          "per-iteration token traffic or work is large enough that checked int64 "
          "products in the symbolic conversion may overflow"},
         check_overflow_risk},
        {{"SDF011", "unbounded-auto-concurrency", Severity::note,
          "actors without a self-loop may fire unboundedly often in parallel under "
          "self-timed semantics"},
         check_auto_concurrency},
        {{"SDF012", "dead-tokens", Severity::note,
          "initial tokens not divisible by gcd(production, consumption) leave a "
          "permanently unconsumable remainder buffered on the channel"},
         check_dead_tokens},
        {{"SDF013", "starved-self-loop", Severity::error,
          "a self-loop with fewer initial tokens than its consumption rate blocks its "
          "actor forever"},
         check_starved_self_loop},
        {{"SDF014", "invalid-abstraction", Severity::warning,
          "the actor names suggest a grouping, but no index assignment satisfies "
          "Definition 3, so the abstraction reduction cannot apply"},
         check_invalid_abstraction},
        {{"SDF015", "redundant-channel", Severity::note,
          "a parallel channel with equal rates and more initial tokens is a strictly "
          "weaker dependency and can be pruned"},
         check_redundant_channel},
        {{"SDF016", "zero-delay-cycle", Severity::error,
          "a cycle of channels without initial tokens can never fire; the graph "
          "deadlocks immediately"},
         check_zero_delay_cycle},
        {{"SDF017", "unbounded-channel", Severity::warning,
          "the token-interval analysis certifies no finite occupancy bound; the "
          "channel needs unbounded memory in the worst case"},
         check_unbounded_channel},
        {{"SDF018", "dead-actor", Severity::error,
          "the reachability analysis proves the actor can never fire in any "
          "admissible execution"},
         check_dead_actor},
        {{"SDF019", "dead-channel", Severity::note,
          "the token-interval analysis proves the channel never carries a token; "
          "it constrains nothing"},
         check_dead_channel},
        {{"SDF020", "buffer-capacity-mismatch", Severity::warning,
          "a reverse channel declares a buffer capacity, but the certified "
          "occupancy bound exceeds it: the rates do not implement back-pressure"},
         check_buffer_capacity_mismatch},
        {{"SDF021", "certified-deadlock", Severity::error,
          "the certified firing bound of an actor is below its repetition count; "
          "no admissible execution completes one iteration"},
         check_certified_deadlock},
        {{"SDF022", "self-loop-token-deficit", Severity::error,
          "the certified occupancy invariant of a self-loop stays below its "
          "consumption rate; the actor is provably stuck"},
         check_self_loop_deficit},
    };
    return entries;
}

void emit(std::vector<Diagnostic>& out, const std::string& id, std::string message,
          SourceLoc location, std::string hint) {
    const Rule* rule = find_rule(id);
    require(rule != nullptr, "lint rule '" + id + "' is not registered");
    out.push_back(Diagnostic{id, rule->severity, std::move(message), location,
                             std::move(hint)});
}

}  // namespace lint_internal

const std::vector<Rule>& lint_rules() {
    static const std::vector<Rule> rules = [] {
        std::vector<Rule> result;
        result.reserve(lint_internal::rule_entries().size());
        for (const lint_internal::RuleEntry& entry : lint_internal::rule_entries()) {
            result.push_back(entry.meta);
        }
        return result;
    }();
    return rules;
}

const Rule* find_rule(const std::string& id) {
    for (const Rule& rule : lint_rules()) {
        if (rule.id == id) {
            return &rule;
        }
    }
    return nullptr;
}

}  // namespace sdf
