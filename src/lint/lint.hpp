// lint.hpp — static diagnostics for SDF models.
//
// lint_graph() runs a battery of cheap structural checks over a graph
// *before* any expensive analysis: the validity preconditions of the
// paper's reductions (consistency and liveness for Theorem 1, Definition 3
// for abstractions), overflow hazards in the checked<int64> arithmetic of
// the symbolic conversion, and common modelling smells.  Every finding
// carries a stable rule id (see registry.hpp and docs/LINT_RULES.md) so
// scripts, golden tests and CI can match on them.
//
// The engine is deliberately exception-free towards callers: a graph that
// would make an analysis throw produces diagnostics instead.
#pragma once

#include <string>
#include <vector>

#include "io/source_map.hpp"
#include "lint/diagnostic.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// Tunable knobs of the linter.
struct LintOptions {
    /// Rule ids to run; empty means every registered rule.  Unknown ids
    /// are ignored (validate against lint_rules() first if needed).
    std::vector<std::string> rules;

    /// SDF008/SDF009: warn when a conversion to HSDF would create more
    /// than this many actors (classical: iteration length; reduced:
    /// the paper's N(N+2) bound of Section 6).
    Int max_hsdf_actors = 1'000'000;

    /// SDF010: warn when a per-iteration quantity (token traffic of one
    /// channel, total work) exceeds this, putting checked<int64> products
    /// in the symbolic conversion at risk of overflow.
    Int overflow_limit = Int{1} << 32;
};

/// Runs every selected rule over `graph` and returns the findings sorted
/// by source line (graph-level findings, line 0, first).  `locations` may
/// be null for programmatically built graphs.  Never throws on lintable
/// input; a rule that fails internally reports itself as a warning.
LintReport lint_graph(const Graph& graph, const SourceMap* locations = nullptr,
                      const LintOptions& options = {});

}  // namespace sdf
