// diagnostic.hpp — the diagnostic model of the lint subsystem.
//
// A Diagnostic is one finding of one rule: a stable rule id ("SDF003"), a
// severity, a message, optionally a source location (mapped back to the
// model file via io/source_map.hpp) and a fix-it hint.  A LintReport is
// the ordered collection of findings for one graph.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "io/source_map.hpp"

namespace sdf {

/// Severity of a diagnostic, ordered from least to most severe.
enum class Severity {
    note,     ///< stylistic or informational; the model is sound
    warning,  ///< likely mistake or scalability hazard; analyses still run
    error,    ///< the model violates a precondition of the paper's analyses
};

/// "note" / "warning" / "error".
std::string severity_name(Severity severity);

/// Inverse of severity_name(); std::nullopt for unknown text.
std::optional<Severity> parse_severity(const std::string& text);

/// One finding of one lint rule.
struct Diagnostic {
    std::string rule;      ///< stable rule id, e.g. "SDF003"
    Severity severity = Severity::note;
    std::string message;   ///< what is wrong, naming actors/channels
    SourceLoc location;    ///< where in the model file (line 0 = unknown)
    std::string hint;      ///< optional fix-it suggestion ("" = none)
};

/// All findings for one graph, sorted by (line, rule id).
struct LintReport {
    std::vector<Diagnostic> diagnostics;

    [[nodiscard]] bool empty() const { return diagnostics.empty(); }

    /// Number of findings with exactly this severity.
    [[nodiscard]] std::size_t count(Severity severity) const;

    /// True when some finding is at least this severe.
    [[nodiscard]] bool has_at_least(Severity severity) const;

    /// The most severe finding's severity; std::nullopt when empty.
    [[nodiscard]] std::optional<Severity> worst() const;
};

}  // namespace sdf
