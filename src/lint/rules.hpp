// rules.hpp — internal plumbing between the lint driver and the rule
// implementations.  Not part of the public lint API; include lint.hpp and
// registry.hpp from outside the subsystem.
#pragma once

#include <string>
#include <vector>

#include "io/source_map.hpp"
#include "lint/diagnostic.hpp"
#include "lint/lint.hpp"
#include "lint/registry.hpp"
#include "sdf/graph.hpp"

namespace sdf::lint_internal {

/// Shared, precomputed state every rule check receives.  The repetition
/// vector is computed once by the driver; rules that need consistency
/// simply skip when `repetition` is null.
struct LintContext {
    const Graph& graph;
    const SourceMap* map;  ///< may be null
    const LintOptions& options;
    const std::vector<Int>* repetition;  ///< null: empty or inconsistent graph
    std::string inconsistency_reason;    ///< why repetition is null ("" if not)

    [[nodiscard]] SourceLoc actor_loc(ActorId id) const {
        return map != nullptr ? map->actor(id) : SourceLoc{};
    }
    [[nodiscard]] SourceLoc channel_loc(ChannelId id) const {
        return map != nullptr ? map->channel(id) : SourceLoc{};
    }
};

/// Appends a finding for rule `id`, taking the severity from the registry.
void emit(std::vector<Diagnostic>& out, const std::string& id, std::string message,
          SourceLoc location = {}, std::string hint = {});

using RuleCheck = void (*)(const LintContext&, std::vector<Diagnostic>&);

/// One registry row: public metadata plus the check implementation.
struct RuleEntry {
    Rule meta;
    RuleCheck check;
};

/// The full registry, in id order (backs lint_rules()).
const std::vector<RuleEntry>& rule_entries();

// Rule implementations, grouped by concern (one translation unit each).
// rules_structure.cpp:
void check_empty_graph(const LintContext&, std::vector<Diagnostic>&);        // SDF001
void check_actor_off_cycle(const LintContext&, std::vector<Diagnostic>&);    // SDF004
void check_disconnected(const LintContext&, std::vector<Diagnostic>&);       // SDF005
void check_isolated_actor(const LintContext&, std::vector<Diagnostic>&);     // SDF006
void check_zero_execution_time(const LintContext&, std::vector<Diagnostic>&);  // SDF007
// rules_rates.cpp:
void check_inconsistent_rates(const LintContext&, std::vector<Diagnostic>&);  // SDF002
void check_hsdf_blowup(const LintContext&, std::vector<Diagnostic>&);         // SDF008
void check_reduced_hsdf_bound(const LintContext&, std::vector<Diagnostic>&);  // SDF009
void check_overflow_risk(const LintContext&, std::vector<Diagnostic>&);       // SDF010
void check_dead_tokens(const LintContext&, std::vector<Diagnostic>&);         // SDF012
// rules_liveness.cpp:
void check_deadlock(const LintContext&, std::vector<Diagnostic>&);           // SDF003
void check_starved_self_loop(const LintContext&, std::vector<Diagnostic>&);  // SDF013
void check_zero_delay_cycle(const LintContext&, std::vector<Diagnostic>&);   // SDF016
// rules_abstraction.cpp:
void check_auto_concurrency(const LintContext&, std::vector<Diagnostic>&);     // SDF011
void check_invalid_abstraction(const LintContext&, std::vector<Diagnostic>&);  // SDF014
void check_redundant_channel(const LintContext&, std::vector<Diagnostic>&);    // SDF015
// rules_absint.cpp (proof-carrying, backed by src/absint):
void check_unbounded_channel(const LintContext&, std::vector<Diagnostic>&);         // SDF017
void check_dead_actor(const LintContext&, std::vector<Diagnostic>&);                // SDF018
void check_dead_channel(const LintContext&, std::vector<Diagnostic>&);              // SDF019
void check_buffer_capacity_mismatch(const LintContext&, std::vector<Diagnostic>&);  // SDF020
void check_certified_deadlock(const LintContext&, std::vector<Diagnostic>&);        // SDF021
void check_self_loop_deficit(const LintContext&, std::vector<Diagnostic>&);         // SDF022

}  // namespace sdf::lint_internal
