// registry.hpp — the table of lint rules.
//
// Rule ids are stable across releases: scripts and golden tests match on
// them, so an id is never reused for a different check.  New rules get the
// next free SDFxxx number.  docs/LINT_RULES.md is the human-readable
// mirror of this table (with paper citations) and is kept in sync by the
// RuleTableMatchesDocs test.
#pragma once

#include <string>
#include <vector>

#include "lint/diagnostic.hpp"

namespace sdf {

/// Metadata of one lint rule.
struct Rule {
    std::string id;       ///< stable id, e.g. "SDF003"
    std::string title;    ///< short kebab-case name, e.g. "deadlock"
    Severity severity = Severity::note;  ///< severity of its findings
    std::string summary;  ///< one-line rationale
};

/// Every registered rule, in id order.
const std::vector<Rule>& lint_rules();

/// Rule with this id; nullptr when unknown.
const Rule* find_rule(const std::string& id);

}  // namespace sdf
