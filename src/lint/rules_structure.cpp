// rules_structure.cpp — structural rules: SDF001 empty-graph, SDF004
// actor-off-cycle, SDF005 disconnected-graph, SDF006 isolated-actor,
// SDF007 zero-execution-time.
#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "base/digraph.hpp"
#include "lint/rules.hpp"
#include "sdf/properties.hpp"

namespace sdf::lint_internal {

namespace {

/// Per-actor channel presence, computed in one pass.
struct Degrees {
    std::vector<bool> has_in;
    std::vector<bool> has_out;

    explicit Degrees(const Graph& graph)
        : has_in(graph.actor_count(), false), has_out(graph.actor_count(), false) {
        for (const Channel& ch : graph.channels()) {
            has_out[ch.src] = true;
            has_in[ch.dst] = true;
        }
    }

    [[nodiscard]] bool isolated(ActorId a) const { return !has_in[a] && !has_out[a]; }
};

}  // namespace

void check_empty_graph(const LintContext& ctx, std::vector<Diagnostic>& out) {
    if (ctx.graph.actor_count() == 0) {
        emit(out, "SDF001", "graph has no actors",
             SourceLoc{}, "declare at least one actor before analysing the graph");
    }
}

void check_actor_off_cycle(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    if (g.actor_count() == 0) {
        return;
    }
    const Degrees degrees(g);
    // An actor lies on a cycle iff its SCC has >= 2 members or it has a
    // self-loop channel.  Isolated actors are reported by SDF006 instead.
    const Digraph digraph = dependency_digraph(g);
    const std::vector<std::size_t> component = digraph.strongly_connected_components();
    std::vector<std::size_t> component_size(g.actor_count(), 0);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        ++component_size[component[a]];
    }
    std::vector<bool> self_loop(g.actor_count(), false);
    for (const Channel& ch : g.channels()) {
        if (ch.is_self_loop()) {
            self_loop[ch.src] = true;
        }
    }
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        if (component_size[component[a]] < 2 && !self_loop[a] && !degrees.isolated(a)) {
            emit(out, "SDF004",
                 "actor '" + g.actor(a).name + "' lies on no directed cycle, so its "
                 "self-timed throughput is unbounded",
                 ctx.actor_loc(a),
                 "bound its concurrency with a self-loop channel "
                 "(transform/selfloops.hpp) or close the missing feedback path");
        }
    }
}

void check_disconnected(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    if (g.actor_count() < 2) {
        return;
    }
    // Union-find over the undirected channel structure.
    std::vector<ActorId> parent(g.actor_count());
    std::iota(parent.begin(), parent.end(), 0);
    const auto find = [&parent](ActorId a) {
        while (parent[a] != a) {
            parent[a] = parent[parent[a]];
            a = parent[a];
        }
        return a;
    };
    for (const Channel& ch : g.channels()) {
        parent[find(ch.src)] = find(ch.dst);
    }
    std::size_t components = 0;
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        if (find(a) == a) {
            ++components;
        }
    }
    if (components > 1) {
        emit(out, "SDF005",
             "graph splits into " + std::to_string(components) +
                 " weakly connected components with unrelated timing",
             SourceLoc{},
             "analyse the components as separate graphs, or connect them if the "
             "split is a modelling mistake");
    }
}

void check_isolated_actor(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    if (g.actor_count() < 2) {
        return;  // a single actor without channels is just a trivial graph
    }
    const Degrees degrees(g);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        if (degrees.isolated(a)) {
            emit(out, "SDF006",
                 "actor '" + g.actor(a).name + "' has no channels at all",
                 ctx.actor_loc(a),
                 "connect the actor or delete it; isolated actors contribute "
                 "nothing to the analyses");
        }
    }
}

void check_zero_execution_time(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    // Only flag when the graph is otherwise timed: an entirely untimed
    // graph (all zeros) is a legitimate purely-functional model.
    bool any_timed = false;
    for (const Actor& actor : g.actors()) {
        any_timed = any_timed || actor.execution_time > 0;
    }
    if (!any_timed) {
        return;
    }
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        if (g.actor(a).execution_time == 0) {
            emit(out, "SDF007",
                 "actor '" + g.actor(a).name + "' has execution time 0 in an "
                 "otherwise timed graph",
                 ctx.actor_loc(a),
                 "give the actor its real execution time (a missing "
                 "<executionTime> entry defaults to 0)");
        }
    }
}

}  // namespace sdf::lint_internal
