#include "lint/lint.hpp"

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "base/errors.hpp"
#include "lint/rules.hpp"
#include "sdf/repetition.hpp"

namespace sdf {

namespace {

bool rule_selected(const LintOptions& options, const std::string& id) {
    if (options.rules.empty()) {
        return true;
    }
    return std::find(options.rules.begin(), options.rules.end(), id) !=
           options.rules.end();
}

}  // namespace

LintReport lint_graph(const Graph& graph, const SourceMap* locations,
                      const LintOptions& options) {
    using lint_internal::LintContext;
    using lint_internal::RuleEntry;

    // Consistency is a shared precondition: compute the repetition vector
    // once; rules that need it skip themselves when it does not exist.
    std::optional<std::vector<Int>> repetition;
    std::string inconsistency_reason;
    if (graph.actor_count() > 0) {
        try {
            repetition = repetition_vector(graph);
        } catch (const Error& e) {
            inconsistency_reason = e.what();
        }
    }
    const LintContext ctx{graph, locations, options,
                          repetition ? &*repetition : nullptr, inconsistency_reason};

    LintReport report;
    for (const RuleEntry& entry : lint_internal::rule_entries()) {
        if (!rule_selected(options, entry.meta.id)) {
            continue;
        }
        try {
            entry.check(ctx, report.diagnostics);
        } catch (const Error& e) {
            // A linter must not throw on lintable input: degrade the failed
            // rule to a finding about itself.
            report.diagnostics.push_back(Diagnostic{
                entry.meta.id, Severity::warning,
                "rule " + entry.meta.id + " (" + entry.meta.title +
                    ") could not run: " + e.what(),
                SourceLoc{}, ""});
        }
    }
    // Deterministic order for golden tests and CI diffs: by rule id first
    // (ids are zero-padded, so lexicographic == numeric), then by source
    // location; graph-level findings (unknown location, line 0) lead their
    // rule's block.  Stable, so a rule emitting several findings on one
    // line keeps its own emission order.
    std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         if (a.rule != b.rule) {
                             return a.rule < b.rule;
                         }
                         if (a.location.line != b.location.line) {
                             return a.location.line < b.location.line;
                         }
                         return a.location.column < b.location.column;
                     });
    return report;
}

}  // namespace sdf
