#include "lint/render.hpp"

#include <sstream>

namespace sdf {

namespace {

std::string json_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    constexpr char hex[] = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xf];
                    out += hex[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string render_text(const LintReport& report, const std::string& file) {
    std::ostringstream out;
    const std::string prefix = file.empty() ? "(graph)" : file;
    for (const Diagnostic& d : report.diagnostics) {
        out << prefix;
        if (d.location.known()) {
            out << ":" << d.location.line << ":" << d.location.column;
        }
        out << ": " << severity_name(d.severity) << ": " << d.message << " ["
            << d.rule << "]\n";
        if (!d.hint.empty()) {
            out << "    hint: " << d.hint << "\n";
        }
    }
    return out.str();
}

std::string render_json(const LintReport& report, const std::string& file,
                        const std::string& graph_name) {
    std::ostringstream out;
    out << "{\n";
    out << "  \"file\": \"" << json_escape(file) << "\",\n";
    out << "  \"graph\": \"" << json_escape(graph_name) << "\",\n";
    out << "  \"diagnostics\": [";
    for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
        const Diagnostic& d = report.diagnostics[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"rule\": \"" << d.rule << "\", \"severity\": \""
            << severity_name(d.severity) << "\"";
        if (d.location.known()) {
            out << ", \"line\": " << d.location.line << ", \"column\": "
                << d.location.column;
        }
        out << ", \"message\": \"" << json_escape(d.message) << "\"";
        if (!d.hint.empty()) {
            out << ", \"hint\": \"" << json_escape(d.hint) << "\"";
        }
        out << "}";
    }
    out << (report.diagnostics.empty() ? "],\n" : "\n  ],\n");
    const auto worst = report.worst();
    out << "  \"summary\": {\"total\": " << report.diagnostics.size()
        << ", \"worst\": \""
        << (worst.has_value() ? severity_name(*worst) : "clean")
        << "\", \"error\": " << report.count(Severity::error) << ", \"warning\": "
        << report.count(Severity::warning) << ", \"note\": "
        << report.count(Severity::note) << "},\n";
    out << "  \"counts\": {\"error\": " << report.count(Severity::error)
        << ", \"warning\": " << report.count(Severity::warning) << ", \"note\": "
        << report.count(Severity::note) << "}\n";
    out << "}\n";
    return out.str();
}

}  // namespace sdf
