// rules_abstraction.cpp — reduction-readiness rules: SDF011
// unbounded-auto-concurrency, SDF014 invalid-abstraction (Definition 3),
// SDF015 redundant-channel (Section 4.2 pruning).
#include <cstddef>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "base/errors.hpp"
#include "base/string_util.hpp"
#include "lint/rules.hpp"
#include "transform/abstraction.hpp"

namespace sdf::lint_internal {

void check_auto_concurrency(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    if (g.actor_count() == 0) {
        return;
    }
    std::vector<bool> has_self_loop(g.actor_count(), false);
    for (const Channel& ch : g.channels()) {
        if (ch.is_self_loop()) {
            has_self_loop[ch.src] = true;
        }
    }
    std::size_t unbounded = 0;
    std::string names;
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        if (!has_self_loop[a]) {
            ++unbounded;
            if (unbounded <= 4) {
                names += (names.empty() ? "" : ", ") + g.actor(a).name;
            }
        }
    }
    if (unbounded == 0) {
        return;
    }
    if (unbounded > 4) {
        names += ", and " + std::to_string(unbounded - 4) + " more";
    }
    // One summary note per graph; a per-actor finding would drown real
    // diagnostics on conventional models, which rarely carry self-loops.
    emit(out, "SDF011",
         std::to_string(unbounded) + " of " + std::to_string(g.actor_count()) +
             " actors (" + names + ") have no self-loop, so self-timed execution "
             "may fire them unboundedly often in parallel",
         SourceLoc{},
         "add_self_loops (transform/selfloops.hpp) bounds auto-concurrency and "
         "puts every actor on a cycle, as conventional for the SDF3 benchmarks");
}

void check_invalid_abstraction(const LintContext& ctx, std::vector<Diagnostic>& out) {
    if (ctx.repetition == nullptr) {
        return;  // Definition 3 presumes a repetition vector (SDF002 reports)
    }
    const Graph& g = ctx.graph;
    // Only meaningful when the names actually suggest a grouping ("A1",
    // "A2" -> group "A" with >= 2 members).
    std::map<std::string, std::size_t> group_size;
    for (const Actor& actor : g.actors()) {
        const NameParts parts = split_name_suffix(actor.name);
        if (parts.index.has_value() && !parts.stem.empty()) {
            ++group_size[parts.stem];
        }
    }
    bool grouped = false;
    for (const auto& [stem, size] : group_size) {
        grouped = grouped || size >= 2;
    }
    if (!grouped) {
        return;
    }
    try {
        (void)abstraction_by_name_suffix(g);
    } catch (const InvalidAbstractionError& e) {
        emit(out, "SDF014",
             "actor names suggest an abstraction grouping, but no index "
             "assignment satisfies Definition 3: " + std::string(e.what()),
             SourceLoc{},
             "rename the actors, or pass an explicit valid (alpha, I) spec to "
             "abstract_graph instead of relying on name suffixes");
    }
}

void check_redundant_channel(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    // Among parallel channels with identical (src, dst, p, c) only the one
    // with the fewest initial tokens constrains timing (Section 4.2).
    std::map<std::tuple<ActorId, ActorId, Int, Int>, ChannelId> tightest;
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        const Channel& ch = g.channel(c);
        const auto key = std::make_tuple(ch.src, ch.dst, ch.production, ch.consumption);
        const auto [it, inserted] = tightest.emplace(key, c);
        if (!inserted && g.channel(it->second).initial_tokens > ch.initial_tokens) {
            it->second = c;
        }
    }
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        const Channel& ch = g.channel(c);
        const auto key = std::make_tuple(ch.src, ch.dst, ch.production, ch.consumption);
        const ChannelId keeper = tightest.at(key);
        if (keeper != c) {
            emit(out, "SDF015",
                 "channel " + g.actor(ch.src).name + " -> " + g.actor(ch.dst).name +
                     " (tokens " + std::to_string(ch.initial_tokens) +
                     ") parallels an equal-rate channel with " +
                     std::to_string(g.channel(keeper).initial_tokens) +
                     " tokens and never constrains timing",
                 ctx.channel_loc(c),
                 "prune_redundant_channels (transform/prune.hpp) removes it "
                 "without changing any firing time");
        }
    }
}

}  // namespace sdf::lint_internal
