// rules_liveness.cpp — liveness preconditions: SDF003 deadlock, SDF013
// starved-self-loop, SDF016 zero-delay-cycle.
#include <cstddef>
#include <string>
#include <vector>

#include "analysis/deadlock.hpp"
#include "base/digraph.hpp"
#include "lint/rules.hpp"

namespace sdf::lint_internal {

void check_deadlock(const LintContext& ctx, std::vector<Diagnostic>& out) {
    if (ctx.repetition == nullptr) {
        return;  // consistency is SDF002's report
    }
    const Graph& g = ctx.graph;
    const DeadlockDiagnosis diagnosis = diagnose_deadlock(g);
    if (!diagnosis.deadlocked) {
        return;
    }
    for (const Starvation& starve : diagnosis.blocked) {
        const Channel& ch = g.channel(starve.channel);
        emit(out, "SDF003",
             "actor '" + g.actor(starve.actor).name + "' starves on channel " +
                 g.actor(ch.src).name + " -> " + g.actor(ch.dst).name + ": has " +
                 std::to_string(starve.available) + " of " +
                 std::to_string(starve.required) + " tokens, " +
                 std::to_string(starve.remaining_firings) +
                 " firings still owed this iteration",
             ctx.channel_loc(starve.channel),
             "add initial tokens to the starving channel (each token is one unit "
             "of pipelining) or fix the rates feeding it");
    }
}

void check_starved_self_loop(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        const Channel& ch = g.channel(c);
        if (ch.is_self_loop() && ch.initial_tokens < ch.consumption) {
            emit(out, "SDF013",
                 "self-loop on actor '" + g.actor(ch.src).name + "' holds " +
                     std::to_string(ch.initial_tokens) + " tokens but each firing "
                     "needs " + std::to_string(ch.consumption) +
                     "; the actor can never fire",
                 ctx.channel_loc(c),
                 "a self-loop bounding auto-concurrency to k needs k*consumption "
                 "initial tokens (k = 1 models a non-pipelined resource)");
        }
    }
}

void check_zero_delay_cycle(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    if (g.actor_count() == 0) {
        return;
    }
    // Cycles in the sub-digraph of token-free channels deadlock regardless
    // of rates, so this fires even on inconsistent graphs.  Token-free
    // self-loops are SDF013's report.
    Digraph zero_delay(g.actor_count());
    for (const Channel& ch : g.channels()) {
        if (ch.initial_tokens == 0 && !ch.is_self_loop()) {
            zero_delay.add_edge(ch.src, ch.dst);
        }
    }
    std::size_t component_count = 0;
    const std::vector<std::size_t> component =
        zero_delay.strongly_connected_components(&component_count);
    std::vector<std::size_t> component_size(component_count, 0);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        ++component_size[component[a]];
    }
    std::vector<bool> reported(component_count, false);
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        const std::size_t scc = component[a];
        if (component_size[scc] < 2 || reported[scc]) {
            continue;
        }
        reported[scc] = true;
        std::string members;
        for (ActorId b = a; b < g.actor_count(); ++b) {
            if (component[b] == scc) {
                members += (members.empty() ? "" : ", ") + g.actor(b).name;
            }
        }
        emit(out, "SDF016",
             "actors {" + members + "} form a cycle of channels without initial "
             "tokens; none of them can ever fire",
             ctx.actor_loc(a),
             "every directed cycle needs at least one initial token to break the "
             "circular wait");
    }
}

}  // namespace sdf::lint_internal
