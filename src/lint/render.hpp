// render.hpp — turning a LintReport into text for humans or JSON for tools.
//
// The text form follows the compiler convention "file:line:col: severity:
// message [RULE]" so editors and CI annotate model files directly.  The
// JSON form is stable and golden-tested (tests/test_lint.cpp); field order
// and formatting are part of the contract.
#pragma once

#include <string>

#include "lint/diagnostic.hpp"

namespace sdf {

/// Compiler-style rendering, one finding per line, hints indented below.
/// `file` prefixes every line ("(graph)" when empty).
std::string render_text(const LintReport& report, const std::string& file);

/// Pretty-printed JSON document: file, graph name, diagnostics array
/// (rule, severity, message, line/column when known, hint when present)
/// and per-severity counts.
std::string render_json(const LintReport& report, const std::string& file,
                        const std::string& graph_name);

}  // namespace sdf
