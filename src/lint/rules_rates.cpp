// rules_rates.cpp — rate and magnitude rules: SDF002 inconsistent-rates,
// SDF008 hsdf-blowup, SDF009 reduced-hsdf-bound, SDF010 overflow-risk,
// SDF012 dead-tokens.
#include <optional>
#include <string>
#include <vector>

#include "base/checked.hpp"
#include "base/errors.hpp"
#include "lint/rules.hpp"

namespace sdf::lint_internal {

namespace {

/// a * b, or std::nullopt when the product overflows int64 — overflow
/// means "certainly past any threshold" to the callers below.
std::optional<Int> try_mul(Int a, Int b) {
    try {
        return checked_mul(a, b);
    } catch (const ArithmeticError&) {
        return std::nullopt;
    }
}

std::optional<Int> try_add(std::optional<Int> a, std::optional<Int> b) {
    if (!a || !b) {
        return std::nullopt;
    }
    try {
        return checked_add(*a, *b);
    } catch (const ArithmeticError&) {
        return std::nullopt;
    }
}

/// Renders "overflows int64" or the value, for threshold messages.
std::string magnitude(std::optional<Int> value) {
    return value ? std::to_string(*value) : "more than int64 can hold";
}

bool exceeds(std::optional<Int> value, Int limit) {
    return !value || *value > limit;
}

}  // namespace

void check_inconsistent_rates(const LintContext& ctx, std::vector<Diagnostic>& out) {
    if (ctx.graph.actor_count() == 0 || ctx.repetition != nullptr) {
        return;
    }
    emit(out, "SDF002",
         "rates are inconsistent, the graph has no repetition vector: " +
             ctx.inconsistency_reason,
         SourceLoc{},
         "rebalance the port rates so every cycle's production/consumption "
         "ratios multiply to 1 (Lee & Messerschmitt balance equations)");
}

void check_hsdf_blowup(const LintContext& ctx, std::vector<Diagnostic>& out) {
    if (ctx.repetition == nullptr) {
        return;
    }
    std::optional<Int> firings = 0;
    for (const Int q : *ctx.repetition) {
        firings = try_add(firings, q);
    }
    if (exceeds(firings, ctx.options.max_hsdf_actors)) {
        emit(out, "SDF008",
             "one iteration has " + magnitude(firings) +
                 " firings; the classical SDF-to-HSDF conversion creates that many "
                 "actors (limit " + std::to_string(ctx.options.max_hsdf_actors) + ")",
             SourceLoc{},
             "reduce the rate granularity, or use the reduced conversion "
             "(transform/hsdf_reduced.hpp) whose size depends on tokens, not rates");
    }
}

void check_reduced_hsdf_bound(const LintContext& ctx, std::vector<Diagnostic>& out) {
    std::optional<Int> tokens;
    try {
        tokens = ctx.graph.total_initial_tokens();
    } catch (const ArithmeticError&) {
        tokens = std::nullopt;
    }
    // Section 6 bound: the reduced HSDF graph has at most N(N+2) actors for
    // N initial tokens.
    const std::optional<Int> bound =
        tokens ? try_add(try_mul(*tokens, *tokens), try_mul(*tokens, 2)) : std::nullopt;
    if (exceeds(bound, ctx.options.max_hsdf_actors)) {
        emit(out, "SDF009",
             "the graph carries " + magnitude(tokens) +
                 " initial tokens, so even the reduced HSDF conversion is bounded "
                 "only by N(N+2) = " + magnitude(bound) + " actors (limit " +
                 std::to_string(ctx.options.max_hsdf_actors) + ")",
             SourceLoc{},
             "model large token counts as scaled rates where possible; the "
             "conversion cost grows with tokens, not with rates");
    }
}

void check_overflow_risk(const LintContext& ctx, std::vector<Diagnostic>& out) {
    if (ctx.repetition == nullptr) {
        return;
    }
    const Graph& g = ctx.graph;
    const std::vector<Int>& q = *ctx.repetition;
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        const Channel& ch = g.channel(c);
        const std::optional<Int> traffic = try_mul(q[ch.src], ch.production);
        if (exceeds(traffic, ctx.options.overflow_limit)) {
            emit(out, "SDF010",
                 "channel " + g.actor(ch.src).name + " -> " + g.actor(ch.dst).name +
                     " moves " + magnitude(traffic) +
                     " tokens per iteration; checked int64 token arithmetic in the "
                     "symbolic conversion risks overflow (limit " +
                     std::to_string(ctx.options.overflow_limit) + ")",
                 ctx.channel_loc(c),
                 "divide the rates by their common factor or split the iteration; "
                 "the analyses abort with ArithmeticError past int64");
        }
    }
    std::optional<Int> work = 0;
    for (ActorId a = 0; a < g.actor_count(); ++a) {
        work = try_add(work, try_mul(q[a], g.actor(a).execution_time));
    }
    if (exceeds(work, ctx.options.overflow_limit)) {
        emit(out, "SDF010",
             "one iteration performs " + magnitude(work) +
                 " time units of work; symbolic time stamps risk int64 overflow "
                 "(limit " + std::to_string(ctx.options.overflow_limit) + ")",
             SourceLoc{},
             "rescale execution times to a coarser time unit");
    }
}

void check_dead_tokens(const LintContext& ctx, std::vector<Diagnostic>& out) {
    const Graph& g = ctx.graph;
    for (ChannelId c = 0; c < g.channel_count(); ++c) {
        const Channel& ch = g.channel(c);
        const Int g_rate = gcd(ch.production, ch.consumption);
        const Int remainder = ch.initial_tokens % g_rate;
        if (remainder != 0) {
            emit(out, "SDF012",
                 "channel " + g.actor(ch.src).name + " -> " + g.actor(ch.dst).name +
                     ": " + std::to_string(remainder) + " of the " +
                     std::to_string(ch.initial_tokens) +
                     " initial tokens can never be consumed (the token count stays "
                     "congruent to " + std::to_string(remainder) + " mod gcd(" +
                     std::to_string(ch.production) + ", " +
                     std::to_string(ch.consumption) + "))",
                 ctx.channel_loc(c),
                 "drop the dead remainder from initialTokens; it only inflates "
                 "buffer bounds");
        }
    }
}

}  // namespace sdf::lint_internal
