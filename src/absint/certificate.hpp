// certificate.hpp — machine-checkable buffer-bound certificates.
//
// certify_buffer_bounds() packages the token-interval fixpoint as a
// proof-carrying claim: per channel a capacity bound together with the
// evidence needed to re-establish it WITHOUT re-running (or trusting) the
// solver.  verify_certificate() is that independent checker.  It accepts a
// certificate exactly when
//
//   1. the cycle invariants are self-proving: every weight is positive,
//      the claimed constant equals the weighted initial-token sum, and the
//      weighted production/consumption flows cancel at every actor — so
//      the weighted token sum is preserved by EVERY firing (induction) and
//      each member channel obeys tokens <= floor(constant / weight)
//      because all other terms are non-negative;
//   2. every structural cap is dominated by a bound those invariants prove;
//   3. the interval set is inductive: it contains the initial state, and
//      the abstract post-state of every abstractly enabled actor (met with
//      the caps) stays inside it;
//   4. each certified bound dominates its channel's interval upper bound.
//
// Together 1–4 prove that every admissible execution keeps every channel
// inside its interval, hence below its certified bound.  The checker never
// reads the repetition vector, the solver, or any other analysis — the
// balance equations enter only through the flow-cancellation check, which
// is verified arithmetic, not an assumption.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "absint/token_intervals.hpp"
#include "sdf/graph.hpp"

namespace sdf::absint {

/// The per-channel claim: token count never exceeds `bound` (nullopt = no
/// finite bound certified).
struct BoundCertificate {
    ChannelId channel = 0;
    std::optional<Int> bound;

    friend bool operator==(const BoundCertificate&, const BoundCertificate&) = default;
};

/// A full certificate: claims plus inlined inductive evidence.
struct CertifiedBounds {
    std::vector<BoundCertificate> certificates;  ///< one per channel, in id order
    std::vector<Interval> intervals;             ///< the inductive invariant set
    std::vector<std::optional<Int>> caps;        ///< structural caps used by the meet
    std::vector<CycleInvariant> invariants;      ///< proofs behind the caps

    friend bool operator==(const CertifiedBounds&, const CertifiedBounds&) = default;
};

/// Packages a token-interval fixpoint as a certificate (bound = interval
/// upper bound per channel).
CertifiedBounds certify_buffer_bounds(const Graph& graph, const TokenIntervals& intervals);

struct CertificateCheck {
    bool ok = true;
    std::string reason;  ///< first failed obligation, empty when ok
};

/// The independent checker (see file comment).  Never throws on a malformed
/// certificate — malformedness is just a failed check.
CertificateCheck verify_certificate(const Graph& graph, const CertifiedBounds& certified);

/// AnalysisManager slot: certified bounds derived from the cached
/// token-interval fixpoint.  Channel-indexed, like TokenIntervalsAnalysis.
struct BufferBoundsAnalysis {
    using Result = CertifiedBounds;
    static constexpr const char* kName = "buffer-bounds";
    static constexpr bool kTimeSensitive = false;
    static Result compute(const Graph& graph) {
        return certify_buffer_bounds(graph,
                                     *graph.analyses()->get<TokenIntervalsAnalysis>(graph));
    }
};

}  // namespace sdf::absint
