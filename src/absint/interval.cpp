#include "absint/interval.hpp"

namespace sdf::absint {

std::string Interval::to_string() const {
    std::string out = "[" + std::to_string(lo) + ", ";
    out += hi.has_value() ? std::to_string(*hi) : std::string("inf");
    out += hi.has_value() ? "]" : ")";
    return out;
}

}  // namespace sdf::absint
