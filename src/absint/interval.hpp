// interval.hpp — the token-count interval lattice.
//
// The abstract domain for channel occupancy: a pair [lo, hi] with
// 0 <= lo <= hi and hi possibly +inf (represented as an empty optional).
// Token counts are never negative, so the lattice bottoms out at [0, 0] per
// bound and tops out at [0, +inf).  All bound arithmetic goes through the
// checked-int64 helpers; overflow of an *upper* bound saturates to +inf and
// overflow of a *lower* bound saturates to INT64_MAX — both directions keep
// the interval a sound over-approximation of the concrete count.
#pragma once

#include <limits>
#include <optional>
#include <string>

#include "base/checked.hpp"

namespace sdf::absint {

/// An upper bound on a token count: a finite value or +inf (nullopt).
using UpperBound = std::optional<Int>;

/// True when a <= b, treating nullopt as +inf.
inline bool upper_le(const UpperBound& a, const UpperBound& b) {
    if (!b.has_value()) {
        return true;
    }
    return a.has_value() && *a <= *b;
}

/// min(a, b) with nullopt as +inf.
inline UpperBound upper_min(const UpperBound& a, const UpperBound& b) {
    return upper_le(a, b) ? a : b;
}

/// max(a, b) with nullopt as +inf.
inline UpperBound upper_max(const UpperBound& a, const UpperBound& b) {
    return upper_le(a, b) ? b : a;
}

/// A token-count invariant [lo, hi]; hi == nullopt means unbounded above.
struct Interval {
    Int lo = 0;
    UpperBound hi = Int{0};

    [[nodiscard]] static Interval exact(Int value) { return {value, value}; }
    [[nodiscard]] static Interval top() { return {0, std::nullopt}; }

    [[nodiscard]] bool is_bounded() const { return hi.has_value(); }
    [[nodiscard]] bool contains(Int value) const {
        return value >= lo && upper_le(UpperBound{value}, hi);
    }
    /// Containment in the lattice order: *this inside `other`.
    [[nodiscard]] bool inside(const Interval& other) const {
        return lo >= other.lo && upper_le(hi, other.hi);
    }

    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const Interval&, const Interval&) = default;
};

/// Least upper bound (interval hull).
inline Interval join(const Interval& a, const Interval& b) {
    return {a.lo < b.lo ? a.lo : b.lo, upper_max(a.hi, b.hi)};
}

/// Meet with the structural cap [0, cap]: clamps both bounds to cap.  Used
/// to fold cycle-invariant capacity proofs into the solver state; with a
/// sound cap the clamp of lo never actually fires (lo <= d <= cap), but
/// clamping keeps the interval well-formed even against an unsound caller.
inline Interval meet_cap(const Interval& a, Int cap) {
    return {a.lo < cap ? a.lo : cap, upper_min(a.hi, UpperBound{cap})};
}

/// Classic interval widening: any bound that moved jumps straight to the
/// lattice extreme (lo to 0, hi to +inf).  The solver re-applies the
/// structural caps afterwards, so widened channels on cycles land on their
/// proven capacity instead of +inf.
inline Interval widen(const Interval& old_iv, const Interval& new_iv) {
    Interval result = new_iv;
    if (new_iv.lo < old_iv.lo) {
        result.lo = 0;
    }
    if (!upper_le(new_iv.hi, old_iv.hi)) {
        result.hi = std::nullopt;
    }
    return result;
}

/// Abstract production: tokens += p.  Overflow saturates soundly (see file
/// comment).
inline Interval shift_produce(const Interval& iv, Int production) {
    Interval result;
    try {
        result.lo = checked_add(iv.lo, production);
    } catch (const ArithmeticError&) {
        result.lo = std::numeric_limits<Int>::max();
    }
    if (iv.hi.has_value()) {
        try {
            result.hi = checked_add(*iv.hi, production);
        } catch (const ArithmeticError&) {
            result.hi = std::nullopt;
        }
    } else {
        result.hi = std::nullopt;
    }
    return result;
}

/// Abstract consumption: tokens -= c, guarded by tokens >= c.  The lower
/// bound is first raised to c (the firing requires that many tokens), so
/// the result never dips below zero.  Rates and counts are non-negative,
/// hence the subtractions cannot overflow.
inline Interval shift_consume(const Interval& iv, Int consumption) {
    Interval result;
    const Int guarded_lo = iv.lo > consumption ? iv.lo : consumption;
    result.lo = guarded_lo - consumption;
    if (iv.hi.has_value()) {
        result.hi = *iv.hi - consumption;
    } else {
        result.hi = std::nullopt;
    }
    return result;
}

}  // namespace sdf::absint
