#include "absint/token_intervals.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "robust/budget.hpp"
#include "sdf/repetition.hpp"

namespace sdf::absint {

namespace {

/// Weight of a channel in the cycle invariant: 1 / (q(src) · p).
Rational invariant_weight(const Graph& graph, const std::vector<Int>& repetition,
                          ChannelId id) {
    const Channel& ch = graph.channel(id);
    return Rational(1, checked_mul(repetition[ch.src], ch.production));
}

/// Builds the invariant over `cycle` (channel ids forming a directed cycle)
/// and folds its per-channel caps into `caps`.  Throws ArithmeticError when
/// the exact weights overflow; the caller skips the cycle (sound: skipping
/// a cap only loses precision).
CycleInvariant fold_cycle_caps(const Graph& graph, const std::vector<Int>& repetition,
                               const std::vector<ChannelId>& cycle,
                               std::vector<std::optional<Int>>& caps) {
    CycleInvariant invariant;
    invariant.channels = cycle;
    invariant.weights.reserve(cycle.size());
    Rational constant(0);
    for (const ChannelId id : cycle) {
        const Rational weight = invariant_weight(graph, repetition, id);
        invariant.weights.push_back(weight);
        constant += weight * Rational(graph.channel(id).initial_tokens);
    }
    invariant.constant = constant;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const Int cap = (constant / invariant.weights[i]).floor();
        const ChannelId id = cycle[i];
        if (!caps[id].has_value() || cap < *caps[id]) {
            caps[id] = cap;
        }
    }
    return invariant;
}

/// For every channel, finds one shortest directed cycle through it (BFS from
/// its dst back to its src) and registers the resulting linear invariant.
/// Cycles found through different channels frequently coincide; they are
/// deduplicated on their sorted channel-id set.
void structural_caps(const Graph& graph, const std::vector<Int>& repetition,
                     std::vector<std::optional<Int>>& caps,
                     std::vector<CycleInvariant>& invariants) {
    const std::size_t actor_count = graph.actor_count();
    std::vector<std::vector<ChannelId>> out(actor_count);
    for (ChannelId id = 0; id < graph.channel_count(); ++id) {
        out[graph.channel(id).src].push_back(id);
    }
    std::set<std::vector<ChannelId>> seen;
    std::vector<ChannelId> parent_channel(actor_count);
    std::vector<char> visited(actor_count);
    for (ChannelId id = 0; id < graph.channel_count(); ++id) {
        SDFRED_CHECKPOINT();
        const Channel& ch = graph.channel(id);
        std::vector<ChannelId> cycle;
        if (ch.is_self_loop()) {
            cycle = {id};
        } else {
            // BFS dst -> src over forward channels; the path plus `id`
            // closes a simple cycle.
            std::fill(visited.begin(), visited.end(), 0);
            visited[ch.dst] = 1;
            std::deque<ActorId> queue = {ch.dst};
            while (!queue.empty() && !visited[ch.src]) {
                const ActorId actor = queue.front();
                queue.pop_front();
                for (const ChannelId edge : out[actor]) {
                    const ActorId next = graph.channel(edge).dst;
                    if (!visited[next]) {
                        visited[next] = 1;
                        parent_channel[next] = edge;
                        queue.push_back(next);
                    }
                }
            }
            if (!visited[ch.src]) {
                continue;  // no cycle through this channel
            }
            for (ActorId actor = ch.src; actor != ch.dst;
                 actor = graph.channel(parent_channel[actor]).src) {
                cycle.push_back(parent_channel[actor]);
            }
            cycle.push_back(id);
        }
        std::vector<ChannelId> key = cycle;
        std::sort(key.begin(), key.end());
        if (!seen.insert(std::move(key)).second) {
            continue;
        }
        try {
            invariants.push_back(fold_cycle_caps(graph, repetition, cycle, caps));
        } catch (const ArithmeticError&) {
            // Exact weights overflowed int64; drop this cycle's cap.  The
            // analysis stays sound, merely less precise.
        }
    }
}

/// True when `actor` could fire in some state of the abstract `state`:
/// every input channel's upper bound covers its consumption rate.
bool abstractly_enabled(const Graph& graph, const std::vector<std::vector<ChannelId>>& in,
                        const std::vector<Interval>& state, ActorId actor) {
    for (const ChannelId id : in[actor]) {
        if (!upper_le(UpperBound{graph.channel(id).consumption}, state[id].hi)) {
            return false;
        }
    }
    return true;
}

}  // namespace

TokenIntervals token_intervals(const Graph& graph, const TokenIntervalOptions& options) {
    const std::size_t actor_count = graph.actor_count();
    const std::size_t channel_count = graph.channel_count();

    TokenIntervals result;
    result.channels.reserve(channel_count);
    for (ChannelId id = 0; id < channel_count; ++id) {
        result.channels.push_back(Interval::exact(graph.channel(id).initial_tokens));
    }
    result.possibly_enabled.assign(actor_count, false);
    result.caps.assign(channel_count, std::nullopt);

    if (options.structural_caps && channel_count > 0 && is_consistent(graph)) {
        structural_caps(graph, repetition_vector(graph), result.caps, result.invariants);
    }

    std::vector<std::vector<ChannelId>> in(actor_count);
    std::vector<std::vector<ChannelId>> out(actor_count);
    for (ChannelId id = 0; id < channel_count; ++id) {
        in[graph.channel(id).dst].push_back(id);
        out[graph.channel(id).src].push_back(id);
    }

    std::vector<Interval>& state = result.channels;
    std::vector<int> hi_moves(channel_count, 0);
    std::vector<int> lo_moves(channel_count, 0);
    std::vector<char> dirty(actor_count, 1);
    std::vector<Interval> post(channel_count);
    std::vector<char> touched(channel_count, 0);

    bool any_dirty = actor_count > 0;
    while (any_dirty) {
        any_dirty = false;
        // Deterministic round-robin over actor ids; join order never
        // affects the fixpoint, only the trace, but determinism keeps the
        // solver_steps counter and the verify-each recompute stable.
        for (ActorId actor = 0; actor < actor_count; ++actor) {
            if (!dirty[actor]) {
                continue;
            }
            dirty[actor] = 0;
            SDFRED_CHECKPOINT();
            ++result.solver_steps;
            if (!abstractly_enabled(graph, in, state, actor)) {
                continue;
            }
            // Abstract firing: consume on inputs, produce on outputs.  A
            // self-loop is both, and sees consumption first — exactly the
            // concrete firing rule (consume at start, produce at end).
            for (const ChannelId id : in[actor]) {
                post[id] = shift_consume(state[id], graph.channel(id).consumption);
                touched[id] = 1;
            }
            for (const ChannelId id : out[actor]) {
                const Interval& base = touched[id] ? post[id] : state[id];
                post[id] = shift_produce(base, graph.channel(id).production);
                touched[id] = 1;
            }
            auto absorb = [&](ChannelId id) {
                if (!touched[id]) {
                    return;  // self-loop already absorbed via the input list
                }
                touched[id] = 0;
                Interval next = join(state[id], post[id]);
                if (next == state[id]) {
                    return;
                }
                if (!upper_le(next.hi, state[id].hi) && ++hi_moves[id] > options.widen_after) {
                    next.hi = std::nullopt;
                }
                if (next.lo < state[id].lo && ++lo_moves[id] > options.widen_after) {
                    next.lo = 0;
                }
                if (result.caps[id].has_value()) {
                    next = meet_cap(next, *result.caps[id]);
                }
                if (next == state[id]) {
                    return;
                }
                state[id] = next;
                dirty[graph.channel(id).src] = 1;
                dirty[graph.channel(id).dst] = 1;
                any_dirty = true;
            };
            for (const ChannelId id : in[actor]) {
                absorb(id);
            }
            for (const ChannelId id : out[actor]) {
                absorb(id);
            }
        }
    }

    // Enabledness is monotone in the state, so the fixpoint verdict is the
    // union over the whole run; recompute it once for a canonical result.
    for (ActorId actor = 0; actor < actor_count; ++actor) {
        result.possibly_enabled[actor] = abstractly_enabled(graph, in, state, actor);
    }

    if (options.selftest_narrow) {
        // Deliberate unsoundness for the harness self-test: pinch every
        // non-constant interval by one token at each movable end.
        for (Interval& iv : state) {
            if (iv.hi.has_value() && *iv.hi > iv.lo) {
                iv.hi = *iv.hi - 1;
            }
            if (iv.lo < std::numeric_limits<Int>::max() &&
                (!iv.hi.has_value() || iv.lo + 1 <= *iv.hi)) {
                iv.lo += 1;
            }
        }
    }

    return result;
}

}  // namespace sdf::absint
