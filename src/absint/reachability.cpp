#include "absint/reachability.hpp"

#include "robust/budget.hpp"

namespace sdf::absint {

namespace {

/// Round cap for the descending phase: a descending iteration is sound
/// wherever it stops, and contraction ratios p/c close to 1 can make exact
/// convergence dawdle — 64 rounds pins every practically relevant bound.
constexpr std::uint64_t kMaxRounds = 64;

/// Ascending can-ever-fire fixpoint (least fixpoint, exact over its
/// abstraction): actor a can fire iff every input channel either already
/// holds enough tokens (d >= c) or is fed by an actor that can fire — a
/// producer that fires at all can be fired again and again in an admissible
/// prefix, so its channel supplies unboundedly many tokens.  Computed
/// first, because the descending phase alone converges to the GREATEST
/// fixpoint and would leave a zero-token cycle mutually justified at +inf.
std::vector<char> can_ever_fire(const Graph& graph,
                                const std::vector<std::vector<ChannelId>>& in) {
    const std::size_t actor_count = graph.actor_count();
    std::vector<char> fires(actor_count, 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (ActorId actor = 0; actor < actor_count; ++actor) {
            if (fires[actor]) {
                continue;
            }
            SDFRED_CHECKPOINT();
            bool enabled = true;
            for (const ChannelId id : in[actor]) {
                const Channel& ch = graph.channel(id);
                if (!fires[ch.src] && ch.initial_tokens < ch.consumption) {
                    enabled = false;
                    break;
                }
            }
            if (enabled) {
                fires[actor] = 1;
                changed = true;
            }
        }
    }
    return fires;
}

/// floor((d + p·n) / c) with +inf (nullopt) propagation; overflow of the
/// exact value is reported as +inf, which is always a sound upper bound.
std::optional<Int> supply_bound(const Channel& ch, const std::optional<Int>& src_firings) {
    if (!src_firings.has_value()) {
        return std::nullopt;
    }
    try {
        const Int available = checked_add(ch.initial_tokens,
                                          checked_mul(ch.production, *src_firings));
        return floor_div(available, ch.consumption);
    } catch (const ArithmeticError&) {
        return std::nullopt;
    }
}

bool lt(const std::optional<Int>& a, const std::optional<Int>& b) {
    if (!b.has_value()) {
        return a.has_value();
    }
    return a.has_value() && *a < *b;
}

}  // namespace

Reachability compute_reachability(const Graph& graph) {
    const std::size_t actor_count = graph.actor_count();
    Reachability result;
    result.max_firings.assign(actor_count, std::nullopt);

    std::vector<std::vector<ChannelId>> in(actor_count);
    for (ChannelId id = 0; id < graph.channel_count(); ++id) {
        in[graph.channel(id).dst].push_back(id);
    }

    // Phase 1 (ascending): pin provably dead actors at exactly 0 firings.
    const std::vector<char> fires = can_ever_fire(graph, in);
    for (ActorId actor = 0; actor < actor_count; ++actor) {
        if (!fires[actor]) {
            result.max_firings[actor] = 0;
        }
    }

    // Phase 2 (descending): propagate the cumulative-token firing bounds.
    // Every candidate is >= 0, so the pinned zeros can only stay put.
    bool changed = true;
    while (changed && result.rounds < kMaxRounds) {
        changed = false;
        ++result.rounds;
        for (ActorId actor = 0; actor < actor_count; ++actor) {
            SDFRED_CHECKPOINT();
            std::optional<Int> bound;  // +inf
            for (const ChannelId id : in[actor]) {
                const Channel& ch = graph.channel(id);
                const std::optional<Int> via = supply_bound(ch, result.max_firings[ch.src]);
                if (lt(via, bound)) {
                    bound = via;
                }
            }
            if (lt(bound, result.max_firings[actor])) {
                result.max_firings[actor] = bound;
                changed = true;
            }
        }
    }
    return result;
}

}  // namespace sdf::absint
