#include "absint/certificate.hpp"

#include <map>

#include "robust/budget.hpp"

namespace sdf::absint {

CertifiedBounds certify_buffer_bounds(const Graph& graph, const TokenIntervals& intervals) {
    CertifiedBounds result;
    result.intervals = intervals.channels;
    result.caps = intervals.caps;
    result.invariants = intervals.invariants;
    result.certificates.reserve(graph.channel_count());
    for (ChannelId id = 0; id < graph.channel_count(); ++id) {
        result.certificates.push_back({id, intervals.channels[id].hi});
    }
    return result;
}

namespace {

CertificateCheck fail(std::string reason) { return {false, std::move(reason)}; }

/// Obligation 1: the invariant is self-proving (see header).  Returns the
/// failure, or std::nullopt when the invariant holds.
std::optional<CertificateCheck> check_invariant(const Graph& graph,
                                                const CycleInvariant& invariant,
                                                std::size_t index) {
    const std::string tag = "invariant #" + std::to_string(index);
    if (invariant.channels.empty() ||
        invariant.channels.size() != invariant.weights.size()) {
        return fail(tag + ": malformed channel/weight lists");
    }
    std::vector<char> used(graph.channel_count(), 0);
    Rational constant(0);
    std::map<ActorId, Rational> net_flow;
    for (std::size_t i = 0; i < invariant.channels.size(); ++i) {
        const ChannelId id = invariant.channels[i];
        if (id >= graph.channel_count()) {
            return fail(tag + ": channel id out of range");
        }
        if (used[id]) {
            return fail(tag + ": duplicate channel");
        }
        used[id] = 1;
        const Rational& weight = invariant.weights[i];
        if (!(weight > Rational(0))) {
            return fail(tag + ": non-positive weight");
        }
        const Channel& ch = graph.channel(id);
        constant += weight * Rational(ch.initial_tokens);
        net_flow[ch.src] += weight * Rational(ch.production);
        net_flow[ch.dst] -= weight * Rational(ch.consumption);
    }
    if (constant != invariant.constant) {
        return fail(tag + ": constant does not match weighted initial tokens");
    }
    for (const auto& [actor, net] : net_flow) {
        if (!net.is_zero()) {
            return fail(tag + ": weighted flow does not cancel at actor '" +
                        graph.actor(actor).name + "'");
        }
    }
    return std::nullopt;
}

}  // namespace

CertificateCheck verify_certificate(const Graph& graph, const CertifiedBounds& certified) {
    try {
        const std::size_t channel_count = graph.channel_count();
        const std::size_t actor_count = graph.actor_count();
        if (certified.intervals.size() != channel_count ||
            certified.caps.size() != channel_count ||
            certified.certificates.size() != channel_count) {
            return fail("certificate does not cover every channel");
        }

        // Well-formed intervals containing the initial state.
        for (ChannelId id = 0; id < channel_count; ++id) {
            const Interval& iv = certified.intervals[id];
            if (iv.lo < 0 || !upper_le(UpperBound{iv.lo}, iv.hi)) {
                return fail("channel " + std::to_string(id) + ": malformed interval " +
                            iv.to_string());
            }
            if (!iv.contains(graph.channel(id).initial_tokens)) {
                return fail("channel " + std::to_string(id) + ": initial tokens " +
                            std::to_string(graph.channel(id).initial_tokens) +
                            " outside invariant " + iv.to_string());
            }
        }

        // Obligation 1: every cycle invariant is self-proving.
        for (std::size_t i = 0; i < certified.invariants.size(); ++i) {
            SDFRED_CHECKPOINT();
            if (auto failed = check_invariant(graph, certified.invariants[i], i)) {
                return *failed;
            }
        }

        // Obligation 2: every cap is dominated by a proven per-channel bound.
        std::vector<std::optional<Int>> proven(channel_count, std::nullopt);
        for (const CycleInvariant& invariant : certified.invariants) {
            for (std::size_t i = 0; i < invariant.channels.size(); ++i) {
                const ChannelId id = invariant.channels[i];
                const Int bound = (invariant.constant / invariant.weights[i]).floor();
                if (!proven[id].has_value() || bound < *proven[id]) {
                    proven[id] = bound;
                }
            }
        }
        for (ChannelId id = 0; id < channel_count; ++id) {
            if (!certified.caps[id].has_value()) {
                continue;
            }
            if (!proven[id].has_value() || *certified.caps[id] < *proven[id]) {
                return fail("channel " + std::to_string(id) + ": cap " +
                            std::to_string(*certified.caps[id]) +
                            " is not justified by any invariant");
            }
        }

        // Obligation 3: the interval set is inductive under abstract firing.
        std::vector<std::vector<ChannelId>> in(actor_count);
        std::vector<std::vector<ChannelId>> out(actor_count);
        for (ChannelId id = 0; id < channel_count; ++id) {
            in[graph.channel(id).dst].push_back(id);
            out[graph.channel(id).src].push_back(id);
        }
        std::vector<Interval> post(channel_count);
        std::vector<char> touched(channel_count, 0);
        for (ActorId actor = 0; actor < actor_count; ++actor) {
            SDFRED_CHECKPOINT();
            bool enabled = true;
            for (const ChannelId id : in[actor]) {
                if (!upper_le(UpperBound{graph.channel(id).consumption},
                              certified.intervals[id].hi)) {
                    enabled = false;
                    break;
                }
            }
            if (!enabled) {
                continue;
            }
            for (const ChannelId id : in[actor]) {
                post[id] = shift_consume(certified.intervals[id],
                                         graph.channel(id).consumption);
                touched[id] = 1;
            }
            for (const ChannelId id : out[actor]) {
                const Interval& base = touched[id] ? post[id] : certified.intervals[id];
                post[id] = shift_produce(base, graph.channel(id).production);
                touched[id] = 1;
            }
            auto check_contained = [&](ChannelId id) -> bool {
                if (!touched[id]) {
                    return true;
                }
                touched[id] = 0;
                Interval effective = post[id];
                if (certified.caps[id].has_value()) {
                    effective = meet_cap(effective, *certified.caps[id]);
                }
                return effective.inside(certified.intervals[id]);
            };
            for (const ChannelId id : in[actor]) {
                if (!check_contained(id)) {
                    return fail("firing '" + graph.actor(actor).name +
                                "' escapes the invariant on channel " + std::to_string(id));
                }
            }
            for (const ChannelId id : out[actor]) {
                if (!check_contained(id)) {
                    return fail("firing '" + graph.actor(actor).name +
                                "' escapes the invariant on channel " + std::to_string(id));
                }
            }
        }

        // Obligation 4: certified bounds dominate the interval upper bounds.
        for (ChannelId id = 0; id < channel_count; ++id) {
            const BoundCertificate& cert = certified.certificates[id];
            if (cert.channel != id) {
                return fail("certificate list is not in channel order");
            }
            if (!upper_le(certified.intervals[id].hi, cert.bound)) {
                return fail("channel " + std::to_string(id) + ": claimed bound is below " +
                            "the proven interval " + certified.intervals[id].to_string());
            }
        }
        return {};
    } catch (const ArithmeticError& error) {
        return fail(std::string("arithmetic overflow while checking: ") + error.what());
    }
}

}  // namespace sdf::absint
