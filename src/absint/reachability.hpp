// reachability.hpp — which actors can ever fire, and how often.
//
// A descending abstract iteration computing a sound UPPER bound on the
// total number of firings each actor can perform across any admissible
// execution (finite or not; nullopt = unbounded).  The bound transfer is
// the cumulative-token inequality: if actor a fires N(a) times, every input
// channel (s, a, p, c, d) must have supplied the consumed tokens,
//
//     N(a) · c  <=  d + p · N(s)      =>      N(a) <= floor((d + p·N(s)) / c)
//
// Starting every actor at +inf and iterating the min over its inputs is a
// descending Kleene sequence; EVERY prefix of a descending iteration is
// already sound, so the solver may stop after a fixed number of rounds
// (geometric convergence can dawdle when p/c is close to 1) without risking
// unsoundness — only precision.
//
// An actor with bound 0 provably never fires: that is the dead-actor fact
// behind lint rule SDF018, and `max_firings[a] < q(a)` proves the graph
// cannot complete one iteration — guaranteed deadlock (SDF021).
//
// Unlike the token-interval result this is actor-indexed and insensitive to
// channel renumbering, and redundant parallel channels (prune's target) are
// never the binding constraint — so `prune` and `selfloops` declare it
// preserved (see pass/passes.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sdf/graph.hpp"

namespace sdf::absint {

struct Reachability {
    /// Upper bound on lifetime firings per actor; nullopt = unbounded.
    std::vector<std::optional<Int>> max_firings;
    /// Relaxation rounds the solver performed.
    std::uint64_t rounds = 0;

    /// True when the actor provably never fires in any admissible execution.
    [[nodiscard]] bool never_fires(ActorId actor) const {
        return max_firings[actor] == Int{0};
    }

    friend bool operator==(const Reachability&, const Reachability&) = default;
};

Reachability compute_reachability(const Graph& graph);

/// AnalysisManager slot behind compute_reachability().
struct ReachabilityAnalysis {
    using Result = Reachability;
    static constexpr const char* kName = "reachability";
    static constexpr bool kTimeSensitive = false;
    static Result compute(const Graph& graph) { return compute_reachability(graph); }
};

}  // namespace sdf::absint
