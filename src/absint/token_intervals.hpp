// token_intervals.hpp — abstract interpretation of SDF token counts.
//
// A monotone dataflow analysis over the channel-occupancy state of an SDF
// graph.  The abstract state maps every channel to an Interval [lo, hi]
// containing its token count in EVERY admissible execution (any interleaved
// firing sequence in which an actor only fires when all its input channels
// hold enough tokens — the untimed reachable state space).  The solver is a
// deterministic worklist fixpoint:
//
//   state[ch] := [d_ch, d_ch]                        (initial tokens)
//   repeat: for every abstractly enabled actor, join the post-state of an
//           abstract firing into the state; widen a bound after it has
//           moved `widen_after` times; meet with the structural caps.
//
// Widening alone would send every growing bound to +inf.  The structural
// caps recover precision: for any directed cycle C of a consistent graph,
// the weighted token sum  Σ_{e∈C} tokens(e) / (q(src(e))·p(e))  is invariant
// under every firing (the balance equations make each actor's contribution
// cancel), so tokens(e) <= floor(K / w_e) with K the weighted sum of the
// initial tokens.  Those per-cycle linear invariants are kept in the result
// — they are the machine-checkable proof behind every finite bound (see
// absint/certificate.hpp).
//
// Soundness is fuzz-enforced: the `absint-soundness` oracle replays random
// admissible firing sequences and fails if any observed count escapes its
// interval (see verify/oracles.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "absint/interval.hpp"
#include "base/rational.hpp"
#include "sdf/graph.hpp"

namespace sdf::absint {

/// One linear token invariant along a directed cycle: for every reachable
/// state, Σ_i weights[i] · tokens(channels[i]) == constant.  Weights are
/// strictly positive, so each member channel inherits the capacity bound
/// tokens(channels[i]) <= floor(constant / weights[i]).
struct CycleInvariant {
    std::vector<ChannelId> channels;
    std::vector<Rational> weights;
    Rational constant;

    friend bool operator==(const CycleInvariant&, const CycleInvariant&) = default;
};

struct TokenIntervalOptions {
    /// Number of times a bound may move before it is widened to the lattice
    /// extreme (then recovered by the structural caps where they exist).
    int widen_after = 4;
    /// Derive per-channel caps from cycle invariants (needs a consistent
    /// graph; silently skipped otherwise).
    bool structural_caps = true;
    /// Deliberately narrow every non-constant interval after solving.  The
    /// result is UNSOUND by construction — this exists only so the fuzzing
    /// harness can prove it would catch a broken solver (see the hidden
    /// `selftest-absint-unsound` oracle).
    bool selftest_narrow = false;
};

/// The fixpoint result.
struct TokenIntervals {
    /// Per-channel occupancy invariant, indexed by ChannelId.
    std::vector<Interval> channels;
    /// Per-actor: abstractly possibly enabled at the fixpoint.  An actor
    /// with `false` here provably never fires in any admissible execution.
    std::vector<bool> possibly_enabled;
    /// Structural capacity caps folded into the fixpoint (nullopt = none).
    std::vector<std::optional<Int>> caps;
    /// The cycle invariants proving the caps, deduplicated.
    std::vector<CycleInvariant> invariants;
    /// Abstract transfer applications performed by the solver.
    std::uint64_t solver_steps = 0;

    friend bool operator==(const TokenIntervals&, const TokenIntervals&) = default;
};

/// Runs the solver.  Accepts ANY structurally valid graph (inconsistent and
/// deadlocked ones included); checkpoints the active Governor every
/// transfer, so a budget cuts long solves off with BudgetExceeded.
TokenIntervals token_intervals(const Graph& graph, const TokenIntervalOptions& options = {});

/// AnalysisManager slot behind token_intervals() (see
/// sdf/analysis_manager.hpp for the traits contract).  Channel-indexed:
/// passes that renumber or resize channels must not declare it preserved.
struct TokenIntervalsAnalysis {
    using Result = TokenIntervals;
    static constexpr const char* kName = "token-intervals";
    static constexpr bool kTimeSensitive = false;
    static Result compute(const Graph& graph) { return token_intervals(graph); }
};

}  // namespace sdf::absint
