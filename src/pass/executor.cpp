#include "pass/executor.hpp"

#include <chrono>
#include <optional>

#include "absint/certificate.hpp"
#include "absint/reachability.hpp"
#include "absint/token_intervals.hpp"
#include "analysis/throughput.hpp"
#include "sdf/repetition.hpp"
#include "sdf/schedule.hpp"

namespace sdf {

namespace {

using Clock = std::chrono::steady_clock;

const char* outcome_name(ThroughputOutcome outcome) {
    switch (outcome) {
        case ThroughputOutcome::deadlocked: return "deadlocked";
        case ThroughputOutcome::unbounded: return "unbounded";
        case ThroughputOutcome::finite: return "finite";
    }
    return "unknown";
}

/// The part of the pipeline budget the passes so far have not consumed.
/// Throws BudgetExceeded up front when nothing is left, so a drained
/// budget cannot be reset to a fresh slice.
ExecutionBudget remaining_slice(const ExecutionBudget& total,
                                const ResourceUsage& used,
                                Clock::time_point started,
                                const std::string& next_pass) {
    ExecutionBudget slice;
    if (total.deadline) {
        const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - started);
        if (elapsed >= *total.deadline) {
            throw BudgetExceeded(BudgetCause::deadline,
                                 "pipeline deadline exhausted before pass '" +
                                     next_pass + "'");
        }
        slice.deadline = *total.deadline - elapsed;
    }
    if (total.max_steps) {
        if (used.steps >= *total.max_steps) {
            throw BudgetExceeded(BudgetCause::steps,
                                 "pipeline step budget exhausted before pass '" +
                                     next_pass + "'");
        }
        slice.max_steps = *total.max_steps - used.steps;
    }
    if (total.max_bytes) {
        if (used.accounted_bytes >= *total.max_bytes) {
            throw BudgetExceeded(BudgetCause::memory,
                                 "pipeline memory budget exhausted before pass '" +
                                     next_pass + "'");
        }
        slice.max_bytes = *total.max_bytes - used.accounted_bytes;
    }
    return slice;
}

[[noreturn]] void violation(const std::string& invocation, const std::string& what) {
    throw PipelineVerificationError("pass '" + invocation + "' violated its declaration: " +
                                    what);
}

/// Checks the pass's period contract: before/after are the graphs around
/// one changed pass.  Contracts quantify over consistent inputs; anything
/// else is outside their domain and skipped.
void check_period_contract(const Graph& before, const Graph& after,
                           const PassInvocation& step, const std::string& invocation) {
    const PeriodContract contract = step.pass->period_contract(step.params);
    if (contract == PeriodContract::none || !is_consistent(before) ||
        !is_consistent(after)) {
        return;
    }
    const auto pre = cached_throughput(before);
    const auto post = cached_throughput(after);
    switch (contract) {
        case PeriodContract::none:
            return;
        case PeriodContract::preserves:
            if (pre->outcome != post->outcome) {
                violation(invocation, std::string("claimed to preserve the period but "
                                                  "the outcome moved ") +
                                          outcome_name(pre->outcome) + " -> " +
                                          outcome_name(post->outcome));
            }
            if (pre->is_finite() && pre->period != post->period) {
                violation(invocation, "claimed to preserve the period but " +
                                          pre->period.to_string() + " became " +
                                          post->period.to_string());
            }
            return;
        case PeriodContract::scales_by_n: {
            // Proposition 2 is stated for homogeneous inputs; outside that
            // domain the contract makes no claim.
            if (!before.is_homogeneous()) {
                return;
            }
            const Int n = step.params.at("n");
            if (pre->outcome != post->outcome) {
                violation(invocation, std::string("claimed the period scales by n but "
                                                  "the outcome moved ") +
                                          outcome_name(pre->outcome) + " -> " +
                                          outcome_name(post->outcome));
            }
            if (pre->is_finite() && post->period != pre->period * Rational(n)) {
                violation(invocation,
                          "claimed the period scales by n=" + std::to_string(n) +
                              " but " + pre->period.to_string() + " became " +
                              post->period.to_string());
            }
            return;
        }
        case PeriodContract::not_faster:
            // Deadlock is the slowest outcome, so it is always admissible
            // after; unbounded after a finite period would mean a speedup.
            if (pre->is_finite()) {
                if (post->outcome == ThroughputOutcome::unbounded) {
                    violation(invocation, "claimed not-faster but a finite period "
                                          "became unbounded throughput");
                }
                if (post->is_finite() && post->period < pre->period) {
                    violation(invocation, "claimed not-faster but the period shrank " +
                                              pre->period.to_string() + " -> " +
                                              post->period.to_string());
                }
            }
            return;
    }
}

/// Recomputes one preserved analysis on `after` and compares it against the
/// value cached for `before`.  Returns false when the slot was not cached
/// (nothing to check), throws on a mismatch.
bool check_preserved_slot(const std::string& name, const Graph& before,
                          const Graph& after, const std::string& invocation) {
    const AnalysisManager& cache = *before.analyses();
    if (name == RepetitionVectorAnalysis::kName) {
        const auto cached = cache.cached<RepetitionVectorAnalysis>();
        if (!cached) {
            return false;
        }
        if (*cached != *after.analyses()->get<RepetitionVectorAnalysis>(after)) {
            violation(invocation, "preserved analysis 'repetition' changed");
        }
        return true;
    }
    if (name == ConsistencyAnalysis::kName) {
        const auto cached = cache.cached<ConsistencyAnalysis>();
        if (!cached) {
            return false;
        }
        if (*cached != *after.analyses()->get<ConsistencyAnalysis>(after)) {
            violation(invocation, "preserved analysis 'consistency' changed");
        }
        return true;
    }
    if (name == SequentialScheduleAnalysis::kName) {
        const auto cached = cache.cached<SequentialScheduleAnalysis>();
        if (!cached) {
            return false;
        }
        if (*cached != *after.analyses()->get<SequentialScheduleAnalysis>(after)) {
            violation(invocation, "preserved analysis 'schedule' changed");
        }
        return true;
    }
    if (name == LivenessAnalysis::kName) {
        const auto cached = cache.cached<LivenessAnalysis>();
        if (!cached) {
            return false;
        }
        if (*cached != *after.analyses()->get<LivenessAnalysis>(after)) {
            violation(invocation, "preserved analysis 'liveness' changed");
        }
        return true;
    }
    if (name == ThroughputAnalysis::kName) {
        const auto cached = cache.cached<ThroughputAnalysis>();
        if (!cached) {
            return false;
        }
        const auto recomputed = cached_throughput(after);
        if (cached->outcome != recomputed->outcome ||
            cached->period != recomputed->period ||
            cached->per_actor != recomputed->per_actor) {
            violation(invocation, "preserved analysis 'throughput' changed");
        }
        return true;
    }
    if (name == absint::TokenIntervalsAnalysis::kName) {
        const auto cached = cache.cached<absint::TokenIntervalsAnalysis>();
        if (!cached) {
            return false;
        }
        if (*cached != *after.analyses()->get<absint::TokenIntervalsAnalysis>(after)) {
            violation(invocation, "preserved analysis 'token-intervals' changed");
        }
        return true;
    }
    if (name == absint::ReachabilityAnalysis::kName) {
        const auto cached = cache.cached<absint::ReachabilityAnalysis>();
        if (!cached) {
            return false;
        }
        if (*cached != *after.analyses()->get<absint::ReachabilityAnalysis>(after)) {
            violation(invocation, "preserved analysis 'reachability' changed");
        }
        return true;
    }
    if (name == absint::BufferBoundsAnalysis::kName) {
        const auto cached = cache.cached<absint::BufferBoundsAnalysis>();
        if (!cached) {
            return false;
        }
        if (*cached != *after.analyses()->get<absint::BufferBoundsAnalysis>(after)) {
            violation(invocation, "preserved analysis 'buffer-bounds' changed");
        }
        return true;
    }
    // A pass naming an analysis the executor cannot recompute is itself a
    // declaration bug under verification.
    violation(invocation, "declares unknown preserved analysis '" + name + "'");
}

/// The declared preservation set as concrete slot names.
std::vector<std::string> preserved_names(const PassInvocation& step,
                                         const AnalysisManager& before) {
    const Preservation preservation = step.pass->preserved(step.params);
    if (!preservation.all) {
        return preservation.analyses;
    }
    std::vector<std::string> names;
    for (const AnalysisSlotStats& slot : before.stats()) {
        if (slot.cached) {
            names.push_back(slot.analysis);
        }
    }
    return names;
}

}  // namespace

PipelineRun PipelineExecutor::run(const Pipeline& pipeline, Graph graph) const {
    PipelineRun run;
    const Clock::time_point started = Clock::now();
    for (const PassInvocation& step : pipeline.steps) {
        PassReport report;
        report.invocation = step.to_string();

        // Snapshot the entry state: the copy shares the entry manager, so
        // verification can recompute "before" values lazily and adoption
        // can pull cached slots even after the pass replaced the graph.
        const Graph before = graph;

        std::optional<Governor> governor;
        std::optional<GovernorScope> scope;
        if (!options_.budget.unlimited()) {
            governor.emplace(
                remaining_slice(options_.budget, run.total, started, report.invocation),
                options_.token);
            scope.emplace(*governor);
        }
        const Clock::time_point pass_started = Clock::now();
        PassResult result = step.pass->run(graph, step.params, *before.analyses());
        report.used.wall_ms = std::chrono::duration<double, std::milli>(
                                  Clock::now() - pass_started)
                                  .count();
        if (governor) {
            const ResourceUsage used = governor->usage();
            report.used.steps = used.steps;
            report.used.accounted_bytes = used.accounted_bytes;
        }
        scope.reset();
        governor.reset();

        report.changed = result.changed;
        report.stats = std::move(result.stats);
        report.actors = graph.actor_count();
        report.channels = graph.channel_count();
        run.total.steps += report.used.steps;
        run.total.accounted_bytes += report.used.accounted_bytes;
        run.total.wall_ms += report.used.wall_ms;

        if (result.changed) {
            const std::vector<std::string> names = preserved_names(step, *before.analyses());
            if (options_.verify_each) {
                report.verified = true;
                check_period_contract(before, graph, step, report.invocation);
                for (const std::string& name : names) {
                    if (check_preserved_slot(name, before, graph, report.invocation)) {
                        report.carried.push_back(name);
                    }
                }
            } else {
                if (!names.empty()) {
                    graph.analyses()->adopt(*before.analyses(), names);
                    for (const std::string& name : names) {
                        if (before.analyses()->has(name)) {
                            report.carried.push_back(name);
                        }
                    }
                }
                if (result.delta) {
                    // Whole-graph rewrite with a typed delta: everything the
                    // preservation list could not claim outright gets a
                    // chance to survive through its refine hook (adopt()
                    // filled its slots first; refine_from only fills what is
                    // still empty).
                    graph.analyses()->refine_from(*before.analyses(), graph,
                                                  *result.delta);
                    for (const AnalysisSlotStats& slot : graph.analyses()->stats()) {
                        report.kept += slot.kept;
                        report.refined += slot.refined;
                    }
                }
            }
        }

        if (options_.verify_each && options_.verify_hook) {
            report.verified = true;
            options_.verify_hook(graph, report);
        }
        if (options_.after_pass) {
            options_.after_pass(graph, report);
        }
        run.reports.push_back(std::move(report));
    }
    run.graph = std::move(graph);
    return run;
}

}  // namespace sdf
