// executor.hpp — instrumented execution of pass pipelines.
//
// The PipelineExecutor runs a parsed Pipeline over a Graph and does the
// three things a bare chain of function calls would not:
//
//   * ANALYSIS THREADING.  After a pass that reports `changed`, the new
//     graph's AnalysisManager adopts the slots the pass declared preserved
//     from the manager that entered the pass, so e.g. the repetition
//     vector survives `selfloops` and the full throughput result survives
//     `retiming` without recomputation.
//
//   * BUDGET SLICES.  An ExecutionBudget on the options governs the WHOLE
//     pipeline: before each pass the executor installs a Governor carrying
//     exactly the remaining budget (deadline, steps, bytes), so a pass can
//     never spend what an earlier pass already consumed.  Per-pass usage
//     lands in the PassReport; an exhausted budget raises BudgetExceeded
//     exactly like the governed analyses do.
//
//   * VERIFICATION.  With verify_each set, every `changed` pass is checked
//     against its own declarations: each preserved analysis is recomputed
//     on the result and compared to the cached value (instead of being
//     adopted), and the period contract is checked against the symbolic
//     throughput route.  A violation raises PipelineVerificationError —
//     this is what makes over-claiming passes (see selftest-unsound)
//     impossible to ship quietly.
//
// Hooks: after_pass fires after every pass (dump-after); verify_hook fires
// after every pass when verify_each is set, for callers that want to layer
// additional checks (the CLI runs the src/verify oracle registry there —
// the executor itself cannot, since sdfred_verify links sdfred_pass).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "pass/pipeline.hpp"
#include "robust/budget.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// A pass's declared invariant failed under --verify-each.
class PipelineVerificationError : public Error {
public:
    explicit PipelineVerificationError(const std::string& what) : Error(what) {}
};

/// What one pass did, spent and carried.
struct PassReport {
    std::string invocation;  ///< canonical form, e.g. "unfold(2)"
    bool changed = false;
    std::vector<std::pair<std::string, Int>> stats;  ///< pass counters
    ResourceUsage used;      ///< steps/bytes only when a budget governs
    std::size_t actors = 0;  ///< graph size after the pass
    std::size_t channels = 0;
    /// Analyses carried across the pass: adopted from the pre-pass manager
    /// (normal mode) or recomputed and checked (verify mode).
    std::vector<std::string> carried;
    /// Slots that survived the pass's MutationLog delta (PassResult::delta)
    /// unchanged / updated in place, summed over the post-pass manager.
    std::uint64_t kept = 0;
    std::uint64_t refined = 0;
    bool verified = false;  ///< verify-each checks ran for this pass
};

/// Executor configuration.
struct ExecutorOptions {
    /// Budget for the whole pipeline; unlimited (default) installs no
    /// governor.
    ExecutionBudget budget;
    /// Cancellation flag checked by the per-pass governors (no-op while the
    /// budget is unlimited, which installs no governor).  A supervisor that
    /// cancels it stops the pipeline at the next checkpoint with
    /// BudgetExceeded{cancelled}.
    CancellationToken token;
    /// Check every changed pass against its declarations (see file
    /// comment); preserved analyses are recomputed, never adopted.
    bool verify_each = false;
    /// Fires after every pass with the current graph and its report.
    std::function<void(const Graph&, const PassReport&)> after_pass;
    /// Fires after every pass when verify_each is set; may throw
    /// PipelineVerificationError to fail the pipeline.
    std::function<void(const Graph&, const PassReport&)> verify_hook;
};

/// The outcome of a pipeline run.
struct PipelineRun {
    Graph graph;  ///< the final graph
    std::vector<PassReport> reports;
    ResourceUsage total;  ///< summed across passes
};

class PipelineExecutor {
public:
    PipelineExecutor() = default;
    explicit PipelineExecutor(ExecutorOptions options)
        : options_(std::move(options)) {}

    /// Runs the pipeline over `graph`.  Throws PipelineVerificationError on
    /// a violated declaration (verify_each), BudgetExceeded on an exhausted
    /// budget, and the library's typed errors on domain violations.
    [[nodiscard]] PipelineRun run(const Pipeline& pipeline, Graph graph) const;

private:
    ExecutorOptions options_;
};

}  // namespace sdf
