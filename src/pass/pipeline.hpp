// pipeline.hpp — textual pipeline specifications.
//
// A pipeline spec is a comma-separated list of pass invocations:
//
//     spec  := pass (',' pass)*
//     pass  := NAME [ '(' args ')' ]
//     args  := ε | arg (',' arg)*
//     arg   := INT | NAME '=' INT
//
// e.g.  "selfloops,prune,unfold(2),hsdf-reduced"
//       "selfloops(tokens=2), prune"
//
// Positional arguments bind to the pass's declared parameters in order;
// keyword arguments may follow positionals but not precede them.  Every
// declared parameter without a default is required.  Whitespace around
// names, commas and parentheses is ignored.
//
// Parse failures raise PipelineParseError carrying a typed kind and the
// character position, so the CLI can point at the offending token and
// tests can assert the failure class, not a message substring.
//
// to_string() renders the CANONICAL form: passes joined by ',', defaulted
// parameters omitted, a single shown parameter positional ("unfold(2)"),
// several shown parameters as "k=v" sorted by name.  parse(to_string(p))
// round-trips for every valid pipeline.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "base/errors.hpp"
#include "pass/registry.hpp"

namespace sdf {

/// What class of mistake a pipeline spec contains.
enum class PipelineErrorKind {
    empty,                ///< no passes at all
    syntax,               ///< malformed structure (unbalanced '(', stray ',')
    unknown_pass,         ///< a name the registry does not resolve
    malformed_parameter,  ///< non-integer value, unknown key, arity/bounds
    duplicate_parameter,  ///< the same parameter bound twice
};

/// Stable lower-case name ("unknown-pass", ...) for messages and tests.
const char* pipeline_error_kind_name(PipelineErrorKind kind);

/// Typed parse failure; position is a 0-based character offset into the
/// spec string (the start of the offending token).
class PipelineParseError : public Error {
public:
    PipelineParseError(PipelineErrorKind kind, std::size_t position,
                       const std::string& what)
        : Error(what), kind_(kind), position_(position) {}
    [[nodiscard]] PipelineErrorKind kind() const { return kind_; }
    [[nodiscard]] std::size_t position() const { return position_; }

private:
    PipelineErrorKind kind_;
    std::size_t position_;
};

/// One resolved pass invocation: the pass plus a full parameter set
/// (defaults filled in).
struct PassInvocation {
    const Pass* pass = nullptr;
    PassParams params;

    /// Canonical rendering, e.g. "unfold(2)" or "selfloops" (defaults
    /// omitted).
    [[nodiscard]] std::string to_string() const;
};

/// A parsed pipeline.
struct Pipeline {
    std::vector<PassInvocation> steps;

    /// Canonical spec; parse(to_string()) reproduces the pipeline.
    [[nodiscard]] std::string to_string() const;
};

/// Parses `spec` against `registry`; throws PipelineParseError.
Pipeline parse_pipeline(const std::string& spec,
                        const PassRegistry& registry = PassRegistry::instance());

}  // namespace sdf
