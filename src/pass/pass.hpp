// pass.hpp — the transformation pass interface.
//
// Every reduction of the paper (self-loop closing, pruning, retiming, the
// two HSDF constructions, abstraction, unfolding, the scenario envelope)
// is exposed as a named Pass: a stateless object that rewrites a Graph and
// reports what it did.  Passes compose into pipelines (pipeline.hpp) run by
// the PipelineExecutor (executor.hpp), which threads the graph's
// AnalysisManager through the sequence so analyses a pass declares it
// PRESERVES survive the rewrite instead of being recomputed.
//
// Two declarations make a pass more than a function pointer, and both are
// *checkable claims*, not trusted metadata:
//
//   preserved()        names the AnalysisManager slots whose cached values
//                      remain valid results for the rewritten graph.  The
//                      executor carries them across; under --verify-each it
//                      recomputes each one on the result and fails loudly
//                      on any mismatch, so an over-claiming pass cannot
//                      silently poison the cache.
//
//   period_contract()  states how the iteration period λ may move:
//                      `preserves` (prune, retiming, both HSDF forms — the
//                      paper's exactness results), `scales_by_n` (unfolding,
//                      Proposition 2), `not_faster` (conservative
//                      abstractions, Theorem 1 direction), or `none`.
//                      --verify-each checks the contract against the
//                      symbolic throughput route after every step.
//
// The hidden `selftest-unsound` pass (passes.cpp) deliberately violates
// both claims; tests assert the executor catches it.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sdf/analysis_manager.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// One declared parameter of a pass.  All parameters are integer-valued;
/// a parameter without a default is required.
struct PassParamSpec {
    std::string name;
    std::string summary;
    std::optional<Int> default_value;  ///< nullopt: caller must supply it
    std::optional<Int> minimum;        ///< inclusive lower bound, if any
};

/// Parsed parameter values for one pass invocation.  The pipeline parser
/// fills every declared parameter (defaults included), so passes may use
/// at() unconditionally.
class PassParams {
public:
    void set(const std::string& name, Int value);
    [[nodiscard]] std::optional<Int> find(const std::string& name) const;
    /// The value of a declared parameter; throws Error when absent (which
    /// indicates a registry/parser bug, not user input).
    [[nodiscard]] Int at(const std::string& name) const;
    [[nodiscard]] const std::vector<std::pair<std::string, Int>>& entries() const {
        return entries_;
    }

private:
    std::vector<std::pair<std::string, Int>> entries_;
};

/// What a pass did to the graph.
struct PassResult {
    /// False when the graph was provably left untouched (its AnalysisManager
    /// then survives wholesale, no preservation claim needed).
    bool changed = false;
    /// Pass-specific counters for reports, e.g. {"removed", 3}.
    std::vector<std::pair<std::string, Int>> stats;
    /// Optional typed delta for whole-graph rewrites: when a pass replaces
    /// the graph by assignment (which resets its AnalysisManager) but can
    /// DESCRIBE the rewrite as a MutationLog over stable actor/channel ids,
    /// the executor refines the pre-pass cache through it instead of only
    /// adopting the declared-preserved slots — so e.g. a retiming's token
    /// moves keep a still-admissible schedule the preservation list had to
    /// give up.  Passes mutating through the Graph mutators need none: each
    /// mutator already refines.
    std::optional<MutationLog> delta;
};

/// The analyses (AnalysisManager slot names) whose cached results stay
/// valid across a pass.
struct Preservation {
    bool all = false;                   ///< every slot survives (e.g. prune)
    std::vector<std::string> analyses;  ///< named slots, when !all

    [[nodiscard]] static Preservation none() { return {}; }
    [[nodiscard]] static Preservation everything() { return {true, {}}; }
    [[nodiscard]] static Preservation of(std::vector<std::string> names) {
        return {false, std::move(names)};
    }
};

/// How a pass may move the iteration period λ of a consistent input.
enum class PeriodContract {
    none,         ///< no claim (e.g. the sdf-abstraction fold changes scale)
    preserves,    ///< λ(after) == λ(before), outcome included
    scales_by_n,  ///< λ(after) == n·λ(before) for the pass's `n` parameter
                  ///< (checked on homogeneous inputs, Proposition 2's domain)
    not_faster,   ///< λ(after) >= λ(before): conservative, Theorem 1 style
};

/// Stable lower-case name ("preserves", "scales-by-n", ...) for reports.
const char* period_contract_name(PeriodContract contract);

/// A registered transformation.  Implementations are stateless: run() may
/// be called concurrently on distinct graphs.
class Pass {
public:
    virtual ~Pass() = default;

    /// Stable kebab-case identifier used in pipeline specs.
    [[nodiscard]] virtual std::string name() const = 0;
    /// One-line description for the catalogue.
    [[nodiscard]] virtual std::string summary() const = 0;
    /// Declared parameters, in positional order.
    [[nodiscard]] virtual std::vector<PassParamSpec> params() const { return {}; }
    /// Hidden passes resolve in pipeline specs but are left out of
    /// catalogues (the unsound self-test pass).
    [[nodiscard]] virtual bool hidden() const { return false; }

    /// Analyses that survive this invocation (may depend on parameters).
    [[nodiscard]] virtual Preservation preserved(const PassParams&) const {
        return Preservation::none();
    }
    /// The period contract of this invocation (may depend on parameters).
    [[nodiscard]] virtual PeriodContract period_contract(const PassParams&) const {
        return PeriodContract::none;
    }

    /// Rewrites `graph` in place (typically by whole-graph assignment) and
    /// reports what changed.  `analyses` is the manager that entered the
    /// pass — the one the pre-rewrite graph carries — usable for cheap
    /// queries before mutating.  Domain violations (inconsistent input for
    /// a conversion, non-homogeneous input for retiming) surface as the
    /// library's typed errors.
    virtual PassResult run(Graph& graph, const PassParams& params,
                           AnalysisManager& analyses) const = 0;
};

}  // namespace sdf
