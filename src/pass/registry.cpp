#include "pass/registry.hpp"

#include <algorithm>

#include "base/errors.hpp"

namespace sdf {

void PassParams::set(const std::string& name, Int value) {
    for (auto& [key, existing] : entries_) {
        if (key == name) {
            existing = value;
            return;
        }
    }
    entries_.emplace_back(name, value);
}

std::optional<Int> PassParams::find(const std::string& name) const {
    for (const auto& [key, value] : entries_) {
        if (key == name) {
            return value;
        }
    }
    return std::nullopt;
}

Int PassParams::at(const std::string& name) const {
    const std::optional<Int> value = find(name);
    require(value.has_value(), "pass parameter '" + name + "' was never set");
    return *value;
}

const char* period_contract_name(PeriodContract contract) {
    switch (contract) {
        case PeriodContract::none: return "none";
        case PeriodContract::preserves: return "preserves";
        case PeriodContract::scales_by_n: return "scales-by-n";
        case PeriodContract::not_faster: return "not-faster";
    }
    return "unknown";
}

const PassRegistry& PassRegistry::instance() {
    static const PassRegistry registry = [] {
        PassRegistry r;
        register_builtin_passes(r);
        return r;
    }();
    return registry;
}

void PassRegistry::add(std::unique_ptr<Pass> pass) {
    require(pass != nullptr, "cannot register a null pass");
    require(find(pass->name()) == nullptr,
            "pass '" + pass->name() + "' registered twice");
    passes_.push_back(std::move(pass));
}

const Pass* PassRegistry::find(const std::string& name) const {
    for (const auto& pass : passes_) {
        if (pass->name() == name) {
            return pass.get();
        }
    }
    return nullptr;
}

std::vector<const Pass*> PassRegistry::list(bool include_hidden) const {
    std::vector<const Pass*> result;
    for (const auto& pass : passes_) {
        if (include_hidden || !pass->hidden()) {
            result.push_back(pass.get());
        }
    }
    std::sort(result.begin(), result.end(),
              [](const Pass* a, const Pass* b) { return a->name() < b->name(); });
    return result;
}

}  // namespace sdf
