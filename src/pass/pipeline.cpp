#include "pass/pipeline.hpp"

#include <algorithm>
#include <cctype>

#include "base/string_util.hpp"

namespace sdf {

namespace {

bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '_';
}

/// Character-level cursor over the spec with position-carrying errors.
struct Cursor {
    const std::string& spec;
    std::size_t i = 0;

    [[nodiscard]] bool done() const { return i >= spec.size(); }
    [[nodiscard]] char peek() const { return spec[i]; }

    void skip_ws() {
        while (!done() && std::isspace(static_cast<unsigned char>(peek())) != 0) {
            ++i;
        }
    }

    std::string read_name() {
        const std::size_t start = i;
        while (!done() && is_name_char(peek())) {
            ++i;
        }
        return spec.substr(start, i - start);
    }

    /// A raw argument token: everything up to the next ',', ')' or '=',
    /// trimmed of surrounding whitespace.
    std::string read_token() {
        const std::size_t start = i;
        while (!done() && peek() != ',' && peek() != ')' && peek() != '=') {
            ++i;
        }
        std::size_t end = i;
        std::size_t begin = start;
        while (begin < end &&
               std::isspace(static_cast<unsigned char>(spec[begin])) != 0) {
            ++begin;
        }
        while (end > begin &&
               std::isspace(static_cast<unsigned char>(spec[end - 1])) != 0) {
            --end;
        }
        return spec.substr(begin, end - begin);
    }
};

[[noreturn]] void fail(PipelineErrorKind kind, std::size_t position,
                       const std::string& message) {
    throw PipelineParseError(kind, position,
                             message + " (at position " + std::to_string(position) +
                                 ")");
}

std::string known_pass_names(const PassRegistry& registry) {
    std::string names;
    for (const Pass* pass : registry.list()) {
        if (!names.empty()) {
            names += ", ";
        }
        names += pass->name();
    }
    return names;
}

const PassParamSpec* find_spec(const std::vector<PassParamSpec>& specs,
                               const std::string& name) {
    for (const PassParamSpec& spec : specs) {
        if (spec.name == name) {
            return &spec;
        }
    }
    return nullptr;
}

void bind(const Pass& pass, const PassParamSpec& spec, const std::string& raw,
          std::size_t position, PassParams& params,
          std::vector<std::string>& bound) {
    if (std::find(bound.begin(), bound.end(), spec.name) != bound.end()) {
        fail(PipelineErrorKind::duplicate_parameter, position,
             "parameter '" + spec.name + "' of pass '" + pass.name() +
                 "' bound twice");
    }
    const std::optional<Int> value = parse_int(raw);
    if (!value) {
        fail(PipelineErrorKind::malformed_parameter, position,
             "parameter '" + spec.name + "' of pass '" + pass.name() +
                 "' expects an integer, got '" + raw + "'");
    }
    if (spec.minimum && *value < *spec.minimum) {
        fail(PipelineErrorKind::malformed_parameter, position,
             "parameter '" + spec.name + "' of pass '" + pass.name() +
                 "' must be >= " + std::to_string(*spec.minimum) + ", got " +
                 std::to_string(*value));
    }
    params.set(spec.name, *value);
    bound.push_back(spec.name);
}

/// Parses the argument list after '(' up to and including ')'.
void parse_args(Cursor& cursor, const Pass& pass, PassParams& params,
                std::vector<std::string>& bound) {
    const std::vector<PassParamSpec> specs = pass.params();
    std::size_t next_positional = 0;
    bool saw_keyword = false;
    cursor.skip_ws();
    if (!cursor.done() && cursor.peek() == ')') {
        ++cursor.i;
        return;
    }
    while (true) {
        cursor.skip_ws();
        const std::size_t arg_start = cursor.i;
        const std::string token = cursor.read_token();
        if (cursor.done()) {
            fail(PipelineErrorKind::syntax, arg_start,
                 "unterminated argument list of pass '" + pass.name() +
                     "': expected ')'");
        }
        if (cursor.peek() == '=') {
            ++cursor.i;  // consume '='
            if (token.empty()) {
                fail(PipelineErrorKind::syntax, arg_start,
                     "expected a parameter name before '='");
            }
            const PassParamSpec* spec = find_spec(specs, token);
            if (spec == nullptr) {
                fail(PipelineErrorKind::malformed_parameter, arg_start,
                     "pass '" + pass.name() + "' has no parameter '" + token + "'");
            }
            cursor.skip_ws();
            const std::size_t value_start = cursor.i;
            const std::string value = cursor.read_token();
            if (cursor.done() || cursor.peek() == '=') {
                fail(PipelineErrorKind::syntax, value_start,
                     "malformed value for parameter '" + token + "'");
            }
            bind(pass, *spec, value, value_start, params, bound);
            saw_keyword = true;
        } else {
            if (saw_keyword) {
                fail(PipelineErrorKind::malformed_parameter, arg_start,
                     "positional argument of pass '" + pass.name() +
                         "' after a keyword argument");
            }
            if (token.empty()) {
                fail(PipelineErrorKind::syntax, arg_start,
                     "expected an argument of pass '" + pass.name() + "'");
            }
            if (next_positional >= specs.size()) {
                fail(PipelineErrorKind::malformed_parameter, arg_start,
                     "pass '" + pass.name() + "' takes " +
                         std::to_string(specs.size()) + " parameter(s), got more");
            }
            bind(pass, specs[next_positional], token, arg_start, params, bound);
            ++next_positional;
        }
        cursor.skip_ws();
        if (cursor.done()) {
            fail(PipelineErrorKind::syntax, cursor.i,
                 "unterminated argument list of pass '" + pass.name() +
                     "': expected ')'");
        }
        if (cursor.peek() == ')') {
            ++cursor.i;
            return;
        }
        if (cursor.peek() != ',') {
            fail(PipelineErrorKind::syntax, cursor.i,
                 std::string("expected ',' or ')' in argument list, got '") +
                     cursor.peek() + "'");
        }
        ++cursor.i;  // consume ','
    }
}

}  // namespace

const char* pipeline_error_kind_name(PipelineErrorKind kind) {
    switch (kind) {
        case PipelineErrorKind::empty: return "empty";
        case PipelineErrorKind::syntax: return "syntax";
        case PipelineErrorKind::unknown_pass: return "unknown-pass";
        case PipelineErrorKind::malformed_parameter: return "malformed-parameter";
        case PipelineErrorKind::duplicate_parameter: return "duplicate-parameter";
    }
    return "unknown";
}

Pipeline parse_pipeline(const std::string& spec, const PassRegistry& registry) {
    Cursor cursor{spec};
    cursor.skip_ws();
    if (cursor.done()) {
        fail(PipelineErrorKind::empty, 0, "empty pipeline: expected at least one pass");
    }
    Pipeline pipeline;
    while (true) {
        cursor.skip_ws();
        const std::size_t name_start = cursor.i;
        const std::string name = cursor.read_name();
        if (name.empty()) {
            fail(PipelineErrorKind::syntax, name_start,
                 cursor.done() ? std::string("expected a pass name after ','")
                               : "expected a pass name, got '" +
                                     std::string(1, cursor.peek()) + "'");
        }
        const Pass* pass = registry.find(name);
        if (pass == nullptr) {
            fail(PipelineErrorKind::unknown_pass, name_start,
                 "unknown pass '" + name + "' (known: " + known_pass_names(registry) +
                     ")");
        }
        PassInvocation invocation;
        invocation.pass = pass;
        std::vector<std::string> bound;
        cursor.skip_ws();
        if (!cursor.done() && cursor.peek() == '(') {
            ++cursor.i;
            parse_args(cursor, *pass, invocation.params, bound);
        }
        // Fill defaults; a missing required parameter is the user's error.
        for (const PassParamSpec& param : pass->params()) {
            if (std::find(bound.begin(), bound.end(), param.name) != bound.end()) {
                continue;
            }
            if (!param.default_value) {
                fail(PipelineErrorKind::malformed_parameter, name_start,
                     "pass '" + pass->name() + "' requires parameter '" + param.name +
                         "'");
            }
            invocation.params.set(param.name, *param.default_value);
        }
        pipeline.steps.push_back(std::move(invocation));
        cursor.skip_ws();
        if (cursor.done()) {
            return pipeline;
        }
        if (cursor.peek() != ',') {
            fail(PipelineErrorKind::syntax, cursor.i,
                 std::string("expected ',' between passes, got '") + cursor.peek() +
                     "'");
        }
        ++cursor.i;  // consume ','
    }
}

std::string PassInvocation::to_string() const {
    // Canonical form: defaulted parameters are omitted; one shown parameter
    // prints positionally, several print as sorted "k=v".
    std::vector<std::pair<std::string, Int>> shown;
    for (const PassParamSpec& spec : pass->params()) {
        const Int value = params.at(spec.name);
        if (!spec.default_value || *spec.default_value != value) {
            shown.emplace_back(spec.name, value);
        }
    }
    if (shown.empty()) {
        return pass->name();
    }
    if (shown.size() == 1) {
        return pass->name() + "(" + std::to_string(shown.front().second) + ")";
    }
    std::sort(shown.begin(), shown.end());
    std::string rendered = pass->name() + "(";
    for (std::size_t k = 0; k < shown.size(); ++k) {
        if (k > 0) {
            rendered += ",";
        }
        rendered += shown[k].first + "=" + std::to_string(shown[k].second);
    }
    return rendered + ")";
}

std::string Pipeline::to_string() const {
    std::string rendered;
    for (const PassInvocation& step : steps) {
        if (!rendered.empty()) {
            rendered += ",";
        }
        rendered += step.to_string();
    }
    return rendered;
}

}  // namespace sdf
