// passes.cpp — the built-in pass set: every reduction of the paper wrapped
// behind the Pass interface, with its preservation set and period contract
// made explicit (and therefore checkable by --verify-each).
//
// Soundness notes per pass live next to its preserved() — each claim is an
// argument about the transformation, not about the current implementation
// of the analysis, because "preserved" means compute(after) == compute(before)
// for the deterministic analysis functions.
#include <string>
#include <utility>
#include <vector>

#include "absint/reachability.hpp"
#include "absint/token_intervals.hpp"
#include "analysis/throughput.hpp"
#include "pass/registry.hpp"
#include "sdf/repetition.hpp"
#include "sdf/schedule.hpp"
#include "transform/abstraction.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/hsdf_reduced.hpp"
#include "transform/prune.hpp"
#include "transform/retiming.hpp"
#include "transform/scenarios.hpp"
#include "transform/sdf_abstraction.hpp"
#include "transform/selfloops.hpp"
#include "transform/unfold.hpp"

namespace sdf {

namespace {

Int count_actors_without_self_loop(const Graph& graph) {
    std::vector<bool> has_loop(graph.actor_count(), false);
    for (const Channel& channel : graph.channels()) {
        if (channel.is_self_loop()) {
            has_loop[channel.src] = true;
        }
    }
    Int missing = 0;
    for (const bool loop : has_loop) {
        missing += loop ? 0 : 1;
    }
    return missing;
}

/// selfloops(tokens=1) — close the graph by bounding auto-concurrency:
/// every actor without a self-loop gains one carrying `tokens` tokens.
class SelfLoopsPass final : public Pass {
public:
    std::string name() const override { return "selfloops"; }
    std::string summary() const override {
        return "add a self-loop (auto-concurrency bound) to every open actor";
    }
    std::vector<PassParamSpec> params() const override {
        return {{"tokens", "initial tokens per added self-loop", Int{1}, Int{1}}};
    }
    Preservation preserved(const PassParams&) const override {
        // A self-loop channel has production == consumption, so the balance
        // equations (and with them the repetition vector and consistency)
        // are untouched.  With tokens >= 1 (enforced by the parameter
        // minimum) each firing returns its token, so an admissible schedule
        // still exists: liveness survives.  The added loops are (a, a, 1, 1,
        // t >= 1): their can-fire constraint t >= 1 always holds and their
        // firing bound t + N(a) never binds, so the actor-indexed
        // reachability fixpoint is bit-identical.  The period generally
        // GROWS (serialised firings), so nothing timed is claimed.  The
        // channel-indexed absint slots gain entries and are NOT preserved.
        return Preservation::of({RepetitionVectorAnalysis::kName,
                                 ConsistencyAnalysis::kName, LivenessAnalysis::kName,
                                 absint::ReachabilityAnalysis::kName});
    }
    PeriodContract period_contract(const PassParams&) const override {
        return PeriodContract::not_faster;
    }
    PassResult run(Graph& graph, const PassParams& params,
                   AnalysisManager&) const override {
        const Int missing = count_actors_without_self_loop(graph);
        if (missing == 0) {
            return {false, {{"added", 0}}, {}};
        }
        graph = add_self_loops(graph, params.at("tokens"));
        return {true, {{"added", missing}}, {}};
    }
};

/// prune — drop channels made redundant by a tighter parallel channel
/// (the paper's reduction that motivates the reduced HSDF's size win).
class PrunePass final : public Pass {
public:
    std::string name() const override { return "prune"; }
    std::string summary() const override {
        return "remove channels whose constraint another channel subsumes";
    }
    Preservation preserved(const PassParams&) const override {
        // A pruned channel is redundant by construction: every execution
        // admissible before is admissible after and vice versa.  Actor ids,
        // rates and times are untouched, so every actor-level analysis —
        // including the greedy schedule (enabledness is pointwise identical)
        // and the timed throughput result — recomputes to the same value.
        // Reachability too: a redundant channel (same src/dst/p/c, more
        // tokens) contributes constraints implied by its tighter twin, so
        // the fixpoint never moves when it goes.  NOT everything(), though:
        // the channel-INDEXED absint slots (token-intervals, buffer-bounds)
        // see the surviving channels renumbered and do not carry over.
        return Preservation::of({RepetitionVectorAnalysis::kName,
                                 ConsistencyAnalysis::kName,
                                 SequentialScheduleAnalysis::kName,
                                 LivenessAnalysis::kName, ThroughputAnalysis::kName,
                                 absint::ReachabilityAnalysis::kName});
    }
    PeriodContract period_contract(const PassParams&) const override {
        return PeriodContract::preserves;
    }
    PassResult run(Graph& graph, const PassParams&, AnalysisManager&) const override {
        const Int redundant = static_cast<Int>(count_redundant_channels(graph));
        if (redundant == 0) {
            return {false, {{"removed", 0}}, {}};
        }
        graph = prune_redundant_channels(graph);
        return {true, {{"removed", redundant}}, {}};
    }
};

/// retiming — Leiserson–Saxe period minimisation of a homogeneous graph.
class RetimingPass final : public Pass {
public:
    std::string name() const override { return "retiming"; }
    std::string summary() const override {
        return "re-pipeline a homogeneous graph, minimising the token-free path";
    }
    Preservation preserved(const PassParams&) const override {
        // A legal retiming preserves every cycle's token count: liveness,
        // consistency and the (all-ones) repetition vector survive, and so
        // does the iteration period — hence the full throughput result.
        // The token DISTRIBUTION moves, so the greedy schedule does not.
        return Preservation::of({RepetitionVectorAnalysis::kName,
                                 ConsistencyAnalysis::kName, LivenessAnalysis::kName,
                                 ThroughputAnalysis::kName});
    }
    PeriodContract period_contract(const PassParams&) const override {
        return PeriodContract::preserves;
    }
    PassResult run(Graph& graph, const PassParams&, AnalysisManager&) const override {
        RetimingResult result = minimize_token_free_path(graph);
        bool moved = false;
        for (const Int lag : result.lag) {
            moved = moved || lag != 0;
        }
        if (!moved) {
            return {false, {{"token-free-path", result.period}}, {}};
        }
        // A retiming only moves tokens between the SAME channels, so the
        // whole rewrite is expressible as a MutationLog of initial_tokens
        // events over stable ids — letting the executor refine the slots
        // the preservation list above had to give up (the schedule slot
        // re-validates against the new distribution instead of dropping).
        MutationLog delta;
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            const Int before = graph.channel(c).initial_tokens;
            const Int after = result.graph.channel(c).initial_tokens;
            if (before == after) {
                continue;
            }
            MutationEvent event;
            event.kind = MutationKind::initial_tokens;
            event.id = c;
            event.old_a = before;
            event.new_a = after;
            delta.push(event);
        }
        graph = std::move(result.graph);
        PassResult outcome{true, {{"token-free-path", result.period}}, {}};
        outcome.delta = std::move(delta);
        return outcome;
    }
};

/// hsdf-classic — the baseline expansion of [11, 15]: q(a) firing copies.
class HsdfClassicPass final : public Pass {
public:
    std::string name() const override { return "hsdf-classic"; }
    std::string summary() const override {
        return "classical HSDF expansion (one actor per firing)";
    }
    PeriodContract period_contract(const PassParams&) const override {
        return PeriodContract::preserves;
    }
    PassResult run(Graph& graph, const PassParams&, AnalysisManager&) const override {
        Graph expanded = to_hsdf_classic(graph).graph;
        const Int copies = static_cast<Int>(expanded.actor_count());
        graph = std::move(expanded);
        return {true, {{"copies", copies}}, {}};
    }
};

/// hsdf-reduced — the paper's Figure 4 construction from the symbolic
/// iteration matrix: one actor per initial token (plus muxes).
class HsdfReducedPass final : public Pass {
public:
    std::string name() const override { return "hsdf-reduced"; }
    std::string summary() const override {
        return "reduced HSDF from the symbolic iteration matrix (Figure 4)";
    }
    PeriodContract period_contract(const PassParams&) const override {
        return PeriodContract::preserves;
    }
    PassResult run(Graph& graph, const PassParams&, AnalysisManager&) const override {
        Graph reduced = to_hsdf_reduced(graph);
        const Int actors = static_cast<Int>(reduced.actor_count());
        graph = std::move(reduced);
        return {true, {{"actors", actors}}, {}};
    }
};

/// abstraction — Definition 4 applied via the name-suffix grouping
/// heuristic; conservative by Theorem 1.
class AbstractionPass final : public Pass {
public:
    std::string name() const override { return "abstraction"; }
    std::string summary() const override {
        return "Definition 4 abstraction grouping actors by name suffix";
    }
    PeriodContract period_contract(const PassParams&) const override {
        return PeriodContract::not_faster;
    }
    PassResult run(Graph& graph, const PassParams&, AnalysisManager&) const override {
        Graph abstracted = abstract_graph(graph, abstraction_by_name_suffix(graph));
        const Int actors = static_cast<Int>(abstracted.actor_count());
        graph = std::move(abstracted);
        return {true, {{"actors", actors}}, {}};
    }
};

/// sdf-abstraction — the multi-rate extension: classical expansion followed
/// by re-grouping the firing copies.  The fold factor N changes the time
/// scale (tau >= q·tau_abs/N), so no direct period contract holds.
class SdfAbstractionPass final : public Pass {
public:
    std::string name() const override { return "sdf-abstraction"; }
    std::string summary() const override {
        return "abstract a multi-rate graph back to its own shape (fold N)";
    }
    PassResult run(Graph& graph, const PassParams&, AnalysisManager&) const override {
        SdfAbstraction result = abstract_sdf(graph);
        graph = std::move(result.abstract);
        return {true, {{"fold", result.fold}}, {}};
    }
};

/// unfold(n) — Definition 5 unfolding; Proposition 2: the period of the
/// unfolded graph is n times the original's (checked on homogeneous input).
class UnfoldPass final : public Pass {
public:
    std::string name() const override { return "unfold"; }
    std::string summary() const override {
        return "Definition 5 unfolding by a factor n";
    }
    std::vector<PassParamSpec> params() const override {
        return {{"n", "unfolding factor", std::nullopt, Int{1}}};
    }
    PeriodContract period_contract(const PassParams&) const override {
        return PeriodContract::scales_by_n;
    }
    PassResult run(Graph& graph, const PassParams& params,
                   AnalysisManager&) const override {
        const Int n = params.at("n");
        if (n == 1) {
            return {false, {{"n", 1}}, {}};
        }
        Graph unfolded = unfold(graph, n);
        const Int actors = static_cast<Int>(unfolded.actor_count());
        graph = std::move(unfolded);
        return {true, {{"n", n}, {"actors", actors}}, {}};
    }
};

/// scenario-envelope — the scenario machinery applied to the degenerate
/// single-scenario set {this graph}: the envelope equals the graph's own
/// iteration matrix, so the result is its Figure 4 HSDF via an independent
/// code path (a built-in cross-check of the two constructions).
class ScenarioEnvelopePass final : public Pass {
public:
    std::string name() const override { return "scenario-envelope"; }
    std::string summary() const override {
        return "worst-case envelope HSDF of the one-scenario set {graph}";
    }
    PeriodContract period_contract(const PassParams&) const override {
        return PeriodContract::preserves;
    }
    PassResult run(Graph& graph, const PassParams&, AnalysisManager&) const override {
        const std::string name = graph.name().empty() ? "scenario" : graph.name();
        const ScenarioAnalysis analysis = analyse_scenarios({{name, graph}});
        graph = scenario_envelope_hsdf(analysis, name + "_envelope");
        return {true, {{"scenarios", 1}}, {}};
    }
};

/// selftest-unsound — hidden pass that doubles every execution time while
/// CLAIMING to preserve the period and the cached throughput.  Exists so
/// the test suite and `pipeline --verify-each` can demonstrate that false
/// declarations are caught, not trusted.
class SelfTestUnsoundPass final : public Pass {
public:
    std::string name() const override { return "selftest-unsound"; }
    std::string summary() const override {
        return "deliberately broken pass: doubles times, claims period preserved";
    }
    bool hidden() const override { return true; }
    Preservation preserved(const PassParams&) const override {
        return Preservation::of({ThroughputAnalysis::kName});
    }
    PeriodContract period_contract(const PassParams&) const override {
        return PeriodContract::preserves;
    }
    PassResult run(Graph& graph, const PassParams&, AnalysisManager&) const override {
        bool changed = false;
        for (ActorId a = 0; a < graph.actor_count(); ++a) {
            const Int time = graph.actor(a).execution_time;
            if (time != 0) {
                graph.set_execution_time(a, checked_mul(time, 2));
                changed = true;
            }
        }
        return {changed, {}, {}};
    }
};

/// selftest-unsound-absint — hidden pass that nudges one channel's initial
/// tokens while CLAIMING to preserve the token-interval fixpoint.  The
/// abstract initial state moves, so --verify-each must flag the claim; the
/// pass exists purely to prove that the executor checks absint contracts
/// instead of trusting them (see SelfTestUnsoundPass above for the timed
/// twin).
class SelfTestUnsoundAbsintPass final : public Pass {
public:
    std::string name() const override { return "selftest-unsound-absint"; }
    std::string summary() const override {
        return "deliberately broken pass: moves tokens, claims intervals preserved";
    }
    bool hidden() const override { return true; }
    Preservation preserved(const PassParams&) const override {
        return Preservation::of({absint::TokenIntervalsAnalysis::kName});
    }
    PassResult run(Graph& graph, const PassParams&, AnalysisManager&) const override {
        if (graph.channel_count() == 0) {
            return {false, {}, {}};
        }
        const Int tokens = graph.channel(0).initial_tokens;
        graph.set_initial_tokens(0, checked_add(tokens, 1));
        return {true, {{"bumped", 1}}, {}};
    }
};

}  // namespace

void register_builtin_passes(PassRegistry& registry) {
    registry.add(std::make_unique<SelfLoopsPass>());
    registry.add(std::make_unique<PrunePass>());
    registry.add(std::make_unique<RetimingPass>());
    registry.add(std::make_unique<HsdfClassicPass>());
    registry.add(std::make_unique<HsdfReducedPass>());
    registry.add(std::make_unique<AbstractionPass>());
    registry.add(std::make_unique<SdfAbstractionPass>());
    registry.add(std::make_unique<UnfoldPass>());
    registry.add(std::make_unique<ScenarioEnvelopePass>());
    registry.add(std::make_unique<SelfTestUnsoundPass>());
    registry.add(std::make_unique<SelfTestUnsoundAbsintPass>());
}

}  // namespace sdf
