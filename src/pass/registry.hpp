// registry.hpp — the pass registry.
//
// All built-in passes register here at first use (no static-initialiser
// magic: the singleton's constructor calls register_builtin_passes()
// directly, so nothing depends on link order or object inclusion).  The
// pipeline parser resolves names against a registry, which makes the test
// suite able to run against a private registry with planted passes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pass/pass.hpp"

namespace sdf {

class PassRegistry {
public:
    /// The process-wide registry with every built-in pass registered.
    static const PassRegistry& instance();

    /// An empty registry (for tests that plant their own passes).
    PassRegistry() = default;

    /// Registers a pass; throws Error on a duplicate name.
    void add(std::unique_ptr<Pass> pass);

    /// The pass with this name (hidden included), or nullptr.
    [[nodiscard]] const Pass* find(const std::string& name) const;

    /// All passes sorted by name; hidden ones only when asked.
    [[nodiscard]] std::vector<const Pass*> list(bool include_hidden = false) const;

private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

/// Registers the built-in pass set (selfloops, prune, retiming, the HSDF
/// constructions, abstractions, unfold, scenario-envelope and the hidden
/// selftest-unsound pass) into `registry`.  Defined in passes.cpp.
void register_builtin_passes(PassRegistry& registry);

}  // namespace sdf
