#include "mapping/bind.hpp"

#include <algorithm>
#include <numeric>

#include "base/errors.hpp"
#include "sdf/schedule.hpp"

namespace sdf {

void validate_mapping(const Graph& graph, const Mapping& mapping) {
    require(mapping.processor_count > 0, "mapping needs at least one processor");
    require(mapping.processor_of.size() == graph.actor_count(),
            "mapping must assign every actor");
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        require(mapping.processor_of[a] < mapping.processor_count,
                "actor '" + graph.actor(a).name + "' mapped to an unknown processor");
    }
}

StaticOrder default_static_order(const Graph& graph, const Mapping& mapping) {
    validate_mapping(graph, mapping);
    require(graph.is_homogeneous(), "static orders are defined on homogeneous graphs");
    StaticOrder result;
    result.order.resize(mapping.processor_count);
    // A PASS visits each actor exactly once (HSDF); its projection onto a
    // processor is consistent with every data dependency.
    for (const ActorId a : sequential_schedule(graph)) {
        result.order[mapping.processor_of[a]].push_back(a);
    }
    return result;
}

Graph bind(const Graph& graph, const Mapping& mapping, const StaticOrder& order) {
    validate_mapping(graph, mapping);
    require(graph.is_homogeneous(), "bind is defined on homogeneous graphs");
    require(order.order.size() == mapping.processor_count,
            "static order must cover every processor");
    // Every actor exactly once, on its own processor.
    std::vector<bool> seen(graph.actor_count(), false);
    for (std::size_t p = 0; p < order.order.size(); ++p) {
        for (const ActorId a : order.order[p]) {
            require(a < graph.actor_count(), "static order names an unknown actor");
            require(mapping.processor_of[a] == p,
                    "actor '" + graph.actor(a).name + "' ordered on the wrong processor");
            require(!seen[a], "actor '" + graph.actor(a).name + "' ordered twice");
            seen[a] = true;
        }
    }
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        require(seen[a], "actor '" + graph.actor(a).name + "' missing from the order");
    }

    Graph bound = graph;
    bound.set_name(graph.name() + "_bound");
    for (const std::vector<ActorId>& processor_order : order.order) {
        if (processor_order.empty()) {
            continue;
        }
        for (std::size_t i = 0; i + 1 < processor_order.size(); ++i) {
            bound.add_channel(processor_order[i], processor_order[i + 1], 0);
        }
        // Availability token: the processor frees up after its last actor.
        bound.add_channel(processor_order.back(), processor_order.front(), 1);
    }
    return bound;
}

Graph bind(const Graph& graph, const Mapping& mapping) {
    return bind(graph, mapping, default_static_order(graph, mapping));
}

Mapping balance_load(const Graph& graph, std::size_t processor_count) {
    require(processor_count > 0, "need at least one processor");
    Mapping mapping;
    mapping.processor_count = processor_count;
    mapping.processor_of.assign(graph.actor_count(), 0);

    std::vector<ActorId> by_time(graph.actor_count());
    std::iota(by_time.begin(), by_time.end(), ActorId{0});
    std::sort(by_time.begin(), by_time.end(), [&](ActorId a, ActorId b) {
        return graph.actor(a).execution_time > graph.actor(b).execution_time;
    });
    std::vector<Int> load(processor_count, 0);
    for (const ActorId a : by_time) {
        const auto lightest = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        mapping.processor_of[a] = lightest;
        load[lightest] = checked_add(load[lightest], graph.actor(a).execution_time);
    }
    return mapping;
}

}  // namespace sdf
