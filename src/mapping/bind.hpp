// bind.hpp — multiprocessor binding of HSDF graphs.
//
// The paper's reduction techniques come from MPSoC design flows ([3, 13,
// 15, 16] in its reference list) in which an application graph is mapped
// onto processors and each processor executes its actors in a fixed static
// order.  The standard model (Sriram & Bhattacharyya [15]) makes the
// resource constraint explicit in the graph itself: the actors bound to one
// processor are chained by zero-delay channels in schedule order, and a
// single-token channel from the last back to the first models the
// processor becoming available again.  All ordinary analyses then apply to
// the bound graph, and because binding only ADDS channels, Proposition 1 of
// the paper immediately gives that the mapped system is never faster than
// the unmapped one — a fact the property tests check.
//
// Binding is defined on homogeneous graphs (one firing per actor per
// iteration, so "order of actors" is well defined); convert multi-rate
// graphs first (to_hsdf_classic / to_hsdf_reduced).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "base/rational.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// Assignment of every actor to a processor 0..processor_count-1.
struct Mapping {
    std::size_t processor_count = 0;
    std::vector<std::size_t> processor_of;  ///< indexed by ActorId
};

/// Per-processor static execution order (each inner vector lists the
/// actors of one processor in firing order; every actor appears exactly
/// once across all processors).
struct StaticOrder {
    std::vector<std::vector<ActorId>> order;  ///< indexed by processor
};

/// Validates that `mapping` covers every actor of `graph` with a processor
/// in range; throws InvalidGraphError otherwise.
void validate_mapping(const Graph& graph, const Mapping& mapping);

/// A deadlock-free static order: project an admissible sequential schedule
/// (PASS) of the graph onto the processors — actors appear on their
/// processor in data-dependency-compatible order, so the bound graph is
/// live whenever the original is.
StaticOrder default_static_order(const Graph& graph, const Mapping& mapping);

/// The resource-constrained graph: `graph` plus, per processor, zero-delay
/// channels chaining its actors in static order and a one-token channel
/// from the last back to the first (non-pipelined processors).  Processors
/// with fewer than two actors only gain the self-availability loop when
/// they hold exactly one actor.
Graph bind(const Graph& graph, const Mapping& mapping, const StaticOrder& order);

/// Convenience: bind with the default static order.
Graph bind(const Graph& graph, const Mapping& mapping);

/// A simple load-balancing mapping heuristic: actors sorted by decreasing
/// execution time, each assigned to the currently least-loaded processor
/// (LPT).  `processor_count` must be positive.
Mapping balance_load(const Graph& graph, std::size_t processor_count);

}  // namespace sdf
