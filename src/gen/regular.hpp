// regular.hpp — the paper's regular example graphs.
//
// figure1_graph(n) generalises the homogeneous graph of Figure 1(a) — "the
// prefetching of data from a remote memory for some block based image
// processing application":
//
//   * actors A1..An in a cycle (Ai → A(i+1), An → A1 with one token),
//   * actors B1..B(n−2) in a chain (no closing edge),
//   * Ai → Bi and Bi → A(i+2) for i = 1..n−2,
//   * execution times T(A1)=T(A2)=2, T(A3..A(n−2))=5,
//     T(A(n−1))=T(An)=3, T(Bi)=4.
//
// For n = 6 this is exactly the paper's example: one iteration takes 23
// time units; in general the throughput is 1/(5n−7) while the abstract
// graph of Figure 1(b) estimates it as 1/(5n) (Section 4.1).
//
// prefetch_graph(n) reconstructs the Figure 5 remote-memory-access model of
// the Section 7 case study [16]: n = 1584 identical block computations per
// video frame, each preceded by a pre-fetch through the communication
// assists and the network-on-chip, with a pre-fetch window of two blocks.
// Three perfectly regular groups (request R, transfer M, compute C) make
// the obvious abstraction exact: the abstract graph has *the same*
// throughput as the original.
#pragma once

#include "sdf/graph.hpp"

namespace sdf {

/// The Figure 1(a) family; n >= 4 copies of the A actor.
Graph figure1_graph(Int n);

/// The hand-built abstract graph of Figure 1(b): actors A (time 5) and B
/// (time 4), self-edges with one token each, A → B with none and B → A with
/// two.  abstract_graph() reproduces it automatically (tested).
Graph figure1_abstract();

/// The Figure 5 remote-memory-access model with n block computations
/// (paper: n = 1584).  Groups R (time 2), M (time 8), C (time 10); n >= 3.
Graph prefetch_graph(Int n);

/// The abstraction target of prefetch_graph: R, M, C with self-edges (one
/// token), R→M, M→C (no tokens) and C→R (two tokens).
Graph prefetch_abstract();

}  // namespace sdf
