// random_sdf.hpp — random consistent, live SDF graphs for property tests.
//
// Construction guarantees the properties the analyses need, so the test
// suites can sweep hundreds of cases without filtering:
//
//  * consistency by construction — repetition entries are drawn first and
//    channel rates are derived from the balance equations;
//  * liveness by construction — channels along a random actor order are
//    token-free ("forward"), while backward channels carry one full
//    iteration of tokens so the forward order is always admissible;
//  * boundedness — every actor receives a self-loop, and a closing backward
//    channel makes the graph strongly connected on request.
//
// random_hsdf() is the homogeneous variant used by the abstraction property
// tests (Definition 4 is stated for HSDF inputs).
#pragma once

#include <random>

#include "sdf/graph.hpp"

namespace sdf {

/// Knobs for the generator; defaults give small graphs suitable for the
/// exponential cross-validation routes.
struct RandomSdfOptions {
    Int min_actors = 3;
    Int max_actors = 7;
    Int max_repetition = 4;      ///< repetition entries drawn from [1, max]
    Int max_rate_scale = 2;      ///< rates scaled by a factor from [1, max]
    Int max_execution_time = 9;  ///< execution times drawn from [0, max]
    double extra_edge_probability = 0.35;
    double backward_edge_probability = 0.3;
    bool self_loops = true;
    bool strongly_connect = true;
};

/// A random consistent, live, (optionally) strongly connected SDF graph.
Graph random_sdf(std::mt19937& rng, const RandomSdfOptions& options = {});

/// A random live homogeneous SDF graph (all rates 1).
Graph random_hsdf(std::mt19937& rng, const RandomSdfOptions& options = {});

}  // namespace sdf
