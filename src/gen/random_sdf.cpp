#include "gen/random_sdf.hpp"

#include "base/checked.hpp"
#include "base/portable_rng.hpp"

namespace sdf {

namespace {

// std::uniform_*_distribution sequences are implementation-defined; the
// portable draws keep a fuzz seed reproducing the same graph on libstdc++
// and libc++ alike.
Int uniform(std::mt19937& rng, Int lo, Int hi) {
    return draw_int(rng, lo, hi);
}

bool flip(std::mt19937& rng, double probability) {
    return draw_chance(rng, probability);
}

/// Adds a channel between actors with repetition entries q_src and q_dst,
/// rates derived from the balance equation (scaled by a random factor) and
/// `full_iteration` tokens when backward (enough for q_dst firings).
void add_balanced_channel(Graph& graph, std::mt19937& rng, ActorId src, ActorId dst,
                          Int q_src, Int q_dst, Int max_scale, bool backward) {
    const Int g = gcd(q_src, q_dst);
    const Int scale = uniform(rng, 1, max_scale);
    const Int production = checked_mul(q_dst / g, scale);
    const Int consumption = checked_mul(q_src / g, scale);
    Int tokens = 0;
    if (backward) {
        // One full iteration of consumption: dst can complete an iteration
        // before src ever fires, so a forward-order schedule always exists.
        tokens = checked_mul(consumption, q_dst);
    } else if (flip(rng, 0.25)) {
        tokens = uniform(rng, 1, checked_mul(consumption, 2));
    }
    graph.add_channel(src, dst, production, consumption, tokens);
}

Graph generate(std::mt19937& rng, const RandomSdfOptions& options, bool homogeneous) {
    const Int n = uniform(rng, options.min_actors, options.max_actors);
    Graph graph(homogeneous ? "random_hsdf" : "random_sdf");

    std::vector<Int> repetition(static_cast<std::size_t>(n));
    std::vector<ActorId> actors(static_cast<std::size_t>(n));
    for (Int i = 0; i < n; ++i) {
        repetition[static_cast<std::size_t>(i)] =
            homogeneous ? 1 : uniform(rng, 1, options.max_repetition);
        actors[static_cast<std::size_t>(i)] =
            graph.add_actor("a" + std::to_string(i),
                            uniform(rng, 0, options.max_execution_time));
    }
    const Int rate_scale = homogeneous ? 1 : options.max_rate_scale;

    // Forward spine in actor order keeps the graph weakly connected.
    for (Int i = 0; i + 1 < n; ++i) {
        add_balanced_channel(graph, rng, actors[static_cast<std::size_t>(i)],
                             actors[static_cast<std::size_t>(i + 1)],
                             repetition[static_cast<std::size_t>(i)],
                             repetition[static_cast<std::size_t>(i + 1)], rate_scale,
                             /*backward=*/false);
    }
    // Extra forward and backward chords.
    for (Int i = 0; i < n; ++i) {
        for (Int j = 0; j < n; ++j) {
            if (i == j) {
                continue;
            }
            const bool backward = j < i;
            const double p = backward ? options.backward_edge_probability
                                      : options.extra_edge_probability;
            if ((backward || j > i + 1) && flip(rng, p)) {
                add_balanced_channel(graph, rng, actors[static_cast<std::size_t>(i)],
                                     actors[static_cast<std::size_t>(j)],
                                     repetition[static_cast<std::size_t>(i)],
                                     repetition[static_cast<std::size_t>(j)], rate_scale,
                                     backward);
            }
        }
    }
    // Close the ring for strong connectivity.
    if (options.strongly_connect && n > 1) {
        add_balanced_channel(graph, rng, actors[static_cast<std::size_t>(n - 1)], actors[0],
                             repetition[static_cast<std::size_t>(n - 1)], repetition[0],
                             rate_scale, /*backward=*/true);
    }
    if (options.self_loops) {
        for (Int i = 0; i < n; ++i) {
            graph.add_channel(actors[static_cast<std::size_t>(i)],
                              actors[static_cast<std::size_t>(i)], 1, 1,
                              uniform(rng, 1, 2));
        }
    }
    return graph;
}

}  // namespace

Graph random_sdf(std::mt19937& rng, const RandomSdfOptions& options) {
    return generate(rng, options, /*homogeneous=*/false);
}

Graph random_hsdf(std::mt19937& rng, const RandomSdfOptions& options) {
    return generate(rng, options, /*homogeneous=*/true);
}

}  // namespace sdf
