#include "gen/structured.hpp"

#include "base/errors.hpp"

namespace sdf {

Graph chain_graph(const std::vector<Int>& stage_times, Int credits) {
    require(!stage_times.empty(), "chain_graph needs at least one stage");
    require(credits > 0, "chain_graph needs positive credits");
    Graph g("chain" + std::to_string(stage_times.size()));
    std::vector<ActorId> stages;
    stages.reserve(stage_times.size());
    for (std::size_t i = 0; i < stage_times.size(); ++i) {
        stages.push_back(g.add_actor("s" + std::to_string(i), stage_times[i]));
        g.add_channel(stages[i], stages[i], 1);
    }
    for (std::size_t i = 0; i + 1 < stages.size(); ++i) {
        g.add_channel(stages[i], stages[i + 1], 0);
    }
    g.add_channel(stages.back(), stages.front(), credits);
    return g;
}

Graph fork_join_graph(Int width, Int worker_time, Int credits) {
    require(width > 0, "fork_join_graph needs positive width");
    require(credits > 0, "fork_join_graph needs positive credits");
    Graph g("forkjoin" + std::to_string(width));
    const ActorId fork = g.add_actor("fork", 1);
    const ActorId join = g.add_actor("join", 1);
    g.add_channel(fork, fork, 1);
    g.add_channel(join, join, 1);
    for (Int w = 0; w < width; ++w) {
        const ActorId worker = g.add_actor("w" + std::to_string(w), worker_time);
        g.add_channel(worker, worker, 1);
        g.add_channel(fork, worker, 0);
        g.add_channel(worker, join, 0);
    }
    g.add_channel(join, fork, credits);
    return g;
}

Graph ring_graph(Int n, Int actor_time, Int tokens) {
    require(n > 0, "ring_graph needs at least one actor");
    require(tokens > 0, "ring_graph needs at least one token");
    Graph g("ring" + std::to_string(n));
    std::vector<ActorId> actors;
    actors.reserve(static_cast<std::size_t>(n));
    for (Int i = 0; i < n; ++i) {
        actors.push_back(g.add_actor("r" + std::to_string(i), actor_time));
    }
    for (Int i = 0; i + 1 < n; ++i) {
        g.add_channel(actors[static_cast<std::size_t>(i)],
                      actors[static_cast<std::size_t>(i + 1)], 0);
    }
    g.add_channel(actors.back(), actors.front(), tokens);
    return g;
}

}  // namespace sdf
