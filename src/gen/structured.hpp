// structured.hpp — parametric structured workload generators.
//
// The regular families of regular.hpp reproduce the paper's figures; these
// generators produce the other shapes streaming applications commonly take
// (pipelines, fork/join parallelism, token rings), parameterised for the
// scaling studies in bench/ and as further fixtures for the property
// suites.  All outputs are consistent, live and bounded by construction.
#pragma once

#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

/// A linear pipeline "s0 -> s1 -> ... -> s{n-1}" of self-looped stages with
/// the given execution times, closed by a credit channel from the last
/// stage back to the first carrying `credits` tokens (the number of frames
/// in flight).
Graph chain_graph(const std::vector<Int>& stage_times, Int credits = 1);

/// Fork/join: a source forks one token to each of `width` parallel workers
/// (execution time `worker_time`), a sink joins them; `credits` frames may
/// be in flight.  All actors carry one-token self-loops.
Graph fork_join_graph(Int width, Int worker_time, Int credits = 1);

/// A unidirectional token ring of `n` identical actors with `tokens`
/// initial tokens on the closing channel.
Graph ring_graph(Int n, Int actor_time, Int tokens = 1);

}  // namespace sdf
