#include "gen/regular.hpp"

#include "base/errors.hpp"

namespace sdf {

Graph figure1_graph(Int n) {
    require(n >= 4, "figure1_graph needs at least 4 A actors");
    Graph g("figure1_n" + std::to_string(n));

    const auto a_time = [n](Int i) -> Int {  // i is 1-based
        if (i <= 2) {
            return 2;
        }
        if (i >= n - 1) {
            return 3;
        }
        return 5;
    };

    std::vector<ActorId> a(static_cast<std::size_t>(n));
    for (Int i = 1; i <= n; ++i) {
        a[static_cast<std::size_t>(i - 1)] =
            g.add_actor("A" + std::to_string(i), a_time(i));
    }
    std::vector<ActorId> b(static_cast<std::size_t>(n - 2));
    for (Int i = 1; i <= n - 2; ++i) {
        b[static_cast<std::size_t>(i - 1)] = g.add_actor("B" + std::to_string(i), 4);
    }

    // A cycle.
    for (Int i = 0; i + 1 < n; ++i) {
        g.add_channel(a[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(i + 1)], 0);
    }
    g.add_channel(a[static_cast<std::size_t>(n - 1)], a[0], 1);
    // B chain (open).
    for (Int i = 0; i + 1 < n - 2; ++i) {
        g.add_channel(b[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i + 1)], 0);
    }
    // Ai -> Bi and Bi -> A(i+2).
    for (Int i = 0; i < n - 2; ++i) {
        g.add_channel(a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 0);
        g.add_channel(b[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(i + 2)], 0);
    }
    return g;
}

Graph figure1_abstract() {
    Graph g("figure1_abstract");
    const ActorId a = g.add_actor("A", 5);
    const ActorId b = g.add_actor("B", 4);
    g.add_channel(a, a, 1);
    g.add_channel(b, b, 1);
    g.add_channel(a, b, 0);
    g.add_channel(b, a, 2);
    return g;
}

Graph prefetch_graph(Int n) {
    require(n >= 3, "prefetch_graph needs at least 3 blocks");
    Graph g("prefetch_n" + std::to_string(n));

    std::vector<ActorId> r(static_cast<std::size_t>(n));
    std::vector<ActorId> m(static_cast<std::size_t>(n));
    std::vector<ActorId> c(static_cast<std::size_t>(n));
    for (Int i = 1; i <= n; ++i) {
        r[static_cast<std::size_t>(i - 1)] = g.add_actor("R" + std::to_string(i), 2);
        m[static_cast<std::size_t>(i - 1)] = g.add_actor("M" + std::to_string(i), 8);
        c[static_cast<std::size_t>(i - 1)] = g.add_actor("C" + std::to_string(i), 10);
    }
    // Sequential chains per group, closed with one token.
    const auto chain = [&g, n](const std::vector<ActorId>& nodes) {
        for (Int i = 0; i + 1 < n; ++i) {
            g.add_channel(nodes[static_cast<std::size_t>(i)],
                          nodes[static_cast<std::size_t>(i + 1)], 0);
        }
        g.add_channel(nodes[static_cast<std::size_t>(n - 1)], nodes[0], 1);
    };
    chain(r);
    chain(m);
    chain(c);
    // Per-block pipeline: request -> transfer -> compute.
    for (Int i = 0; i < n; ++i) {
        g.add_channel(r[static_cast<std::size_t>(i)], m[static_cast<std::size_t>(i)], 0);
        g.add_channel(m[static_cast<std::size_t>(i)], c[static_cast<std::size_t>(i)], 0);
    }
    // Pre-fetch window of two: computing block i releases the request for
    // block i+2; the two wrap-around dependencies carry the two pre-fetches
    // in flight at frame start.
    for (Int i = 0; i < n; ++i) {
        const Int target = i + 2;
        if (target < n) {
            g.add_channel(c[static_cast<std::size_t>(i)],
                          r[static_cast<std::size_t>(target)], 0);
        } else {
            g.add_channel(c[static_cast<std::size_t>(i)],
                          r[static_cast<std::size_t>(target - n)], 1);
        }
    }
    return g;
}

Graph prefetch_abstract() {
    Graph g("prefetch_abstract");
    const ActorId r = g.add_actor("R", 2);
    const ActorId m = g.add_actor("M", 8);
    const ActorId c = g.add_actor("C", 10);
    g.add_channel(r, r, 1);
    g.add_channel(m, m, 1);
    g.add_channel(c, c, 1);
    g.add_channel(r, m, 0);
    g.add_channel(m, c, 0);
    g.add_channel(c, r, 2);
    return g;
}

}  // namespace sdf
