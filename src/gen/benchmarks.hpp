// benchmarks.hpp — reconstructions of the SDF3 benchmark applications of
// Table 1 ([14] in the paper).
//
// The original XML files are not redistributable here; the graphs below are
// rebuilt from their published structure.  The repetition vectors — and
// therefore the *traditional-conversion* actor counts that Table 1 lists —
// are reproduced exactly:
//
//     h.263 decoder        q = [1, 594, 594, 1]                 Σ = 1190
//     h.263 encoder        q = [1, 99, 99, 1, 1]                Σ = 201
//     modem                16 actors, mostly unit rates         Σ = 48
//     mp3 dec. (block)     10-stage pipeline                    Σ = 911
//     mp3 dec. (granule)   coarser pipeline                     Σ = 27
//     mp3 playback         decoder + sample-rate conv. + DAC    Σ = 10601
//     sample-rate conv.    CD→DAT rates 1:1, 2:3, 2:7, 8:7, 5:1 Σ = 612
//     satellite receiver   22 actors, two symmetric branches    Σ = 4515
//
// Initial-token placement (which determines the *new*-conversion size) is
// not published; we follow the usual SDF3 conventions — stateful actors get
// a one-token self-loop, frame/granule feedback carries one iteration of
// tokens — and report measured vs. paper numbers in EXPERIMENTS.md.
// Execution times are plausible magnitudes; they do not influence either
// conversion's size.
#pragma once

#include <string>
#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

Graph h263_decoder();
Graph h263_encoder();
Graph modem();
Graph mp3_decoder_block();
Graph mp3_decoder_granule();
Graph mp3_playback();
Graph samplerate_converter();
Graph satellite_receiver();

/// One Table 1 test case: the graph plus the numbers the paper reports.
struct BenchmarkCase {
    std::string label;            ///< row label as printed in Table 1
    Graph graph;
    Int paper_traditional = 0;    ///< Table 1 "Traditional conversion" actors
    Int paper_new = 0;            ///< Table 1 "new conversion" actors
};

/// All eight Table 1 cases, in row order.
std::vector<BenchmarkCase> table1_benchmarks();

}  // namespace sdf
