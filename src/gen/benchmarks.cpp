#include "gen/benchmarks.hpp"

namespace sdf {

Graph h263_decoder() {
    // Stuijk et al.: QCIF frames of 594 blocks; q = [1, 594, 594, 1].
    Graph g("h263decoder");
    const ActorId vld = g.add_actor("VLD", 26018);
    const ActorId iq = g.add_actor("IQ", 559);
    const ActorId idct = g.add_actor("IDCT", 486);
    const ActorId mc = g.add_actor("MC", 10958);
    g.add_channel(vld, iq, 594, 1, 0);
    g.add_channel(iq, idct, 1, 1, 0);
    g.add_channel(idct, mc, 1, 594, 0);
    g.add_channel(mc, vld, 1, 1, 1);   // next frame depends on reconstruction
    g.add_channel(vld, vld, 1, 1, 1);  // stateful bitstream parsing
    g.add_channel(mc, mc, 1, 1, 1);    // stateful frame memory
    return g;
}

Graph h263_encoder() {
    // q = [1, 99, 99, 1, 1] (one frame, 99 macroblocks).
    Graph g("h263encoder");
    const ActorId cc = g.add_actor("CC", 500);      // capture/control
    const ActorId me = g.add_actor("ME", 4000);     // motion estimation
    const ActorId dctq = g.add_actor("DCTQ", 3000);
    const ActorId vlc = g.add_actor("VLC", 10000);
    const ActorId rec = g.add_actor("REC", 2000);   // reconstruction
    g.add_channel(cc, me, 99, 1, 0);
    g.add_channel(me, dctq, 1, 1, 0);
    g.add_channel(dctq, vlc, 1, 99, 0);
    g.add_channel(dctq, rec, 1, 99, 0);
    g.add_channel(rec, cc, 1, 1, 1);   // reference frame feedback
    g.add_channel(cc, cc, 1, 1, 1);    // stateful rate control
    g.add_channel(me, me, 1, 1, 1);    // stateful search window
    return g;
}

Graph modem() {
    // Lee & Messerschmitt's 16-actor modem: almost homogeneous (one 1:16
    // and one 16:1 rate change plus a 2:1 stage), rich in initial tokens
    // (filter taps, equaliser feedback).  q sums to 48.
    Graph g("modem");
    const ActorId a1 = g.add_actor("in", 1);
    const ActorId a2 = g.add_actor("filt1", 6);
    const ActorId a3 = g.add_actor("upsmp", 2);    // q = 16
    const ActorId a4 = g.add_actor("mod", 2);      // q = 16
    const ActorId a5 = g.add_actor("dnsmp", 6);
    const ActorId a6 = g.add_actor("hil", 8);
    const ActorId a7 = g.add_actor("agc", 4);
    const ActorId a8 = g.add_actor("eq", 12);
    const ActorId a9 = g.add_actor("deci", 3);
    const ActorId a10 = g.add_actor("sync", 5);
    const ActorId a11 = g.add_actor("bclk", 2);    // q = 2
    const ActorId a12 = g.add_actor("brec", 2);    // q = 2
    const ActorId a13 = g.add_actor("desc", 4);
    const ActorId a14 = g.add_actor("dec", 7);
    const ActorId a15 = g.add_actor("err", 2);
    const ActorId a16 = g.add_actor("out", 1);
    g.add_channel(a1, a2, 1, 1, 0);
    g.add_channel(a2, a3, 16, 1, 0);
    g.add_channel(a3, a4, 1, 1, 1);    // modulator pipeline register
    g.add_channel(a4, a5, 1, 16, 0);
    g.add_channel(a5, a6, 1, 1, 1);    // Hilbert filter delay line
    g.add_channel(a6, a7, 1, 1, 1);
    g.add_channel(a7, a8, 1, 1, 0);
    g.add_channel(a8, a9, 1, 1, 1);
    g.add_channel(a9, a10, 1, 1, 0);
    g.add_channel(a10, a11, 2, 1, 0);
    g.add_channel(a11, a12, 1, 1, 1);
    g.add_channel(a12, a13, 1, 2, 0);
    g.add_channel(a13, a14, 1, 1, 2);  // descrambler shift register
    g.add_channel(a14, a15, 1, 1, 0);
    g.add_channel(a15, a16, 1, 1, 0);
    g.add_channel(a16, a1, 1, 1, 2);   // closed-loop timing recovery
    g.add_channel(a10, a7, 1, 1, 1);   // AGC feedback
    g.add_channel(a14, a8, 1, 1, 1);   // decision-directed equaliser feedback
    g.add_channel(a8, a8, 1, 1, 1);    // equaliser state
    g.add_channel(a10, a10, 1, 1, 1);  // PLL state
    g.add_channel(a7, a2, 1, 1, 1);    // AGC gain to front-end filter
    g.add_channel(a12, a10, 1, 2, 2);  // baud-rate estimate to PLL
    g.add_channel(a15, a13, 1, 1, 1);  // error feedback to descrambler
    g.add_channel(a14, a14, 1, 1, 1);  // decision state
    g.add_channel(a16, a9, 1, 1, 2);   // output timing to decimator
    g.add_channel(a14, a7, 1, 1, 1);   // decision-directed carrier recovery
    g.add_channel(a10, a2, 1, 1, 1);   // symbol timing to front-end filter
    g.add_channel(a8, a6, 1, 1, 1);    // equaliser pre-cursor feedback
    return g;
}

Graph mp3_decoder_block() {
    // Block-level parallel decomposition; q = [1, 2, 2, 18, 576, 288, 18,
    // 2, 2, 2], Σ = 911.
    Graph g("mp3dec_block");
    const ActorId huff = g.add_actor("Huffman", 12000);
    const ActorId req1 = g.add_actor("Requant1", 800);
    const ActorId req2 = g.add_actor("Requant2", 800);
    const ActorId reord = g.add_actor("Reorder", 120);
    const ActorId alias = g.add_actor("Alias", 40);
    const ActorId imdct = g.add_actor("IMDCT", 90);
    const ActorId freq = g.add_actor("FreqInv", 150);
    const ActorId synth1 = g.add_actor("Synth1", 1800);
    const ActorId synth2 = g.add_actor("Synth2", 1800);
    const ActorId pcm = g.add_actor("PCM", 500);
    g.add_channel(huff, req1, 2, 1, 0);
    g.add_channel(req1, req2, 1, 1, 0);
    g.add_channel(req2, reord, 9, 1, 0);
    g.add_channel(reord, alias, 32, 1, 0);
    g.add_channel(alias, imdct, 1, 2, 0);
    g.add_channel(imdct, freq, 1, 16, 0);
    g.add_channel(freq, synth1, 1, 9, 0);
    g.add_channel(synth1, synth2, 1, 1, 0);
    g.add_channel(synth2, pcm, 1, 1, 0);
    g.add_channel(pcm, huff, 1, 2, 2);  // frame buffer feedback
    return g;
}

Graph mp3_decoder_granule() {
    // Granule-level decomposition; q = [1, 2, 2, 4, 4, 2, 2, 4, 4, 2],
    // Σ = 27.
    Graph g("mp3dec_granule");
    const ActorId huff = g.add_actor("Huffman", 12000);
    const ActorId req = g.add_actor("Requant", 9000);
    const ActorId reord = g.add_actor("Reorder", 1100);
    const ActorId alias = g.add_actor("Alias", 400);
    const ActorId imdct = g.add_actor("IMDCT", 2600);
    const ActorId freq = g.add_actor("FreqInv", 1400);
    const ActorId poly = g.add_actor("Poly", 3200);
    const ActorId synth = g.add_actor("Synth", 4100);
    const ActorId filt = g.add_actor("Filter", 2800);
    const ActorId pcm = g.add_actor("PCM", 900);
    g.add_channel(huff, req, 2, 1, 0);
    g.add_channel(req, reord, 1, 1, 0);
    g.add_channel(reord, alias, 2, 1, 0);
    g.add_channel(alias, imdct, 1, 1, 0);
    g.add_channel(imdct, freq, 1, 2, 0);
    g.add_channel(freq, poly, 1, 1, 0);
    g.add_channel(poly, synth, 2, 1, 0);
    g.add_channel(synth, filt, 1, 1, 0);
    g.add_channel(filt, pcm, 1, 2, 0);
    g.add_channel(pcm, huff, 1, 2, 2);  // frame buffer feedback
    return g;
}

Graph mp3_playback() {
    // MP3 decoding + sample-rate conversion + DAC output; q = [1, 2, 4,
    // 1152, 9216, 128, 96, 2], Σ = 10601.
    Graph g("mp3playback");
    const ActorId mp3 = g.add_actor("MP3", 670000);
    const ActorId gran = g.add_actor("Granule", 280000);
    const ActorId sub = g.add_actor("Subband", 110000);
    const ActorId samp = g.add_actor("Sample", 880);
    const ActorId src = g.add_actor("SRC", 120);
    const ActorId blk = g.add_actor("Block", 9200);
    const ActorId app = g.add_actor("APP", 12000);
    const ActorId dac = g.add_actor("DAC", 640000);
    g.add_channel(mp3, gran, 2, 1, 0);
    g.add_channel(gran, sub, 2, 1, 0);
    g.add_channel(sub, samp, 288, 1, 0);
    g.add_channel(samp, src, 8, 1, 0);
    g.add_channel(src, blk, 1, 72, 0);
    g.add_channel(blk, app, 3, 4, 0);
    g.add_channel(app, dac, 1, 48, 0);
    g.add_channel(dac, mp3, 1, 2, 2);   // playout buffer feedback
    g.add_channel(mp3, mp3, 1, 1, 1);   // bitstream state
    g.add_channel(src, src, 1, 1, 1);   // resampler state
    g.add_channel(app, app, 1, 1, 1);   // audio post-processing state
    g.add_channel(dac, dac, 1, 1, 1);   // output clock
    return g;
}

Graph samplerate_converter() {
    // The classical CD (44.1 kHz) to DAT (48 kHz) converter; stage ratios
    // 1:1, 2:3, 2:7, 8:7, 5:1 give q = [147, 147, 98, 28, 32, 160].
    // Every stage is a stateful filter (one-token self-loop).
    Graph g("samplerate");
    const ActorId a = g.add_actor("cd", 10);
    const ActorId b = g.add_actor("fir1", 40);
    const ActorId c = g.add_actor("fir2", 40);
    const ActorId d = g.add_actor("fir3", 60);
    const ActorId e = g.add_actor("fir4", 60);
    const ActorId f = g.add_actor("dat", 10);
    g.add_channel(a, b, 1, 1, 0);
    g.add_channel(b, c, 2, 3, 0);
    g.add_channel(c, d, 2, 7, 0);
    g.add_channel(d, e, 8, 7, 0);
    g.add_channel(e, f, 5, 1, 0);
    for (const ActorId actor : {a, b, c, d, e, f}) {
        g.add_channel(actor, actor, 1, 1, 1);
    }
    return g;
}

Graph satellite_receiver() {
    // Ritz et al.'s satellite receiver: two symmetric filter branches (I/Q)
    // into a merge chain; 22 actors, Σq = 4515
    // (2 × [1,1,12,12,60,60,480,480,480] + [640,640,60,3]).
    Graph g("satellite");
    const auto branch = [&g](const std::string& suffix) {
        std::vector<ActorId> ids;
        ids.push_back(g.add_actor("vco" + suffix, 120));
        ids.push_back(g.add_actor("mix" + suffix, 100));
        ids.push_back(g.add_actor("chp" + suffix, 16));
        ids.push_back(g.add_actor("fil1" + suffix, 18));
        ids.push_back(g.add_actor("fil2" + suffix, 4));
        ids.push_back(g.add_actor("fil3" + suffix, 4));
        ids.push_back(g.add_actor("mf1" + suffix, 3));
        ids.push_back(g.add_actor("mf2" + suffix, 3));
        ids.push_back(g.add_actor("mf3" + suffix, 3));
        // Rates along the branch: q = 1,1,12,12,60,60,480,480,480.
        g.add_channel(ids[0], ids[1], 1, 1, 0);
        g.add_channel(ids[1], ids[2], 12, 1, 0);
        g.add_channel(ids[2], ids[3], 1, 1, 0);
        g.add_channel(ids[3], ids[4], 5, 1, 0);
        g.add_channel(ids[4], ids[5], 1, 1, 0);
        g.add_channel(ids[5], ids[6], 8, 1, 0);
        g.add_channel(ids[6], ids[7], 1, 1, 0);
        g.add_channel(ids[7], ids[8], 1, 1, 0);
        // Stateful filters.
        g.add_channel(ids[3], ids[3], 1, 1, 1);
        g.add_channel(ids[5], ids[5], 1, 1, 1);
        g.add_channel(ids[6], ids[6], 1, 1, 1);
        return ids;
    };
    const std::vector<ActorId> bi = branch("_i");
    const std::vector<ActorId> bq = branch("_q");
    const ActorId cmb = g.add_actor("combine", 5);   // q = 640
    const ActorId dem = g.add_actor("demod", 9);     // q = 640
    const ActorId dec = g.add_actor("decode", 30);   // q = 60
    const ActorId out = g.add_actor("output", 40);   // q = 3
    g.add_channel(bi.back(), cmb, 4, 3, 0);
    g.add_channel(bq.back(), cmb, 4, 3, 0);
    g.add_channel(cmb, dem, 1, 1, 0);
    g.add_channel(dem, dec, 3, 32, 0);
    g.add_channel(dec, out, 1, 20, 0);
    // Carrier/timing recovery feedback to both branch heads: each vco
    // firing needs three timing updates, pre-seeded for the first frame.
    g.add_channel(out, bi[0], 1, 3, 3);
    g.add_channel(out, bq[0], 1, 3, 3);
    // Stateful merge-chain actors.
    g.add_channel(dem, dem, 1, 1, 1);
    g.add_channel(dec, dec, 1, 1, 1);
    return g;
}

std::vector<BenchmarkCase> table1_benchmarks() {
    std::vector<BenchmarkCase> cases;
    cases.push_back({"1. h.263 decoder", h263_decoder(), 1190, 10});
    cases.push_back({"2. h.263 encoder", h263_encoder(), 201, 11});
    cases.push_back({"3. modem", modem(), 48, 210});
    cases.push_back({"4. mp3 dec. block par.", mp3_decoder_block(), 911, 8});
    cases.push_back({"5. mp3 dec. granule par.", mp3_decoder_granule(), 27, 8});
    cases.push_back({"6. mp3 playback", mp3_playback(), 10601, 38});
    cases.push_back({"7. sample rate conv.", samplerate_converter(), 612, 31});
    cases.push_back({"8. satellite", satellite_receiver(), 4515, 217});
    return cases;
}

}  // namespace sdf
