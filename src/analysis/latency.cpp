#include "analysis/latency.hpp"

#include <vector>

#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "sdf/simulate.hpp"

namespace sdf {

Int iteration_makespan(const Graph& graph) {
    return simulate_iterations(graph, 1).makespan;
}

Int response_latency(const Graph& graph, ActorId actor) {
    require(actor < graph.actor_count(), "actor id out of range");
    const FiniteRun run = simulate_iterations(graph, 1);
    const Int t = run.first_completion_times[actor];
    if (t < 0) {
        throw Error("actor '" + graph.actor(actor).name +
                    "' does not fire in one iteration");
    }
    return t;
}

std::optional<Rational> minimum_latency(const Graph& graph, ActorId src, ActorId dst,
                                        const Rational& period) {
    require(src < graph.actor_count() && dst < graph.actor_count(),
            "actor id out of range");
    require(graph.is_homogeneous(), "minimum_latency is defined on homogeneous graphs");
    // Feasibility: period >= iteration period, so the reweighted graph has
    // no positive cycle and the longest paths below are finite.
    const ThroughputResult t = throughput_symbolic(graph);
    if (t.outcome == ThroughputOutcome::deadlocked) {
        throw Error("minimum_latency: graph deadlocks");
    }
    if (t.is_finite()) {
        require(period >= t.period,
                "minimum_latency: period below the iteration period is infeasible");
    }
    // Longest path from src in the (T(a) − period·d)-reweighted graph.
    const std::size_t n = graph.actor_count();
    std::vector<std::optional<Rational>> dist(n);
    dist[src] = Rational(0);
    bool converged = false;
    for (std::size_t round = 0; round <= n && !converged; ++round) {
        converged = true;
        for (const Channel& ch : graph.channels()) {
            if (!dist[ch.src]) {
                continue;
            }
            const Rational candidate = *dist[ch.src] +
                                       Rational(graph.actor(ch.src).execution_time) -
                                       period * Rational(ch.initial_tokens);
            if (!dist[ch.dst] || candidate > *dist[ch.dst]) {
                dist[ch.dst] = candidate;
                converged = false;
            }
        }
    }
    if (!converged) {
        throw Error("minimum_latency: internal error, potentials diverge");
    }
    if (!dist[dst]) {
        return std::nullopt;  // offsets of src and dst are independent
    }
    return *dist[dst] + Rational(graph.actor(dst).execution_time);
}

}  // namespace sdf
