// static_schedule.hpp — optimal static periodic schedules for HSDF graphs.
//
// A static periodic schedule assigns every actor a start offset s(a) such
// that firing k of a starts at s(a) + k·λ.  It is admissible when every
// channel (a, b, 1, 1, d) satisfies
//
//     s(a) + T(a)  <=  s(b) + λ·d,
//
// i.e. the d-iterations-later consumer never starts before its producer
// finished.  The smallest feasible λ is the maximum cycle ratio — the
// iteration period the reduction techniques compute — and offsets are
// longest-path potentials in the λ-reweighted graph (no positive cycles
// exist at λ = MCR, so the potentials are finite).  This turns the paper's
// analysis results into an executable rate-optimal schedule, the classical
// use of the HSDF conversion (cf. Govindarajan & Gao, cited as [10]).
#pragma once

#include <vector>

#include "base/rational.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// A rate-optimal static periodic schedule.
struct PeriodicSchedule {
    Rational period;              ///< λ, the minimum feasible period
    std::vector<Rational> start;  ///< per-actor start offset s(a) >= 0
};

/// Computes a rate-optimal static periodic schedule of a homogeneous,
/// consistent graph whose period is finite and positive.  Throws Error
/// when the graph deadlocks, is unbounded (period zero / acyclic), or is
/// not homogeneous.
PeriodicSchedule periodic_schedule(const Graph& graph);

/// True when `schedule` is admissible for `graph` (checks every channel
/// constraint with exact arithmetic).
bool is_admissible_schedule(const Graph& graph, const PeriodicSchedule& schedule);

/// Steady-state latency from `src` to `dst` under the schedule: the time
/// from the start of src's k-th firing to the completion of dst's k-th,
/// s(dst) + T(dst) − s(src).  A standard latency measure for rate-optimal
/// periodic operation (cf. the latency analyses of [15, 9] the paper
/// cites); may be negative when dst's pipeline stage precedes src's.
Rational schedule_latency(const Graph& graph, const PeriodicSchedule& schedule,
                          ActorId src, ActorId dst);

}  // namespace sdf
