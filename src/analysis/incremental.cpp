#include "analysis/incremental.hpp"

#include <deque>
#include <utility>

#include "base/errors.hpp"
#include "maxplus/matrix.hpp"
#include "robust/budget.hpp"
#include "sdf/repetition.hpp"
#include "sdf/schedule.hpp"
#include "transform/symbolic.hpp"

namespace sdf {

namespace {

/// Mirrors the dense-matrix guard of transform/symbolic.cpp; past either
/// bound the slot degrades to a stateless throughput_symbolic answer.
constexpr Int kMaxTracedTokens = 16384;
constexpr std::size_t kMaxTracedFirings = std::size_t{1} << 17;

std::uint64_t entry_key(std::size_t row, std::size_t col) {
    return (static_cast<std::uint64_t>(row) << 32) | static_cast<std::uint64_t>(col);
}

/// Input/output channel lists per actor (same shape the symbolic engines
/// build).
struct Adjacency {
    std::vector<std::vector<ChannelId>> inputs;
    std::vector<std::vector<ChannelId>> outputs;
};

Adjacency build_adjacency(const Graph& graph) {
    Adjacency adj;
    adj.inputs.resize(graph.actor_count());
    adj.outputs.resize(graph.actor_count());
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        adj.inputs[graph.channel(c).dst].push_back(c);
        adj.outputs[graph.channel(c).src].push_back(c);
    }
    return adj;
}

ThroughputResult deadlocked_result(const Graph& graph) {
    ThroughputResult result;
    result.outcome = ThroughputOutcome::deadlocked;
    result.per_actor.assign(graph.actor_count(), Rational(0));
    return result;
}

/// λ → ThroughputResult, with the repetition vector handed in so the
/// refine hook never triggers a compute through the manager.
ThroughputResult result_from_metric(const CycleMetric& metric,
                                    const std::vector<Int>& repetition) {
    ThroughputResult result;
    if (metric.outcome != CycleOutcome::finite || metric.value.is_zero()) {
        result.outcome = ThroughputOutcome::unbounded;
        return result;
    }
    result.outcome = ThroughputOutcome::finite;
    result.period = metric.value;
    result.per_actor.reserve(repetition.size());
    for (const Int q : repetition) {
        result.per_actor.push_back(Rational(q) / metric.value);
    }
    return result;
}

/// Sparse entries of one stamp, in index order.
std::vector<std::pair<std::size_t, Int>> stamp_entries(const MpStamp& stamp) {
    std::vector<std::pair<std::size_t, Int>> entries;
    entries.reserve(stamp.support());
    stamp.for_each([&](std::size_t row, Int value) { entries.emplace_back(row, value); });
    return entries;
}

/// Diffs one changed matrix column against its predecessor and appends the
/// corresponding precedence-edge weight deltas.  False when the supports
/// differ or an entry has no mapped edge — both impossible under a pure
/// timing edit, so the caller treats false as "drop and recompute lazily".
bool diff_column(const MpStamp& now, const MpStamp& before, std::size_t col,
                 const IncrementalSkeleton& skeleton,
                 std::vector<EdgeWeightDelta>& deltas) {
    const auto new_entries = stamp_entries(now);
    const auto old_entries = stamp_entries(before);
    if (new_entries.size() != old_entries.size()) {
        return false;
    }
    for (std::size_t i = 0; i < new_entries.size(); ++i) {
        if (new_entries[i].first != old_entries[i].first) {
            return false;
        }
        if (new_entries[i].second == old_entries[i].second) {
            continue;
        }
        const auto it = skeleton.entry_edge.find(entry_key(new_entries[i].first, col));
        if (it == skeleton.entry_edge.end()) {
            return false;
        }
        deltas.push_back(EdgeWeightDelta{it->second, new_entries[i].second});
    }
    return true;
}

}  // namespace

IncrementalThroughput IncrementalThroughputAnalysis::compute(const Graph& graph) {
    IncrementalThroughput out;
    std::vector<ActorId> schedule;
    try {
        schedule = sequential_schedule(graph);
    } catch (const DeadlockError&) {
        out.result = deadlocked_result(graph);
        return out;
    }
    if (graph.total_initial_tokens() > kMaxTracedTokens ||
        schedule.size() > kMaxTracedFirings) {
        // Too big to keep warm: same answer, no state.  (throughput_symbolic
        // re-throws the ResourceLimitError of the dense-matrix guard, which
        // then propagates uncached — identical to the plain slot.)
        out.result = throughput_symbolic(graph);
        return out;
    }

    // --- Traced sparse symbolic execution (run_sparse + a trace). --------
    const std::size_t n = static_cast<std::size_t>(graph.total_initial_tokens());
    std::vector<std::deque<MpStamp>> fifo(graph.channel_count());
    {
        std::size_t global = 0;
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            for (Int i = 0; i < graph.channel(c).initial_tokens; ++i) {
                fifo[c].push_back(MpStamp::unit(global++));
            }
        }
    }
    const Adjacency adj = build_adjacency(graph);
    auto skeleton = std::make_shared<IncrementalSkeleton>();
    skeleton->schedule = std::move(schedule);
    skeleton->token_count = n;
    auto state = std::make_shared<IncrementalThroughputState>();
    state->finish.reserve(skeleton->schedule.size());
    std::vector<MpStamp> consumed;
    for (const ActorId a : skeleton->schedule) {
        SDFRED_CHECKPOINT();
        consumed.clear();
        for (const ChannelId ci : adj.inputs[a]) {
            const Int need = graph.channel(ci).consumption;
            for (Int i = 0; i < need; ++i) {
                if (fifo[ci].empty()) {
                    throw Error("internal: admissible schedule underflowed a channel");
                }
                consumed.push_back(std::move(fifo[ci].front()));
                fifo[ci].pop_front();
            }
        }
        const MpStamp finish =
            MpStamp::max_of(consumed).plus(graph.actor(a).execution_time);
        state->finish.push_back(finish);
        for (const ChannelId ci : adj.outputs[a]) {
            for (Int i = 0; i < graph.channel(ci).production; ++i) {
                fifo[ci].push_back(finish);
            }
        }
    }

    // --- Matrix, precedence graph, entry → edge map, certificate. --------
    MpMatrix matrix(n, n);
    state->column.reserve(n);
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        const Int expected = graph.channel(c).initial_tokens;
        if (static_cast<Int>(fifo[c].size()) != expected) {
            throw Error("internal: channel token count changed over an iteration");
        }
        for (Int i = 0; i < expected; ++i) {
            const std::size_t col = state->column.size();
            const MpStamp& stamp = fifo[c][static_cast<std::size_t>(i)];
            stamp.for_each(
                [&](std::size_t row, Int value) { matrix.set(row, col, MpValue(value)); });
            state->column.push_back(stamp);
        }
    }
    const Digraph precedence = matrix.precedence_graph();
    skeleton->entry_edge.reserve(precedence.edge_count());
    for (std::size_t g = 0; g < precedence.edge_count(); ++g) {
        const DigraphEdge& e = precedence.edge(g);
        skeleton->entry_edge.emplace(entry_key(e.from, e.to), g);
    }
    state->certificate = max_cycle_mean_certified(precedence);
    state->skeleton = std::move(skeleton);

    out.result = result_from_metric(state->certificate.metric, repetition_vector(graph));
    out.state = std::move(state);
    return out;
}

Refined<IncrementalThroughput> IncrementalThroughputAnalysis::refine(
    const Result& old, const RefineContext& ctx) {
    using Out = Refined<Result>;
    if (old.result.outcome == ThroughputOutcome::deadlocked) {
        // Liveness is untimed: a pure timing edit cannot wake a deadlocked
        // graph (and the all-zero per-actor vector has no timed content).
        return ctx.log.timing_only() ? Out::keep() : Out::drop();
    }
    if (!ctx.log.timing_only() || !old.state) {
        return Out::drop();
    }
    const IncrementalThroughputState& st = *old.state;
    const IncrementalSkeleton& sk = *st.skeleton;
    const Graph& graph = ctx.graph;

    std::vector<char> touched(graph.actor_count(), 0);
    for (const MutationEvent& e : ctx.log.events()) {
        if (e.kind == MutationKind::execution_time && e.id < touched.size()) {
            touched[e.id] = 1;
        }
    }

    // --- Replay the traced execution, reusing clean finish stamps. -------
    const Adjacency adj = build_adjacency(graph);
    std::vector<std::deque<std::pair<MpStamp, bool>>> fifo(graph.channel_count());
    {
        std::size_t global = 0;
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            for (Int i = 0; i < graph.channel(c).initial_tokens; ++i) {
                fifo[c].emplace_back(MpStamp::unit(global++), false);
            }
        }
        if (global != sk.token_count) {
            return Out::drop();  // token layout moved under us: not a timing edit
        }
    }
    std::vector<MpStamp> finish;
    finish.reserve(sk.schedule.size());
    std::vector<MpStamp> consumed;
    for (std::size_t i = 0; i < sk.schedule.size(); ++i) {
        SDFRED_CHECKPOINT();
        const ActorId a = sk.schedule[i];
        if (a >= graph.actor_count()) {
            return Out::drop();
        }
        bool dirty = touched[a] != 0;
        consumed.clear();
        for (const ChannelId ci : adj.inputs[a]) {
            const Int need = graph.channel(ci).consumption;
            for (Int k = 0; k < need; ++k) {
                if (fifo[ci].empty()) {
                    return Out::drop();
                }
                dirty = dirty || fifo[ci].front().second;
                consumed.push_back(std::move(fifo[ci].front().first));
                fifo[ci].pop_front();
            }
        }
        MpStamp stamp;
        if (!dirty) {
            stamp = st.finish[i];  // untouched cone: the old handle is exact
        } else {
            stamp = MpStamp::max_of(consumed).plus(graph.actor(a).execution_time);
            if (stamp == st.finish[i]) {
                dirty = false;  // edit absorbed (e.g. not on the critical input)
            }
        }
        finish.push_back(stamp);
        for (const ChannelId ci : adj.outputs[a]) {
            for (Int k = 0; k < graph.channel(ci).production; ++k) {
                fifo[ci].emplace_back(stamp, dirty);
            }
        }
    }

    // --- Diff the final columns into precedence-edge weight deltas. ------
    std::vector<MpStamp> column;
    column.reserve(sk.token_count);
    std::vector<EdgeWeightDelta> deltas;
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        if (static_cast<Int>(fifo[c].size()) != graph.channel(c).initial_tokens) {
            return Out::drop();
        }
        for (auto& [stamp, dirty] : fifo[c]) {
            const std::size_t col = column.size();
            if (dirty && !diff_column(stamp, st.column[col], col, sk, deltas)) {
                return Out::drop();
            }
            column.push_back(std::move(stamp));
        }
    }

    // --- Certificate re-check; Karp only on SCCs whose witnesses broke. --
    std::size_t rescored = 0;
    McmCertificate certificate = refine_cycle_mean(st.certificate, deltas, &rescored);

    Result next;
    next.refines = old.refines + 1;
    next.rescored_sccs = old.rescored_sccs + rescored;
    const CycleMetric& metric = certificate.metric;
    if (metric.outcome == CycleOutcome::finite && !metric.value.is_zero() &&
        old.result.outcome == ThroughputOutcome::finite &&
        old.result.period == metric.value) {
        next.result = old.result;  // λ unchanged: per-actor rates carry over
    } else {
        const auto reps = ctx.target.cached<RepetitionVectorAnalysis>();
        next.result = result_from_metric(
            metric, reps ? *reps : RepetitionVectorAnalysis::compute(graph));
    }
    auto state = std::make_shared<IncrementalThroughputState>();
    state->skeleton = st.skeleton;
    state->finish = std::move(finish);
    state->column = std::move(column);
    state->certificate = std::move(certificate);
    next.state = std::move(state);
    return Out::make(std::move(next));
}

std::shared_ptr<const IncrementalThroughput> warm_throughput(const Graph& graph) {
    return graph.analyses()->get<IncrementalThroughputAnalysis>(graph);
}

}  // namespace sdf
