// incremental.hpp — warm-state throughput: compute once, refine per edit.
//
// throughput_symbolic discards everything it learned on the way to λ: the
// per-firing finish stamps of the symbolic execution, the iteration
// matrix's precedence graph, and the reason λ is what it is.  This slot
// keeps all three as an IncrementalThroughputState so that an
// execution-time edit costs
//
//   1. an integer REPLAY of the same schedule that reuses the old finish
//      stamp of every firing the edit cannot reach (dirtiness propagates
//      through consumed tokens and is cut off the moment a recomputed
//      stamp equals the old one),
//   2. a support-aligned DIFF of the final token stamps against the old
//      matrix columns (supports are invariant under pure timing edits —
//      stamp supports are unions of consumed supports, values never enter),
//      yielding edge-weight deltas on the precedence graph, and
//   3. a certificate re-check (maxplus/mcm_certificate.hpp): λ survives in
//      O(changed + critical cycle) when the stored witnesses still hold,
//      and only a dirty SCC ever re-runs Karp.
//
// The slot lives at refine phase 1; ThroughputAnalysis (phase 2) forwards
// to the result refined here, so `cached_throughput` callers get warm
// answers without knowing this layer exists.  Bit-exactness is part of the
// contract: the refined result equals what a from-scratch
// throughput_symbolic on the edited graph would return, Rational for
// Rational (the fuzz oracle `incremental-route` enforces this).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/throughput.hpp"
#include "maxplus/mcm_certificate.hpp"
#include "maxplus/stamp.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// The edit-invariant part of the warm state, shared across refinement
/// generations: the schedule the trace executes, the (row,col) → precedence
/// edge index, and the token count.  All invariant under timing edits.
struct IncrementalSkeleton {
    std::vector<ActorId> schedule;
    /// (row << 32 | col) of a finite matrix entry → its precedence edge id.
    std::unordered_map<std::uint64_t, std::size_t> entry_edge;
    std::size_t token_count = 0;
};

/// Everything needed to absorb the next timing edit without a from-scratch
/// solve.  Immutable; refinement builds the successor generation.
struct IncrementalThroughputState {
    std::shared_ptr<const IncrementalSkeleton> skeleton;
    std::vector<MpStamp> finish;  ///< finish stamp per firing, schedule order
    std::vector<MpStamp> column;  ///< final stamp per initial token (matrix column)
    McmCertificate certificate;   ///< clean SCCs shared with the predecessor
};

/// The slot's result: the throughput answer plus the warm state behind it.
/// `state` is null when the graph is too large to trace (the answer is then
/// a plain throughput_symbolic and edits fall back to lazy recomputation)
/// or the graph deadlocks.  The counters are cumulative over the refinement
/// lineage — the bench and the stats report read them to prove the fast
/// path actually ran.
struct IncrementalThroughput {
    ThroughputResult result;
    std::shared_ptr<const IncrementalThroughputState> state;
    std::uint64_t refines = 0;        ///< timing deltas absorbed so far
    std::uint64_t rescored_sccs = 0;  ///< SCCs that needed a Karp re-solve
};

/// AnalysisManager slot (see sdf/analysis_manager.hpp).  Time-sensitive,
/// refine phase 1: runs after the untimed structural slots so the replay
/// can trust the kept schedule, and before ThroughputAnalysis (phase 2)
/// which forwards to the result refined here.
struct IncrementalThroughputAnalysis {
    using Result = IncrementalThroughput;
    static constexpr const char* kName = "throughput-incremental";
    static constexpr bool kTimeSensitive = true;
    static constexpr int kRefinePhase = 1;
    static Result compute(const Graph& graph);
    static Refined<Result> refine(const Result& old, const RefineContext& ctx);
};

/// Primes (or serves) the warm throughput state of `graph` through its
/// AnalysisManager: the entry point for callers that intend to edit the
/// graph afterwards (`sdfred serve`'s edit op, the incremental bench).
std::shared_ptr<const IncrementalThroughput> warm_throughput(const Graph& graph);

}  // namespace sdf
