#include "analysis/static_schedule.hpp"

#include <algorithm>

#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "sdf/properties.hpp"

namespace sdf {

PeriodicSchedule periodic_schedule(const Graph& graph) {
    require(graph.is_homogeneous(),
            "periodic_schedule requires a homogeneous graph; convert first "
            "(to_hsdf_reduced / to_hsdf_classic)");
    const ThroughputResult throughput = throughput_symbolic(graph);
    if (throughput.outcome == ThroughputOutcome::deadlocked) {
        throw Error("periodic_schedule: graph deadlocks");
    }
    if (!throughput.is_finite()) {
        throw Error("periodic_schedule: period is zero or unconstrained");
    }
    const Rational lambda = throughput.period;

    // Longest-path potentials from an implicit super-source (all offsets
    // start at 0) in the reweighted constraint graph: edge (a, b, d) gives
    // s(b) >= s(a) + T(a) - lambda*d.  At lambda = MCR no cycle has
    // positive reweighted length, so Bellman–Ford converges.
    const std::size_t n = graph.actor_count();
    std::vector<Rational> start(n, Rational(0));
    bool converged = false;
    for (std::size_t round = 0; round <= n && !converged; ++round) {
        converged = true;
        for (const Channel& ch : graph.channels()) {
            const Rational candidate = start[ch.src] +
                                       Rational(graph.actor(ch.src).execution_time) -
                                       lambda * Rational(ch.initial_tokens);
            if (candidate > start[ch.dst]) {
                start[ch.dst] = candidate;
                converged = false;
            }
        }
    }
    if (!converged) {
        throw Error("periodic_schedule: internal error, potentials diverge");
    }
    // Normalise so the earliest offset is 0.
    const Rational minimum = *std::min_element(start.begin(), start.end());
    for (Rational& s : start) {
        s -= minimum;
    }
    return PeriodicSchedule{lambda, std::move(start)};
}

Rational schedule_latency(const Graph& graph, const PeriodicSchedule& schedule,
                          ActorId src, ActorId dst) {
    require(src < graph.actor_count() && dst < graph.actor_count(),
            "actor id out of range");
    require(schedule.start.size() == graph.actor_count(), "schedule/graph mismatch");
    return schedule.start[dst] + Rational(graph.actor(dst).execution_time) -
           schedule.start[src];
}

bool is_admissible_schedule(const Graph& graph, const PeriodicSchedule& schedule) {
    if (schedule.start.size() != graph.actor_count()) {
        return false;
    }
    for (const Channel& ch : graph.channels()) {
        if (!ch.is_homogeneous()) {
            return false;
        }
        const Rational lhs = schedule.start[ch.src] +
                             Rational(graph.actor(ch.src).execution_time);
        const Rational rhs = schedule.start[ch.dst] +
                             schedule.period * Rational(ch.initial_tokens);
        if (lhs > rhs) {
            return false;
        }
    }
    return true;
}

}  // namespace sdf
