// liveness.hpp — liveness (deadlock freedom) of SDF graphs.
//
// A consistent SDF graph is live when one full iteration can execute from
// the initial token distribution; by periodicity it can then execute
// forever.  Equivalently, the classical HSDF expansion has no zero-token
// cycle; both characterisations are implemented and tested against each
// other.
#pragma once

#include "sdf/graph.hpp"

namespace sdf {

/// True when the graph is consistent and deadlock-free (schedulability
/// test on one iteration).
bool is_live(const Graph& graph);

/// Liveness via the HSDF route: the classical expansion has no cycle of
/// zero-token channels.  Exponentially larger intermediate graph; exists
/// for cross-validation.
bool is_live_via_hsdf(const Graph& graph);

}  // namespace sdf
