#include "analysis/governed.hpp"

#include <algorithm>
#include <chrono>
#include <new>

#include "base/errors.hpp"
#include "sdf/repetition.hpp"
#include "sdf/schedule.hpp"
#include "transform/sdf_abstraction.hpp"

namespace sdf {

namespace {

/// Rung 2 requires a classical expansion; only attempt it when the
/// expansion is genuinely small, otherwise the rung would just re-blow the
/// budget that rung 1 already exhausted.
constexpr Int kAbstractionRungMaxCopies = 2048;

/// Step ceiling for the bound rungs.  Deliberately NOT derived from the
/// caller's step budget: a caller asking for max_steps=1 wants the exact
/// route cut off immediately, but the ladder must still be allowed to
/// produce the cheap certified bound — that is the entire point of
/// degradation.  The ceiling is a safety net against the bound rungs
/// themselves running away (e.g. a graph with sum(q) in the billions).
constexpr std::uint64_t kBoundRungStepCeiling = std::uint64_t{1} << 22;

/// Budget slice for a fallback rung: half the original deadline (fresh
/// clock), the fixed step ceiling, and the caller's memory limit (fresh
/// counter — the failed rung's allocations were unwound).  Two fallback
/// rungs therefore keep total wall-clock within ~2x the caller's deadline.
ExecutionBudget bound_rung_slice(const ExecutionBudget& full) {
    ExecutionBudget slice;
    if (full.deadline) {
        slice.deadline = std::max(std::chrono::milliseconds(1), *full.deadline / 2);
    }
    slice.max_steps = kBoundRungStepCeiling;
    slice.max_bytes = full.max_bytes;
    return slice;
}

void add_usage(ResourceUsage& total, const Governor& governor) {
    const ResourceUsage used = governor.usage();
    total.steps += used.steps;
    total.accounted_bytes += used.accounted_bytes;
}

/// Rung 2: Theorem 1 bound through the SDF abstraction.  Returns nullopt
/// when the bound degenerates to all-zero (deadlocked or unbounded
/// abstract graph) — rung 3 then decides deadlock exactly instead of
/// reporting a vacuous bound.
std::optional<ThroughputResult> abstraction_bound(const Graph& graph) {
    const SdfAbstraction abstraction = abstract_sdf(graph);
    const std::vector<Rational> bound = conservative_throughput_bound(graph, abstraction);
    if (bound.empty() || bound[0].is_zero()) {
        return std::nullopt;
    }
    ThroughputResult result;
    result.outcome = ThroughputOutcome::finite;
    result.per_actor = bound;
    // bound[a] = q(a)/(N·lambda_abs) uniformly, so any actor recovers the
    // implied period bound N·lambda_abs >= lambda.
    const std::vector<Int> repetition = repetition_vector(graph);
    result.period = Rational(repetition[0]) / bound[0];
    return result;
}

/// Rung 3: the sequential-schedule bound.  sequential_schedule() doubles
/// as the liveness witness — it throws DeadlockError exactly when the
/// graph deadlocks, in which case zero throughput is the *exact* answer.
ThroughputResult sequential_bound(const Graph& graph) {
    try {
        sequential_schedule(graph);
    } catch (const DeadlockError&) {
        ThroughputResult result;
        result.outcome = ThroughputOutcome::deadlocked;
        result.per_actor.assign(graph.actor_count(), Rational(0));
        return result;
    }
    const std::vector<Int> repetition = repetition_vector(graph);
    Int total_time = 0;
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        total_time = checked_add(total_time,
                                 checked_mul(repetition[a], graph.actor(a).execution_time));
    }
    ThroughputResult result;
    if (total_time == 0) {
        // All execution times are zero, so every cycle mean is zero and the
        // exact analysis reports unbounded throughput as well.
        result.outcome = ThroughputOutcome::unbounded;
        return result;
    }
    result.outcome = ThroughputOutcome::finite;
    result.period = Rational(total_time);
    result.per_actor.reserve(repetition.size());
    for (const Int q : repetition) {
        result.per_actor.push_back(Rational(q) / result.period);
    }
    return result;
}

}  // namespace

Governed<ThroughputResult> governed_throughput(const Graph& graph,
                                               const GovernOptions& options) {
    const auto started = std::chrono::steady_clock::now();
    Governed<ThroughputResult> out;
    const auto finish = [&](Governed<ThroughputResult>& result) -> Governed<ThroughputResult>& {
        result.used.wall_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - started)
                                  .count();
        return result;
    };
    const auto record_trip = [&](BudgetCause cause, const std::string& what) {
        // The first (exact-rung) failure names the cause the caller acts
        // on; later rungs only refine it if the exact rung never tripped.
        if (out.cause == BudgetCause::none) {
            out.cause = cause;
            out.detail = what;
        }
    };

    // ---- Rung 1: exact, under the caller's full budget. -----------------
    {
        Governor governor(options.budget, options.token);
        try {
            const GovernorScope scope(governor);
            ThroughputResult exact = throughput_symbolic(graph);
            add_usage(out.used, governor);
            out.status = GovernedStatus::exact;
            out.method = "symbolic-exact";
            out.value = std::move(exact);
            return finish(out);
        } catch (const BudgetExceeded& e) {
            record_trip(e.cause(), e.what());
        } catch (const ResourceLimitError& e) {
            record_trip(BudgetCause::capacity, e.what());
        } catch (const std::bad_alloc&) {
            record_trip(BudgetCause::memory, "allocation failed (std::bad_alloc)");
        }
        add_usage(out.used, governor);
    }

    if (options.degrade == DegradeMode::never) {
        out.status = GovernedStatus::aborted;
        return finish(out);
    }

    // ---- Rung 2: Theorem 1 abstraction bound (small expansions only). ---
    {
        Governor governor(bound_rung_slice(options.budget), options.token);
        try {
            const GovernorScope scope(governor);
            if (iteration_length(graph) <= kAbstractionRungMaxCopies) {
                std::optional<ThroughputResult> bound = abstraction_bound(graph);
                if (bound) {
                    add_usage(out.used, governor);
                    out.status = GovernedStatus::degraded;
                    out.method = "abstraction-bound";
                    out.value = std::move(*bound);
                    return finish(out);
                }
            }
        } catch (const BudgetExceeded& e) {
            record_trip(e.cause(), e.what());
        } catch (const ResourceLimitError& e) {
            record_trip(BudgetCause::capacity, e.what());
        } catch (const std::bad_alloc&) {
            record_trip(BudgetCause::memory, "allocation failed (std::bad_alloc)");
        }
        add_usage(out.used, governor);
    }

    // ---- Rung 3: sequential-schedule bound (always affordable). ---------
    {
        Governor governor(bound_rung_slice(options.budget), options.token);
        try {
            const GovernorScope scope(governor);
            ThroughputResult bound = sequential_bound(graph);
            add_usage(out.used, governor);
            out.status = bound.outcome == ThroughputOutcome::deadlocked
                             ? GovernedStatus::exact  // deadlock detection is exact
                             : GovernedStatus::degraded;
            out.method = "sequential-bound";
            out.value = std::move(bound);
            return finish(out);
        } catch (const BudgetExceeded& e) {
            record_trip(e.cause(), e.what());
        } catch (const ResourceLimitError& e) {
            record_trip(BudgetCause::capacity, e.what());
        } catch (const std::bad_alloc&) {
            record_trip(BudgetCause::memory, "allocation failed (std::bad_alloc)");
        }
        add_usage(out.used, governor);
    }

    out.status = GovernedStatus::aborted;
    return finish(out);
}

}  // namespace sdf
