// pareto.hpp — throughput / buffer-size trade-off exploration.
//
// The paper motivates its reductions with exactly this kind of expensive
// downstream analysis (Stuijk et al., "Throughput-buffering trade-off
// exploration", cited as [18]): find, for increasing total buffer budget,
// the best achievable throughput.  This module implements the classical
// greedy ascent: start from the minimal live capacities and repeatedly
// enlarge the single channel whose increase improves the period most,
// recording every Pareto point until the unbounded-throughput rate is
// reached (or a step budget runs out).
//
// Capacities are modelled with reverse channels (buffers.hpp), analysis
// runs on the paper's symbolic reduction — which is what makes sweeping
// hundreds of candidate allocations cheap.
#pragma once

#include <vector>

#include "base/rational.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// One point of the trade-off curve.
struct ParetoPoint {
    std::vector<Int> capacities;  ///< per channel (self-loops: initial tokens)
    Int total_buffer = 0;         ///< sum over non-self-loop channels
    Rational period;              ///< iteration period at these capacities
};

/// Options for the exploration.
struct ParetoOptions {
    Int max_steps = 256;          ///< upper bound on greedy enlargement steps
    Int capacity_upper = 1 << 16; ///< per-channel search ceiling for liveness
};

/// Explores the throughput/buffer trade-off of a consistent graph whose
/// unbounded-capacity period is finite and positive.  Returns the Pareto
/// points in order of increasing buffer budget and strictly decreasing
/// period; the last point achieves the unbounded-capacity period.  Throws
/// Error when no finite live capacity exists or the step budget is hit
/// before reaching it.
std::vector<ParetoPoint> buffer_throughput_tradeoff(const Graph& graph,
                                                    const ParetoOptions& options = {});

/// Smallest Pareto point whose period is at most `target`: the cheapest
/// explored buffer allocation meeting a throughput constraint (heuristic:
/// the greedy ascent is not guaranteed globally optimal).  Throws Error
/// when even the final point misses the target.
ParetoPoint minimum_buffer_for_period(const Graph& graph, const Rational& target,
                                      const ParetoOptions& options = {});

}  // namespace sdf
