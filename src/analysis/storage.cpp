#include "analysis/storage.hpp"

#include "base/errors.hpp"
#include "sdf/simulate.hpp"

namespace sdf {

std::vector<Int> self_timed_storage(const Graph& graph) {
    const ThroughputRun run = simulate_throughput(graph);
    if (run.deadlocked) {
        throw DeadlockError("self_timed_storage: graph deadlocks");
    }
    return run.max_space;
}

Int self_timed_storage_total(const Graph& graph) {
    const std::vector<Int> marks = self_timed_storage(graph);
    Int total = 0;
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        if (!graph.channel(c).is_self_loop()) {
            total = checked_add(total, marks[c]);
        }
    }
    return total;
}

}  // namespace sdf
