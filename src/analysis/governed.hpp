// governed.hpp — budgeted anytime throughput analysis.
//
// governed_throughput() is the resource-safe front door to the library's
// throughput machinery.  It descends a degradation ladder until a rung
// finishes within budget:
//
//   rung 1  exact    throughput_symbolic — the sparse symbolic iteration
//                    matrix + Karp, the paper's exact route and the fastest
//                    one by far.  Runs under the caller's full budget.
//   rung 2  bound    the paper-abstraction route: classical expansion +
//                    Definition 4 grouping, whose per-actor bound is
//                    conservative by Theorem 1.  Only attempted on graphs
//                    whose expansion is small, under a fresh half-deadline
//                    slice of the budget.
//   rung 3  bound    the sequential-schedule argument: one iteration
//                    executed back-to-back sequentially takes
//                    T = sum_a q(a)·t(a), and self-timed execution is the
//                    fastest admissible execution, so lambda <= T and
//                    throughput(a) >= q(a)/T.  O(sum q), always affordable
//                    when the graph is analysable at all; it also decides
//                    liveness exactly (the schedule exists iff the graph is
//                    deadlock-free), so deadlock is reported exactly even
//                    from this rung.
//
// Only resource failures move the ladder: BudgetExceeded (a budget or the
// fault injector tripped), std::bad_alloc (the allocator itself gave up),
// and ResourceLimitError (a kernel refused an unaffordable input up
// front).  Semantic errors — inconsistency, invalid structure, arithmetic
// overflow — propagate unchanged from every rung: a graph the exact
// analysis would reject is rejected, never "bounded".
//
// Rungs 2 and 3 run under fresh governors sliced to half the original
// deadline each, so the total wall-clock stays within ~2x the caller's
// deadline even when every rung is attempted.
#pragma once

#include "analysis/throughput.hpp"
#include "robust/governed.hpp"

namespace sdf {

/// Anytime throughput analysis under `options.budget`.  See file comment.
/// The value is exact (status `exact`), a conservative per-actor lower
/// bound (`degraded`, with `period` then an upper bound on the true
/// iteration period), or absent (`aborted`).
Governed<ThroughputResult> governed_throughput(const Graph& graph,
                                               const GovernOptions& options = {});

}  // namespace sdf
