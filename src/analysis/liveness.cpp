#include "analysis/liveness.hpp"

#include "maxplus/mcm.hpp"
#include "sdf/properties.hpp"
#include "sdf/repetition.hpp"
#include "sdf/schedule.hpp"
#include "transform/hsdf_classic.hpp"

namespace sdf {

bool is_live(const Graph& graph) {
    return is_deadlock_free(graph);
}

bool is_live_via_hsdf(const Graph& graph) {
    if (!is_consistent(graph)) {
        return false;
    }
    const ClassicHsdf hsdf = to_hsdf_classic(graph);
    return !has_zero_token_cycle(dependency_digraph(hsdf.graph));
}

}  // namespace sdf
