// latency.hpp — latency measures for timed SDF graphs.
//
// The paper motivates its reductions with both throughput and latency
// analysis [15, 9].  Two standard measures are provided, both under
// self-timed execution with all initial tokens available at time 0:
//
//  * iteration_makespan — the completion time of the last firing of one
//    complete iteration (Section 4.1: "a single execution of the graph of
//    Figure 1(a) takes 23 time units");
//  * response_latency — the completion time of the first firing of a given
//    (output) actor.
#pragma once

#include <optional>

#include "base/checked.hpp"
#include "base/rational.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// Completion time of one full iteration started at time 0.  Throws
/// DeadlockError / InconsistentGraphError when no iteration can execute.
Int iteration_makespan(const Graph& graph);

/// Completion time of the first firing of `actor` under self-timed
/// execution of one iteration; throws Error when the actor never fires.
Int response_latency(const Graph& graph, ActorId actor);

/// Minimal steady-state latency from `src` to `dst` over ALL periodic
/// schedules with period `period` (which must be at least the iteration
/// period): the difference system s(b) − s(a) >= T(a) − period·d has the
/// longest reweighted src→dst path as its tightest feasible spacing, so
///
///     L = (longest path src→dst of Σ T(a_i) − period·Σ d) + T(dst).
///
/// The latency-minimisation question of the paper's citation [9], answered
/// exactly on homogeneous graphs.  Returns std::nullopt when dst is not
/// reachable from src through the constraint graph (their offsets are
/// independent).  For src == dst the empty path yields T(src).  Larger
/// periods can only shrink the minimum (token-crossing paths relax), which
/// the property tests check.
std::optional<Rational> minimum_latency(const Graph& graph, ActorId src, ActorId dst,
                                        const Rational& period);

}  // namespace sdf
