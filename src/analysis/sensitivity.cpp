#include "analysis/sensitivity.hpp"

#include "analysis/throughput.hpp"
#include "base/errors.hpp"
#include "base/thread_pool.hpp"

namespace sdf {

namespace {

Rational period_with_time(Graph graph, ActorId actor, Int time) {
    graph.set_execution_time(actor, time);
    const ThroughputResult t = throughput_symbolic(graph);
    if (!t.is_finite()) {
        throw Error("sensitivity probe produced a non-finite period");
    }
    return t.period;
}

}  // namespace

SensitivityReport sensitivity_analysis(const Graph& graph, Int slack_cap) {
    const ThroughputResult base = throughput_symbolic(graph);
    if (!base.is_finite() || base.period.is_zero()) {
        throw Error("sensitivity_analysis requires a finite positive period");
    }
    SensitivityReport report;
    report.period = base.period;
    report.delta.assign(graph.actor_count(), Rational(0));
    report.slack.assign(graph.actor_count(), Rational(0));
    // Staged as bytes: vector<bool> packs bits, so parallel writes to
    // adjacent actors would race on the shared word.
    std::vector<unsigned char> critical(graph.actor_count(), 0);
    // The per-actor probes are independent (each works on its own retimed
    // copy; the copies share the graph's schedule memo, which is what makes
    // the repeated throughput queries cheap), so they run on the pool.
    parallel_for(0, graph.actor_count(), 1, [&](std::size_t index) {
        const ActorId a = static_cast<ActorId>(index);
        const Int t0 = graph.actor(a).execution_time;
        const Rational bumped = period_with_time(graph, a, checked_add(t0, 1));
        const Rational delta = bumped - base.period;
        report.delta[a] = delta;
        critical[a] = delta.is_zero() ? 0 : 1;
        if (!delta.is_zero()) {
            return;
        }
        // Binary search the largest slack k <= cap with unchanged period.
        Int lo = 1;  // known: period unchanged at +1
        Int hi = slack_cap;
        if (period_with_time(graph, a, checked_add(t0, hi)) == base.period) {
            report.slack[a] = Rational(hi);
            return;
        }
        while (lo + 1 < hi) {
            const Int mid = lo + (hi - lo) / 2;
            if (period_with_time(graph, a, checked_add(t0, mid)) == base.period) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        report.slack[a] = Rational(lo);
    });
    report.critical.assign(critical.begin(), critical.end());
    return report;
}

}  // namespace sdf
