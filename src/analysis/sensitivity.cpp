#include "analysis/sensitivity.hpp"

#include "analysis/throughput.hpp"
#include "base/errors.hpp"

namespace sdf {

namespace {

Rational period_with_time(Graph graph, ActorId actor, Int time) {
    graph.set_execution_time(actor, time);
    const ThroughputResult t = throughput_symbolic(graph);
    if (!t.is_finite()) {
        throw Error("sensitivity probe produced a non-finite period");
    }
    return t.period;
}

}  // namespace

SensitivityReport sensitivity_analysis(const Graph& graph, Int slack_cap) {
    const ThroughputResult base = throughput_symbolic(graph);
    if (!base.is_finite() || base.period.is_zero()) {
        throw Error("sensitivity_analysis requires a finite positive period");
    }
    SensitivityReport report;
    report.period = base.period;
    report.delta.reserve(graph.actor_count());
    report.critical.reserve(graph.actor_count());
    report.slack.reserve(graph.actor_count());
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        const Int t0 = graph.actor(a).execution_time;
        const Rational bumped = period_with_time(graph, a, checked_add(t0, 1));
        const Rational delta = bumped - base.period;
        report.delta.push_back(delta);
        report.critical.push_back(!delta.is_zero());
        if (!delta.is_zero()) {
            report.slack.push_back(Rational(0));
            continue;
        }
        // Binary search the largest slack k <= cap with unchanged period.
        Int lo = 1;  // known: period unchanged at +1
        Int hi = slack_cap;
        if (period_with_time(graph, a, checked_add(t0, hi)) == base.period) {
            report.slack.push_back(Rational(hi));
            continue;
        }
        while (lo + 1 < hi) {
            const Int mid = lo + (hi - lo) / 2;
            if (period_with_time(graph, a, checked_add(t0, mid)) == base.period) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        report.slack.push_back(Rational(lo));
    }
    return report;
}

}  // namespace sdf
