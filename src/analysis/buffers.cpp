#include "analysis/buffers.hpp"

#include "analysis/liveness.hpp"
#include "base/errors.hpp"

namespace sdf {

Graph with_buffer_capacity(const Graph& graph, ChannelId channel, Int capacity) {
    require(channel < graph.channel_count(), "channel id out of range");
    const Channel& ch = graph.channel(channel);
    require(capacity >= ch.initial_tokens,
            "capacity smaller than the channel's initial token count");
    Graph result = graph;
    if (!ch.is_self_loop()) {
        result.add_channel(ch.dst, ch.src, ch.consumption, ch.production,
                           checked_sub(capacity, ch.initial_tokens));
    }
    return result;
}

Graph with_buffer_capacities(const Graph& graph, const std::vector<Int>& capacities) {
    require(capacities.size() == graph.channel_count(),
            "one capacity per channel required");
    Graph result = graph;
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        const Channel& ch = graph.channel(c);
        if (ch.is_self_loop()) {
            continue;
        }
        require(capacities[c] >= ch.initial_tokens,
                "capacity smaller than the channel's initial token count");
        result.add_channel(ch.dst, ch.src, ch.consumption, ch.production,
                           checked_sub(capacities[c], ch.initial_tokens));
    }
    return result;
}

Int minimum_live_capacity(const Graph& graph, ChannelId channel, Int upper) {
    require(channel < graph.channel_count(), "channel id out of range");
    Int lo = graph.channel(channel).initial_tokens;
    if (!is_live(with_buffer_capacity(graph, channel, upper))) {
        throw Error("graph is not live even at the capacity upper bound");
    }
    Int hi = upper;
    while (lo < hi) {
        const Int mid = lo + (hi - lo) / 2;
        if (is_live(with_buffer_capacity(graph, channel, mid))) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    return lo;
}

}  // namespace sdf
