// throughput.hpp — throughput analysis of timed SDF graphs.
//
// The throughput of actor a under self-timed execution is the long-run
// number of firings of a per time unit.  For a consistent, deadlock-free
// graph it equals q(a)/λ, where q is the repetition vector and λ the
// iteration period: the max-plus eigenvalue of the graph's iteration matrix
// (= max cycle mean of the matrix's precedence graph; = max cycle ratio of
// the equivalent HSDF).
//
// Three independent routes compute the same quantity and are cross-checked
// against one another throughout the test suite:
//
//  1. throughput_symbolic        — Algorithm 1's symbolic execution gives
//                                  the iteration matrix; Karp's algorithm
//                                  gives its eigenvalue exactly.  This is
//                                  the method of [8, 7] the paper builds on
//                                  and the fastest route by far.
//  2. throughput_via_classic_hsdf — the baseline pipeline of [11, 15]:
//                                  classical expansion to an HSDF, then an
//                                  exact maximum-cycle-ratio computation.
//  3. throughput_simulation      — explicit self-timed state-space
//                                  exploration until a recurrent state [8].
//
// Graphs in which some actor is on no cycle have unbounded throughput
// (reported, not computed); deadlocked graphs have throughput zero.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "base/rational.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// How a throughput query resolved.
enum class ThroughputOutcome {
    deadlocked,  ///< execution stalls; all throughputs are zero
    unbounded,   ///< no cycle constrains the rate (or a zero-time cycle)
    finite,      ///< well-defined positive period
};

/// Result of a throughput analysis.
struct ThroughputResult {
    ThroughputOutcome outcome = ThroughputOutcome::finite;
    /// Iteration period λ (time per iteration); meaningful when finite.
    Rational period;
    /// Per-actor throughput q(a)/λ; zeros when deadlocked, empty when
    /// unbounded.
    std::vector<Rational> per_actor;

    [[nodiscard]] bool is_finite() const { return outcome == ThroughputOutcome::finite; }
};

/// Route 1: symbolic iteration matrix + Karp (exact, recommended).
ThroughputResult throughput_symbolic(const Graph& graph);

/// AnalysisManager slot for route 1 (see sdf/analysis_manager.hpp): the
/// pass pipeline and the verify-each hooks query throughput after every
/// step, so the exact result is cached per graph.  Delta-aware at refine
/// phase 2: when the warm-state slot (analysis/incremental.hpp, phase 1)
/// absorbed the edit, this slot forwards its refined result; a timing edit
/// on a deadlocked graph keeps the zero answer outright; anything else
/// drops for lazy recomputation.
struct ThroughputAnalysis {
    using Result = ThroughputResult;
    static constexpr const char* kName = "throughput";
    static constexpr bool kTimeSensitive = true;
    static constexpr int kRefinePhase = 2;
    static Result compute(const Graph& graph) { return throughput_symbolic(graph); }
    static Refined<Result> refine(const Result& old, const RefineContext& ctx);
};

/// throughput_symbolic through the graph's AnalysisManager: computes on
/// first use, serves the cache afterwards.  Throws what the direct route
/// throws (inconsistency), which is never cached.
std::shared_ptr<const ThroughputResult> cached_throughput(const Graph& graph);

/// Route 2: classical HSDF conversion + exact maximum cycle ratio.
ThroughputResult throughput_via_classic_hsdf(const Graph& graph);

/// Route 3: self-timed state-space simulation (exact; exponential state
/// space in the worst case — intended for validation on small graphs).
ThroughputResult throughput_simulation(const Graph& graph,
                                       std::size_t max_events = 1u << 22);

/// Convenience: the iteration period λ via route 1; throws Error unless the
/// outcome is finite.
Rational iteration_period(const Graph& graph);

/// Exact per-actor self-timed firing rates for general (not necessarily
/// strongly connected) graphs.  The q(a)/λ convention of the routes above
/// uses the GLOBAL period — exact for strongly connected graphs but merely
/// conservative when a slow component cannot actually throttle a fast one.
/// This analysis decomposes the graph into strongly connected components,
/// computes each component's own eigenrate, and propagates rate constraints
/// along the condensation: a component runs at the minimum of its own rate
/// and what its upstream components deliver.  nullopt marks an unbounded
/// rate (actor not on and not downstream of any constraining cycle).
struct SelfTimedThroughput {
    bool deadlocked = false;
    std::vector<std::optional<Rational>> per_actor;  ///< firings per time unit
};
SelfTimedThroughput throughput_self_timed(const Graph& graph);

}  // namespace sdf
