// deadlock.hpp — deadlock diagnosis with a witness.
//
// is_live() answers yes/no; when designing a graph (or choosing buffer
// capacities) one wants to know *why* an iteration cannot complete.  The
// analysis runs the maximal partial execution of one iteration and, on a
// stall, reports per blocked actor which input channel starves it and by
// how many tokens.
#pragma once

#include <string>
#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

/// One starving dependency of a blocked actor.
struct Starvation {
    ActorId actor = 0;        ///< the blocked actor
    ChannelId channel = 0;    ///< the input channel lacking tokens
    Int available = 0;        ///< tokens present when execution stalled
    Int required = 0;         ///< tokens one firing needs (consumption rate)
    Int remaining_firings = 0;  ///< firings of `actor` still owed this iteration
};

/// Diagnosis of one iteration's execution.
struct DeadlockDiagnosis {
    bool deadlocked = false;          ///< false: the iteration completes
    std::vector<Starvation> blocked;  ///< empty when not deadlocked

    /// Human-readable multi-line report ("actor X blocked on channel
    /// Y->X: has 1 of 3 tokens, 2 firings remaining").
    [[nodiscard]] std::string describe(const Graph& graph) const;
};

/// Executes the maximal prefix of one iteration and reports the stall, if
/// any.  Throws InconsistentGraphError when the graph has no repetition
/// vector.
DeadlockDiagnosis diagnose_deadlock(const Graph& graph);

}  // namespace sdf
