#include "analysis/throughput.hpp"

#include <algorithm>

#include "analysis/incremental.hpp"

#include "base/errors.hpp"
#include "maxplus/mcm.hpp"
#include "robust/budget.hpp"
#include "sdf/properties.hpp"
#include "sdf/repetition.hpp"
#include "sdf/schedule.hpp"
#include "sdf/simulate.hpp"
#include "transform/hsdf_classic.hpp"
#include "transform/symbolic.hpp"

namespace sdf {

namespace {

/// Turns a period λ into per-actor throughputs q(a)/λ.
ThroughputResult finite_result(const Graph& graph, const Rational& period) {
    ThroughputResult result;
    if (period.is_zero()) {
        result.outcome = ThroughputOutcome::unbounded;
        return result;
    }
    result.outcome = ThroughputOutcome::finite;
    result.period = period;
    const std::vector<Int> repetition = repetition_vector(graph);
    result.per_actor.reserve(repetition.size());
    for (const Int q : repetition) {
        result.per_actor.push_back(Rational(q) / period);
    }
    return result;
}

ThroughputResult deadlocked_result(const Graph& graph) {
    ThroughputResult result;
    result.outcome = ThroughputOutcome::deadlocked;
    result.per_actor.assign(graph.actor_count(), Rational(0));
    return result;
}

}  // namespace

Refined<ThroughputResult> ThroughputAnalysis::refine(const Result& old,
                                                     const RefineContext& ctx) {
    using Out = Refined<Result>;
    // Phase 2: the warm-state slot has already decided whether it could
    // absorb the delta; its result IS a from-scratch-equal throughput.
    if (const auto warm = ctx.target.cached<IncrementalThroughputAnalysis>()) {
        return Out::make(warm->result);
    }
    if (old.outcome == ThroughputOutcome::deadlocked && ctx.log.timing_only()) {
        return Out::keep();  // liveness is untimed, the zero vector has no times
    }
    return Out::drop();
}

ThroughputResult throughput_symbolic(const Graph& graph) {
    SymbolicIteration iteration;
    try {
        iteration = symbolic_iteration(graph);
    } catch (const DeadlockError&) {
        return deadlocked_result(graph);
    }
    const CycleMetric metric = max_cycle_mean_karp(iteration.matrix.precedence_graph());
    if (metric.outcome == CycleOutcome::no_cycle) {
        ThroughputResult result;
        result.outcome = ThroughputOutcome::unbounded;
        return result;
    }
    return finite_result(graph, metric.value);
}

ThroughputResult throughput_via_classic_hsdf(const Graph& graph) {
    const ClassicHsdf hsdf = to_hsdf_classic(graph);
    const Digraph digraph = dependency_digraph(hsdf.graph);
    const CycleMetric metric = max_cycle_ratio_exact(digraph);
    switch (metric.outcome) {
        case CycleOutcome::no_cycle: {
            ThroughputResult result;
            result.outcome = ThroughputOutcome::unbounded;
            return result;
        }
        case CycleOutcome::infinite:
            // A zero-token cycle in the HSDF is exactly a deadlock of the
            // original graph.
            return deadlocked_result(graph);
        case CycleOutcome::finite:
            return finite_result(graph, metric.value);
    }
    throw Error("unreachable");
}

ThroughputResult throughput_simulation(const Graph& graph, std::size_t max_events) {
    // Under a step budget the event cap derives from it: firing more events
    // than the remaining step allowance could only end in a checkpoint trip
    // anyway, and the derived cap reports the same typed BudgetExceeded a
    // few states earlier (before the recurrent-state map grows further).
    if (const Governor* governor = current_governor()) {
        if (const auto budget_steps = governor->budget().max_steps) {
            max_events = std::min(max_events, static_cast<std::size_t>(*budget_steps));
        }
    }
    const ThroughputRun run = simulate_throughput(graph, max_events);
    if (run.deadlocked) {
        return deadlocked_result(graph);
    }
    const std::vector<Int> repetition = repetition_vector(graph);
    // An actor with zero firings in the recurrent window is permanently
    // starved: self-timed execution is deterministic, so whatever did not
    // happen within one period never happens.  Other components may keep
    // spinning, but no complete iteration ever finishes — a deadlock in
    // the iteration semantics that routes 1 and 2 report.
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        if (run.period_firings[a] == 0) {
            return deadlocked_result(graph);
        }
    }
    // Recover λ per actor as q(a) · period_time / period_firings(a) and
    // take the maximum: components that are not rate-coupled to the
    // critical cycle fire faster than q(a)/λ under self-timed execution,
    // so only the slowest (= critical) component witnesses the global
    // iteration period.
    Rational period(0);
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        const Rational candidate =
            Rational(repetition[a]) * Rational(run.period_time, run.period_firings[a]);
        period = std::max(period, candidate);
    }
    return finite_result(graph, period);
}

Rational iteration_period(const Graph& graph) {
    const ThroughputResult result = throughput_symbolic(graph);
    if (!result.is_finite()) {
        throw Error("graph '" + graph.name() + "' has no finite iteration period");
    }
    return result.period;
}

SelfTimedThroughput throughput_self_timed(const Graph& graph) {
    SelfTimedThroughput result;
    if (!is_deadlock_free(graph)) {
        result.deadlocked = true;
        result.per_actor.assign(graph.actor_count(), Rational(0));
        return result;
    }
    result.per_actor.assign(graph.actor_count(), std::nullopt);

    // Condensation of the dependency digraph; components come out of
    // Tarjan in reverse topological order, so iterating component index
    // DESCENDING processes sources first.
    const Digraph deps = dependency_digraph(graph);
    std::size_t component_count = 0;
    const auto component = deps.strongly_connected_components(&component_count);

    // Per-component actor lists.
    std::vector<std::vector<ActorId>> members(component_count);
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        members[component[a]].push_back(a);
    }

    // x[c] is the component's cycle rate multiplier: actor a in c fires at
    // x[c] * q_c(a) where q_c is the component-local repetition vector.
    std::vector<std::optional<Rational>> multiplier(component_count, std::nullopt);
    std::vector<std::vector<Int>> local_q(component_count);

    for (std::size_t c = component_count; c-- > 0;) {
        // Build the component subgraph (internal channels only).
        Graph sub("scc");
        std::vector<std::size_t> local_index(graph.actor_count(), 0);
        for (const ActorId a : members[c]) {
            local_index[a] = sub.add_actor(graph.actor(a).name,
                                           graph.actor(a).execution_time);
        }
        for (const Channel& ch : graph.channels()) {
            if (component[ch.src] == c && component[ch.dst] == c) {
                sub.add_channel(local_index[ch.src], local_index[ch.dst],
                                ch.production, ch.consumption, ch.initial_tokens);
            }
        }
        local_q[c] = repetition_vector(sub);

        // Own eigenrate: x <= 1/lambda_local (per local iteration).
        std::optional<Rational> x;
        const ThroughputResult own = throughput_symbolic(sub);
        if (own.outcome == ThroughputOutcome::deadlocked) {
            throw Error("internal: live graph has a deadlocked component");
        }
        if (own.is_finite()) {
            x = own.period.reciprocal();
        }
        // Upstream constraints: for a channel src -> dst entering the
        // component, rate(dst) * c <= rate(src) * p, i.e.
        // x * q_c(dst) * c <= rate(src) * p.
        for (const Channel& ch : graph.channels()) {
            if (component[ch.dst] != c || component[ch.src] == c) {
                continue;
            }
            const std::optional<Rational>& upstream = result.per_actor[ch.src];
            if (!upstream) {
                continue;  // unbounded upstream imposes nothing
            }
            const Rational bound =
                *upstream * Rational(ch.production) /
                (Rational(local_q[c][local_index[ch.dst]]) * Rational(ch.consumption));
            if (!x || bound < *x) {
                x = bound;
            }
        }
        multiplier[c] = x;
        for (const ActorId a : members[c]) {
            if (x) {
                result.per_actor[a] = *x * Rational(local_q[c][local_index[a]]);
            }
        }
    }
    return result;
}

std::shared_ptr<const ThroughputResult> cached_throughput(const Graph& graph) {
    return graph.analyses()->get<ThroughputAnalysis>(graph);
}

}  // namespace sdf
