// buffers.hpp — modelling bounded channel capacities.
//
// SDF channels are unbounded FIFOs; real interconnects are not.  The
// standard modelling trick (used by the buffer-sizing work the paper cites
// [18, 19]) makes a capacity explicit: a channel (a, b, p, c, d) bounded to
// B tokens gains a reverse channel (b, a, c, p, B − d) whose tokens
// represent free buffer space.  Producing then requires space, and all
// throughput/latency analyses apply unchanged to the closed graph.
#pragma once

#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

/// Returns a copy of `graph` with channel `channel` bounded to `capacity`
/// tokens (capacity must be at least the channel's initial tokens).
Graph with_buffer_capacity(const Graph& graph, ChannelId channel, Int capacity);

/// Bounds every channel; `capacities` is indexed by channel id.  Self-loop
/// channels are left unchanged (a reverse self-loop adds nothing).
Graph with_buffer_capacities(const Graph& graph, const std::vector<Int>& capacities);

/// Smallest capacity of `channel` (searched in [initial tokens, upper])
/// that keeps the graph live.  Liveness is monotone in capacity, so this is
/// a binary search.  Throws Error when even `upper` deadlocks.
Int minimum_live_capacity(const Graph& graph, ChannelId channel, Int upper);

}  // namespace sdf
