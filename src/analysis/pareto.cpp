#include "analysis/pareto.hpp"

#include <optional>

#include "analysis/buffers.hpp"
#include "analysis/liveness.hpp"
#include "analysis/throughput.hpp"
#include "base/errors.hpp"

namespace sdf {

namespace {

/// Period of `graph` with the given capacities; nullopt when the closed
/// graph deadlocks.
std::optional<Rational> period_at(const Graph& graph, const std::vector<Int>& capacities) {
    const ThroughputResult t = throughput_symbolic(with_buffer_capacities(graph, capacities));
    switch (t.outcome) {
        case ThroughputOutcome::deadlocked:
            return std::nullopt;
        case ThroughputOutcome::unbounded:
            return Rational(0);
        case ThroughputOutcome::finite:
            return t.period;
    }
    throw Error("unreachable");
}

Int total_buffer(const Graph& graph, const std::vector<Int>& capacities) {
    Int total = 0;
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        if (!graph.channel(c).is_self_loop()) {
            total = checked_add(total, capacities[c]);
        }
    }
    return total;
}

}  // namespace

std::vector<ParetoPoint> buffer_throughput_tradeoff(const Graph& graph,
                                                    const ParetoOptions& options) {
    const ThroughputResult open = throughput_symbolic(graph);
    if (!open.is_finite()) {
        throw Error("buffer_throughput_tradeoff: unbounded-capacity graph must have a "
                    "finite positive period (add self-loops first)");
    }
    const Rational target = open.period;

    // Start point: minimal live capacity per channel.
    std::vector<Int> capacities(graph.channel_count(), 0);
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        const Channel& ch = graph.channel(c);
        capacities[c] = ch.is_self_loop()
                            ? ch.initial_tokens
                            : minimum_live_capacity(graph, c, options.capacity_upper);
    }
    // The per-channel minima may deadlock jointly; enlarge until live.
    for (Int guard = 0; !is_live(with_buffer_capacities(graph, capacities)); ++guard) {
        if (guard > options.max_steps) {
            throw Error("buffer_throughput_tradeoff: no jointly live capacity found");
        }
        // Enlarge the channel the deadlocked execution starves on most
        // cheaply: bump every non-self-loop channel by one token's worth.
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            if (!graph.channel(c).is_self_loop()) {
                capacities[c] = checked_add(capacities[c], 1);
            }
        }
    }

    std::vector<ParetoPoint> points;
    std::optional<Rational> current = period_at(graph, capacities);
    if (!current) {
        throw Error("internal: live capacities reported deadlock");
    }
    points.push_back(ParetoPoint{capacities, total_buffer(graph, capacities), *current});

    for (Int step = 0; *current > target && step < options.max_steps; ++step) {
        // Greedy: the +1 enlargement with the best period improvement.
        std::optional<ChannelId> best;
        Rational best_period = *current;
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            if (graph.channel(c).is_self_loop()) {
                continue;
            }
            std::vector<Int> candidate = capacities;
            candidate[c] = checked_add(candidate[c], 1);
            const std::optional<Rational> period = period_at(graph, candidate);
            if (period && *period < best_period) {
                best_period = *period;
                best = c;
            }
        }
        if (!best) {
            // No single +1 helps: enlarge the currently binding channels
            // together (plateau crossing) — bump all non-self-loops.
            for (ChannelId c = 0; c < graph.channel_count(); ++c) {
                if (!graph.channel(c).is_self_loop()) {
                    capacities[c] = checked_add(capacities[c], 1);
                }
            }
        } else {
            capacities[*best] = checked_add(capacities[*best], 1);
        }
        const std::optional<Rational> period = period_at(graph, capacities);
        if (!period) {
            continue;
        }
        if (*period < *current) {
            current = period;
            points.push_back(
                ParetoPoint{capacities, total_buffer(graph, capacities), *current});
        }
    }
    if (*current > target) {
        throw Error("buffer_throughput_tradeoff: step budget exhausted before "
                    "reaching the unbounded-capacity period");
    }
    return points;
}

ParetoPoint minimum_buffer_for_period(const Graph& graph, const Rational& target,
                                      const ParetoOptions& options) {
    for (const ParetoPoint& point : buffer_throughput_tradeoff(graph, options)) {
        if (point.period <= target) {
            return point;
        }
    }
    throw Error("minimum_buffer_for_period: target period " + target.to_string() +
                " is below the unbounded-capacity period");
}

}  // namespace sdf
