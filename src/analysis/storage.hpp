// storage.hpp — self-timed channel storage requirements.
//
// Under fully self-timed execution (as fast as possible, unbounded FIFOs)
// each channel needs a certain amount of space; granting exactly that much
// capacity provably changes nothing about the execution, so throughput is
// preserved (the property tests check this through buffers.hpp).  Space is
// accounted the way the capacity model charges it: a producer claims room
// for its outputs when a firing STARTS, a consumer frees the room when its
// firing COMPLETES.  The marks are taken over the transient plus one full
// period of the self-timed execution, i.e. they are the all-time maxima.
//
// This is an upper bound on the minimal buffering required for maximal
// throughput — the quantity the exact trade-off exploration (pareto.hpp)
// refines from below.
#pragma once

#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

/// Per-channel space-claim high-water marks of the self-timed execution.
/// Requires the same preconditions as simulate_throughput (every actor on
/// a cycle, no zero-time cycles) and throws DeadlockError when the graph
/// deadlocks.
std::vector<Int> self_timed_storage(const Graph& graph);

/// Total over all non-self-loop channels.
Int self_timed_storage_total(const Graph& graph);

}  // namespace sdf
