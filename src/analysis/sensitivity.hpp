// sensitivity.hpp — execution-time sensitivity of the iteration period.
//
// Design-space exploration wants to know where optimisation effort pays:
// actors on a critical cycle increase the period one-for-one when they slow
// down (and may speed the graph up when optimised); actors off every
// critical cycle have slack.  The analysis probes each actor with a unit
// execution-time increase and reports the exact period delta — brute force
// but cheap on top of the paper's symbolic reduction, and exact where
// closed-form critical-cycle extraction gets fiddly (an actor fires many
// times per iteration, so its time can appear several times on one cycle:
// the delta can exceed 1).
#pragma once

#include <vector>

#include "base/rational.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// Per-actor sensitivity of the iteration period.
struct SensitivityReport {
    Rational period;                 ///< λ of the unmodified graph
    std::vector<Rational> delta;     ///< λ(T(a)+1) − λ, per actor (>= 0)
    std::vector<bool> critical;      ///< delta[a] > 0 (actor on a critical cycle)
    std::vector<Rational> slack;     ///< largest k with λ(T(a)+k) == λ; capped
};

/// Probes every actor.  The graph must have a finite positive period.
/// `slack_cap` bounds the per-actor slack search (the slack of an actor on
/// no cycle is infinite; it is reported as the cap).
SensitivityReport sensitivity_analysis(const Graph& graph, Int slack_cap = 1 << 20);

}  // namespace sdf
