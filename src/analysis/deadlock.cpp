#include "analysis/deadlock.hpp"

#include <deque>

#include "sdf/repetition.hpp"

namespace sdf {

DeadlockDiagnosis diagnose_deadlock(const Graph& graph) {
    const std::vector<Int> repetition = repetition_vector(graph);
    const std::size_t n = graph.actor_count();

    std::vector<std::vector<ChannelId>> inputs(n);
    std::vector<std::vector<ChannelId>> outputs(n);
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        inputs[graph.channel(c).dst].push_back(c);
        outputs[graph.channel(c).src].push_back(c);
    }

    std::vector<Int> tokens;
    tokens.reserve(graph.channel_count());
    for (const Channel& c : graph.channels()) {
        tokens.push_back(c.initial_tokens);
    }
    std::vector<Int> remaining = repetition;

    // Greedy maximal execution (same fixed point regardless of order).
    bool progress = true;
    while (progress) {
        progress = false;
        for (ActorId a = 0; a < n; ++a) {
            while (remaining[a] > 0) {
                bool enabled = true;
                for (const ChannelId ci : inputs[a]) {
                    if (tokens[ci] < graph.channel(ci).consumption) {
                        enabled = false;
                        break;
                    }
                }
                if (!enabled) {
                    break;
                }
                for (const ChannelId ci : inputs[a]) {
                    tokens[ci] -= graph.channel(ci).consumption;
                }
                for (const ChannelId ci : outputs[a]) {
                    tokens[ci] = checked_add(tokens[ci], graph.channel(ci).production);
                }
                --remaining[a];
                progress = true;
            }
        }
    }

    DeadlockDiagnosis diagnosis;
    for (ActorId a = 0; a < n; ++a) {
        if (remaining[a] == 0) {
            continue;
        }
        diagnosis.deadlocked = true;
        for (const ChannelId ci : inputs[a]) {
            const Channel& ch = graph.channel(ci);
            if (tokens[ci] < ch.consumption) {
                diagnosis.blocked.push_back(Starvation{
                    a, ci, tokens[ci], ch.consumption, remaining[a]});
            }
        }
    }
    return diagnosis;
}

std::string DeadlockDiagnosis::describe(const Graph& graph) const {
    if (!deadlocked) {
        return "live: one full iteration completes\n";
    }
    std::string out = "deadlock: the iteration stalls\n";
    for (const Starvation& s : blocked) {
        const Channel& ch = graph.channel(s.channel);
        out += "  actor " + graph.actor(s.actor).name + " blocked on channel " +
               graph.actor(ch.src).name + " -> " + graph.actor(ch.dst).name +
               ": has " + std::to_string(s.available) + " of " +
               std::to_string(s.required) + " tokens, " +
               std::to_string(s.remaining_firings) + " firing(s) remaining\n";
    }
    return out;
}

}  // namespace sdf
