// text.hpp — a plain-text SDF graph format.
//
// Line-oriented, whitespace-separated, '#' starts a comment:
//
//     graph h263decoder
//     actor VLD 26018
//     actor IQ  559
//     channel VLD IQ 594 1 0     # src dst production consumption tokens
//
// Actors must be declared before the channels that use them.  The format
// round-trips exactly (tested) and exists so experiments and examples can
// be driven from files without the XML machinery.
#pragma once

#include <iosfwd>
#include <string>

#include "io/source_map.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// Parses a graph from the text format; throws ParseError with a
/// line-numbered message on malformed input.  When `locations` is non-null
/// it receives the line of every actor and channel declaration (and the
/// file path, for the file reader).
Graph read_text(std::istream& input, SourceMap* locations = nullptr);
Graph read_text_string(const std::string& text, SourceMap* locations = nullptr);
Graph read_text_file(const std::string& path, SourceMap* locations = nullptr);

/// Writes the text format.
void write_text(std::ostream& output, const Graph& graph);
std::string write_text_string(const Graph& graph);
void write_text_file(const std::string& path, const Graph& graph);

}  // namespace sdf
