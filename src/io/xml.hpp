// xml.hpp — reading and writing SDF3-style XML application graphs.
//
// The layout follows the SDF3 tool set the paper extends ([17], sdf3.xml
// schema) closely enough that simple SDF3 files load directly:
//
//   <sdf3 type="sdf" version="1.0">
//     <applicationGraph name="g">
//       <sdf name="g" type="G">
//         <actor name="a" type="a">
//           <port name="p0" type="out" rate="594"/>
//         </actor>
//         <channel name="ch0" srcActor="a" srcPort="p0"
//                  dstActor="b" dstPort="p1" initialTokens="1"/>
//       </sdf>
//       <sdfProperties>
//         <actorProperties actor="a">
//           <processor type="proc_0" default="true">
//             <executionTime time="26018"/>
//           </processor>
//         </actorProperties>
//       </sdfProperties>
//     </applicationGraph>
//   </sdf3>
//
// Missing executionTime entries default to 0; missing initialTokens to 0.
#pragma once

#include <string>

#include "io/source_map.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// Parses an SDF3-style document; throws ParseError on malformed input.
/// When `locations` is non-null it receives the line/column of every
/// <actor> and <channel> element (and the file path, for the file reader).
Graph read_xml_string(const std::string& text, SourceMap* locations = nullptr);
Graph read_xml_file(const std::string& path, SourceMap* locations = nullptr);

/// Serialises the graph in the layout above.
std::string write_xml_string(const Graph& graph);
void write_xml_file(const std::string& path, const Graph& graph);

}  // namespace sdf
