// xml_node.hpp — a minimal XML document model and parser.
//
// Supports exactly what the SDF3-style graph format needs: nested elements,
// double-quoted attributes, self-closing tags, comments, XML declarations
// and the five predefined entities.  No namespaces, CDATA or DTDs.  Element
// text content is ignored (the graph format carries everything in
// attributes).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace sdf {

/// One XML element.
class XmlNode {
public:
    std::string name;
    std::size_t line = 0;    ///< 1-based line of the opening '<'; 0 = unknown
    std::size_t column = 0;  ///< 1-based column of the opening '<'
    std::map<std::string, std::string> attributes;
    std::vector<XmlNode> children;

    /// Attribute value, if present.
    [[nodiscard]] std::optional<std::string> attribute(const std::string& key) const;

    /// Attribute value; throws ParseError when missing.
    [[nodiscard]] const std::string& required_attribute(const std::string& key) const;

    /// First child element with the given tag name, if any.
    [[nodiscard]] const XmlNode* child(const std::string& tag) const;

    /// All child elements with the given tag name.
    [[nodiscard]] std::vector<const XmlNode*> children_named(const std::string& tag) const;
};

/// Parses one XML document and returns its root element; throws ParseError
/// on malformed input.
XmlNode parse_xml(const std::string& text);

/// Escapes &, <, >, " and ' for attribute values.
std::string xml_escape(const std::string& text);

}  // namespace sdf
