#include "io/dot.hpp"

#include <fstream>
#include <sstream>

#include "base/errors.hpp"

namespace sdf {

std::string write_dot_string(const Graph& graph) {
    std::ostringstream out;
    out << "digraph \"" << (graph.name().empty() ? "sdf" : graph.name()) << "\" {\n";
    out << "  rankdir=LR;\n  node [shape=circle];\n";
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        const Actor& actor = graph.actor(a);
        out << "  a" << a << " [label=\"" << actor.name << "\\n(" << actor.execution_time
            << ")\"];\n";
    }
    for (const Channel& ch : graph.channels()) {
        out << "  a" << ch.src << " -> a" << ch.dst << " [label=\"";
        bool first = true;
        if (!ch.is_homogeneous()) {
            out << ch.production << ":" << ch.consumption;
            first = false;
        }
        if (ch.initial_tokens > 0) {
            if (!first) {
                out << " ";
            }
            out << "d=" << ch.initial_tokens;
        }
        out << "\"];\n";
    }
    out << "}\n";
    return out.str();
}

void write_dot_file(const std::string& path, const Graph& graph) {
    std::ofstream stream(path);
    if (!stream) {
        throw ParseError("cannot open '" + path + "' for writing");
    }
    stream << write_dot_string(graph);
}

}  // namespace sdf
