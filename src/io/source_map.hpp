// source_map.hpp — source locations of parsed graph elements.
//
// The file readers (io/text.hpp, io/xml.hpp) can record where in the input
// every actor and channel was declared.  The lint subsystem uses this to
// anchor diagnostics to the offending line of the model file; error
// messages elsewhere reuse it for the same purpose.  Locations are
// 1-based; line 0 means "unknown" (e.g. a graph built programmatically).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

/// One position in a model file.  line == 0 means the location is unknown.
struct SourceLoc {
    std::size_t line = 0;
    std::size_t column = 0;

    [[nodiscard]] bool known() const { return line != 0; }

    friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Where every actor and channel of a parsed graph was declared.
struct SourceMap {
    std::string file;                 ///< path as given to the reader ("" for strings)
    std::vector<SourceLoc> actors;    ///< indexed by ActorId
    std::vector<SourceLoc> channels;  ///< indexed by ChannelId

    [[nodiscard]] SourceLoc actor(ActorId id) const {
        return id < actors.size() ? actors[id] : SourceLoc{};
    }
    [[nodiscard]] SourceLoc channel(ChannelId id) const {
        return id < channels.size() ? channels[id] : SourceLoc{};
    }
};

}  // namespace sdf
