#include "io/csdf_xml.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "base/errors.hpp"
#include "base/string_util.hpp"
#include "io/xml_node.hpp"

namespace sdf {

namespace {

std::vector<Int> parse_int_list(const std::string& text, const std::string& what) {
    std::vector<Int> values;
    for (const std::string& field : split(text, ',')) {
        const auto value = parse_int(field);
        if (!value) {
            throw ParseError(what + " list entry '" + field + "' is not an integer");
        }
        values.push_back(*value);
    }
    return values;
}

std::string format_int_list(const std::vector<Int>& values) {
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i > 0) {
            out += ",";
        }
        out += std::to_string(values[i]);
    }
    return out;
}

}  // namespace

CsdfGraph read_csdf_xml_string(const std::string& text) {
    const XmlNode root = parse_xml(text);
    if (root.name != "sdf3") {
        throw ParseError("root element must be <sdf3>, got <" + root.name + ">");
    }
    const XmlNode* app = root.child("applicationGraph");
    if (app == nullptr) {
        throw ParseError("<sdf3> misses <applicationGraph>");
    }
    const XmlNode* csdf_node = app->child("csdf");
    if (csdf_node == nullptr) {
        throw ParseError("<applicationGraph> misses <csdf>");
    }

    CsdfGraph graph(app->attribute("name").value_or(""));

    // Execution times per actor from <csdfProperties>.
    std::map<std::string, std::vector<Int>> phase_times;
    if (const XmlNode* properties = app->child("csdfProperties")) {
        for (const XmlNode* actor_props : properties->children_named("actorProperties")) {
            const std::string& actor = actor_props->required_attribute("actor");
            for (const XmlNode* processor : actor_props->children_named("processor")) {
                if (const XmlNode* et = processor->child("executionTime")) {
                    phase_times[actor] =
                        parse_int_list(et->required_attribute("time"), "executionTime");
                }
            }
        }
    }

    std::map<std::pair<std::string, std::string>, std::vector<Int>> port_rate;
    for (const XmlNode* actor : csdf_node->children_named("actor")) {
        const std::string& name = actor->required_attribute("name");
        const auto et = phase_times.find(name);
        if (et == phase_times.end()) {
            throw ParseError("actor '" + name + "' has no executionTime (phase count "
                             "is taken from it)");
        }
        graph.add_actor(name, et->second);
        for (const XmlNode* port : actor->children_named("port")) {
            port_rate[{name, port->required_attribute("name")}] =
                parse_int_list(port->attribute("rate").value_or("1"), "rate");
        }
    }

    for (const XmlNode* channel : csdf_node->children_named("channel")) {
        const std::string& src = channel->required_attribute("srcActor");
        const std::string& dst = channel->required_attribute("dstActor");
        const auto src_id = graph.find_actor(src);
        const auto dst_id = graph.find_actor(dst);
        if (!src_id || !dst_id) {
            throw ParseError("channel references unknown actor '" + (src_id ? dst : src) +
                             "'");
        }
        const auto rates_of = [&](const std::string& actor, const std::string& port_attr,
                                  std::size_t phases) -> std::vector<Int> {
            const auto port = channel->attribute(port_attr);
            if (!port) {
                return std::vector<Int>(phases, 1);
            }
            const auto it = port_rate.find({actor, *port});
            if (it == port_rate.end()) {
                throw ParseError("channel references unknown port '" + *port +
                                 "' of actor '" + actor + "'");
            }
            return it->second;
        };
        Int tokens = 0;
        if (const auto text = channel->attribute("initialTokens")) {
            const auto value = parse_int(*text);
            if (!value) {
                throw ParseError("initialTokens is not an integer");
            }
            tokens = *value;
        }
        try {
            graph.add_channel(*src_id, *dst_id,
                              rates_of(src, "srcPort", graph.actor(*src_id).phase_count()),
                              rates_of(dst, "dstPort", graph.actor(*dst_id).phase_count()),
                              tokens);
        } catch (const InvalidGraphError& e) {
            throw ParseError(e.what());
        }
    }
    return graph;
}

CsdfGraph read_csdf_xml_file(const std::string& path) {
    std::ifstream stream(path);
    if (!stream) {
        throw ParseError("cannot open '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    return read_csdf_xml_string(buffer.str());
}

std::string write_csdf_xml_string(const CsdfGraph& graph) {
    std::ostringstream out;
    const std::string name = graph.name().empty() ? "graph" : graph.name();
    out << "<?xml version=\"1.0\"?>\n";
    out << "<sdf3 type=\"csdf\" version=\"1.0\">\n";
    out << "  <applicationGraph name=\"" << xml_escape(name) << "\">\n";
    out << "    <csdf name=\"" << xml_escape(name) << "\" type=\"" << xml_escape(name)
        << "\">\n";
    for (CsdfActorId a = 0; a < graph.actor_count(); ++a) {
        const CsdfActor& actor = graph.actor(a);
        out << "      <actor name=\"" << xml_escape(actor.name) << "\" type=\""
            << xml_escape(actor.name) << "\">\n";
        for (CsdfChannelId c = 0; c < graph.channel_count(); ++c) {
            const CsdfChannel& ch = graph.channel(c);
            if (ch.src == a) {
                out << "        <port name=\"out" << c << "\" type=\"out\" rate=\""
                    << format_int_list(ch.production) << "\"/>\n";
            }
            if (ch.dst == a) {
                out << "        <port name=\"in" << c << "\" type=\"in\" rate=\""
                    << format_int_list(ch.consumption) << "\"/>\n";
            }
        }
        out << "      </actor>\n";
    }
    for (CsdfChannelId c = 0; c < graph.channel_count(); ++c) {
        const CsdfChannel& ch = graph.channel(c);
        out << "      <channel name=\"ch" << c << "\" srcActor=\""
            << xml_escape(graph.actor(ch.src).name) << "\" srcPort=\"out" << c
            << "\" dstActor=\"" << xml_escape(graph.actor(ch.dst).name)
            << "\" dstPort=\"in" << c << "\"";
        if (ch.initial_tokens > 0) {
            out << " initialTokens=\"" << ch.initial_tokens << "\"";
        }
        out << "/>\n";
    }
    out << "    </csdf>\n";
    out << "    <csdfProperties>\n";
    for (const CsdfActor& actor : graph.actors()) {
        out << "      <actorProperties actor=\"" << xml_escape(actor.name) << "\">\n";
        out << "        <processor type=\"proc_0\" default=\"true\">\n";
        out << "          <executionTime time=\"" << format_int_list(actor.phase_times)
            << "\"/>\n";
        out << "        </processor>\n";
        out << "      </actorProperties>\n";
    }
    out << "    </csdfProperties>\n";
    out << "  </applicationGraph>\n";
    out << "</sdf3>\n";
    return out.str();
}

void write_csdf_xml_file(const std::string& path, const CsdfGraph& graph) {
    std::ofstream stream(path);
    if (!stream) {
        throw ParseError("cannot open '" + path + "' for writing");
    }
    stream << write_csdf_xml_string(graph);
}

}  // namespace sdf
