#include "io/xml_node.hpp"

#include <tuple>
#include <utility>

#include "base/errors.hpp"

namespace sdf {

std::optional<std::string> XmlNode::attribute(const std::string& key) const {
    const auto it = attributes.find(key);
    if (it == attributes.end()) {
        return std::nullopt;
    }
    return it->second;
}

const std::string& XmlNode::required_attribute(const std::string& key) const {
    const auto it = attributes.find(key);
    if (it == attributes.end()) {
        throw ParseError("element <" + name + "> misses attribute '" + key + "'");
    }
    return it->second;
}

const XmlNode* XmlNode::child(const std::string& tag) const {
    for (const XmlNode& c : children) {
        if (c.name == tag) {
            return &c;
        }
    }
    return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(const std::string& tag) const {
    std::vector<const XmlNode*> result;
    for (const XmlNode& c : children) {
        if (c.name == tag) {
            result.push_back(&c);
        }
    }
    return result;
}

namespace {

/// Recursive-descent depth cap: real SDF3 documents nest a handful of
/// levels; anything deeper is hostile input and is refused with a typed
/// error before the per-level recursion can exhaust the stack (which is
/// much shallower under sanitizers).
constexpr int kMaxElementDepth = 256;

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    XmlNode parse_document() {
        skip_misc();
        XmlNode root = parse_element();
        skip_misc();
        if (pos_ != text_.size()) {
            fail("trailing content after root element");
        }
        return root;
    }

private:
    /// Line and column (1-based) of `offset`.  Queries arrive in roughly
    /// increasing offset order, so the scan memoises its last position and
    /// only walks forward — amortised linear over a whole parse.
    std::pair<std::size_t, std::size_t> location_at(std::size_t offset) {
        if (offset < scanned_to_) {
            scanned_to_ = 0;
            scanned_line_ = 1;
            scanned_line_start_ = 0;
        }
        while (scanned_to_ < offset && scanned_to_ < text_.size()) {
            if (text_[scanned_to_] == '\n') {
                ++scanned_line_;
                scanned_line_start_ = scanned_to_ + 1;
            }
            ++scanned_to_;
        }
        return {scanned_line_, offset - scanned_line_start_ + 1};
    }

    [[noreturn]] void fail(const std::string& message) {
        const auto [line, column] = location_at(pos_);
        throw ParseError("xml: " + message + " (line " + std::to_string(line) +
                         ", column " + std::to_string(column) + ")");
    }

    [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
    [[nodiscard]] char peek() const { return text_[pos_]; }

    void skip_whitespace() {
        while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
            ++pos_;
        }
    }

    /// Skips whitespace, comments, XML declarations and processing
    /// instructions between elements.
    void skip_misc() {
        while (true) {
            skip_whitespace();
            if (starts_with("<!--")) {
                const std::size_t end = text_.find("-->", pos_ + 4);
                if (end == std::string::npos) {
                    fail("unterminated comment");
                }
                pos_ = end + 3;
            } else if (starts_with("<?")) {
                const std::size_t end = text_.find("?>", pos_ + 2);
                if (end == std::string::npos) {
                    fail("unterminated processing instruction");
                }
                pos_ = end + 2;
            } else {
                return;
            }
        }
    }

    [[nodiscard]] bool starts_with(const std::string& prefix) const {
        return text_.compare(pos_, prefix.size(), prefix) == 0;
    }

    [[nodiscard]] static bool is_name_char(char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
               c == '_' || c == '-' || c == '.' || c == ':';
    }

    std::string parse_name() {
        const std::size_t start = pos_;
        while (!eof() && is_name_char(peek())) {
            ++pos_;
        }
        if (pos_ == start) {
            fail("expected a name");
        }
        return text_.substr(start, pos_ - start);
    }

    std::string parse_attribute_value() {
        if (eof() || peek() != '"') {
            fail("expected '\"' starting an attribute value");
        }
        ++pos_;
        std::string value;
        while (!eof() && peek() != '"') {
            if (peek() == '&') {
                value += parse_entity();
            } else {
                value += peek();
                ++pos_;
            }
        }
        if (eof()) {
            fail("unterminated attribute value");
        }
        ++pos_;  // closing quote
        return value;
    }

    char parse_entity() {
        const std::size_t end = text_.find(';', pos_);
        if (end == std::string::npos) {
            fail("unterminated entity");
        }
        const std::string entity = text_.substr(pos_, end - pos_ + 1);
        pos_ = end + 1;
        if (entity == "&amp;") return '&';
        if (entity == "&lt;") return '<';
        if (entity == "&gt;") return '>';
        if (entity == "&quot;") return '"';
        if (entity == "&apos;") return '\'';
        fail("unsupported entity '" + entity + "'");
    }

    XmlNode parse_element() {
        if (depth_ >= kMaxElementDepth) {
            fail("element nesting deeper than " + std::to_string(kMaxElementDepth) +
                 " levels");
        }
        ++depth_;
        const DepthGuard guard{depth_};
        if (eof() || peek() != '<') {
            fail("expected '<'");
        }
        XmlNode node;
        std::tie(node.line, node.column) = location_at(pos_);
        ++pos_;
        node.name = parse_name();
        while (true) {
            skip_whitespace();
            if (eof()) {
                fail("unterminated start tag <" + node.name + ">");
            }
            if (peek() == '>') {
                ++pos_;
                break;
            }
            if (starts_with("/>")) {
                pos_ += 2;
                return node;  // self-closing
            }
            const std::string key = parse_name();
            skip_whitespace();
            if (eof() || peek() != '=') {
                fail("expected '=' after attribute '" + key + "'");
            }
            ++pos_;
            skip_whitespace();
            node.attributes[key] = parse_attribute_value();
        }
        // Content: child elements until the matching end tag; text is
        // skipped.
        while (true) {
            // Skip character data.
            while (!eof() && peek() != '<') {
                ++pos_;
            }
            if (eof()) {
                fail("missing end tag </" + node.name + ">");
            }
            if (starts_with("</")) {
                pos_ += 2;
                const std::string closing = parse_name();
                if (closing != node.name) {
                    fail("mismatched end tag </" + closing + "> for <" + node.name + ">");
                }
                skip_whitespace();
                if (eof() || peek() != '>') {
                    fail("malformed end tag </" + closing + ">");
                }
                ++pos_;
                return node;
            }
            if (starts_with("<!--")) {
                const std::size_t end = text_.find("-->", pos_ + 4);
                if (end == std::string::npos) {
                    fail("unterminated comment");
                }
                pos_ = end + 3;
                continue;
            }
            node.children.push_back(parse_element());
        }
    }

    struct DepthGuard {
        int& depth;
        ~DepthGuard() { --depth; }
    };

    const std::string& text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    // Memoised newline scan for location_at().
    std::size_t scanned_to_ = 0;
    std::size_t scanned_line_ = 1;
    std::size_t scanned_line_start_ = 0;
};

}  // namespace

XmlNode parse_xml(const std::string& text) {
    Parser parser(text);
    return parser.parse_document();
}

std::string xml_escape(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            case '\'': out += "&apos;"; break;
            default: out += c;
        }
    }
    return out;
}

}  // namespace sdf
