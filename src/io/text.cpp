#include "io/text.hpp"

#include <fstream>
#include <sstream>

#include "base/errors.hpp"
#include "base/string_util.hpp"

namespace sdf {

namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& message) {
    throw ParseError("line " + std::to_string(line) + ": " + message);
}

Int parse_int_or_fail(const std::string& field, std::size_t line, const std::string& what) {
    const auto value = parse_int(field);
    if (!value) {
        parse_fail(line, "expected integer for " + what + ", got '" + field + "'");
    }
    return *value;
}

}  // namespace

Graph read_text(std::istream& input, SourceMap* locations) {
    Graph graph;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(input, line)) {
        ++line_number;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        const auto fields = split_whitespace(line);
        if (fields.empty()) {
            continue;
        }
        const std::string& keyword = fields[0];
        if (keyword == "graph") {
            if (fields.size() != 2) {
                parse_fail(line_number, "graph takes exactly one name");
            }
            graph.set_name(fields[1]);
        } else if (keyword == "actor") {
            if (fields.size() != 3) {
                parse_fail(line_number, "actor takes a name and an execution time");
            }
            try {
                graph.add_actor(fields[1],
                                parse_int_or_fail(fields[2], line_number, "execution time"));
            } catch (const InvalidGraphError& e) {
                parse_fail(line_number, e.what());
            }
            if (locations != nullptr) {
                locations->actors.push_back(SourceLoc{line_number, 1});
            }
        } else if (keyword == "channel") {
            if (fields.size() != 6) {
                parse_fail(line_number,
                           "channel takes src dst production consumption tokens");
            }
            const auto src = graph.find_actor(fields[1]);
            const auto dst = graph.find_actor(fields[2]);
            if (!src) {
                parse_fail(line_number, "unknown source actor '" + fields[1] + "'");
            }
            if (!dst) {
                parse_fail(line_number, "unknown destination actor '" + fields[2] + "'");
            }
            try {
                graph.add_channel(*src, *dst,
                                  parse_int_or_fail(fields[3], line_number, "production"),
                                  parse_int_or_fail(fields[4], line_number, "consumption"),
                                  parse_int_or_fail(fields[5], line_number, "tokens"));
            } catch (const InvalidGraphError& e) {
                parse_fail(line_number, e.what());
            }
            if (locations != nullptr) {
                locations->channels.push_back(SourceLoc{line_number, 1});
            }
        } else {
            parse_fail(line_number, "unknown keyword '" + keyword + "'");
        }
    }
    return graph;
}

Graph read_text_string(const std::string& text, SourceMap* locations) {
    std::istringstream stream(text);
    return read_text(stream, locations);
}

Graph read_text_file(const std::string& path, SourceMap* locations) {
    std::ifstream stream(path);
    if (!stream) {
        throw ParseError("cannot open '" + path + "'");
    }
    Graph graph = read_text(stream, locations);
    if (locations != nullptr) {
        locations->file = path;
    }
    return graph;
}

void write_text(std::ostream& output, const Graph& graph) {
    if (!graph.name().empty()) {
        output << "graph " << graph.name() << "\n";
    }
    for (const Actor& a : graph.actors()) {
        output << "actor " << a.name << " " << a.execution_time << "\n";
    }
    for (const Channel& c : graph.channels()) {
        output << "channel " << graph.actor(c.src).name << " " << graph.actor(c.dst).name
               << " " << c.production << " " << c.consumption << " " << c.initial_tokens
               << "\n";
    }
}

std::string write_text_string(const Graph& graph) {
    std::ostringstream stream;
    write_text(stream, graph);
    return stream.str();
}

void write_text_file(const std::string& path, const Graph& graph) {
    std::ofstream stream(path);
    if (!stream) {
        throw ParseError("cannot open '" + path + "' for writing");
    }
    write_text(stream, graph);
}

}  // namespace sdf
