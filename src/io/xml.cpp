#include "io/xml.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "base/errors.hpp"
#include "base/string_util.hpp"
#include "io/xml_node.hpp"

namespace sdf {

namespace {

Int parse_int_attr(const XmlNode& node, const std::string& key, Int fallback) {
    const auto text = node.attribute(key);
    if (!text) {
        return fallback;
    }
    const auto value = parse_int(*text);
    if (!value) {
        throw ParseError("attribute " + key + "=\"" + *text + "\" is not an integer");
    }
    return *value;
}

}  // namespace

Graph read_xml_string(const std::string& text, SourceMap* locations) {
    const XmlNode root = parse_xml(text);
    if (root.name != "sdf3") {
        throw ParseError("root element must be <sdf3>, got <" + root.name + ">");
    }
    const XmlNode* app = root.child("applicationGraph");
    if (app == nullptr) {
        throw ParseError("<sdf3> misses <applicationGraph>");
    }
    const XmlNode* sdf_node = app->child("sdf");
    if (sdf_node == nullptr) {
        throw ParseError("<applicationGraph> misses <sdf>");
    }

    Graph graph(app->attribute("name").value_or(sdf_node->attribute("name").value_or("")));

    // Execution times from <sdfProperties>, keyed by actor name.
    std::map<std::string, Int> execution_time;
    if (const XmlNode* properties = app->child("sdfProperties")) {
        for (const XmlNode* actor_props : properties->children_named("actorProperties")) {
            const std::string& actor = actor_props->required_attribute("actor");
            for (const XmlNode* processor : actor_props->children_named("processor")) {
                if (const XmlNode* et = processor->child("executionTime")) {
                    execution_time[actor] = parse_int_attr(*et, "time", 0);
                }
            }
        }
    }

    // Actors and their port rates.
    std::map<std::pair<std::string, std::string>, Int> port_rate;
    for (const XmlNode* actor : sdf_node->children_named("actor")) {
        const std::string& name = actor->required_attribute("name");
        const auto et = execution_time.find(name);
        graph.add_actor(name, et == execution_time.end() ? 0 : et->second);
        if (locations != nullptr) {
            locations->actors.push_back(SourceLoc{actor->line, actor->column});
        }
        for (const XmlNode* port : actor->children_named("port")) {
            port_rate[{name, port->required_attribute("name")}] =
                parse_int_attr(*port, "rate", 1);
        }
    }

    // Channels: rates resolve through the named ports.
    for (const XmlNode* channel : sdf_node->children_named("channel")) {
        const std::string& src = channel->required_attribute("srcActor");
        const std::string& dst = channel->required_attribute("dstActor");
        const auto src_id = graph.find_actor(src);
        const auto dst_id = graph.find_actor(dst);
        if (!src_id || !dst_id) {
            throw ParseError("channel references unknown actor '" + (src_id ? dst : src) +
                             "'");
        }
        const auto rate_of = [&](const std::string& actor,
                                 const std::string& port_attr) -> Int {
            const auto port = channel->attribute(port_attr);
            if (!port) {
                return 1;
            }
            const auto it = port_rate.find({actor, *port});
            if (it == port_rate.end()) {
                throw ParseError("channel references unknown port '" + *port +
                                 "' of actor '" + actor + "'");
            }
            return it->second;
        };
        graph.add_channel(*src_id, *dst_id, rate_of(src, "srcPort"), rate_of(dst, "dstPort"),
                          parse_int_attr(*channel, "initialTokens", 0));
        if (locations != nullptr) {
            locations->channels.push_back(SourceLoc{channel->line, channel->column});
        }
    }
    return graph;
}

Graph read_xml_file(const std::string& path, SourceMap* locations) {
    std::ifstream stream(path);
    if (!stream) {
        throw ParseError("cannot open '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    Graph graph = read_xml_string(buffer.str(), locations);
    if (locations != nullptr) {
        locations->file = path;
    }
    return graph;
}

std::string write_xml_string(const Graph& graph) {
    std::ostringstream out;
    const std::string name = graph.name().empty() ? "graph" : graph.name();
    out << "<?xml version=\"1.0\"?>\n";
    out << "<sdf3 type=\"sdf\" version=\"1.0\">\n";
    out << "  <applicationGraph name=\"" << xml_escape(name) << "\">\n";
    out << "    <sdf name=\"" << xml_escape(name) << "\" type=\"" << xml_escape(name)
        << "\">\n";
    // One output port per outgoing channel, one input port per incoming.
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        const Actor& actor = graph.actor(a);
        out << "      <actor name=\"" << xml_escape(actor.name) << "\" type=\""
            << xml_escape(actor.name) << "\">\n";
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            const Channel& ch = graph.channel(c);
            if (ch.src == a) {
                out << "        <port name=\"out" << c << "\" type=\"out\" rate=\""
                    << ch.production << "\"/>\n";
            }
            if (ch.dst == a) {
                out << "        <port name=\"in" << c << "\" type=\"in\" rate=\""
                    << ch.consumption << "\"/>\n";
            }
        }
        out << "      </actor>\n";
    }
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        const Channel& ch = graph.channel(c);
        out << "      <channel name=\"ch" << c << "\" srcActor=\""
            << xml_escape(graph.actor(ch.src).name) << "\" srcPort=\"out" << c
            << "\" dstActor=\"" << xml_escape(graph.actor(ch.dst).name)
            << "\" dstPort=\"in" << c << "\"";
        if (ch.initial_tokens > 0) {
            out << " initialTokens=\"" << ch.initial_tokens << "\"";
        }
        out << "/>\n";
    }
    out << "    </sdf>\n";
    out << "    <sdfProperties>\n";
    for (const Actor& actor : graph.actors()) {
        out << "      <actorProperties actor=\"" << xml_escape(actor.name) << "\">\n";
        out << "        <processor type=\"proc_0\" default=\"true\">\n";
        out << "          <executionTime time=\"" << actor.execution_time << "\"/>\n";
        out << "        </processor>\n";
        out << "      </actorProperties>\n";
    }
    out << "    </sdfProperties>\n";
    out << "  </applicationGraph>\n";
    out << "</sdf3>\n";
    return out.str();
}

void write_xml_file(const std::string& path, const Graph& graph) {
    std::ofstream stream(path);
    if (!stream) {
        throw ParseError("cannot open '" + path + "' for writing");
    }
    stream << write_xml_string(graph);
}

}  // namespace sdf
