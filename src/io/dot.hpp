// dot.hpp — Graphviz export for visual inspection of graphs and of the
// reduction results (the abstract graphs and Figure 4 structures in the
// examples are best checked by eye).
#pragma once

#include <string>

#include "sdf/graph.hpp"

namespace sdf {

/// Renders the graph in Graphviz DOT.  Actors become circles labelled
/// "name (T)"; channels become arrows labelled with rates (omitted when
/// homogeneous) and token dots rendered as "d=<count>".
std::string write_dot_string(const Graph& graph);
void write_dot_file(const std::string& path, const Graph& graph);

}  // namespace sdf
