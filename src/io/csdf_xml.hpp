// csdf_xml.hpp — SDF3-style XML for cyclo-static graphs.
//
// Same document layout as xml.hpp but with type="csdf", a <csdf> element
// and comma-separated per-phase lists on port rates and execution times,
// matching the SDF3 csdf schema:
//
//   <actor name="scaler" type="scaler">
//     <port name="in0" type="in" rate="1,1,2"/>
//   </actor>
//   ...
//   <executionTime time="10,10,16"/>
#pragma once

#include <string>

#include "csdf/graph.hpp"

namespace sdf {

/// Parses a csdf-typed SDF3-style document; throws ParseError on malformed
/// input.
CsdfGraph read_csdf_xml_string(const std::string& text);
CsdfGraph read_csdf_xml_file(const std::string& path);

/// Serialises the graph.
std::string write_csdf_xml_string(const CsdfGraph& graph);
void write_csdf_xml_file(const std::string& path, const CsdfGraph& graph);

}  // namespace sdf
