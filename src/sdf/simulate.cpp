#include "sdf/simulate.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <string>
#include <unordered_map>

#include "base/errors.hpp"
#include "robust/budget.hpp"
#include "sdf/properties.hpp"
#include "sdf/repetition.hpp"

namespace sdf {

namespace {

/// Shared self-timed engine.  `quota[a]` limits the number of firings of
/// actor a (negative = unlimited).  Runs until either all quotas are
/// exhausted, execution deadlocks, or — in throughput mode — the state
/// recurs.
class Engine {
public:
    Engine(const Graph& graph, std::vector<Int> quota, std::size_t max_events)
        : graph_(graph), quota_(std::move(quota)), max_events_(max_events) {
        const std::size_t n = graph.actor_count();
        inputs_.resize(n);
        outputs_.resize(n);
        for (ChannelId c = 0; c < graph.channel_count(); ++c) {
            inputs_[graph.channel(c).dst].push_back(c);
            outputs_[graph.channel(c).src].push_back(c);
        }
        tokens_.reserve(graph.channel_count());
        for (const Channel& ch : graph.channels()) {
            tokens_.push_back(ch.initial_tokens);
        }
        max_tokens_ = tokens_;
        space_claims_ = tokens_;
        max_space_ = tokens_;
        firings_.assign(n, 0);
        completion_times_.assign(n, 0);
        first_completion_times_.assign(n, -1);
    }

    [[nodiscard]] Int now() const { return now_; }
    [[nodiscard]] Int makespan() const { return makespan_; }
    [[nodiscard]] const std::vector<Int>& firings() const { return firings_; }
    [[nodiscard]] const std::vector<Int>& completion_times() const { return completion_times_; }
    [[nodiscard]] const std::vector<Int>& first_completion_times() const {
        return first_completion_times_;
    }
    [[nodiscard]] const std::vector<Int>& max_tokens() const { return max_tokens_; }
    [[nodiscard]] const std::vector<Int>& max_space() const { return max_space_; }

    /// Forbids new firings from starting at or after `deadline` (the
    /// horizon mode of simulate_until).
    void set_start_deadline(Int deadline) { start_deadline_ = deadline; }

    /// Completion time of the earliest in-flight firing; only valid when
    /// not idle.
    [[nodiscard]] Int next_event_time() const { return in_flight_.top().first; }

    /// Starts every firing currently possible (respecting quotas).
    void start_enabled() {
        if (start_deadline_ >= 0 && now_ >= start_deadline_) {
            return;
        }
        bool progress = true;
        while (progress) {
            progress = false;
            for (ActorId a = 0; a < graph_.actor_count(); ++a) {
                while ((quota_[a] != 0) && enabled(a)) {
                    consume(a);
                    in_flight_.emplace(checked_add(now_, graph_.actor(a).execution_time), a);
                    if (quota_[a] > 0) {
                        --quota_[a];
                    }
                    SDFRED_CHECKPOINT();
                    if (++started_ > max_events_) {
                        throw BudgetExceeded(
                            BudgetCause::steps,
                            "self-timed simulation exceeded its event budget of " +
                                std::to_string(max_events_) +
                                " firings; is every actor on a cycle?");
                    }
                    progress = true;
                }
            }
        }
    }

    /// Advances to the earliest completion and processes all completions at
    /// that time.  Returns false when nothing is in flight.
    bool advance() {
        if (in_flight_.empty()) {
            return false;
        }
        SDFRED_CHECKPOINT();
        now_ = in_flight_.top().first;
        while (!in_flight_.empty() && in_flight_.top().first == now_) {
            const ActorId a = in_flight_.top().second;
            in_flight_.pop();
            produce(a);
            if (firings_[a] == 0) {
                first_completion_times_[a] = now_;
            }
            ++firings_[a];
            completion_times_[a] = now_;
            makespan_ = std::max(makespan_, now_);
        }
        return true;
    }

    /// True when some quota is still open.
    [[nodiscard]] bool work_remaining() const {
        return std::any_of(quota_.begin(), quota_.end(), [](Int q) { return q != 0; });
    }

    [[nodiscard]] bool idle() const { return in_flight_.empty(); }

    /// Canonical encoding of the timing state relative to `now_`: channel
    /// token counts plus the sorted multiset of (remaining time, actor) of
    /// firings in flight.  Equal encodings resume identically (self-timed
    /// execution is deterministic), so a repeat witnesses periodicity.
    [[nodiscard]] std::string state_key() const {
        std::string key;
        key.reserve(tokens_.size() * 4 + in_flight_.size() * 8);
        for (const Int t : tokens_) {
            key += std::to_string(t);
            key += ',';
        }
        key += '|';
        auto copy = in_flight_;
        std::vector<std::pair<Int, ActorId>> pending;
        while (!copy.empty()) {
            pending.push_back(copy.top());
            copy.pop();
        }
        std::sort(pending.begin(), pending.end());
        for (const auto& [finish, actor] : pending) {
            key += std::to_string(checked_sub(finish, now_));
            key += ':';
            key += std::to_string(actor);
            key += ',';
        }
        return key;
    }

private:
    [[nodiscard]] bool enabled(ActorId a) const {
        for (const ChannelId ci : inputs_[a]) {
            if (tokens_[ci] < graph_.channel(ci).consumption) {
                return false;
            }
        }
        return true;
    }

    void consume(ActorId a) {
        for (const ChannelId ci : inputs_[a]) {
            tokens_[ci] -= graph_.channel(ci).consumption;
        }
        // Space accounting: a starting firing CLAIMS room for its outputs
        // immediately (the reverse-channel model consumes free-space tokens
        // at firing start); the space high-water mark is therefore the
        // capacity that reproduces this execution unchanged.
        for (const ChannelId ci : outputs_[a]) {
            space_claims_[ci] = checked_add(space_claims_[ci],
                                            graph_.channel(ci).production);
            max_space_[ci] = std::max(max_space_[ci], space_claims_[ci]);
        }
    }

    void produce(ActorId a) {
        for (const ChannelId ci : outputs_[a]) {
            tokens_[ci] = checked_add(tokens_[ci], graph_.channel(ci).production);
            max_tokens_[ci] = std::max(max_tokens_[ci], tokens_[ci]);
        }
        // Space is released when the CONSUMER finishes (reverse-channel
        // tokens appear at the consumer's completion).
        for (const ChannelId ci : inputs_[a]) {
            space_claims_[ci] -= graph_.channel(ci).consumption;
        }
    }

    const Graph& graph_;
    std::vector<std::vector<ChannelId>> inputs_;
    std::vector<std::vector<ChannelId>> outputs_;
    std::vector<Int> tokens_;
    std::vector<Int> max_tokens_;
    std::vector<Int> space_claims_;
    std::vector<Int> max_space_;
    std::vector<Int> quota_;
    std::vector<Int> firings_;
    std::vector<Int> completion_times_;
    std::vector<Int> first_completion_times_;
    // Min-heap of (finish time, actor).
    std::priority_queue<std::pair<Int, ActorId>, std::vector<std::pair<Int, ActorId>>,
                        std::greater<>> in_flight_;
    Int now_ = 0;
    Int makespan_ = 0;
    Int start_deadline_ = -1;  ///< negative: no deadline
    std::size_t started_ = 0;
    std::size_t max_events_;
};

}  // namespace

FiniteRun simulate_iterations(const Graph& graph, Int iterations) {
    require(iterations >= 0, "negative iteration count");
    const std::vector<Int> repetition = repetition_vector(graph);
    std::vector<Int> quota;
    quota.reserve(repetition.size());
    for (const Int q : repetition) {
        quota.push_back(checked_mul(q, iterations));
    }
    Engine engine(graph, quota, 1u << 26);
    engine.start_enabled();
    while (engine.advance()) {
        engine.start_enabled();
    }
    if (engine.work_remaining()) {
        throw DeadlockError("graph '" + graph.name() + "' deadlocked during finite run");
    }
    FiniteRun run;
    run.makespan = engine.makespan();
    run.firings = engine.firings();
    run.completion_times = engine.completion_times();
    run.first_completion_times = engine.first_completion_times();
    run.max_tokens = engine.max_tokens();
    run.max_space = engine.max_space();
    return run;
}

FiniteRun simulate_until(const Graph& graph, Int horizon, std::size_t max_events) {
    require(horizon >= 0, "negative horizon");
    repetition_vector(graph);  // reject inconsistent graphs up front
    Engine engine(graph, std::vector<Int>(graph.actor_count(), -1), max_events);
    engine.set_start_deadline(horizon);
    engine.start_enabled();
    // Process completions while they fall within the horizon; later ones
    // belong to firings that would still be in flight at the cut.
    while (!engine.idle() && engine.next_event_time() <= horizon) {
        engine.advance();
        engine.start_enabled();
    }
    FiniteRun run;
    run.makespan = engine.makespan();
    run.firings = engine.firings();
    run.completion_times = engine.completion_times();
    run.first_completion_times = engine.first_completion_times();
    run.max_tokens = engine.max_tokens();
    run.max_space = engine.max_space();
    return run;
}

ThroughputRun simulate_throughput(const Graph& graph, std::size_t max_events) {
    // Unlimited quotas; boundedness requires every actor on a cycle.
    if (!every_actor_on_cycle(graph)) {
        throw Error("simulate_throughput: some actor is not on a cycle; "
                    "its self-timed throughput is unbounded (see add_self_loops)");
    }
    repetition_vector(graph);  // reject inconsistent graphs up front

    const std::size_t n = graph.actor_count();
    Engine engine(graph, std::vector<Int>(n, -1), max_events);

    struct Snapshot {
        Int time;
        std::vector<Int> firings;
    };
    std::unordered_map<std::string, Snapshot> seen;

    ThroughputRun run;
    run.throughput.assign(n, Rational(0));

    engine.start_enabled();
    while (true) {
        const std::string key = engine.state_key();
        const auto it = seen.find(key);
        if (it != seen.end()) {
            const Int period = checked_sub(engine.now(), it->second.time);
            if (period <= 0) {
                throw Error("self-timed execution recurred without time progress "
                            "(zero-time cycle); throughput is unbounded");
            }
            run.transient_time = it->second.time;
            run.period_time = period;
            run.period_firings.resize(n);
            for (ActorId a = 0; a < n; ++a) {
                run.period_firings[a] = checked_sub(engine.firings()[a], it->second.firings[a]);
                run.throughput[a] = Rational(run.period_firings[a], period);
            }
            // The explored prefix covers the transient plus a full period;
            // from here the execution repeats exactly, so these are the
            // all-time space requirements.
            run.max_space = engine.max_space();
            return run;
        }
        // The recurrent-state map is the memory hog of this route: every
        // explored state stores its key plus a firing-count snapshot.
        robust_account_bytes(key.size() + n * sizeof(Int) + sizeof(Snapshot));
        seen.emplace(key, Snapshot{engine.now(), engine.firings()});
        if (!engine.advance()) {
            // Nothing in flight and nothing enabled: deadlock.
            run.deadlocked = true;
            run.period_firings.assign(n, 0);
            run.max_space = engine.max_space();
            return run;
        }
        engine.start_enabled();
    }
}

}  // namespace sdf
