#include "sdf/schedule.hpp"

#include <deque>

#include "base/errors.hpp"
#include "robust/budget.hpp"
#include "sdf/repetition.hpp"

namespace sdf {

namespace {

/// True when `actor` currently has enough tokens on every input channel.
bool enabled(const Graph& graph, const std::vector<std::vector<ChannelId>>& inputs,
             const std::vector<Int>& tokens, ActorId actor) {
    for (const ChannelId ci : inputs[actor]) {
        if (tokens[ci] < graph.channel(ci).consumption) {
            return false;
        }
    }
    return true;
}

}  // namespace

namespace {

std::vector<ActorId> compute_sequential_schedule(const Graph& graph) {
    const std::vector<Int> repetition = repetition_vector(graph);
    const std::size_t n = graph.actor_count();

    std::vector<std::vector<ChannelId>> inputs(n);
    std::vector<std::vector<ChannelId>> outputs(n);
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        inputs[graph.channel(c).dst].push_back(c);
        outputs[graph.channel(c).src].push_back(c);
    }

    std::vector<Int> tokens;
    tokens.reserve(graph.channel_count());
    for (const Channel& c : graph.channels()) {
        tokens.push_back(c.initial_tokens);
    }
    std::vector<Int> remaining = repetition;

    Int total_remaining = 0;
    for (const Int r : remaining) {
        total_remaining = checked_add(total_remaining, r);
    }

    std::vector<ActorId> schedule;
    robust_account_bytes(static_cast<std::size_t>(total_remaining) * sizeof(ActorId));
    schedule.reserve(static_cast<std::size_t>(total_remaining));

    // Worklist of actors to re-examine; an actor can only become enabled
    // when one of its input channels gained tokens.
    std::deque<ActorId> worklist;
    std::vector<bool> queued(n, false);
    for (ActorId a = 0; a < n; ++a) {
        worklist.push_back(a);
        queued[a] = true;
    }

    while (!worklist.empty()) {
        const ActorId a = worklist.front();
        worklist.pop_front();
        queued[a] = false;
        while (remaining[a] > 0 && enabled(graph, inputs, tokens, a)) {
            SDFRED_CHECKPOINT();
            for (const ChannelId ci : inputs[a]) {
                tokens[ci] -= graph.channel(ci).consumption;
            }
            for (const ChannelId ci : outputs[a]) {
                tokens[ci] = checked_add(tokens[ci], graph.channel(ci).production);
            }
            --remaining[a];
            --total_remaining;
            schedule.push_back(a);
            for (const ChannelId ci : outputs[a]) {
                const ActorId consumer = graph.channel(ci).dst;
                if (!queued[consumer] && remaining[consumer] > 0) {
                    worklist.push_back(consumer);
                    queued[consumer] = true;
                }
            }
        }
    }

    if (total_remaining != 0) {
        throw DeadlockError("graph '" + graph.name() +
                            "' deadlocks: no admissible sequential schedule");
    }
    return schedule;
}

}  // namespace

std::vector<ActorId> SequentialScheduleAnalysis::compute(const Graph& graph) {
    return compute_sequential_schedule(graph);
}

bool LivenessAnalysis::compute(const Graph& graph) {
    try {
        sequential_schedule(graph);
        return true;
    } catch (const DeadlockError&) {
        return false;
    } catch (const InconsistentGraphError&) {
        return false;
    }
}

std::vector<ActorId> sequential_schedule(const Graph& graph) {
    // Cached per graph in the AnalysisManager: the symbolic conversion,
    // deadlock checks and the mapping heuristics each need one admissible
    // order for the same structure.  Failures (deadlock, inconsistency)
    // re-throw each call.
    return *graph.analyses()->get<SequentialScheduleAnalysis>(graph);
}

bool is_deadlock_free(const Graph& graph) {
    return *graph.analyses()->get<LivenessAnalysis>(graph);
}

}  // namespace sdf
