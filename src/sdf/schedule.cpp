#include "sdf/schedule.hpp"

#include <deque>

#include "base/errors.hpp"
#include "robust/budget.hpp"
#include "sdf/repetition.hpp"

namespace sdf {

namespace {

/// True when `actor` currently has enough tokens on every input channel.
bool enabled(const Graph& graph, const std::vector<std::vector<ChannelId>>& inputs,
             const std::vector<Int>& tokens, ActorId actor) {
    for (const ChannelId ci : inputs[actor]) {
        if (tokens[ci] < graph.channel(ci).consumption) {
            return false;
        }
    }
    return true;
}

}  // namespace

namespace {

std::vector<ActorId> compute_sequential_schedule(const Graph& graph) {
    const std::vector<Int> repetition = repetition_vector(graph);
    const std::size_t n = graph.actor_count();

    std::vector<std::vector<ChannelId>> inputs(n);
    std::vector<std::vector<ChannelId>> outputs(n);
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        inputs[graph.channel(c).dst].push_back(c);
        outputs[graph.channel(c).src].push_back(c);
    }

    std::vector<Int> tokens;
    tokens.reserve(graph.channel_count());
    for (const Channel& c : graph.channels()) {
        tokens.push_back(c.initial_tokens);
    }
    std::vector<Int> remaining = repetition;

    Int total_remaining = 0;
    for (const Int r : remaining) {
        total_remaining = checked_add(total_remaining, r);
    }

    std::vector<ActorId> schedule;
    robust_account_bytes(static_cast<std::size_t>(total_remaining) * sizeof(ActorId));
    schedule.reserve(static_cast<std::size_t>(total_remaining));

    // Worklist of actors to re-examine; an actor can only become enabled
    // when one of its input channels gained tokens.
    std::deque<ActorId> worklist;
    std::vector<bool> queued(n, false);
    for (ActorId a = 0; a < n; ++a) {
        worklist.push_back(a);
        queued[a] = true;
    }

    while (!worklist.empty()) {
        const ActorId a = worklist.front();
        worklist.pop_front();
        queued[a] = false;
        while (remaining[a] > 0 && enabled(graph, inputs, tokens, a)) {
            SDFRED_CHECKPOINT();
            for (const ChannelId ci : inputs[a]) {
                tokens[ci] -= graph.channel(ci).consumption;
            }
            for (const ChannelId ci : outputs[a]) {
                tokens[ci] = checked_add(tokens[ci], graph.channel(ci).production);
            }
            --remaining[a];
            --total_remaining;
            schedule.push_back(a);
            for (const ChannelId ci : outputs[a]) {
                const ActorId consumer = graph.channel(ci).dst;
                if (!queued[consumer] && remaining[consumer] > 0) {
                    worklist.push_back(consumer);
                    queued[consumer] = true;
                }
            }
        }
    }

    if (total_remaining != 0) {
        throw DeadlockError("graph '" + graph.name() +
                            "' deadlocks: no admissible sequential schedule");
    }
    return schedule;
}

}  // namespace

bool validate_schedule(const Graph& graph, const std::vector<ActorId>& schedule) {
    const std::size_t n = graph.actor_count();
    std::vector<std::vector<ChannelId>> inputs(n);
    std::vector<std::vector<ChannelId>> outputs(n);
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        inputs[graph.channel(c).dst].push_back(c);
        outputs[graph.channel(c).src].push_back(c);
    }
    std::vector<Int> tokens;
    tokens.reserve(graph.channel_count());
    for (const Channel& c : graph.channels()) {
        tokens.push_back(c.initial_tokens);
    }
    std::vector<Int> fired(n, 0);
    for (const ActorId a : schedule) {
        if (a >= n) {
            return false;
        }
        for (const ChannelId ci : inputs[a]) {
            if (tokens[ci] < graph.channel(ci).consumption) {
                return false;  // underflow: the order is no longer admissible
            }
            tokens[ci] -= graph.channel(ci).consumption;
        }
        for (const ChannelId ci : outputs[a]) {
            tokens[ci] = checked_add(tokens[ci], graph.channel(ci).production);
        }
        ++fired[a];
    }
    // One full iteration returns every channel to its initial count and
    // fires each actor its repetition-vector count; checking the former
    // (plus every actor fired at least once when it appears) certifies the
    // latter without recomputing the vector.
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        if (tokens[c] != graph.channel(c).initial_tokens) {
            return false;
        }
    }
    for (ActorId a = 0; a < n; ++a) {
        if (fired[a] == 0 && schedule.size() >= n) {
            return false;
        }
    }
    return !schedule.empty() || n == 0;
}

std::vector<ActorId> SequentialScheduleAnalysis::compute(const Graph& graph) {
    return compute_sequential_schedule(graph);
}

Refined<std::vector<ActorId>> SequentialScheduleAnalysis::refine(
    const Result& old, const RefineContext& ctx) {
    using Out = Refined<Result>;
    if (ctx.log.timing_only()) {
        return Out::keep();
    }
    if (!ctx.log.only({MutationKind::execution_time, MutationKind::initial_tokens,
                       MutationKind::actor_added})) {
        return Out::drop();  // rate or structural edits reshape the iteration
    }
    // Validation cost is O(firings); past this the certificate check would
    // rival recomputation, so fall back to the lazy path.
    constexpr std::size_t kMaxValidatedFirings = std::size_t{1} << 16;
    if (old.size() > kMaxValidatedFirings) {
        return Out::drop();
    }
    const bool appends = ctx.log.has(MutationKind::actor_added);
    if (!appends && ctx.log.tokens_monotone(/*increase=*/true)) {
        return Out::keep();  // more tokens never disable a firing
    }
    Result candidate = old;
    if (appends) {
        for (const MutationEvent& e : ctx.log.events()) {
            if (e.kind == MutationKind::actor_added) {
                candidate.push_back(e.id);  // isolated actor: fires once, last
            }
        }
    }
    if (!validate_schedule(ctx.graph, candidate)) {
        return Out::drop();
    }
    return appends ? Out::make(std::move(candidate)) : Out::keep();
}

bool LivenessAnalysis::compute(const Graph& graph) {
    try {
        sequential_schedule(graph);
        return true;
    } catch (const DeadlockError&) {
        return false;
    } catch (const InconsistentGraphError&) {
        return false;
    }
}

Refined<bool> LivenessAnalysis::refine(const Result& old, const RefineContext& ctx) {
    using Out = Refined<Result>;
    if (ctx.log.only({MutationKind::execution_time, MutationKind::actor_added})) {
        return Out::keep();  // timing is invisible; an isolated actor fires freely
    }
    if (ctx.log.only({MutationKind::execution_time, MutationKind::actor_added,
                      MutationKind::initial_tokens})) {
        if (old && ctx.log.tokens_monotone(/*increase=*/true)) {
            return Out::keep();  // more tokens cannot introduce a deadlock
        }
        if (!old && ctx.log.tokens_monotone(/*increase=*/false)) {
            return Out::keep();  // fewer tokens cannot revive a dead graph
        }
        // Phase 1: a schedule the earlier phase kept or refined for the new
        // token distribution is a liveness witness.
        if (ctx.target.cached<SequentialScheduleAnalysis>() != nullptr) {
            return old ? Out::keep() : Out::make(true);
        }
        return Out::drop();
    }
    if (!old && ctx.log.only({MutationKind::channel_added, MutationKind::actor_added,
                              MutationKind::execution_time,
                              MutationKind::initial_tokens})) {
        // Extra channels only add constraints: neither an unsolvable
        // balance system nor a deadlock can be repaired by them.  (Token
        // edits alongside are already covered above when monotone; here we
        // only rely on the channel making things strictly harder, so the
        // token direction must still be non-reviving.)
        if (ctx.log.tokens_monotone(/*increase=*/false)) {
            return Out::keep();
        }
    }
    return Out::drop();
}

std::vector<ActorId> sequential_schedule(const Graph& graph) {
    // Cached per graph in the AnalysisManager: the symbolic conversion,
    // deadlock checks and the mapping heuristics each need one admissible
    // order for the same structure.  Failures (deadlock, inconsistency)
    // re-throw each call.
    return *graph.analyses()->get<SequentialScheduleAnalysis>(graph);
}

bool is_deadlock_free(const Graph& graph) {
    return *graph.analyses()->get<LivenessAnalysis>(graph);
}

}  // namespace sdf
