// schedule.hpp — periodic admissible sequential schedules (PASS).
//
// Algorithm 1 of the paper executes "an arbitrary sequential schedule for
// one iteration of the graph, using well-known methods [11, 15]".  SDF is
// determinate, so every admissible schedule yields the same symbolic end-of-
// iteration time stamps; we construct one greedily and use schedulability as
// the deadlock-freedom test.
#pragma once

#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

/// A sequential schedule for one iteration: actor ids in firing order; the
/// length equals the iteration length (sum of the repetition vector).
/// Throws InconsistentGraphError when the graph has no repetition vector
/// and DeadlockError when no admissible schedule exists.
std::vector<ActorId> sequential_schedule(const Graph& graph);

/// True when the graph is consistent and one full iteration can execute
/// from the initial token distribution (no deadlock).
bool is_deadlock_free(const Graph& graph);

/// Re-executes `schedule` against the CURRENT token distribution of
/// `graph`, firing counts included: true iff it is still an admissible
/// one-iteration schedule.  O(firings · degree) integer bookkeeping — the
/// cheap certificate check behind token-edit refinement.
bool validate_schedule(const Graph& graph, const std::vector<ActorId>& schedule);

/// AnalysisManager slot behind sequential_schedule() (see
/// sdf/analysis_manager.hpp for the traits contract).  Delta-aware: timing
/// edits keep the schedule; a token INCREASE keeps it outright (more tokens
/// never disable a firing); a token decrease re-validates the cached order
/// as a certificate (admissibility, not canonical bytes, is the contract —
/// SDF determinacy makes every admissible schedule equivalent); a new
/// isolated actor appends its single firing.
struct SequentialScheduleAnalysis {
    using Result = std::vector<ActorId>;
    static constexpr const char* kName = "schedule";
    static constexpr bool kTimeSensitive = false;
    static Result compute(const Graph& graph);
    static Refined<Result> refine(const Result& old, const RefineContext& ctx);
};

/// AnalysisManager slot behind is_deadlock_free() / is_live(): liveness is
/// schedulability of one iteration, an untimed property.  Delta-aware via
/// monotonicity — a token increase cannot deadlock a live graph, a token
/// decrease cannot revive a dead one, extra channels only constrain — and
/// via the schedule slot: a schedule kept/refined in an earlier phase is a
/// liveness witness.  Runs at refine phase 1 for exactly that reason.
struct LivenessAnalysis {
    using Result = bool;
    static constexpr const char* kName = "liveness";
    static constexpr bool kTimeSensitive = false;
    static constexpr int kRefinePhase = 1;
    static Result compute(const Graph& graph);
    static Refined<Result> refine(const Result& old, const RefineContext& ctx);
};

}  // namespace sdf
