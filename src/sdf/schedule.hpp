// schedule.hpp — periodic admissible sequential schedules (PASS).
//
// Algorithm 1 of the paper executes "an arbitrary sequential schedule for
// one iteration of the graph, using well-known methods [11, 15]".  SDF is
// determinate, so every admissible schedule yields the same symbolic end-of-
// iteration time stamps; we construct one greedily and use schedulability as
// the deadlock-freedom test.
#pragma once

#include <vector>

#include "sdf/graph.hpp"

namespace sdf {

/// A sequential schedule for one iteration: actor ids in firing order; the
/// length equals the iteration length (sum of the repetition vector).
/// Throws InconsistentGraphError when the graph has no repetition vector
/// and DeadlockError when no admissible schedule exists.
std::vector<ActorId> sequential_schedule(const Graph& graph);

/// True when the graph is consistent and one full iteration can execute
/// from the initial token distribution (no deadlock).
bool is_deadlock_free(const Graph& graph);

/// AnalysisManager slot behind sequential_schedule() (see
/// sdf/analysis_manager.hpp for the traits contract).
struct SequentialScheduleAnalysis {
    using Result = std::vector<ActorId>;
    static constexpr const char* kName = "schedule";
    static constexpr bool kTimeSensitive = false;
    static Result compute(const Graph& graph);
};

/// AnalysisManager slot behind is_deadlock_free() / is_live(): liveness is
/// schedulability of one iteration, an untimed property.
struct LivenessAnalysis {
    using Result = bool;
    static constexpr const char* kName = "liveness";
    static constexpr bool kTimeSensitive = false;
    static Result compute(const Graph& graph);
};

}  // namespace sdf
