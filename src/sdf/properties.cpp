#include "sdf/properties.hpp"

namespace sdf {

std::vector<TokenRef> initial_tokens(const Graph& graph) {
    std::vector<TokenRef> tokens;
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        for (Int i = 0; i < graph.channel(c).initial_tokens; ++i) {
            tokens.push_back(TokenRef{c, i});
        }
    }
    return tokens;
}

Digraph dependency_digraph(const Graph& graph) {
    Digraph g(graph.actor_count());
    for (const Channel& ch : graph.channels()) {
        g.add_edge(ch.src, ch.dst, graph.actor(ch.src).execution_time, ch.initial_tokens);
    }
    return g;
}

bool is_strongly_connected(const Graph& graph) {
    if (graph.actor_count() == 0) {
        return false;
    }
    std::size_t component_count = 0;
    (void)dependency_digraph(graph).strongly_connected_components(&component_count);
    return component_count == 1;
}

bool every_actor_on_cycle(const Graph& graph) {
    const Digraph g = dependency_digraph(graph);
    std::size_t component_count = 0;
    const auto component = g.strongly_connected_components(&component_count);
    // An actor is on a cycle iff its SCC has more than one node or it has a
    // self-loop channel.
    std::vector<std::size_t> scc_size(component_count, 0);
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        ++scc_size[component[v]];
    }
    std::vector<bool> has_self_loop(g.node_count(), false);
    for (const auto& e : g.edges()) {
        if (e.from == e.to) {
            has_self_loop[e.from] = true;
        }
    }
    for (std::size_t v = 0; v < g.node_count(); ++v) {
        if (scc_size[component[v]] == 1 && !has_self_loop[v]) {
            return false;
        }
    }
    return true;
}

}  // namespace sdf
