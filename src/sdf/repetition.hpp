// repetition.hpp — consistency and the repetition vector.
//
// A consistent SDF graph admits a smallest positive integer vector q (the
// repetition vector) such that firing every actor a exactly q(a) times
// returns every channel to its initial token count: for every channel
// (a, b, p, c, d) the balance equation q(a)·p = q(b)·c holds
// (Lee & Messerschmitt).  The sum of q is the iteration length — and the
// exact actor count of the classical SDF→HSDF conversion, which is what the
// paper's new conversion improves on.
#pragma once

#include <vector>

#include "base/rational.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// The repetition vector of `graph`, normalised per weakly connected
/// component (each component's entries are coprime overall).  Throws
/// InconsistentGraphError when the balance equations have no solution and
/// InvalidGraphError on an empty graph.
std::vector<Int> repetition_vector(const Graph& graph);

/// True when the balance equations are solvable.
bool is_consistent(const Graph& graph);

/// AnalysisManager slot behind repetition_vector() (see
/// sdf/analysis_manager.hpp for the traits contract).  Delta-aware: timing
/// and token edits keep the vector untouched (it depends on rates only), a
/// rate edit re-solves ONLY the weakly connected component the edited
/// channel lives in and splices the local solution into the old vector
/// (components are normalised independently, so the splice is exact), and
/// a freshly added actor — necessarily isolated — appends a 1.
struct RepetitionVectorAnalysis {
    using Result = std::vector<Int>;
    static constexpr const char* kName = "repetition";
    static constexpr bool kTimeSensitive = false;
    static Result compute(const Graph& graph);
    static Refined<Result> refine(const Result& old, const RefineContext& ctx);
};

/// AnalysisManager slot behind is_consistent().  Delta-aware: invariant
/// under timing/token edits; under rate edits a consistent graph re-checks
/// only the dirty component (the others kept their solutions); adding a
/// channel to an inconsistent graph can only add constraints, so `false`
/// survives it.
struct ConsistencyAnalysis {
    using Result = bool;
    static constexpr const char* kName = "consistency";
    static constexpr bool kTimeSensitive = false;
    static Result compute(const Graph& graph);
    static Refined<Result> refine(const Result& old, const RefineContext& ctx);
};

/// Sum of the repetition vector: the number of firings in one iteration.
Int iteration_length(const Graph& graph);

}  // namespace sdf
