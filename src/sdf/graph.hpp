// graph.hpp — the timed SDF graph model (Definitions 1 and 2 of the paper).
//
// An SDF graph is a set of actors and a set of dependency channels
// (a, b, p, c, d): actor b depends on actor a, a produces p tokens per
// firing, b consumes c tokens per firing, and the channel initially holds
// d tokens.  Channels are unbounded FIFOs.  A timed graph additionally maps
// every actor to a natural execution time (Definition 2's T).
//
// Actors and channels are referenced by dense indices (ActorId, ChannelId);
// names are unique and exist for I/O, diagnostics and the name-based
// abstraction heuristics.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/checked.hpp"
#include "sdf/analysis_manager.hpp"
#include "sdf/mutation.hpp"

namespace sdf {

/// One actor of a timed SDF graph.
struct Actor {
    std::string name;
    Int execution_time = 0;  ///< time between consuming inputs and producing outputs
};

/// One dependency channel (a, b, p, c, d) of Definition 1.
struct Channel {
    ActorId src = 0;           ///< the producing actor a
    ActorId dst = 0;           ///< the consuming actor b
    Int production = 1;        ///< tokens produced per firing of src (p)
    Int consumption = 1;       ///< tokens consumed per firing of dst (c)
    Int initial_tokens = 0;    ///< initial delay d

    [[nodiscard]] bool is_self_loop() const { return src == dst; }
    [[nodiscard]] bool is_homogeneous() const { return production == 1 && consumption == 1; }
};

/// A timed SDF graph.  Structure is validated on construction: rates must be
/// positive, delays non-negative, names unique and endpoints valid.
class Graph {
public:
    Graph() : analyses_(std::make_shared<AnalysisManager>()) {}
    explicit Graph(std::string name)
        : name_(std::move(name)), analyses_(std::make_shared<AnalysisManager>()) {}

    [[nodiscard]] const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    /// Adds an actor; the name must be unique and non-empty, the execution
    /// time non-negative.  Returns its id.
    ActorId add_actor(const std::string& name, Int execution_time = 0);

    /// Adds a channel (src, dst, p, c, d); rates must be positive and the
    /// delay non-negative.  Returns its id.
    ChannelId add_channel(ActorId src, ActorId dst, Int production, Int consumption,
                          Int initial_tokens);

    /// Convenience for homogeneous channels (p = c = 1).
    ChannelId add_channel(ActorId src, ActorId dst, Int initial_tokens = 0) {
        return add_channel(src, dst, 1, 1, initial_tokens);
    }

    [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }
    [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }

    [[nodiscard]] const Actor& actor(ActorId id) const { return actors_.at(id); }
    [[nodiscard]] const Channel& channel(ChannelId id) const { return channels_.at(id); }
    [[nodiscard]] const std::vector<Actor>& actors() const { return actors_; }
    [[nodiscard]] const std::vector<Channel>& channels() const { return channels_; }

    /// Updates an actor's execution time (used by abstraction & generators).
    /// A no-op edit (same value) records nothing and keeps the cache whole.
    void set_execution_time(ActorId id, Int execution_time);

    /// Replaces a channel's initial-token count (used by buffer modelling).
    /// A no-op edit records nothing and keeps the cache whole.
    void set_initial_tokens(ChannelId id, Int initial_tokens);

    /// Replaces a channel's production/consumption rates (both positive).
    /// A no-op edit records nothing and keeps the cache whole.
    void set_rates(ChannelId id, Int production, Int consumption);

    /// Removes a channel.  Channel ids above `id` shift down by one (dense
    /// indices), which the recorded MutationEvent documents for consumers.
    void remove_channel(ChannelId id);

    /// Removes an actor, which must have no incident channels (remove those
    /// first).  Actor ids above `id` shift down by one and channel
    /// endpoints are renumbered accordingly.
    void remove_actor(ActorId id);

    /// Id of the actor with this exact name, if any.
    [[nodiscard]] std::optional<ActorId> find_actor(const std::string& name) const;

    /// Channel ids entering / leaving an actor, in channel-id order.
    [[nodiscard]] std::vector<ChannelId> in_channels(ActorId id) const;
    [[nodiscard]] std::vector<ChannelId> out_channels(ActorId id) const;

    /// Total number of initial tokens across all channels.
    [[nodiscard]] Int total_initial_tokens() const;

    /// True when every channel has production and consumption rate 1
    /// (the graph is a homogeneous SDF graph).
    [[nodiscard]] bool is_homogeneous() const;

    /// This graph's analysis cache (see sdf/analysis_manager.hpp).  Copies
    /// of a graph share the manager until either copy mutates; mutation
    /// swaps in a fresh one — refined through the recorded delta, not
    /// emptied — so results cached for the old structure stay with the old
    /// graph and everything the delta cannot move stays with this one.
    [[nodiscard]] const std::shared_ptr<AnalysisManager>& analyses() const {
        return analyses_;
    }

    /// Every mutation recorded on THIS object since its construction or
    /// copy (graph assignment replaces the log with the source's).  Passes
    /// slice this to report a delta for a whole rewrite.
    [[nodiscard]] const MutationLog& mutations() const { return mutations_; }

private:
    /// Called by mutators AFTER applying a change: swaps in a fresh manager
    /// refined from the old one through the single-event delta and appends
    /// the event to the accumulated log.  Never throws.
    void record_mutation(const MutationEvent& event);

    std::string name_;
    std::vector<Actor> actors_;
    std::vector<Channel> channels_;
    std::unordered_map<std::string, ActorId> actor_by_name_;
    MutationLog mutations_;
    std::shared_ptr<AnalysisManager> analyses_ = std::make_shared<AnalysisManager>();
};

}  // namespace sdf
