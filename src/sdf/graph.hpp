// graph.hpp — the timed SDF graph model (Definitions 1 and 2 of the paper).
//
// An SDF graph is a set of actors and a set of dependency channels
// (a, b, p, c, d): actor b depends on actor a, a produces p tokens per
// firing, b consumes c tokens per firing, and the channel initially holds
// d tokens.  Channels are unbounded FIFOs.  A timed graph additionally maps
// every actor to a natural execution time (Definition 2's T).
//
// Actors and channels are referenced by dense indices (ActorId, ChannelId);
// names are unique and exist for I/O, diagnostics and the name-based
// abstraction heuristics.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/checked.hpp"

namespace sdf {

using ActorId = std::size_t;
using ChannelId = std::size_t;

/// Lazily filled, mutation-invalidated cache of the untimed structural
/// analyses that nearly every query recomputes on the same graph: the
/// repetition vector and one admissible sequential schedule.  throughput,
/// deadlock, lint and the symbolic conversion all funnel through
/// repetition_vector() / sequential_schedule(), which consult this memo.
///
/// Both cached results depend only on rates and (for the schedule) initial
/// tokens — never on execution times — so set_execution_time keeps the
/// memo, while structural mutations and set_initial_tokens replace it.
/// Slots are filled under the mutex; concurrent const readers are safe.
struct GraphMemo {
    std::mutex mutex;
    std::optional<std::vector<Int>> repetition;
    std::optional<std::vector<ActorId>> schedule;
};

/// One actor of a timed SDF graph.
struct Actor {
    std::string name;
    Int execution_time = 0;  ///< time between consuming inputs and producing outputs
};

/// One dependency channel (a, b, p, c, d) of Definition 1.
struct Channel {
    ActorId src = 0;           ///< the producing actor a
    ActorId dst = 0;           ///< the consuming actor b
    Int production = 1;        ///< tokens produced per firing of src (p)
    Int consumption = 1;       ///< tokens consumed per firing of dst (c)
    Int initial_tokens = 0;    ///< initial delay d

    [[nodiscard]] bool is_self_loop() const { return src == dst; }
    [[nodiscard]] bool is_homogeneous() const { return production == 1 && consumption == 1; }
};

/// A timed SDF graph.  Structure is validated on construction: rates must be
/// positive, delays non-negative, names unique and endpoints valid.
class Graph {
public:
    Graph() : memo_(std::make_shared<GraphMemo>()) {}
    explicit Graph(std::string name)
        : name_(std::move(name)), memo_(std::make_shared<GraphMemo>()) {}

    [[nodiscard]] const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    /// Adds an actor; the name must be unique and non-empty, the execution
    /// time non-negative.  Returns its id.
    ActorId add_actor(const std::string& name, Int execution_time = 0);

    /// Adds a channel (src, dst, p, c, d); rates must be positive and the
    /// delay non-negative.  Returns its id.
    ChannelId add_channel(ActorId src, ActorId dst, Int production, Int consumption,
                          Int initial_tokens);

    /// Convenience for homogeneous channels (p = c = 1).
    ChannelId add_channel(ActorId src, ActorId dst, Int initial_tokens = 0) {
        return add_channel(src, dst, 1, 1, initial_tokens);
    }

    [[nodiscard]] std::size_t actor_count() const { return actors_.size(); }
    [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }

    [[nodiscard]] const Actor& actor(ActorId id) const { return actors_.at(id); }
    [[nodiscard]] const Channel& channel(ChannelId id) const { return channels_.at(id); }
    [[nodiscard]] const std::vector<Actor>& actors() const { return actors_; }
    [[nodiscard]] const std::vector<Channel>& channels() const { return channels_; }

    /// Updates an actor's execution time (used by abstraction & generators).
    void set_execution_time(ActorId id, Int execution_time);

    /// Replaces a channel's initial-token count (used by buffer modelling).
    void set_initial_tokens(ChannelId id, Int initial_tokens);

    /// Id of the actor with this exact name, if any.
    [[nodiscard]] std::optional<ActorId> find_actor(const std::string& name) const;

    /// Channel ids entering / leaving an actor, in channel-id order.
    [[nodiscard]] std::vector<ChannelId> in_channels(ActorId id) const;
    [[nodiscard]] std::vector<ChannelId> out_channels(ActorId id) const;

    /// Total number of initial tokens across all channels.
    [[nodiscard]] Int total_initial_tokens() const;

    /// True when every channel has production and consumption rate 1
    /// (the graph is a homogeneous SDF graph).
    [[nodiscard]] bool is_homogeneous() const;

    /// The structural-analysis memo (see GraphMemo).  Copies of a graph
    /// share the memo until either copy mutates; mutation swaps in a fresh
    /// one so results cached for the old structure stay with the old graph.
    [[nodiscard]] const std::shared_ptr<GraphMemo>& analysis_memo() const { return memo_; }

private:
    /// Called by mutators that change what the memoised analyses see.
    void invalidate_memo() { memo_ = std::make_shared<GraphMemo>(); }

    std::string name_;
    std::vector<Actor> actors_;
    std::vector<Channel> channels_;
    std::unordered_map<std::string, ActorId> actor_by_name_;
    std::shared_ptr<GraphMemo> memo_ = std::make_shared<GraphMemo>();
};

}  // namespace sdf
