// mutation.hpp — the typed mutation-delta protocol of the graph model.
//
// Every Graph mutator records WHAT changed as a MutationEvent instead of
// blanketly discarding the analysis cache: the manager swap that used to be
// `invalidate_analyses()` becomes `refine_from(old, graph, log)`, which asks
// every cached analysis slot how it survives the delta — kept unchanged,
// refined in place, or dropped for lazy recomputation (see
// sdf/analysis_manager.hpp for the per-slot contract and
// docs/INCREMENTAL.md for the full protocol).
//
// Events are value records of the pre- and post-edit scalars, so refinement
// hooks can reason about the *direction* of a change (a token increase can
// never introduce a deadlock; a pure execution-time edit cannot touch any
// untimed result).  A MutationLog is an ordered batch of events: mutators
// emit singleton logs, passes may emit one log for a whole rewrite
// (pass/pass.hpp `PassResult::delta`), and the serve `edit` op replays a
// client-provided script as one log per edit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "base/checked.hpp"

namespace sdf {

using ActorId = std::size_t;
using ChannelId = std::size_t;

/// What one mutation did to the graph.
enum class MutationKind : std::uint8_t {
    actor_added,      ///< add_actor; `id` is the new ActorId
    actor_removed,    ///< remove_actor; ids above `id` shifted down by one
    channel_added,    ///< add_channel; `id` is the new ChannelId
    channel_removed,  ///< remove_channel; ids above `id` shifted down by one
    execution_time,   ///< set_execution_time; old_a -> new_a on actor `id`
    rates,            ///< set_rates; (old_a, old_b) -> (new_a, new_b) = (p, c)
    initial_tokens,   ///< set_initial_tokens; old_a -> new_a on channel `id`
};

/// One recorded mutation.  The scalar pairs are meaningful per kind (see
/// MutationKind); unused pairs stay zero.
struct MutationEvent {
    MutationKind kind = MutationKind::execution_time;
    std::size_t id = 0;  ///< actor or channel id, per kind
    Int old_a = 0;       ///< execution time / production / initial tokens
    Int new_a = 0;
    Int old_b = 0;       ///< consumption (rates only)
    Int new_b = 0;

    friend bool operator==(const MutationEvent&, const MutationEvent&) = default;
};

/// An ordered batch of mutations, with the classification predicates the
/// refinement hooks branch on.
class MutationLog {
public:
    MutationLog() = default;

    void push(const MutationEvent& event) { events_.push_back(event); }
    void append(const MutationLog& other) {
        events_.insert(events_.end(), other.events_.begin(), other.events_.end());
    }
    void clear() { events_.clear(); }

    [[nodiscard]] bool empty() const { return events_.empty(); }
    [[nodiscard]] std::size_t size() const { return events_.size(); }
    [[nodiscard]] const std::vector<MutationEvent>& events() const { return events_; }

    /// True when every event's kind is in `kinds` (an empty log trivially
    /// qualifies) — the generic subset predicate behind the named ones.
    [[nodiscard]] bool only(std::initializer_list<MutationKind> kinds) const {
        return all_of_kinds(kinds);
    }

    /// True when at least one event has this kind.
    [[nodiscard]] bool has(MutationKind kind) const {
        for (const MutationEvent& e : events_) {
            if (e.kind == kind) {
                return true;
            }
        }
        return false;
    }

    /// Only execution-time edits: no untimed result can change.
    [[nodiscard]] bool timing_only() const {
        return all_of_kinds({MutationKind::execution_time});
    }

    /// Only execution-time and/or initial-token edits: rates, and with them
    /// the repetition vector and consistency, are untouched.
    [[nodiscard]] bool timing_or_tokens_only() const {
        return all_of_kinds({MutationKind::execution_time, MutationKind::initial_tokens});
    }

    /// Only rate / timing / token edits on EXISTING elements: the actor and
    /// channel index spaces are stable, so positional results can be
    /// refined entry-wise.
    [[nodiscard]] bool structure_preserving() const {
        return all_of_kinds({MutationKind::execution_time, MutationKind::rates,
                             MutationKind::initial_tokens});
    }

    /// True when every token edit in the log moves in the given direction
    /// (increase when `increase`, decrease otherwise).  Non-token events are
    /// ignored; an empty log is trivially monotone.
    [[nodiscard]] bool tokens_monotone(bool increase) const {
        for (const MutationEvent& e : events_) {
            if (e.kind != MutationKind::initial_tokens) {
                continue;
            }
            if (increase ? e.new_a < e.old_a : e.new_a > e.old_a) {
                return false;
            }
        }
        return true;
    }

private:
    [[nodiscard]] bool all_of_kinds(std::initializer_list<MutationKind> kinds) const {
        for (const MutationEvent& e : events_) {
            bool found = false;
            for (const MutationKind k : kinds) {
                if (e.kind == k) {
                    found = true;
                    break;
                }
            }
            if (!found) {
                return false;
            }
        }
        return true;
    }

    std::vector<MutationEvent> events_;
};

}  // namespace sdf
