#include "sdf/repetition.hpp"

#include <vector>

#include "base/errors.hpp"

namespace sdf {

namespace {

std::vector<Int> compute_repetition_vector(const Graph& graph) {
    require(graph.actor_count() > 0, "repetition vector of an empty graph");
    const std::size_t n = graph.actor_count();

    // Undirected adjacency over channels: balance propagates both ways.
    std::vector<std::vector<ChannelId>> adjacent(n);
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        adjacent[graph.channel(c).src].push_back(c);
        adjacent[graph.channel(c).dst].push_back(c);
    }

    // Propagate rational firing rates by DFS per weakly connected component,
    // then scale each component to the smallest positive integer solution.
    std::vector<Rational> rate(n, Rational(0));
    std::vector<bool> visited(n, false);
    std::vector<Int> result(n, 0);

    for (ActorId root = 0; root < n; ++root) {
        if (visited[root]) {
            continue;
        }
        std::vector<ActorId> component;
        std::vector<ActorId> stack{root};
        visited[root] = true;
        rate[root] = Rational(1);
        while (!stack.empty()) {
            const ActorId a = stack.back();
            stack.pop_back();
            component.push_back(a);
            for (const ChannelId ci : adjacent[a]) {
                const Channel& ch = graph.channel(ci);
                // Balance: rate(src) * p == rate(dst) * c.
                const ActorId other = (ch.src == a) ? ch.dst : ch.src;
                const Rational implied = (ch.src == a)
                    ? rate[a] * Rational(ch.production, ch.consumption)
                    : rate[a] * Rational(ch.consumption, ch.production);
                if (!visited[other]) {
                    visited[other] = true;
                    rate[other] = implied;
                    stack.push_back(other);
                } else if (rate[other] != implied) {
                    throw InconsistentGraphError(
                        "balance equations unsolvable at channel " +
                        graph.actor(ch.src).name + " -> " + graph.actor(ch.dst).name);
                }
            }
        }
        // Re-check every channel inside the component (DFS above checks each
        // channel from at least one side, which is sufficient, but self-loop
        // channels with p != c would otherwise slip through: for them
        // src == dst and the implied rate differs from the stored one).
        // Scale: multiply by lcm of denominators, divide by gcd of numerators.
        Int den_lcm = 1;
        for (const ActorId a : component) {
            den_lcm = checked_lcm(den_lcm, rate[a].den());
        }
        Int num_gcd = 0;
        for (const ActorId a : component) {
            const Int scaled = checked_mul(rate[a].num(), den_lcm / rate[a].den());
            num_gcd = gcd(num_gcd, scaled);
        }
        for (const ActorId a : component) {
            const Int scaled = checked_mul(rate[a].num(), den_lcm / rate[a].den());
            result[a] = scaled / num_gcd;
        }
    }

    // Self-loop channels with p != c are inconsistent but invisible to the
    // rate propagation above; verify all balance equations explicitly.
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        const Channel& ch = graph.channel(c);
        if (checked_mul(result[ch.src], ch.production) !=
            checked_mul(result[ch.dst], ch.consumption)) {
            throw InconsistentGraphError(
                "balance equation violated at channel " + graph.actor(ch.src).name +
                " -> " + graph.actor(ch.dst).name);
        }
    }
    return result;
}

/// Re-solves the balance equations on every weakly connected component that
/// contains a seed actor, writing each component's normalised local
/// solution into `result` (entries of untouched components stay as they
/// are).  Components normalise independently in compute_repetition_vector
/// too, so splicing a local re-solve into a stale global vector is exact.
/// Throws InconsistentGraphError exactly like the full solve.
void resolve_components_of(const Graph& graph, const std::vector<ActorId>& seeds,
                           std::vector<Int>& result) {
    const std::size_t n = graph.actor_count();
    std::vector<std::vector<ChannelId>> adjacent(n);
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        adjacent[graph.channel(c).src].push_back(c);
        adjacent[graph.channel(c).dst].push_back(c);
    }
    std::vector<Rational> rate(n, Rational(0));
    std::vector<bool> visited(n, false);
    for (const ActorId seed : seeds) {
        if (seed >= n || visited[seed]) {
            continue;
        }
        std::vector<ActorId> component;
        std::vector<ActorId> stack{seed};
        visited[seed] = true;
        rate[seed] = Rational(1);
        while (!stack.empty()) {
            const ActorId a = stack.back();
            stack.pop_back();
            component.push_back(a);
            for (const ChannelId ci : adjacent[a]) {
                const Channel& ch = graph.channel(ci);
                const ActorId other = (ch.src == a) ? ch.dst : ch.src;
                const Rational implied = (ch.src == a)
                    ? rate[a] * Rational(ch.production, ch.consumption)
                    : rate[a] * Rational(ch.consumption, ch.production);
                if (!visited[other]) {
                    visited[other] = true;
                    rate[other] = implied;
                    stack.push_back(other);
                } else if (rate[other] != implied) {
                    throw InconsistentGraphError(
                        "balance equations unsolvable at channel " +
                        graph.actor(ch.src).name + " -> " + graph.actor(ch.dst).name);
                }
            }
        }
        Int den_lcm = 1;
        for (const ActorId a : component) {
            den_lcm = checked_lcm(den_lcm, rate[a].den());
        }
        Int num_gcd = 0;
        for (const ActorId a : component) {
            const Int scaled = checked_mul(rate[a].num(), den_lcm / rate[a].den());
            num_gcd = gcd(num_gcd, scaled);
        }
        for (const ActorId a : component) {
            const Int scaled = checked_mul(rate[a].num(), den_lcm / rate[a].den());
            result[a] = scaled / num_gcd;
        }
    }
    // The DFS checks every channel from at least one side except self-loops
    // with p != c; verify every channel inside the re-solved region.
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        const Channel& ch = graph.channel(c);
        if (!visited[ch.src] && !visited[ch.dst]) {
            continue;
        }
        if (checked_mul(result[ch.src], ch.production) !=
            checked_mul(result[ch.dst], ch.consumption)) {
            throw InconsistentGraphError(
                "balance equation violated at channel " + graph.actor(ch.src).name +
                " -> " + graph.actor(ch.dst).name);
        }
    }
}

/// Endpoints of every rate-edited channel: the seeds of the dirty weakly
/// connected components a structure-preserving delta can touch.
std::vector<ActorId> rate_dirty_actors(const Graph& graph, const MutationLog& log) {
    std::vector<ActorId> dirty;
    for (const MutationEvent& e : log.events()) {
        if (e.kind != MutationKind::rates || e.id >= graph.channel_count()) {
            continue;
        }
        dirty.push_back(graph.channel(e.id).src);
        dirty.push_back(graph.channel(e.id).dst);
    }
    return dirty;
}

}  // namespace

std::vector<Int> RepetitionVectorAnalysis::compute(const Graph& graph) {
    return compute_repetition_vector(graph);
}

Refined<std::vector<Int>> RepetitionVectorAnalysis::refine(const Result& old,
                                                           const RefineContext& ctx) {
    using Out = Refined<Result>;
    if (ctx.log.timing_or_tokens_only()) {
        return Out::keep();  // rates untouched, the vector cannot move
    }
    if (ctx.log.structure_preserving() && old.size() == ctx.graph.actor_count()) {
        // Rate edits: re-solve only the dirty weakly connected components.
        Result updated = old;
        resolve_components_of(ctx.graph, rate_dirty_actors(ctx.graph, ctx.log), updated);
        return Out::make(std::move(updated));
    }
    if (ctx.log.only({MutationKind::actor_added, MutationKind::execution_time,
                      MutationKind::initial_tokens})) {
        // A just-added actor has no channels yet: its own component, q = 1.
        Result updated = old;
        for (const MutationEvent& e : ctx.log.events()) {
            if (e.kind == MutationKind::actor_added) {
                updated.push_back(1);
            }
        }
        if (updated.size() == ctx.graph.actor_count()) {
            return Out::make(std::move(updated));
        }
    }
    return Out::drop();
}

bool ConsistencyAnalysis::compute(const Graph& graph) {
    try {
        repetition_vector(graph);
        return true;
    } catch (const InconsistentGraphError&) {
        return false;
    }
}

Refined<bool> ConsistencyAnalysis::refine(const Result& old, const RefineContext& ctx) {
    using Out = Refined<Result>;
    if (ctx.log.timing_or_tokens_only()) {
        return Out::keep();
    }
    if (ctx.log.only({MutationKind::actor_added, MutationKind::execution_time,
                      MutationKind::initial_tokens})) {
        return Out::keep();  // an isolated new actor is trivially balanced
    }
    if (old && ctx.log.structure_preserving()) {
        // The untouched components kept their solutions; only the dirty
        // ones can have become unsolvable.
        std::vector<Int> scratch(ctx.graph.actor_count(), 0);
        try {
            resolve_components_of(ctx.graph, rate_dirty_actors(ctx.graph, ctx.log),
                                  scratch);
        } catch (const InconsistentGraphError&) {
            return Out::make(false);
        }
        return Out::keep();
    }
    if (!old && ctx.log.only({MutationKind::channel_added, MutationKind::actor_added,
                              MutationKind::execution_time,
                              MutationKind::initial_tokens})) {
        // Adding channels only adds balance constraints: an unsolvable
        // system stays unsolvable.
        return Out::keep();
    }
    return Out::drop();
}

std::vector<Int> repetition_vector(const Graph& graph) {
    // Cached per graph in the AnalysisManager: throughput, deadlock, lint
    // and the conversions all ask for this vector, often several times on
    // the same structure.  Failures (inconsistency) are not cached and
    // re-throw each call.
    return *graph.analyses()->get<RepetitionVectorAnalysis>(graph);
}

bool is_consistent(const Graph& graph) {
    return *graph.analyses()->get<ConsistencyAnalysis>(graph);
}

Int iteration_length(const Graph& graph) {
    Int total = 0;
    for (const Int q : repetition_vector(graph)) {
        total = checked_add(total, q);
    }
    return total;
}

}  // namespace sdf
