#include "sdf/repetition.hpp"

#include <vector>

#include "base/errors.hpp"

namespace sdf {

namespace {

std::vector<Int> compute_repetition_vector(const Graph& graph) {
    require(graph.actor_count() > 0, "repetition vector of an empty graph");
    const std::size_t n = graph.actor_count();

    // Undirected adjacency over channels: balance propagates both ways.
    std::vector<std::vector<ChannelId>> adjacent(n);
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        adjacent[graph.channel(c).src].push_back(c);
        adjacent[graph.channel(c).dst].push_back(c);
    }

    // Propagate rational firing rates by DFS per weakly connected component,
    // then scale each component to the smallest positive integer solution.
    std::vector<Rational> rate(n, Rational(0));
    std::vector<bool> visited(n, false);
    std::vector<Int> result(n, 0);

    for (ActorId root = 0; root < n; ++root) {
        if (visited[root]) {
            continue;
        }
        std::vector<ActorId> component;
        std::vector<ActorId> stack{root};
        visited[root] = true;
        rate[root] = Rational(1);
        while (!stack.empty()) {
            const ActorId a = stack.back();
            stack.pop_back();
            component.push_back(a);
            for (const ChannelId ci : adjacent[a]) {
                const Channel& ch = graph.channel(ci);
                // Balance: rate(src) * p == rate(dst) * c.
                const ActorId other = (ch.src == a) ? ch.dst : ch.src;
                const Rational implied = (ch.src == a)
                    ? rate[a] * Rational(ch.production, ch.consumption)
                    : rate[a] * Rational(ch.consumption, ch.production);
                if (!visited[other]) {
                    visited[other] = true;
                    rate[other] = implied;
                    stack.push_back(other);
                } else if (rate[other] != implied) {
                    throw InconsistentGraphError(
                        "balance equations unsolvable at channel " +
                        graph.actor(ch.src).name + " -> " + graph.actor(ch.dst).name);
                }
            }
        }
        // Re-check every channel inside the component (DFS above checks each
        // channel from at least one side, which is sufficient, but self-loop
        // channels with p != c would otherwise slip through: for them
        // src == dst and the implied rate differs from the stored one).
        // Scale: multiply by lcm of denominators, divide by gcd of numerators.
        Int den_lcm = 1;
        for (const ActorId a : component) {
            den_lcm = checked_lcm(den_lcm, rate[a].den());
        }
        Int num_gcd = 0;
        for (const ActorId a : component) {
            const Int scaled = checked_mul(rate[a].num(), den_lcm / rate[a].den());
            num_gcd = gcd(num_gcd, scaled);
        }
        for (const ActorId a : component) {
            const Int scaled = checked_mul(rate[a].num(), den_lcm / rate[a].den());
            result[a] = scaled / num_gcd;
        }
    }

    // Self-loop channels with p != c are inconsistent but invisible to the
    // rate propagation above; verify all balance equations explicitly.
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        const Channel& ch = graph.channel(c);
        if (checked_mul(result[ch.src], ch.production) !=
            checked_mul(result[ch.dst], ch.consumption)) {
            throw InconsistentGraphError(
                "balance equation violated at channel " + graph.actor(ch.src).name +
                " -> " + graph.actor(ch.dst).name);
        }
    }
    return result;
}

}  // namespace

std::vector<Int> RepetitionVectorAnalysis::compute(const Graph& graph) {
    return compute_repetition_vector(graph);
}

bool ConsistencyAnalysis::compute(const Graph& graph) {
    try {
        repetition_vector(graph);
        return true;
    } catch (const InconsistentGraphError&) {
        return false;
    }
}

std::vector<Int> repetition_vector(const Graph& graph) {
    // Cached per graph in the AnalysisManager: throughput, deadlock, lint
    // and the conversions all ask for this vector, often several times on
    // the same structure.  Failures (inconsistency) are not cached and
    // re-throw each call.
    return *graph.analyses()->get<RepetitionVectorAnalysis>(graph);
}

bool is_consistent(const Graph& graph) {
    return *graph.analyses()->get<ConsistencyAnalysis>(graph);
}

Int iteration_length(const Graph& graph) {
    Int total = 0;
    for (const Int q : repetition_vector(graph)) {
        total = checked_add(total, q);
    }
    return total;
}

}  // namespace sdf
