// analysis_manager.hpp — typed, lazily-computed, mutation-invalidated
// analysis slots shared by everything that asks questions about one graph.
//
// An *analysis* is a cheap traits struct
//
//     struct RepetitionVectorAnalysis {
//         using Result = std::vector<Int>;
//         static constexpr const char* kName = "repetition";
//         static constexpr bool kTimeSensitive = false;
//         static Result compute(const Graph&);
//     };
//
// kTimeSensitive marks results that depend on execution times (throughput)
// rather than only on rates and tokens (repetition, schedule, liveness):
// set_execution_time keeps the untimed slots — the DSE-style "retune,
// reanalyse" loop — and drops only the timed ones.
//
// declared next to its compute function (src/sdf for the structural
// analyses, src/analysis for throughput), so the manager itself depends on
// nothing above the graph model and any layer can add slots without
// touching this file.  AnalysisManager::get<A>() returns the cached result
// or computes, caches and returns it; failures (inconsistency, deadlock)
// propagate as the usual typed errors and cache nothing, so they re-throw
// on every query exactly like the direct call would.
//
// Every Graph owns a manager (Graph::analyses()).  Copies of a graph share
// it until either copy mutates; mutation swaps in a fresh manager so
// results cached for the old structure stay with the old graph — the
// copy-on-invalidate semantics the old two-slot GraphMemo had, now for any
// number of typed slots.  The pass pipeline (src/pass) additionally moves
// slots *across* a transformation when the pass declares them preserved
// (adopt()), which is what lets a repetition vector computed once survive
// an entire selfloops,prune,retiming chain.
//
// Slots are filled under the mutex, but compute() runs OUTSIDE it: analyses
// call back into the manager (throughput consults the repetition and
// schedule slots), and a held lock would self-deadlock.  Concurrent readers
// may race to compute the same slot; the first result wins and the loser's
// work is discarded — the same benign race the old memo allowed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sdf {

class Graph;

/// Cache counters of one slot, for --time-passes style reporting and the
/// preservation tests.
struct AnalysisSlotStats {
    std::string analysis;        ///< the traits' kName
    std::uint64_t hits = 0;      ///< queries served from the cache
    std::uint64_t misses = 0;    ///< queries that had to compute
    std::uint64_t adopted = 0;   ///< results inherited from a previous graph
    bool cached = false;         ///< a result is currently stored
};

/// See the file comment.
class AnalysisManager {
public:
    AnalysisManager() = default;
    AnalysisManager(const AnalysisManager&) = delete;
    AnalysisManager& operator=(const AnalysisManager&) = delete;

    /// The result of analysis A on `graph`, computed on the first call and
    /// served from the cache afterwards.  Whatever A::compute throws
    /// propagates unchanged and leaves the slot empty.
    template <typename A>
    std::shared_ptr<const typename A::Result> get(const Graph& graph) {
        const std::type_index key(typeid(A));
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            const auto it = slots_.find(key);
            if (it != slots_.end() && it->second.value) {
                ++it->second.hits;
                return std::static_pointer_cast<const typename A::Result>(
                    it->second.value);
            }
        }
        std::shared_ptr<const typename A::Result> computed =
            std::make_shared<typename A::Result>(A::compute(graph));
        const std::lock_guard<std::mutex> lock(mutex_);
        Slot& slot = slots_[key];
        slot.name = A::kName;
        slot.timed = A::kTimeSensitive;
        if (!slot.value) {
            slot.value = computed;
            ++slot.misses;
        } else {
            // Lost a compute race; keep the first result so every caller
            // sees one consistent object.
            ++slot.hits;
            computed = std::static_pointer_cast<const typename A::Result>(slot.value);
        }
        return computed;
    }

    /// The cached result of A, or nullptr — never computes.
    template <typename A>
    [[nodiscard]] std::shared_ptr<const typename A::Result> cached() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = slots_.find(std::type_index(typeid(A)));
        if (it == slots_.end()) {
            return nullptr;
        }
        return std::static_pointer_cast<const typename A::Result>(it->second.value);
    }

    /// True when a result for A is currently cached.
    template <typename A>
    [[nodiscard]] bool is_cached() const {
        return cached<A>() != nullptr;
    }

    /// True when a slot with this kName holds a result.
    [[nodiscard]] bool has(const std::string& analysis) const;

    /// Copies the cached results whose kName appears in `analyses` from
    /// another manager (typically the one of the graph a pass just
    /// replaced).  Only fills empty slots; counts as `adopted` in stats().
    void adopt(const AnalysisManager& from, const std::vector<std::string>& analyses);

    /// adopt() for every slot `from` holds.
    void adopt_all(const AnalysisManager& from);

    /// adopt() for every slot whose analysis is not time-sensitive; what
    /// Graph::set_execution_time uses to keep the structural results.
    void adopt_untimed(const AnalysisManager& from);

    /// Drops every cached result (counters survive).
    void invalidate();

    /// Per-slot cache counters, sorted by analysis name.
    [[nodiscard]] std::vector<AnalysisSlotStats> stats() const;

private:
    struct Slot {
        const char* name = "";
        bool timed = false;
        std::shared_ptr<const void> value;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t adopted = 0;
    };

    void adopt_matching(const AnalysisManager& from,
                        const std::vector<std::string>* filter, bool untimed_only);

    mutable std::mutex mutex_;
    std::unordered_map<std::type_index, Slot> slots_;
};

}  // namespace sdf
