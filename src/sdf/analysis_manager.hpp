// analysis_manager.hpp — typed, lazily-computed, mutation-REFINED analysis
// slots shared by everything that asks questions about one graph.
//
// An *analysis* is a cheap traits struct
//
//     struct RepetitionVectorAnalysis {
//         using Result = std::vector<Int>;
//         static constexpr const char* kName = "repetition";
//         static constexpr bool kTimeSensitive = false;
//         static Result compute(const Graph&);
//         // optional: delta-aware survival under a MutationLog
//         static Refined<Result> refine(const Result&, const RefineContext&);
//         // optional: refinement ordering (lower phases run first)
//         static constexpr int kRefinePhase = 0;
//     };
//
// kTimeSensitive marks results that depend on execution times (throughput)
// rather than only on rates and tokens (repetition, schedule, liveness).
//
// Traits are declared next to their compute function (src/sdf for the
// structural analyses, src/analysis for throughput), so the manager itself
// depends on nothing above the graph model and any layer can add slots
// without touching this file.  AnalysisManager::get<A>() returns the cached
// result or computes, caches and returns it; failures (inconsistency,
// deadlock) propagate as the usual typed errors and cache nothing, so they
// re-throw on every query exactly like the direct call would.
//
// Every Graph owns a manager (Graph::analyses()).  Copies of a graph share
// it until either copy mutates; mutation swaps in a fresh manager so results
// cached for the old structure stay with the old graph.  The swap is no
// longer a blanket invalidation: the mutator records a MutationEvent
// (sdf/mutation.hpp) and the fresh manager REFINES from the old one —
// per slot, the delta either
//
//   * KEEPS the cached value (a pure timing edit cannot move any untimed
//     result; counted in `kept`),
//   * REFINES it through the trait's optional refine() hook (repetition
//     re-solved only on the weakly connected component a rate edit touched,
//     throughput re-certified from the incremental max-plus state; counted
//     in `refined`), or
//   * DROPS it for lazy recomputation (the conservative default).
//
// A slot without a refine() hook follows the default rule: kept when the
// analysis is untimed and the log contains only execution-time edits —
// exactly the contract set_execution_time has always offered — dropped
// otherwise.  refine() hooks run OUTSIDE every manager lock in ascending
// kRefinePhase order, so a phase-1 hook may consult phase-0 results already
// installed in the target manager (RefineContext::target).  A hook that
// throws only drops its own slot: mutation never fails because refinement
// did, and an injected fault mid-refine degrades to a cache miss, never to
// a wrong cached value.
//
// The pass pipeline (src/pass) additionally moves slots *across* a
// transformation when the pass declares them preserved (adopt()), or
// refines them across a whole-graph rewrite when the pass emits a
// MutationLog delta (pass.hpp `PassResult::delta`).
//
// Slots are filled under the mutex, but compute() runs OUTSIDE it: analyses
// call back into the manager (throughput consults the repetition and
// schedule slots), and a held lock would self-deadlock.  Concurrent readers
// may race to compute the same slot; the first result wins and the loser's
// work is discarded — the same benign race the old memo allowed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sdf/mutation.hpp"

namespace sdf {

class Graph;
class AnalysisManager;

/// Everything a refine() hook may look at: the post-mutation graph, the
/// delta, the pre-mutation manager (for sibling results computed against
/// the OLD graph) and the manager being filled (for sibling results already
/// kept/refined in an earlier phase).  Hooks must not call target.get<>()
/// — refinement may consult caches, never trigger recomputation.
struct RefineContext {
    const Graph& graph;            ///< the graph AFTER the mutation
    const MutationLog& log;        ///< what changed
    const AnalysisManager& source; ///< manager of the pre-mutation graph
    AnalysisManager& target;       ///< manager being refined into
};

/// What a refine() hook decided for one slot.
template <typename R>
struct Refined {
    enum class Action { kept, refined, dropped };
    Action action = Action::dropped;
    std::shared_ptr<const R> value;  ///< set when action == refined

    static Refined keep() { return {Action::kept, nullptr}; }
    static Refined drop() { return {Action::dropped, nullptr}; }
    static Refined make(R refined_value) {
        return {Action::refined, std::make_shared<const R>(std::move(refined_value))};
    }
    static Refined share(std::shared_ptr<const R> refined_value) {
        return {Action::refined, std::move(refined_value)};
    }
};

/// Cache counters of one slot, for --time-passes style reporting and the
/// preservation tests.
struct AnalysisSlotStats {
    std::string analysis;        ///< the traits' kName
    std::uint64_t hits = 0;      ///< queries served from the cache
    std::uint64_t misses = 0;    ///< queries that had to compute
    std::uint64_t adopted = 0;   ///< results inherited from a previous graph
    std::uint64_t kept = 0;      ///< results that survived a delta unchanged
    std::uint64_t refined = 0;   ///< results updated in place under a delta
    bool cached = false;         ///< a result is currently stored
};

namespace detail {

/// Detects the optional `static Refined<Result> refine(const Result&,
/// const RefineContext&)` hook on an analysis trait.
template <typename A, typename = void>
struct has_refine_hook : std::false_type {};
template <typename A>
struct has_refine_hook<A, std::void_t<decltype(A::refine(
                              std::declval<const typename A::Result&>(),
                              std::declval<const RefineContext&>()))>> : std::true_type {};

/// Detects the optional `static constexpr int kRefinePhase` member.
template <typename A, typename = void>
struct refine_phase {
    static constexpr int value = 0;
};
template <typename A>
struct refine_phase<A, std::void_t<decltype(A::kRefinePhase)>> {
    static constexpr int value = A::kRefinePhase;
};

}  // namespace detail

/// See the file comment.
class AnalysisManager {
public:
    AnalysisManager() = default;
    AnalysisManager(const AnalysisManager&) = delete;
    AnalysisManager& operator=(const AnalysisManager&) = delete;

    /// The result of analysis A on `graph`, computed on the first call and
    /// served from the cache afterwards.  Whatever A::compute throws
    /// propagates unchanged and leaves the slot empty.
    template <typename A>
    std::shared_ptr<const typename A::Result> get(const Graph& graph) {
        const std::type_index key(typeid(A));
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            const auto it = slots_.find(key);
            if (it != slots_.end() && it->second.value) {
                ++it->second.hits;
                return std::static_pointer_cast<const typename A::Result>(
                    it->second.value);
            }
        }
        std::shared_ptr<const typename A::Result> computed =
            std::make_shared<typename A::Result>(A::compute(graph));
        const std::lock_guard<std::mutex> lock(mutex_);
        Slot& slot = slots_[key];
        describe_slot<A>(slot);
        if (!slot.value) {
            slot.value = computed;
            ++slot.misses;
        } else {
            // Lost a compute race; keep the first result so every caller
            // sees one consistent object.
            ++slot.hits;
            computed = std::static_pointer_cast<const typename A::Result>(slot.value);
        }
        return computed;
    }

    /// The cached result of A, or nullptr — never computes.
    template <typename A>
    [[nodiscard]] std::shared_ptr<const typename A::Result> cached() const {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = slots_.find(std::type_index(typeid(A)));
        if (it == slots_.end()) {
            return nullptr;
        }
        return std::static_pointer_cast<const typename A::Result>(it->second.value);
    }

    /// True when a result for A is currently cached.
    template <typename A>
    [[nodiscard]] bool is_cached() const {
        return cached<A>() != nullptr;
    }

    /// Installs a result for A computed elsewhere (the refinement hooks use
    /// this to hand derived state to later phases).  Only fills an empty
    /// slot — a concurrently computed first result wins, as everywhere —
    /// and counts as `refined` when `as_refined`, as `adopted` otherwise.
    template <typename A>
    void install(std::shared_ptr<const typename A::Result> value, bool as_refined) {
        if (!value) {
            return;
        }
        const std::lock_guard<std::mutex> lock(mutex_);
        Slot& slot = slots_[std::type_index(typeid(A))];
        describe_slot<A>(slot);
        if (slot.value) {
            return;
        }
        slot.value = std::move(value);
        if (as_refined) {
            ++slot.refined;
        } else {
            ++slot.adopted;
        }
    }

    /// True when a slot with this kName holds a result.
    [[nodiscard]] bool has(const std::string& analysis) const;

    /// Copies the cached results whose kName appears in `analyses` from
    /// another manager (typically the one of the graph a pass just
    /// replaced).  Only fills empty slots; counts as `adopted` in stats().
    void adopt(const AnalysisManager& from, const std::vector<std::string>& analyses);

    /// adopt() for every slot `from` holds.
    void adopt_all(const AnalysisManager& from);

    /// adopt() for every slot whose analysis is not time-sensitive; what
    /// the timing-only refinement default reduces to.
    void adopt_untimed(const AnalysisManager& from);

    /// Refines every cached result of `from` through the mutation delta
    /// `log` into this manager (see the file comment for the per-slot
    /// kept/refined/dropped contract).  `graph` is the POST-mutation graph.
    /// Hooks run outside all manager locks, in ascending refine phase; a
    /// throwing hook drops its slot and nothing else.  Never throws.
    void refine_from(const AnalysisManager& from, const Graph& graph,
                     const MutationLog& log);

    /// Drops every cached result (counters survive).
    void invalidate();

    /// Per-slot cache counters, sorted by analysis name.
    [[nodiscard]] std::vector<AnalysisSlotStats> stats() const;

private:
    /// Type-erased refine hook: old value in, kept/refined/dropped out.
    struct ErasedOutcome {
        int action = 0;  ///< 0 dropped, 1 kept, 2 refined
        std::shared_ptr<const void> value;
    };
    using RefineFn = ErasedOutcome (*)(const std::shared_ptr<const void>&,
                                       const RefineContext&);

    struct Slot {
        const char* name = "";
        bool timed = false;
        RefineFn refine_fn = nullptr;  ///< null: default untimed/timing rule
        int phase = 0;
        std::shared_ptr<const void> value;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t adopted = 0;
        std::uint64_t kept = 0;
        std::uint64_t refined = 0;
    };

    /// Stamps the static trait metadata onto a slot (idempotent).
    template <typename A>
    static void describe_slot(Slot& slot) {
        slot.name = A::kName;
        slot.timed = A::kTimeSensitive;
        slot.phase = detail::refine_phase<A>::value;
        if constexpr (detail::has_refine_hook<A>::value) {
            slot.refine_fn = [](const std::shared_ptr<const void>& old_value,
                                const RefineContext& ctx) -> ErasedOutcome {
                const auto& old =
                    *std::static_pointer_cast<const typename A::Result>(old_value);
                Refined<typename A::Result> out = A::refine(old, ctx);
                ErasedOutcome erased;
                switch (out.action) {
                    case Refined<typename A::Result>::Action::kept:
                        erased.action = 1;
                        break;
                    case Refined<typename A::Result>::Action::refined:
                        erased.action = out.value ? 2 : 0;
                        erased.value = std::move(out.value);
                        break;
                    case Refined<typename A::Result>::Action::dropped:
                        erased.action = 0;
                        break;
                }
                return erased;
            };
        }
    }

    void adopt_matching(const AnalysisManager& from,
                        const std::vector<std::string>* filter, bool untimed_only);

    mutable std::mutex mutex_;
    std::unordered_map<std::type_index, Slot> slots_;
};

}  // namespace sdf
