// simulate.hpp — concrete self-timed execution of timed SDF graphs.
//
// Self-timed execution (the standard semantics assumed by the paper, after
// [1, 4]): every actor starts a firing as soon as sufficient input tokens
// are available, with unlimited auto-concurrency; a firing occupies
// execution-time units between consuming its inputs and producing its
// outputs.  Two entry points:
//
//  * `simulate_iterations` runs a fixed number of complete iterations and
//    reports the makespan — e.g. "a single execution of the graph of
//    Figure 1(a) takes 23 time units" (Section 4.1).
//  * `simulate_throughput` runs until the execution state recurs (the
//    state-space method of Ghamarian et al. [8]) and returns the exact
//    periodic-phase throughput of every actor.
//
// Both require the usual boundedness precondition: every actor must lie on
// a directed cycle, otherwise self-timed throughput is unbounded and the
// functions throw (apply transform/selfloops.hpp first if that is intended).
#pragma once

#include <cstddef>
#include <vector>

#include "base/rational.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// Outcome of a finite self-timed run.
struct FiniteRun {
    Int makespan = 0;                         ///< completion time of the last firing
    std::vector<Int> firings;                 ///< per-actor completed firing counts
    std::vector<Int> completion_times;        ///< per-actor completion time of its last firing
    std::vector<Int> first_completion_times;  ///< per-actor completion time of its first
                                              ///< firing (-1 when it never fired)
    std::vector<Int> max_tokens;              ///< per-channel occupancy high-water mark
    std::vector<Int> max_space;               ///< per-channel SPACE-CLAIM high-water
                                              ///< mark: producers claim room at firing
                                              ///< start, consumers free it at completion
                                              ///< — the capacity that reproduces this
                                              ///< execution unchanged
};

/// Executes exactly `iterations` full iterations (q(a)·iterations firings of
/// every actor a) self-timed from time 0 and reports the makespan.  Throws
/// DeadlockError when execution gets stuck.
FiniteRun simulate_iterations(const Graph& graph, Int iterations);

/// Outcome of the recurrent-state throughput exploration.
struct ThroughputRun {
    std::vector<Rational> throughput;    ///< per-actor firings per time unit (exact)
    Int transient_time = 0;              ///< time at which the periodic phase was entered
    Int period_time = 0;                 ///< duration of one period of the periodic phase
    std::vector<Int> period_firings;     ///< per-actor firings within one period
    bool deadlocked = false;             ///< true when execution stops; throughput all 0
    std::vector<Int> max_space;          ///< per-channel space-claim high-water marks
                                         ///< over transient + one full period — the
                                         ///< all-time self-timed storage requirement
};

/// Self-timed execution with recurrent-state detection.  `max_events` bounds
/// the exploration (throws Error when exceeded, e.g. for zero-time cycles).
/// Requires a globally recurrent state, which only exists when token
/// accumulation is bounded — use simulate_until for graphs whose components
/// run at different rates.
ThroughputRun simulate_throughput(const Graph& graph, std::size_t max_events = 1u << 22);

/// Self-timed execution up to (at least) time `horizon`: firings keep
/// starting while the clock is below the horizon; the run then drains.
/// Reports the firing counts at the moment the clock passed the horizon —
/// long-run rates are firings/horizon up to O(1/horizon) transient error.
/// Unlike simulate_throughput this needs no recurrent state, so it works on
/// graphs whose components drift apart (unbounded token accumulation).
FiniteRun simulate_until(const Graph& graph, Int horizon,
                         std::size_t max_events = 1u << 24);

}  // namespace sdf
