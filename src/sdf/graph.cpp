#include "sdf/graph.hpp"

#include "base/errors.hpp"

namespace sdf {

ActorId Graph::add_actor(const std::string& name, Int execution_time) {
    require(!name.empty(), "actor name must be non-empty");
    require(execution_time >= 0, "actor '" + name + "' has negative execution time");
    require(actor_by_name_.find(name) == actor_by_name_.end(),
            "duplicate actor name '" + name + "'");
    const ActorId id = actors_.size();
    actors_.push_back(Actor{name, execution_time});
    actor_by_name_.emplace(name, id);
    invalidate_analyses();
    return id;
}

ChannelId Graph::add_channel(ActorId src, ActorId dst, Int production, Int consumption,
                             Int initial_tokens) {
    require(src < actors_.size() && dst < actors_.size(), "channel endpoint out of range");
    require(production > 0, "channel production rate must be positive");
    require(consumption > 0, "channel consumption rate must be positive");
    require(initial_tokens >= 0, "channel initial tokens must be non-negative");
    const ChannelId id = channels_.size();
    channels_.push_back(Channel{src, dst, production, consumption, initial_tokens});
    invalidate_analyses();
    return id;
}

void Graph::set_execution_time(ActorId id, Int execution_time) {
    require(id < actors_.size(), "actor id out of range");
    require(execution_time >= 0, "negative execution time");
    actors_[id].execution_time = execution_time;
    // Untimed analyses (repetition, schedule, liveness) survive a retuned
    // execution time; timed ones (throughput) must not.  Swap in a fresh
    // manager carrying only the untimed slots so copies sharing the old
    // manager keep their complete cache.
    auto fresh = std::make_shared<AnalysisManager>();
    fresh->adopt_untimed(*analyses_);
    analyses_ = fresh;
}

void Graph::set_initial_tokens(ChannelId id, Int initial_tokens) {
    require(id < channels_.size(), "channel id out of range");
    require(initial_tokens >= 0, "negative initial tokens");
    channels_[id].initial_tokens = initial_tokens;
    // The repetition vector only depends on rates, but the schedule (and
    // its existence — deadlock) depends on the token distribution.
    invalidate_analyses();
}

std::optional<ActorId> Graph::find_actor(const std::string& name) const {
    const auto it = actor_by_name_.find(name);
    if (it == actor_by_name_.end()) {
        return std::nullopt;
    }
    return it->second;
}

std::vector<ChannelId> Graph::in_channels(ActorId id) const {
    std::vector<ChannelId> result;
    for (ChannelId c = 0; c < channels_.size(); ++c) {
        if (channels_[c].dst == id) {
            result.push_back(c);
        }
    }
    return result;
}

std::vector<ChannelId> Graph::out_channels(ActorId id) const {
    std::vector<ChannelId> result;
    for (ChannelId c = 0; c < channels_.size(); ++c) {
        if (channels_[c].src == id) {
            result.push_back(c);
        }
    }
    return result;
}

Int Graph::total_initial_tokens() const {
    Int total = 0;
    for (const Channel& c : channels_) {
        total = checked_add(total, c.initial_tokens);
    }
    return total;
}

bool Graph::is_homogeneous() const {
    for (const Channel& c : channels_) {
        if (!c.is_homogeneous()) {
            return false;
        }
    }
    return true;
}

}  // namespace sdf
