#include "sdf/graph.hpp"

#include "base/errors.hpp"

namespace sdf {

void Graph::record_mutation(const MutationEvent& event) {
    // The retired manager keeps serving copies that still share it; the
    // fresh one starts from whatever the single-event delta lets survive.
    // refine_from never throws (a failing hook only drops its slot), so a
    // mutator can never leave the graph holding stale cached analyses.
    auto fresh = std::make_shared<AnalysisManager>();
    MutationLog delta;
    delta.push(event);
    fresh->refine_from(*analyses_, *this, delta);
    analyses_ = fresh;
    mutations_.push(event);
}

ActorId Graph::add_actor(const std::string& name, Int execution_time) {
    require(!name.empty(), "actor name must be non-empty");
    require(execution_time >= 0, "actor '" + name + "' has negative execution time");
    require(actor_by_name_.find(name) == actor_by_name_.end(),
            "duplicate actor name '" + name + "'");
    const ActorId id = actors_.size();
    actors_.push_back(Actor{name, execution_time});
    actor_by_name_.emplace(name, id);
    MutationEvent event;
    event.kind = MutationKind::actor_added;
    event.id = id;
    event.new_a = execution_time;
    record_mutation(event);
    return id;
}

ChannelId Graph::add_channel(ActorId src, ActorId dst, Int production, Int consumption,
                             Int initial_tokens) {
    require(src < actors_.size() && dst < actors_.size(), "channel endpoint out of range");
    require(production > 0, "channel production rate must be positive");
    require(consumption > 0, "channel consumption rate must be positive");
    require(initial_tokens >= 0, "channel initial tokens must be non-negative");
    const ChannelId id = channels_.size();
    channels_.push_back(Channel{src, dst, production, consumption, initial_tokens});
    MutationEvent event;
    event.kind = MutationKind::channel_added;
    event.id = id;
    event.new_a = production;
    event.new_b = consumption;
    record_mutation(event);
    return id;
}

void Graph::set_execution_time(ActorId id, Int execution_time) {
    require(id < actors_.size(), "actor id out of range");
    require(execution_time >= 0, "negative execution time");
    if (actors_[id].execution_time == execution_time) {
        return;  // no-op edit: nothing changed, the whole cache stands
    }
    MutationEvent event;
    event.kind = MutationKind::execution_time;
    event.id = id;
    event.old_a = actors_[id].execution_time;
    event.new_a = execution_time;
    actors_[id].execution_time = execution_time;
    record_mutation(event);
}

void Graph::set_initial_tokens(ChannelId id, Int initial_tokens) {
    require(id < channels_.size(), "channel id out of range");
    require(initial_tokens >= 0, "negative initial tokens");
    if (channels_[id].initial_tokens == initial_tokens) {
        return;  // no-op edit
    }
    MutationEvent event;
    event.kind = MutationKind::initial_tokens;
    event.id = id;
    event.old_a = channels_[id].initial_tokens;
    event.new_a = initial_tokens;
    channels_[id].initial_tokens = initial_tokens;
    record_mutation(event);
}

void Graph::set_rates(ChannelId id, Int production, Int consumption) {
    require(id < channels_.size(), "channel id out of range");
    require(production > 0, "channel production rate must be positive");
    require(consumption > 0, "channel consumption rate must be positive");
    Channel& channel = channels_[id];
    if (channel.production == production && channel.consumption == consumption) {
        return;  // no-op edit
    }
    MutationEvent event;
    event.kind = MutationKind::rates;
    event.id = id;
    event.old_a = channel.production;
    event.new_a = production;
    event.old_b = channel.consumption;
    event.new_b = consumption;
    channel.production = production;
    channel.consumption = consumption;
    record_mutation(event);
}

void Graph::remove_channel(ChannelId id) {
    require(id < channels_.size(), "channel id out of range");
    MutationEvent event;
    event.kind = MutationKind::channel_removed;
    event.id = id;
    event.old_a = channels_[id].production;
    event.old_b = channels_[id].consumption;
    channels_.erase(channels_.begin() + static_cast<std::ptrdiff_t>(id));
    record_mutation(event);
}

void Graph::remove_actor(ActorId id) {
    require(id < actors_.size(), "actor id out of range");
    for (const Channel& c : channels_) {
        require(c.src != id && c.dst != id,
                "actor '" + actors_[id].name + "' still has channels; remove them first");
    }
    MutationEvent event;
    event.kind = MutationKind::actor_removed;
    event.id = id;
    event.old_a = actors_[id].execution_time;
    actor_by_name_.erase(actors_[id].name);
    actors_.erase(actors_.begin() + static_cast<std::ptrdiff_t>(id));
    for (Channel& c : channels_) {
        if (c.src > id) {
            --c.src;
        }
        if (c.dst > id) {
            --c.dst;
        }
    }
    for (auto& [name, actor] : actor_by_name_) {
        if (actor > id) {
            --actor;
        }
    }
    record_mutation(event);
}

std::optional<ActorId> Graph::find_actor(const std::string& name) const {
    const auto it = actor_by_name_.find(name);
    if (it == actor_by_name_.end()) {
        return std::nullopt;
    }
    return it->second;
}

std::vector<ChannelId> Graph::in_channels(ActorId id) const {
    std::vector<ChannelId> result;
    for (ChannelId c = 0; c < channels_.size(); ++c) {
        if (channels_[c].dst == id) {
            result.push_back(c);
        }
    }
    return result;
}

std::vector<ChannelId> Graph::out_channels(ActorId id) const {
    std::vector<ChannelId> result;
    for (ChannelId c = 0; c < channels_.size(); ++c) {
        if (channels_[c].src == id) {
            result.push_back(c);
        }
    }
    return result;
}

Int Graph::total_initial_tokens() const {
    Int total = 0;
    for (const Channel& c : channels_) {
        total = checked_add(total, c.initial_tokens);
    }
    return total;
}

bool Graph::is_homogeneous() const {
    for (const Channel& c : channels_) {
        if (!c.is_homogeneous()) {
            return false;
        }
    }
    return true;
}

}  // namespace sdf
