// properties.hpp — structural queries on SDF graphs: token enumeration,
// connectivity, and the dependency digraph used by graph algorithms.
//
// The global initial-token order defined here (by channel id, then FIFO
// position) is load-bearing: the symbolic conversion (Algorithm 1) indexes
// the rows/columns of its max-plus matrix by exactly this order, and the
// reduced HSDF construction names its actors after it.
#pragma once

#include <cstddef>
#include <vector>

#include "base/digraph.hpp"
#include "sdf/graph.hpp"

namespace sdf {

/// One initial token: the `position`-th token (0-based, FIFO head first) of
/// channel `channel`.
struct TokenRef {
    ChannelId channel = 0;
    Int position = 0;

    friend bool operator==(const TokenRef&, const TokenRef&) = default;
};

/// All initial tokens of the graph in the canonical global order.
std::vector<TokenRef> initial_tokens(const Graph& graph);

/// The dependency digraph of the graph: one node per actor, one edge per
/// channel carrying (weight = execution time of the source actor,
/// tokens = initial tokens of the channel).  For HSDF graphs the maximum
/// cycle ratio of this digraph is the iteration period.
Digraph dependency_digraph(const Graph& graph);

/// True when the graph is strongly connected (every actor reaches every
/// other along channels).  Single-actor graphs are strongly connected.
bool is_strongly_connected(const Graph& graph);

/// True when every actor of the graph lies on at least one directed cycle.
/// Actors not on any cycle have unbounded self-timed throughput, which most
/// analyses reject; `add_self_loops` (transform/selfloops.hpp) is the usual
/// fix.
bool every_actor_on_cycle(const Graph& graph);

}  // namespace sdf
