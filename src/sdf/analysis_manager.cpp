#include "sdf/analysis_manager.hpp"

#include <algorithm>

namespace sdf {

bool AnalysisManager::has(const std::string& analysis) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, slot] : slots_) {
        if (slot.value && analysis == slot.name) {
            return true;
        }
    }
    return false;
}

void AnalysisManager::adopt_matching(const AnalysisManager& from,
                                     const std::vector<std::string>* filter,
                                     bool untimed_only) {
    // Lock ordering: `from` is always the retired manager of a graph the
    // caller just replaced, never the adopting one, so the two locks
    // nest without a cycle.  Self-adoption is a no-op.
    if (&from == this) {
        return;
    }
    const std::lock_guard<std::mutex> source_lock(from.mutex_);
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, source] : from.slots_) {
        if (!source.value) {
            continue;
        }
        if (untimed_only && source.timed) {
            continue;
        }
        if (filter != nullptr &&
            std::find(filter->begin(), filter->end(), source.name) == filter->end()) {
            continue;
        }
        Slot& slot = slots_[key];
        if (slot.value) {
            continue;  // a fresher result already exists; keep it
        }
        slot.name = source.name;
        slot.timed = source.timed;
        slot.value = source.value;
        ++slot.adopted;
    }
}

void AnalysisManager::adopt(const AnalysisManager& from,
                            const std::vector<std::string>& analyses) {
    adopt_matching(from, &analyses, false);
}

void AnalysisManager::adopt_all(const AnalysisManager& from) {
    adopt_matching(from, nullptr, false);
}

void AnalysisManager::adopt_untimed(const AnalysisManager& from) {
    adopt_matching(from, nullptr, true);
}

void AnalysisManager::invalidate() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, slot] : slots_) {
        slot.value.reset();
    }
}

std::vector<AnalysisSlotStats> AnalysisManager::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<AnalysisSlotStats> result;
    result.reserve(slots_.size());
    for (const auto& [key, slot] : slots_) {
        AnalysisSlotStats s;
        s.analysis = slot.name;
        s.hits = slot.hits;
        s.misses = slot.misses;
        s.adopted = slot.adopted;
        s.cached = slot.value != nullptr;
        result.push_back(std::move(s));
    }
    std::sort(result.begin(), result.end(),
              [](const AnalysisSlotStats& a, const AnalysisSlotStats& b) {
                  return a.analysis < b.analysis;
              });
    return result;
}

}  // namespace sdf
