#include "sdf/analysis_manager.hpp"

#include <algorithm>
#include <string_view>

namespace sdf {

bool AnalysisManager::has(const std::string& analysis) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, slot] : slots_) {
        if (slot.value && analysis == slot.name) {
            return true;
        }
    }
    return false;
}

void AnalysisManager::adopt_matching(const AnalysisManager& from,
                                     const std::vector<std::string>* filter,
                                     bool untimed_only) {
    // Lock ordering: `from` is always the retired manager of a graph the
    // caller just replaced, never the adopting one, so the two locks
    // nest without a cycle.  Self-adoption is a no-op.
    if (&from == this) {
        return;
    }
    const std::lock_guard<std::mutex> source_lock(from.mutex_);
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, source] : from.slots_) {
        if (!source.value) {
            continue;
        }
        if (untimed_only && source.timed) {
            continue;
        }
        if (filter != nullptr &&
            std::find(filter->begin(), filter->end(), source.name) == filter->end()) {
            continue;
        }
        Slot& slot = slots_[key];
        if (slot.value) {
            continue;  // a fresher result already exists; keep it
        }
        slot.name = source.name;
        slot.timed = source.timed;
        slot.refine_fn = source.refine_fn;
        slot.phase = source.phase;
        slot.value = source.value;
        ++slot.adopted;
    }
}

void AnalysisManager::adopt(const AnalysisManager& from,
                            const std::vector<std::string>& analyses) {
    adopt_matching(from, &analyses, false);
}

void AnalysisManager::adopt_all(const AnalysisManager& from) {
    adopt_matching(from, nullptr, false);
}

void AnalysisManager::adopt_untimed(const AnalysisManager& from) {
    adopt_matching(from, nullptr, true);
}

void AnalysisManager::refine_from(const AnalysisManager& from, const Graph& graph,
                                  const MutationLog& log) {
    if (&from == this || log.empty()) {
        return;
    }
    // Snapshot the source slots so the hooks run without any lock held:
    // refinement may consult sibling caches of either manager, and a held
    // lock would self-deadlock exactly like it would for compute().
    struct Pending {
        std::type_index key;
        Slot slot;  // metadata + value copy; counters irrelevant here
    };
    std::vector<Pending> pending;
    {
        const std::lock_guard<std::mutex> source_lock(from.mutex_);
        pending.reserve(from.slots_.size());
        for (const auto& [key, source] : from.slots_) {
            if (source.value) {
                pending.push_back(Pending{key, source});
            }
        }
    }
    // Phase order lets derived slots (throughput) read base slots
    // (repetition, incremental max-plus state) the earlier phases already
    // installed; ties break on the slot name for determinism.
    std::sort(pending.begin(), pending.end(), [](const Pending& a, const Pending& b) {
        if (a.slot.phase != b.slot.phase) {
            return a.slot.phase < b.slot.phase;
        }
        return std::string_view(a.slot.name) < std::string_view(b.slot.name);
    });

    const RefineContext ctx{graph, log, from, *this};
    for (const Pending& p : pending) {
        ErasedOutcome outcome;
        if (p.slot.refine_fn != nullptr) {
            try {
                outcome = p.slot.refine_fn(p.slot.value, ctx);
            } catch (...) {
                // A refinement failure (budget trip, injected fault, local
                // re-solve discovering the result is gone) only costs the
                // cache entry: the mutation itself must never fail, and a
                // later query recomputes from scratch.
                outcome.action = 0;
            }
        } else if (!p.slot.timed && log.timing_only()) {
            // Default rule: untimed results survive pure timing edits —
            // the contract set_execution_time has always offered.
            outcome.action = 1;
        }
        if (outcome.action == 0) {
            continue;
        }
        const std::lock_guard<std::mutex> lock(mutex_);
        Slot& slot = slots_[p.key];
        slot.name = p.slot.name;
        slot.timed = p.slot.timed;
        slot.refine_fn = p.slot.refine_fn;
        slot.phase = p.slot.phase;
        if (slot.value) {
            continue;  // a concurrent first result wins, as everywhere
        }
        if (outcome.action == 1) {
            slot.value = p.slot.value;
            ++slot.kept;
        } else {
            slot.value = std::move(outcome.value);
            ++slot.refined;
        }
    }
}

void AnalysisManager::invalidate() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, slot] : slots_) {
        slot.value.reset();
    }
}

std::vector<AnalysisSlotStats> AnalysisManager::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<AnalysisSlotStats> result;
    result.reserve(slots_.size());
    for (const auto& [key, slot] : slots_) {
        AnalysisSlotStats s;
        s.analysis = slot.name;
        s.hits = slot.hits;
        s.misses = slot.misses;
        s.adopted = slot.adopted;
        s.kept = slot.kept;
        s.refined = slot.refined;
        s.cached = slot.value != nullptr;
        result.push_back(std::move(s));
    }
    std::sort(result.begin(), result.end(),
              [](const AnalysisSlotStats& a, const AnalysisSlotStats& b) {
                  return a.analysis < b.analysis;
              });
    return result;
}

}  // namespace sdf
