#include "serve/server.hpp"

#include <cerrno>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "base/signals.hpp"

namespace sdf {
namespace serve {

namespace {

/// The 503-style refusal for a line shed by admission control.  The line
/// is parsed only to echo its id and op; a malformed line is refused with
/// null echoes (it would have been a 400 anyway — the client still sees
/// the overload first, which is the honest answer).
std::string overloaded_response(const std::string& line) {
    Json id;
    Json op_echo;
    try {
        const Json request = Json::parse(line);
        if (const Json* found = request.find("id")) {
            if (found->is_string() || found->is_integer() || found->is_null()) {
                id = *found;
            }
        }
        if (const Json* found = request.find("op")) {
            if (found->is_string()) {
                op_echo = *found;
            }
        }
    } catch (const JsonParseError&) {
    }
    return make_error_response(
               id, op_echo, 4, "none",
               make_error(503, "overloaded",
                          "request refused: the server's queue is full"))
        .dump();
}

/// EINTR-safe, SIGPIPE-proof full write: MSG_NOSIGNAL turns a vanished
/// peer into a handled EPIPE return (false) instead of process death, and
/// cmd_serve additionally SIG_IGNs SIGPIPE for any plain write the daemon
/// does elsewhere.
bool write_all(int fd, const std::string& data) {
    std::size_t written = 0;
    while (written < data.size()) {
        const ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;  // EPIPE and friends: this connection only
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

/// The in-band refusal for a connection that streamed past the line bound
/// without a newline.  No id can be echoed — the line was never completed,
/// let alone parsed.
std::string oversize_response(std::size_t limit) {
    return make_error_response(
               Json::make_null(), Json::make_null(), 2, "none",
               make_error(413, "payload-too-large",
                          "request line exceeds the " + std::to_string(limit) +
                              "-byte limit"))
        .dump();
}

}  // namespace

Server::Server(ServeCore& core, ServerOptions options)
    : core_(core), options_(options),
      pool_(options.threads == 0 ? 1 : options.threads) {
    core_.set_queue_depth_fn([this] { return pool_.pending_tasks(); });
}

Server::~Server() {
    drain();
    core_.set_queue_depth_fn({});
}

std::size_t Server::queue_depth() const { return pool_.pending_tasks(); }

void Server::submit(std::string line, std::function<void(std::string)> reply) {
    if (pool_.size() > 1 && pool_.pending_tasks() >= options_.max_queue) {
        reply(overloaded_response(line));
        return;
    }
    pool_.submit([this, line = std::move(line), reply = std::move(reply)] {
        reply(core_.handle_line(line));
    });
}

void Server::drain() { pool_.drain(); }

int Server::run_stdio(std::istream& in, std::ostream& out) {
    std::mutex write_mutex;
    std::string line;
    // SIGTERM/SIGINT (installed without SA_RESTART) interrupt the blocking
    // read under getline, which fails the stream and exits the loop — the
    // drain below is the graceful part.
    while (!core_.shutdown_requested() && !shutdown_signal_received() &&
           std::getline(in, line)) {
        // CRLF clients: getline keeps the '\r'; strip it like the socket
        // transport does so both spell the same request.
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
        if (line.empty()) {
            continue;
        }
        submit(std::move(line), [&write_mutex, &out](std::string response) {
            const std::lock_guard<std::mutex> lock(write_mutex);
            out << response << "\n" << std::flush;
        });
        line.clear();
    }
    drain();
    core_.sync_persistence();
    return 0;
}

int Server::run_unix(const std::string& path) {
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (path.size() >= sizeof(address.sun_path)) {
        return 2;
    }
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return 2;
    }
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0 ||
        ::listen(fd, 16) < 0) {
        ::close(fd);
        return 2;
    }
    const int result = run_listener(fd);
    ::unlink(path.c_str());
    return result;
}

int Server::run_tcp(unsigned short port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return 2;
    }
    const int reuse = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) < 0 ||
        ::listen(fd, 16) < 0) {
        ::close(fd);
        return 2;
    }
    return run_listener(fd);
}

int Server::run_listener(int listen_fd) {
    std::vector<std::thread> connections;
    // Both exits are graceful: an in-band `shutdown` request or SIGTERM/
    // SIGINT.  Either way: stop accepting, join connections (which finish
    // their in-flight requests), drain the pool, flush the cache index.
    while (!core_.shutdown_requested() && !shutdown_signal_received()) {
        // Poll with a timeout so a shutdown processed on a worker thread is
        // noticed within ~50ms even when no new connection arrives.
        pollfd poll_entry{listen_fd, POLLIN, 0};
        const int ready = ::poll(&poll_entry, 1, 50);
        if (ready < 0 && errno != EINTR) {
            break;
        }
        if (ready <= 0 || (poll_entry.revents & POLLIN) == 0) {
            continue;
        }
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            continue;
        }
        connections.emplace_back([this, fd] { serve_connection(fd); });
    }
    ::close(listen_fd);
    for (std::thread& connection : connections) {
        connection.join();
    }
    drain();
    core_.sync_persistence();
    return 0;
}

void Server::serve_connection(int fd) {
    auto write_mutex = std::make_shared<std::mutex>();
    std::string buffer;
    char chunk[4096];
    while (!core_.shutdown_requested() && !shutdown_signal_received()) {
        pollfd poll_entry{fd, POLLIN, 0};
        const int ready = ::poll(&poll_entry, 1, 50);
        if (ready < 0 && errno != EINTR) {
            break;
        }
        if (ready <= 0 || (poll_entry.revents & (POLLIN | POLLHUP)) == 0) {
            continue;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR) {
            continue;
        }
        if (n <= 0) {
            break;  // peer closed (or error)
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        for (std::size_t newline = buffer.find('\n', start);
             newline != std::string::npos; newline = buffer.find('\n', start)) {
            std::string line = buffer.substr(start, newline - start);
            start = newline + 1;
            if (!line.empty() && line.back() == '\r') {
                line.pop_back();
            }
            if (line.empty()) {
                continue;
            }
            submit(std::move(line), [write_mutex, fd](std::string response) {
                response += '\n';
                const std::lock_guard<std::mutex> lock(*write_mutex);
                write_all(fd, response);
            });
        }
        buffer.erase(0, start);
        // Enforce the line bound INCREMENTALLY: a client streaming an
        // endless newline-free line must not grow the buffer without limit.
        // (Complete oversized lines are refused in-band by handle_line; this
        // catches the ones that never complete.)
        if (buffer.size() > core_.max_line_bytes()) {
            const std::lock_guard<std::mutex> lock(*write_mutex);
            write_all(fd, oversize_response(core_.max_line_bytes()) + "\n");
            break;
        }
    }
    // Finish this connection's in-flight requests before closing its fd;
    // other connections' requests drain with them (shared pool).
    drain();
    ::close(fd);
}

}  // namespace serve
}  // namespace sdf
