#include "serve/persist.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <utility>

#include "base/crc64.hpp"
#include "base/errors.hpp"
#include "robust/fault.hpp"
#include "serve/graph_store.hpp"

namespace sdf {
namespace serve {

namespace {

constexpr char kMagic[8] = {'S', 'D', 'F', 'R', 'E', 'D', 'P', '1'};
constexpr std::size_t kHeaderBytes = 28;  // magic + exit + three lengths
constexpr std::size_t kTrailerBytes = 8;
constexpr const char* kEntrySuffix = ".sdfp";
constexpr const char* kQuarantineSuffix = ".quarantined";
constexpr const char* kTempPrefix = ".tmp-";
constexpr const char* kIndexName = "index";

void put_u32(std::string& out, std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
        out += static_cast<char>((value >> shift) & 0xff);
    }
}

void put_u64(std::string& out, std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
        out += static_cast<char>((value >> shift) & 0xff);
    }
}

std::uint32_t get_u32(const std::string& bytes, std::size_t at) {
    std::uint32_t value = 0;
    for (int i = 3; i >= 0; --i) {
        value = (value << 8) | static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
    }
    return value;
}

std::uint64_t get_u64(const std::string& bytes, std::size_t at) {
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i) {
        value = (value << 8) | static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]);
    }
    return value;
}

bool ends_with(const std::string& name, const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
}

bool starts_with(const std::string& name, const char* prefix) {
    const std::size_t n = std::strlen(prefix);
    return name.size() >= n && name.compare(0, n, prefix) == 0;
}

/// EINTR-safe full write of `bytes` to `fd`.
bool write_fd(int fd, const std::string& bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/// EINTR-safe full read of `path`; false on open/read failure.
bool read_file(const std::string& path, std::string& out) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        return false;
    }
    out.clear();
    char chunk[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            ::close(fd);
            return false;
        }
        if (n == 0) {
            break;
        }
        out.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return true;
}

void fsync_dir(const std::string& dir) {
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

}  // namespace

PersistentCache::PersistentCache(PersistOptions options)
    : options_(std::move(options)) {
    if (options_.dir.empty()) {
        throw Error("persistent cache directory must not be empty");
    }
    if (::mkdir(options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
        throw Error("cannot create cache directory '" + options_.dir +
                    "': " + std::strerror(errno));
    }
    struct stat st {};
    if (::stat(options_.dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        throw Error("cache path '" + options_.dir + "' is not a directory");
    }
    if (::access(options_.dir.c_str(), W_OK) != 0) {
        throw Error("cache directory '" + options_.dir + "' is not writable");
    }
}

std::string PersistentCache::entry_name(const std::string& graph_key,
                                        const std::string& op_key) {
    return GraphStore::content_id(graph_key) + "-" +
           GraphStore::content_id(op_key) + kEntrySuffix;
}

std::string PersistentCache::encode(const PersistedEntry& entry) {
    std::string out;
    out.reserve(kHeaderBytes + entry.graph_key.size() + entry.op_key.size() +
                entry.result.size() + kTrailerBytes);
    out.append(kMagic, sizeof kMagic);
    put_u32(out, static_cast<std::uint32_t>(entry.exit_code));
    put_u32(out, static_cast<std::uint32_t>(entry.graph_key.size()));
    put_u32(out, static_cast<std::uint32_t>(entry.op_key.size()));
    put_u64(out, entry.result.size());
    out += entry.graph_key;
    out += entry.op_key;
    out += entry.result;
    put_u64(out, crc64(out));
    return out;
}

bool PersistentCache::decode(const std::string& bytes, PersistedEntry& out,
                             std::string& reason) {
    if (bytes.size() < kHeaderBytes + kTrailerBytes) {
        reason = "truncated header";
        return false;
    }
    if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
        reason = "bad magic";
        return false;
    }
    const std::uint64_t stored_crc = get_u64(bytes, bytes.size() - kTrailerBytes);
    const std::uint64_t actual_crc = crc64(bytes.data(), bytes.size() - kTrailerBytes);
    if (stored_crc != actual_crc) {
        reason = "checksum mismatch";
        return false;
    }
    const std::uint32_t graph_len = get_u32(bytes, 12);
    const std::uint32_t op_len = get_u32(bytes, 16);
    const std::uint64_t result_len = get_u64(bytes, 20);
    const std::uint64_t expected =
        kHeaderBytes + static_cast<std::uint64_t>(graph_len) + op_len +
        result_len + kTrailerBytes;
    if (expected != bytes.size()) {
        reason = "length fields disagree with file size";
        return false;
    }
    out.exit_code = static_cast<std::int32_t>(get_u32(bytes, 8));
    out.graph_key = bytes.substr(kHeaderBytes, graph_len);
    out.op_key = bytes.substr(kHeaderBytes + graph_len, op_len);
    out.result = bytes.substr(kHeaderBytes + graph_len + op_len,
                              static_cast<std::size_t>(result_len));
    return true;
}

void PersistentCache::warn(const std::string& message) noexcept {
    try {
        std::ostream& log = options_.log != nullptr ? *options_.log : std::cerr;
        log << "[sdfred serve] persist: " << message << "\n";
    } catch (...) {
        // A failing log stream must not take the cache down with it.
    }
}

bool PersistentCache::write_file(const std::string& path,
                                 const std::string& bytes,
                                 std::string& error) noexcept {
    // Unique temp name in the SAME directory, so the final rename(2) is
    // atomic on every POSIX filesystem.
    std::string temp;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        temp = options_.dir + "/" + kTempPrefix +
               std::to_string(static_cast<long>(::getpid())) + "-" +
               std::to_string(++temp_seq_);
    }
    const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
        error = std::string("open: ") + std::strerror(errno);
        return false;
    }
    if (fault_injection_armed() && detail::fault_consume_io_write()) {
        ::close(fd);
        ::unlink(temp.c_str());
        error = "write: injected I/O fault";
        return false;
    }
    if (!write_fd(fd, bytes)) {
        error = std::string("write: ") + std::strerror(errno);
        ::close(fd);
        ::unlink(temp.c_str());
        return false;
    }
    if (options_.fsync_writes) {
        if (fault_injection_armed() && detail::fault_consume_io_fsync()) {
            ::close(fd);
            ::unlink(temp.c_str());
            error = "fsync: injected I/O fault";
            return false;
        }
        if (::fsync(fd) != 0) {
            error = std::string("fsync: ") + std::strerror(errno);
            ::close(fd);
            ::unlink(temp.c_str());
            return false;
        }
    }
    if (::close(fd) != 0) {
        error = std::string("close: ") + std::strerror(errno);
        ::unlink(temp.c_str());
        return false;
    }
    if (::rename(temp.c_str(), path.c_str()) != 0) {
        error = std::string("rename: ") + std::strerror(errno);
        ::unlink(temp.c_str());
        return false;
    }
    if (options_.fsync_writes) {
        fsync_dir(options_.dir);
    }
    return true;
}

bool PersistentCache::put(const std::string& graph_key,
                          const std::string& op_key, int exit_code,
                          const std::string& result) noexcept {
    try {
        std::uint64_t attempt = 0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (write_attempts_ >= options_.stop_after_writes) {
                ++stats_.dropped;
                return false;
            }
            attempt = ++write_attempts_;
        }
        PersistedEntry entry{graph_key, op_key, exit_code, result};
        std::string bytes = encode(entry);
        // Tearing, from either the instance crash hook or the global fault
        // plan: the shortened record still gets written, fsynced and
        // renamed — the entry LANDS, corrupt, exactly like a crash between
        // the data write and its flush.
        bool torn = false;
        if (options_.tear_write_at_byte >= 0 &&
            attempt == options_.tear_write_index) {
            bytes.resize(std::min<std::size_t>(
                bytes.size(),
                static_cast<std::size_t>(options_.tear_write_at_byte)));
            torn = true;
        } else if (fault_injection_armed()) {
            const long long at = detail::fault_consume_torn_write();
            if (at >= 0) {
                bytes.resize(std::min<std::size_t>(
                    bytes.size(), static_cast<std::size_t>(at)));
                torn = true;
            }
        }
        const std::string path =
            options_.dir + "/" + entry_name(graph_key, op_key);
        std::string error;
        if (!write_file(path, bytes, error)) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.write_errors;
            warn("dropping entry for model " + GraphStore::content_id(graph_key) +
                 " (" + error + "); the in-memory result is unaffected");
            return false;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (torn) {
            ++stats_.torn;
            return false;
        }
        ++stats_.writes;
        return true;
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.write_errors;
        return false;
    }
}

void PersistentCache::quarantine_file(const std::string& name,
                                      const std::string& reason) {
    const std::string from = options_.dir + "/" + name;
    const std::string to = from + kQuarantineSuffix;
    if (::rename(from.c_str(), to.c_str()) != 0) {
        ::unlink(from.c_str());  // second-best: a corrupt entry must not reload
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.quarantined;
    }
    warn("quarantined corrupt cache entry " + name + " (" + reason + ")");
}

void PersistentCache::quarantine(const std::string& graph_key,
                                 const std::string& op_key) {
    quarantine_file(entry_name(graph_key, op_key), "rejected by loader");
}

std::vector<PersistedEntry> PersistentCache::load_all() {
    std::vector<PersistedEntry> loaded;
    std::vector<std::string> names;
    DIR* dir = ::opendir(options_.dir.c_str());
    if (dir == nullptr) {
        warn("cannot scan cache directory '" + options_.dir +
             "': " + std::strerror(errno));
        return loaded;
    }
    for (const dirent* entry = ::readdir(dir); entry != nullptr;
         entry = ::readdir(dir)) {
        names.emplace_back(entry->d_name);
    }
    ::closedir(dir);
    // Deterministic order makes io-read:N target the same entry every run.
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
        if (starts_with(name, kTempPrefix)) {
            // A crash between temp write and rename left this behind; the
            // rename never happened, so nothing references it.
            ::unlink((options_.dir + "/" + name).c_str());
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.swept_temps;
            continue;
        }
        if (!ends_with(name, kEntrySuffix)) {
            continue;  // index, quarantined entries, foreign files
        }
        if (fault_injection_armed() && detail::fault_consume_io_read()) {
            quarantine_file(name, "injected read fault");
            continue;
        }
        std::string bytes;
        if (!read_file(options_.dir + "/" + name, bytes)) {
            quarantine_file(name, std::string("read: ") + std::strerror(errno));
            continue;
        }
        PersistedEntry entry;
        std::string reason;
        if (!decode(bytes, entry, reason)) {
            quarantine_file(name, reason);
            continue;
        }
        loaded.push_back(std::move(entry));
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.loaded;
    }
    return loaded;
}

void PersistentCache::sync() noexcept {
    try {
        PersistStats snapshot = stats();
        std::string body = "sdfred-persist-index v1\n";
        body += "entries " + std::to_string(snapshot.writes) + "\n";
        char crc_hex[17];
        std::snprintf(crc_hex, sizeof crc_hex, "%016llx",
                      static_cast<unsigned long long>(crc64(body)));
        body += "crc64 ";
        body += crc_hex;
        body += "\n";
        std::string error;
        if (!write_file(options_.dir + "/" + kIndexName, body, error)) {
            warn("index sync failed (" + error + ")");
        }
        fsync_dir(options_.dir);
    } catch (...) {
        // sync is advisory; a failure here must never abort a drain.
    }
}

PersistStats PersistentCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace serve
}  // namespace sdf
