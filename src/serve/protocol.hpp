// protocol.hpp — the request/response shapes of `sdfred serve`.
//
// The daemon speaks newline-delimited JSON: one request object per line in,
// one response object per line out, matched by the request's `id` (echoed
// verbatim, so clients may pipeline and reorder).  docs/SERVE.md is the
// normative spec; the committed goldens under data/serve/ pin every shape.
//
// A request names an operation, a model (inline text or a file path), an
// optional pass pipeline to run first, and an optional resource budget:
//
//   {"id":1,"op":"throughput","model":"graph g\nactor a 1\n...",
//    "pipeline":"selfloops,prune","budget":{"max_steps":10000}}
//
// Responses carry a CLI-equivalent exit code next to an HTTP-flavoured
// error code, so scripted clients can triage exactly like scripted CLI
// callers do: exit 0/1 success (1 = analysis verdict "broken"/lint errors),
// 2 bad request (code 400), 3 unparseable model (code 422), 4 refused by
// resource governance (code 429 budget, code 503 admission control).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "base/checked.hpp"
#include "robust/budget.hpp"
#include "serve/json.hpp"

namespace sdf {
namespace serve {

/// A structurally invalid request (unknown op, missing model, bad budget
/// field, malformed pipeline spec).  Maps to code 400 / exit 2.
class BadRequestError : public Error {
public:
    explicit BadRequestError(const std::string& what) : Error(what) {}
};

/// The operations the service dispatches.  `throughput`, `lint`, `certify`
/// and `fuzz_smoke` analyse a model; the rest are control-plane.
enum class Op {
    throughput,  ///< repetition vector + iteration period (governed ladder)
    lint,        ///< diagnostic rules over the parsed graph
    certify,     ///< abstract interpretation + machine-checked bounds
    fuzz_smoke,  ///< one pass of the differential oracle registry
    edit,        ///< derive a child graph from a parent by an edit script
    stats,       ///< server counters (cache, queue, request tallies)
    health,      ///< supervision probe: queue depth, reaps, persistence state
    ping,        ///< liveness probe
    shutdown,    ///< stop accepting; drain; exit
};

/// Stable wire name ("throughput", "fuzz-smoke", ...).
const char* op_name(Op op);

/// One step of an `edit` request's script.  The wire shape is one object
/// per step, discriminated by "set":
///
///   {"set":"execution-time","actor":"w3","time":4}
///   {"set":"initial-tokens","channel":2,"tokens":1}
///   {"set":"rates","channel":2,"production":2,"consumption":3}
///
/// Steps apply in order through the Graph mutators, so every step records a
/// MutationEvent and the derived graph's analyses are REFINED from the
/// parent's instead of recomputed (sdf/mutation.hpp has the protocol).
struct EditStep {
    enum class Kind { execution_time, initial_tokens, rates };
    Kind kind = Kind::execution_time;
    std::string actor;          ///< execution-time: target actor name
    std::uint64_t channel = 0;  ///< initial-tokens / rates: channel index
    Int value = 0;              ///< new execution time / token count
    Int production = 0;         ///< rates only
    Int consumption = 0;        ///< rates only
};

/// Parses the "edits" member (an array of step objects, shape above).
/// Throws BadRequestError on any structural or range violation.
std::vector<EditStep> parse_edits(const Json& json);

/// The canonical JSON spelling of an edit script: fixed member order and
/// names, independent of how the client spelt the request.  Json::dump of
/// this array is the script's identity in result-cache keys and persisted
/// lineage records.
Json edits_json(const std::vector<EditStep>& steps);

/// One parsed request line.
struct Request {
    Json id;                       ///< echoed verbatim; null when absent
    Op op = Op::ping;
    std::string model;             ///< inline model text ("" = none)
    std::string model_path;        ///< file path alternative ("" = none)
    std::string pipeline;          ///< pass spec to run before analysis
    ExecutionBudget budget;        ///< unlimited when the request has none
    bool has_budget = false;
    std::optional<bool> degrade;   ///< throughput ladder: auto (true) / never
    bool no_cache = false;         ///< bypass the result cache for this request
    std::string parent;            ///< edit: display id of the parent graph
    std::vector<EditStep> edits;   ///< edit: the script, in application order
    bool has_edits = false;        ///< edit: "edits" member was present
    std::string then_op;           ///< edit: follow-on analysis on the child

    [[nodiscard]] bool needs_model() const {
        return op == Op::throughput || op == Op::lint || op == Op::certify ||
               op == Op::fuzz_smoke;
    }
};

/// Parses a decoded request object.  Throws BadRequestError on unknown or
/// ill-typed fields; unknown *ops* name the valid ones in the message.
Request parse_request(const Json& json);

/// Response skeleton in canonical member order: id, ok, op, exit, cache.
/// Callers then attach "result" or "error" and optionally "wall_ms".
Json make_response(const Json& id, bool ok, Op op, int exit_code,
                   const std::string& cache);

/// The structured error member: {"code":N,"kind":"...","message":"..."}
/// plus "cause" for budget refusals ("steps", "deadline", ...).
Json make_error(int code, const std::string& kind, const std::string& message,
                const std::string& cause = "");

/// A complete failure response.  `op_echo` is the op as typed by the client
/// (a string) when it parsed, null before that point (malformed JSON,
/// unknown op).
Json make_error_response(const Json& id, const Json& op_echo, int exit_code,
                         const std::string& cache, Json error);

}  // namespace serve
}  // namespace sdf
