// oracle_crash.cpp — the crash-restart equivalence oracle, entry 14 of the
// verify registry (registered through register_extra_oracle, like the
// serve-route oracle — sdfred_serve links sdfred_verify, never the
// reverse).
//
// THE INVARIANT: kill a persisting daemon at ANY point of a request script
// — after 0, 1, ..., all of its cache writes, including a write torn
// mid-file — restart it on the same cache directory, and replay the same
// script.  Every response's result member must either replay BIT-IDENTICAL
// from disk or miss cleanly and recompute to the same bytes.  Serving a
// corrupted result is the only failing verdict; losing cache entries to a
// crash is expected and invisible (the recompute path is deterministic).
//
// The "kill" is simulated through PersistOptions::stop_after_writes and
// the tear hooks, not a real kill(2): the persistence layer drops (or
// tears) everything past the chosen point exactly as an unsynced process
// death would, while the process hosting the fuzzer survives to check the
// outcome.  The CI crash-smoke job is the end-to-end complement that does
// send a real SIGKILL.
#include "serve/oracle.hpp"

#include <dirent.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "io/text.hpp"
#include "serve/persist.hpp"
#include "serve/service.hpp"
#include "verify/oracles.hpp"

namespace sdf {
namespace serve {

namespace {

constexpr const char* kId = "crash-restart";

/// The comparable slice of one response: the cache state is EXPECTED to
/// differ between a cold reference run and a warm restart, everything else
/// must not.
struct Answer {
    int exit_code = 1;
    std::string result_dump;  ///< "" when the response carries an error
    std::string error_kind;
};

Answer decode(const std::string& line) {
    Answer out;
    const Json response = Json::parse(line);
    if (const Json* member = response.find("exit")) {
        out.exit_code = static_cast<int>(member->as_integer());
    }
    if (const Json* member = response.find("result")) {
        out.result_dump = member->dump();
    }
    if (const Json* error = response.find("error")) {
        if (const Json* member = error->find("kind")) {
            out.error_kind = member->as_string();
        }
    }
    return out;
}

std::string request_line(std::int64_t id, const char* op,
                         const std::string& model, const char* pipeline) {
    Json request = Json::object();
    request.set("id", Json::integer(id));
    request.set("op", Json::string(op));
    request.set("model", Json::string(model));
    if (pipeline != nullptr) {
        request.set("pipeline", Json::string(pipeline));
    }
    return request.dump();
}

/// Scratch directory that removes itself (entries, quarantine files, temp
/// leftovers, the directory) so a long fuzz campaign does not fill /tmp.
class TempDir {
public:
    TempDir() {
        const char* base = std::getenv("TMPDIR");
        std::string pattern = std::string(base != nullptr && *base != '\0'
                                              ? base
                                              : "/tmp") +
                              "/sdfred-crash-XXXXXX";
        std::vector<char> buffer(pattern.begin(), pattern.end());
        buffer.push_back('\0');
        if (::mkdtemp(buffer.data()) != nullptr) {
            path_ = buffer.data();
        }
    }
    ~TempDir() {
        if (path_.empty()) {
            return;
        }
        if (DIR* dir = ::opendir(path_.c_str())) {
            for (const dirent* entry = ::readdir(dir); entry != nullptr;
                 entry = ::readdir(dir)) {
                if (std::strcmp(entry->d_name, ".") == 0 ||
                    std::strcmp(entry->d_name, "..") == 0) {
                    continue;
                }
                ::unlink((path_ + "/" + entry->d_name).c_str());
            }
            ::closedir(dir);
        }
        ::rmdir(path_.c_str());
    }
    TempDir(const TempDir&) = delete;
    TempDir& operator=(const TempDir&) = delete;
    [[nodiscard]] const std::string& path() const { return path_; }
    [[nodiscard]] bool ok() const { return !path_.empty(); }

private:
    std::string path_;
};

Disagreement disagree(const std::string& quantity, const std::string& left,
                      const std::string& right) {
    Disagreement out;
    out.quantity = quantity;
    out.left_route = "restarted daemon";
    out.left_value = left;
    out.right_route = "reference run";
    out.right_value = right;
    return out;
}

/// Runs `script` through a fresh volatile core and returns the answers —
/// the deterministic reference every restart is held to.
std::vector<Answer> reference_run(const std::vector<std::string>& script) {
    ServeOptions options;
    options.cache_graphs = 8;
    ServeCore core(options);
    std::vector<Answer> answers;
    answers.reserve(script.size());
    for (const std::string& line : script) {
        answers.push_back(decode(core.handle_line(line)));
    }
    return answers;
}

/// One crash-and-restart experiment: run the script against a cache with
/// the given crash hooks, "die", restart on the same directory, replay, and
/// compare against the reference.  Returns "" on success, else a fail
/// detail; fills `disagreements`.
std::string crash_and_restart(const std::vector<std::string>& script,
                              const std::vector<Answer>& reference,
                              const PersistOptions& hooks, bool expect_torn,
                              std::vector<Disagreement>& disagreements) {
    TempDir dir;
    if (!dir.ok()) {
        return "";  // cannot create scratch space: treated as skip upstream
    }
    // The tears and kills below are DELIBERATE; their quarantine warnings
    // go to this sink instead of spamming the fuzz campaign's stderr.
    std::ostringstream quiet;
    {
        PersistOptions options = hooks;
        options.dir = dir.path();
        options.fsync_writes = false;  // the tear hook IS the torn fsync
        options.log = &quiet;
        PersistentCache doomed(options);
        ServeOptions serve_options;
        serve_options.cache_graphs = 8;
        ServeCore core(serve_options);
        core.attach_persistence(&doomed);
        for (const std::string& line : script) {
            core.handle_line(line);
        }
        // The simulated process dies here: whatever stop_after_writes and
        // the tear hook let reach the directory is all the restart gets.
    }
    PersistOptions restart_options;
    restart_options.dir = dir.path();
    restart_options.log = &quiet;
    PersistentCache survivor(restart_options);
    ServeOptions serve_options;
    serve_options.cache_graphs = 8;
    ServeCore core(serve_options);
    core.attach_persistence(&survivor);
    if (expect_torn && survivor.stats().quarantined == 0) {
        disagreements.push_back(
            disagree("quarantine count after torn write", "0", ">= 1"));
        return "a torn cache entry was not quarantined at warm start";
    }
    for (std::size_t i = 0; i < script.size(); ++i) {
        const Answer replayed = decode(core.handle_line(script[i]));
        if (replayed.exit_code != reference[i].exit_code ||
            replayed.result_dump != reference[i].result_dump) {
            disagreements.push_back(
                disagree("response to request " + std::to_string(i + 1),
                         replayed.result_dump.empty()
                             ? "error " + replayed.error_kind
                             : replayed.result_dump,
                         reference[i].result_dump.empty()
                             ? "error " + reference[i].error_kind
                             : reference[i].result_dump));
            return "replay after simulated crash is not bit-identical";
        }
    }
    return "";
}

Verdict run_crash_restart(const Graph& graph, const OracleLimits& limits) {
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph: nothing to persist");
    }
    if (graph.actor_count() > limits.max_actors) {
        return Verdict::skip(kId, "actor count above oracle limit");
    }
    const std::string model = write_text_string(graph);
    const std::vector<std::string> script = {
        request_line(1, "throughput", model, nullptr),
        request_line(2, "lint", model, nullptr),
        request_line(3, "throughput", model, "selfloops"),
    };
    const std::vector<Answer> reference = reference_run(script);

    // How many cache writes does this script produce when nothing crashes?
    std::uint64_t writes = 0;
    {
        TempDir dir;
        if (!dir.ok()) {
            return Verdict::skip(kId, "no scratch directory for the cache");
        }
        PersistOptions options;
        options.dir = dir.path();
        options.fsync_writes = false;
        PersistentCache counter(options);
        ServeOptions serve_options;
        serve_options.cache_graphs = 8;
        ServeCore core(serve_options);
        core.attach_persistence(&counter);
        for (const std::string& line : script) {
            core.handle_line(line);
        }
        writes = counter.stats().writes;
    }

    std::vector<Disagreement> disagreements;
    // Kill after every prefix of the write sequence: 0 writes survived, 1,
    // ..., all of them.
    for (std::uint64_t kill_after = 0; kill_after <= writes; ++kill_after) {
        PersistOptions hooks;
        hooks.stop_after_writes = kill_after;
        const std::string detail = crash_and_restart(
            script, reference, hooks, /*expect_torn=*/false, disagreements);
        if (!detail.empty()) {
            return Verdict::fail(
                kId, detail + " (killed after " + std::to_string(kill_after) +
                         " of " + std::to_string(writes) + " writes)",
                std::move(disagreements));
        }
    }
    // Tear every write in turn: once at byte 0 (empty file) and once
    // mid-header — both must quarantine at restart, never replay.
    for (std::uint64_t victim = 1; victim <= writes; ++victim) {
        for (const std::int64_t tear_at : {std::int64_t{0}, std::int64_t{16}}) {
            PersistOptions hooks;
            hooks.tear_write_index = victim;
            hooks.tear_write_at_byte = tear_at;
            const std::string detail = crash_and_restart(
                script, reference, hooks, /*expect_torn=*/true, disagreements);
            if (!detail.empty()) {
                return Verdict::fail(
                    kId, detail + " (write " + std::to_string(victim) +
                             " torn at byte " + std::to_string(tear_at) + ")",
                    std::move(disagreements));
            }
        }
    }
    return Verdict::pass(kId);
}

}  // namespace

void register_crash_restart_oracle() {
    Oracle oracle;
    oracle.id = kId;
    oracle.summary = "a crashed-and-restarted cache replays bit-identically";
    oracle.invariant =
        "simulating a daemon kill after every prefix of a request script's "
        "persistence writes — including a write torn mid-file — and "
        "restarting on the same cache directory yields responses whose "
        "result members are bit-identical to an uninterrupted run: torn "
        "entries are quarantined, lost entries recompute, and a corrupted "
        "replay is the only failure";
    oracle.run = &run_crash_restart;
    register_extra_oracle(std::move(oracle));
}

}  // namespace serve
}  // namespace sdf
