// json.hpp — the minimal JSON value model of the serve protocol.
//
// `sdfred serve` speaks newline-delimited JSON (docs/SERVE.md), so the
// serve layer needs both directions: a strict parser for incoming request
// lines and a deterministic writer for responses.  The library already
// *renders* JSON in several places (lint --json, analyze --json, the bench
// reporters); this is the first consumer that must also *read* it, and the
// container ships no JSON dependency, so the subset lives here: the full
// RFC 8259 value grammar minus floating-point exotica (numbers parse as
// int64 when exact, double otherwise; NaN/Infinity are rejected).
//
// Objects preserve insertion order and dump() renders members in that
// order with no insignificant whitespace, which is what makes responses
// byte-stable: the golden protocol tests and the cache's "bit-identical
// replay" guarantee both lean on dump() being a pure function of the
// value.  Duplicate keys are rejected at parse time — a request that says
// "budget" twice is ambiguous, not last-writer-wins.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/errors.hpp"

namespace sdf {
namespace serve {

/// Malformed JSON text.  Derives from the library's ParseError so the
/// service maps it onto the same "unparseable input" failure class as a
/// malformed model file (CLI exit 3).
class JsonParseError : public ParseError {
public:
    explicit JsonParseError(const std::string& what) : ParseError(what) {}
};

/// One JSON value; a tagged union over the seven RFC 8259 kinds (integers
/// and reals are split so protocol counters stay exact int64).
class Json {
public:
    enum class Kind { null, boolean, integer, real, string, array, object };

    Json() = default;  // null

    static Json make_null() { return Json(); }
    static Json boolean(bool value);
    static Json integer(std::int64_t value);
    static Json real(double value);
    static Json string(std::string value);
    static Json array();
    static Json object();

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool is_null() const { return kind_ == Kind::null; }
    [[nodiscard]] bool is_boolean() const { return kind_ == Kind::boolean; }
    [[nodiscard]] bool is_integer() const { return kind_ == Kind::integer; }
    [[nodiscard]] bool is_string() const { return kind_ == Kind::string; }
    [[nodiscard]] bool is_array() const { return kind_ == Kind::array; }
    [[nodiscard]] bool is_object() const { return kind_ == Kind::object; }

    /// Typed accessors; throw JsonParseError on a kind mismatch (the
    /// service turns that into a structured bad-request response).
    [[nodiscard]] bool as_boolean() const;
    [[nodiscard]] std::int64_t as_integer() const;
    [[nodiscard]] double as_real() const;  ///< integer or real
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const std::vector<Json>& items() const;
    [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const;

    /// Object member by key, or nullptr (nullptr on non-objects too).
    [[nodiscard]] const Json* find(const std::string& key) const;

    /// Appends to an array (asserts array kind).
    void push_back(Json value);

    /// Sets an object member, replacing an existing key in place
    /// (asserts object kind).
    void set(const std::string& key, Json value);

    /// Compact deterministic rendering: members in insertion order, no
    /// insignificant whitespace, "\uXXXX" escapes only for control
    /// characters.  parse(dump()) round-trips every value.
    [[nodiscard]] std::string dump() const;

    /// Parses exactly one JSON value spanning the whole input (trailing
    /// whitespace allowed).  Throws JsonParseError with a position-
    /// annotated message on malformed text or duplicate object keys.
    static Json parse(const std::string& text);

private:
    Kind kind_ = Kind::null;
    bool boolean_ = false;
    std::int64_t integer_ = 0;
    double real_ = 0.0;
    std::string string_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace serve
}  // namespace sdf
