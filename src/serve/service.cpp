#include "serve/service.hpp"

#include <chrono>
#include <fstream>
#include <new>
#include <sstream>
#include <utility>

#include "absint/certificate.hpp"
#include "absint/reachability.hpp"
#include "absint/token_intervals.hpp"
#include "analysis/governed.hpp"
#include "analysis/incremental.hpp"
#include "analysis/throughput.hpp"
#include "lint/lint.hpp"
#include "lint/render.hpp"
#include "pass/executor.hpp"
#include "pass/pipeline.hpp"
#include "sdf/repetition.hpp"
#include "verify/oracles.hpp"

namespace sdf {
namespace serve {

namespace {

/// What is left of `budget` after `used` has been spent (by the pipeline
/// stage that precedes the analysis).  Exhausted members clamp to the
/// smallest positive amount, so the follow-on governor trips at its first
/// checkpoint instead of running unlimited.
ExecutionBudget remaining_after(const ExecutionBudget& budget,
                                const ResourceUsage& used) {
    ExecutionBudget out = budget;
    if (out.deadline) {
        const auto spent =
            std::chrono::milliseconds(static_cast<std::int64_t>(used.wall_ms));
        out.deadline = *out.deadline > spent ? *out.deadline - spent
                                             : std::chrono::milliseconds(1);
    }
    if (out.max_steps) {
        out.max_steps = *out.max_steps > used.steps ? *out.max_steps - used.steps
                                                    : std::uint64_t{1};
    }
    if (out.max_bytes) {
        out.max_bytes = *out.max_bytes > used.accounted_bytes
                            ? *out.max_bytes - used.accounted_bytes
                            : std::uint64_t{1};
    }
    return out;
}

Json json_opt_int(const std::optional<Int>& value) {
    return value.has_value() ? Json::integer(*value) : Json::make_null();
}

std::string read_model_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw ParseError("cannot open model file: " + path);
    }
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

const char* outcome_name(ThroughputOutcome outcome) {
    switch (outcome) {
        case ThroughputOutcome::deadlocked: return "deadlocked";
        case ThroughputOutcome::unbounded: return "unbounded";
        case ThroughputOutcome::finite: return "finite";
    }
    return "?";
}

}  // namespace

// ---------------------------------------------------------------- Watchdog

Watchdog::Watchdog() : thread_([this] { loop(); }) {}

Watchdog::~Watchdog() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

std::uint64_t Watchdog::arm(CancellationToken token,
                            std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::uint64_t handle = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        handle = next_handle_++;
        armed_.push_back(Armed{handle, std::move(token), deadline});
    }
    cv_.notify_all();
    return handle;
}

void Watchdog::disarm(std::uint64_t handle) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = armed_.begin(); it != armed_.end(); ++it) {
        if (it->handle == handle) {
            armed_.erase(it);
            return;
        }
    }
    // Already reaped: the worker is unwinding from the cancellation right
    // now, and its 429 is counted by reaped_ — nothing to withdraw.
}

std::uint64_t Watchdog::reaped() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return reaped_;
}

void Watchdog::loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        if (armed_.empty()) {
            cv_.wait(lock, [this] { return stop_ || !armed_.empty(); });
            continue;
        }
        auto earliest = armed_.front().deadline;
        for (const Armed& entry : armed_) {
            earliest = std::min(earliest, entry.deadline);
        }
        cv_.wait_until(lock, earliest);
        const auto now = std::chrono::steady_clock::now();
        for (auto it = armed_.begin(); it != armed_.end();) {
            if (it->deadline <= now) {
                it->token.request_cancel();
                ++reaped_;
                it = armed_.erase(it);
            } else {
                ++it;
            }
        }
    }
}

// ---------------------------------------------------------------- ServeCore

ServeCore::ServeCore(ServeOptions options)
    : options_(std::move(options)), store_(options_.cache_graphs) {
    if (!options_.cache_dir.empty()) {
        PersistOptions persist_options;
        persist_options.dir = options_.cache_dir;
        persist_options.fsync_writes = options_.persist_fsync;
        // Throws when the directory is unusable: a daemon asked to persist
        // must not silently run volatile.
        owned_persist_ = std::make_unique<PersistentCache>(persist_options);
        attach_persistence(owned_persist_.get());
    }
    if (options_.request_deadline) {
        watchdog_ = std::make_unique<Watchdog>();
    }
}

std::size_t ServeCore::attach_persistence(PersistentCache* persist) {
    persist_ = persist;
    store_.attach_persistence(persist);
    warmed_ = persist != nullptr ? store_.warm() : 0;
    return warmed_;
}

void ServeCore::sync_persistence() {
    if (persist_ != nullptr) {
        persist_->sync();
    }
}

ServeCounters ServeCore::counters() const {
    ServeCounters out;
    out.requests = requests_.load(std::memory_order_relaxed);
    out.ok = ok_.load(std::memory_order_relaxed);
    out.errors = errors_.load(std::memory_order_relaxed);
    return out;
}

ExecutionBudget ServeCore::effective_budget(const Request& request) const {
    ExecutionBudget budget =
        request.has_budget ? request.budget : options_.default_budget;
    // The hard per-request deadline folds into every budget, so a request
    // that would otherwise run ungoverned becomes governed — that is what
    // gives its checkpoints something to check the watchdog's cancellation
    // against.
    if (options_.request_deadline) {
        budget.deadline = budget.deadline
                              ? std::min(*budget.deadline, *options_.request_deadline)
                              : *options_.request_deadline;
    }
    return budget;
}

std::string ServeCore::handle_line(const std::string& line) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    Json response;
    if (line.size() > options_.max_line_bytes) {
        // Refused before parsing: the bound exists precisely so a hostile
        // line cannot make the parser allocate in its own image.  No id can
        // be echoed — extracting it would mean parsing the oversized line.
        rejected_oversize_.fetch_add(1, std::memory_order_relaxed);
        response = make_error_response(
            Json::make_null(), Json::make_null(), 2, "none",
            make_error(413, "payload-too-large",
                       "request line of " + std::to_string(line.size()) +
                           " bytes exceeds the " +
                           std::to_string(options_.max_line_bytes) +
                           "-byte limit"));
    } else {
        CancellationToken token;
        std::uint64_t armed = 0;
        if (watchdog_) {
            armed = watchdog_->arm(token, *options_.request_deadline);
        }
        try {
            response = handle(Json::parse(line), token);
        } catch (const JsonParseError& e) {
            response = make_error_response(
                Json::make_null(), Json::make_null(), 2, "none",
                make_error(400, "bad-json", e.what()));
        }
        if (watchdog_) {
            watchdog_->disarm(armed);
        }
    }
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    const Json* exit_member = response.find("exit");
    const std::int64_t exit_code =
        exit_member != nullptr ? exit_member->as_integer() : 1;
    (exit_code <= 1 ? ok_ : errors_).fetch_add(1, std::memory_order_relaxed);
    if (options_.timings) {
        const std::chrono::duration<double, std::milli> wall =
            std::chrono::steady_clock::now() - start;
        response.set("wall_ms", Json::real(wall.count()));
    }
    return response.dump();
}

Json ServeCore::handle(const Json& request_json, const CancellationToken& token) {
    // Echo id and op even when the request later fails to validate.
    Json id;
    Json op_echo;
    if (request_json.is_object()) {
        if (const Json* found = request_json.find("id")) {
            if (found->is_string() || found->is_integer() || found->is_null()) {
                id = *found;
            }
        }
        if (const Json* found = request_json.find("op")) {
            if (found->is_string()) {
                op_echo = *found;
            }
        }
    }
    try {
        const Request request = parse_request(request_json);
        op_echo = Json::string(op_name(request.op));
        std::string cache_state = "none";
        int exit_code = 0;
        Json result;
        switch (request.op) {
            case Op::ping: {
                result = Json::object();
                result.set("pong", Json::boolean(true));
                break;
            }
            case Op::stats: {
                result = op_stats();
                break;
            }
            case Op::health: {
                result = op_health();
                break;
            }
            case Op::shutdown: {
                shutdown_.store(true, std::memory_order_relaxed);
                result = Json::object();
                result.set("stopping", Json::boolean(true));
                break;
            }
            case Op::edit: {
                result = op_edit(request, token, cache_state, exit_code);
                break;
            }
            default: {
                result = run_model_op(request, token, cache_state, exit_code);
                break;
            }
        }
        Json response =
            make_response(id, exit_code <= 1, request.op, exit_code, cache_state);
        response.set("result", std::move(result));
        return response;
    } catch (const BadRequestError& e) {
        return make_error_response(id, op_echo, 2, "none",
                              make_error(400, "bad-request", e.what()));
    } catch (const PipelineParseError& e) {
        return make_error_response(id, op_echo, 2, "none",
                              make_error(400, "bad-pipeline", e.what()));
    } catch (const ParseError& e) {
        return make_error_response(id, op_echo, 3, "none",
                              make_error(422, "parse-error", e.what()));
    } catch (const BudgetExceeded& e) {
        return make_error_response(
            id, op_echo, 4, "none",
            make_error(429, "budget-exceeded", e.what(),
                       budget_cause_name(e.cause())));
    } catch (const Error& e) {
        return make_error_response(id, op_echo, 1, "none",
                              make_error(500, "analysis-error", e.what()));
    } catch (const std::bad_alloc&) {
        return make_error_response(
            id, op_echo, 4, "none",
            make_error(429, "budget-exceeded", "allocation failed", "memory"));
    } catch (const std::exception& e) {
        return make_error_response(id, op_echo, 1, "none",
                              make_error(500, "internal-error", e.what()));
    }
}

Json ServeCore::run_model_op(const Request& request,
                             const CancellationToken& token,
                             std::string& cache_state, int& exit_code) {
    const std::string model_text = request.model_path.empty()
                                       ? request.model
                                       : read_model_file(request.model_path);
    const GraphStore::Interned interned = store_.intern_text(model_text);

    std::optional<Pipeline> pipeline;
    std::string pipeline_canonical;
    if (!request.pipeline.empty()) {
        pipeline = parse_pipeline(request.pipeline);
        pipeline_canonical = pipeline->to_string();
    }
    const std::string op_key =
        std::string(op_name(request.op)) + "|" + pipeline_canonical;

    if (request.no_cache) {
        cache_state = "bypass";
    } else if (const auto cached = store_.find_result(interned.key, op_key)) {
        cache_state = "hit";
        exit_code = cached->first;
        return Json::parse(cached->second);
    } else {
        cache_state = "miss";
    }

    Graph graph = interned.graph;
    ResourceUsage pipeline_used;
    if (pipeline) {
        ExecutorOptions executor_options;
        executor_options.budget = effective_budget(request);
        executor_options.token = token;
        const PipelineRun run =
            PipelineExecutor(std::move(executor_options)).run(*pipeline, std::move(graph));
        graph = run.graph;
        pipeline_used = run.total;
    }

    bool cacheable = true;
    Json result;
    switch (request.op) {
        case Op::throughput:
            result = op_throughput(request, token, graph, pipeline_used,
                                   exit_code, cacheable);
            break;
        case Op::lint:
            result = op_lint(request, token, graph, exit_code, cacheable);
            break;
        case Op::certify:
            result = op_certify(request, token, graph, exit_code);
            break;
        case Op::fuzz_smoke:
            result = op_fuzz_smoke(request, graph, exit_code, cacheable);
            break;
        default:
            throw BadRequestError("op does not analyse a model");
    }
    if (!request.no_cache && cacheable && exit_code <= 1) {
        store_.store_result(interned.key, op_key, exit_code, result.dump());
    }
    return result;
}

Json ServeCore::op_throughput(const Request& request,
                              const CancellationToken& token,
                              const Graph& graph,
                              const ResourceUsage& pipeline_used, int& exit_code,
                              bool& cacheable) const {
    const ExecutionBudget budget = effective_budget(request);
    GovernedStatus status = GovernedStatus::exact;
    std::string method = "symbolic-exact";
    BudgetCause cause = BudgetCause::none;
    ThroughputResult throughput;
    if (budget.unlimited()) {
        // The ungoverned fast path reads the graph's shared AnalysisManager,
        // so the result computed here warms the store entry for every later
        // request on the same model.
        throughput = *cached_throughput(graph);
    } else {
        GovernOptions govern;
        govern.budget = remaining_after(budget, pipeline_used);
        govern.token = token;
        govern.degrade =
            request.degrade.value_or(true) ? DegradeMode::auto_ : DegradeMode::never;
        const Governed<ThroughputResult> governed =
            governed_throughput(graph, govern);
        if (!governed.ok()) {
            throw BudgetExceeded(
                governed.cause == BudgetCause::none ? BudgetCause::steps
                                                    : governed.cause,
                governed.detail.empty()
                    ? "no result obtainable within the budget"
                    : governed.detail);
        }
        status = governed.status;
        method = governed.method;
        cause = governed.cause;
        throughput = *governed.value;
    }
    // Degraded answers depend on where the budget tripped; only exact ones
    // are replayable and therefore cacheable.
    cacheable = status == GovernedStatus::exact;
    exit_code = 0;

    Json result = Json::object();
    result.set("status", Json::string(governed_status_name(status)));
    result.set("method", Json::string(method));
    if (cause != BudgetCause::none) {
        result.set("cause", Json::string(budget_cause_name(cause)));
    }
    result.set("outcome", Json::string(outcome_name(throughput.outcome)));
    if (throughput.outcome == ThroughputOutcome::finite) {
        result.set("period", Json::string(throughput.period.to_string()));
    }
    Json actors = Json::array();
    if (throughput.outcome != ThroughputOutcome::unbounded) {
        for (ActorId a = 0; a < graph.actor_count(); ++a) {
            Json entry = Json::object();
            entry.set("actor", Json::string(graph.actor(a).name));
            entry.set("throughput", Json::string(throughput.per_actor[a].to_string()));
            actors.push_back(std::move(entry));
        }
    }
    result.set("actors", std::move(actors));
    return result;
}

Json ServeCore::op_lint(const Request& request, const CancellationToken& token,
                        const Graph& graph, int& exit_code,
                        bool& cacheable) const {
    const ExecutionBudget budget = effective_budget(request);
    std::optional<Governor> governor;
    std::optional<GovernorScope> scope;
    if (!budget.unlimited()) {
        governor.emplace(budget, token);
        scope.emplace(*governor);
        // A rule that trips the budget reports itself as a finding instead
        // of throwing (the linter's exception-free contract), which makes
        // governed lint runs budget-dependent — never cache those.
        cacheable = false;
    }
    // No SourceMap and no file name: the report must be a pure function of
    // the canonical graph so cached replays are bit-identical regardless of
    // whether the model arrived inline or by path.
    const LintReport report = lint_graph(graph);
    exit_code = report.has_at_least(Severity::error) ? 1 : 0;
    return Json::parse(render_json(report, "", graph.name()));
}

Json ServeCore::op_certify(const Request& request,
                           const CancellationToken& token, const Graph& graph,
                           int& exit_code) const {
    const ExecutionBudget budget = effective_budget(request);
    std::optional<Governor> governor;
    std::optional<GovernorScope> scope;
    if (!budget.unlimited()) {
        governor.emplace(budget, token);
        scope.emplace(*governor);
    }
    // Mirrors `sdfred_cli analyze --certify --json` (tools/sdfred_cli.cpp):
    // same members, same verdicts, same exit-1 conditions.
    const absint::TokenIntervals intervals = absint::token_intervals(graph);
    const absint::Reachability reach = absint::compute_reachability(graph);
    const absint::CertifiedBounds certified =
        absint::certify_buffer_bounds(graph, intervals);
    const absint::CertificateCheck check =
        absint::verify_certificate(graph, certified);
    std::optional<std::vector<Int>> q;
    std::string inconsistency;
    if (graph.actor_count() > 0) {
        try {
            q = repetition_vector(graph);
        } catch (const Error& e) {
            inconsistency = e.what();
        }
    }
    bool dead_actor = false;
    bool guaranteed_deadlock = false;
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        dead_actor = dead_actor || reach.never_fires(a);
        guaranteed_deadlock =
            guaranteed_deadlock || (q && reach.max_firings[a].has_value() &&
                                    *reach.max_firings[a] < (*q)[a]);
    }

    Json result = Json::object();
    result.set("graph", Json::string(graph.name()));
    result.set("consistent", Json::boolean(inconsistency.empty()));
    result.set("solver_steps", Json::integer(static_cast<std::int64_t>(
                                   intervals.solver_steps)));
    Json channels = Json::array();
    for (ChannelId c = 0; c < graph.channel_count(); ++c) {
        const Channel& channel = graph.channel(c);
        Json entry = Json::object();
        entry.set("id", Json::integer(static_cast<std::int64_t>(c)));
        entry.set("src", Json::string(graph.actor(channel.src).name));
        entry.set("dst", Json::string(graph.actor(channel.dst).name));
        entry.set("lo", Json::integer(intervals.channels[c].lo));
        entry.set("hi", json_opt_int(intervals.channels[c].hi));
        entry.set("cap", json_opt_int(intervals.caps[c]));
        entry.set("certified_bound", json_opt_int(certified.certificates[c].bound));
        channels.push_back(std::move(entry));
    }
    result.set("channels", std::move(channels));
    Json actors = Json::array();
    for (ActorId a = 0; a < graph.actor_count(); ++a) {
        Json entry = Json::object();
        entry.set("name", Json::string(graph.actor(a).name));
        entry.set("possibly_enabled", Json::boolean(intervals.possibly_enabled[a]));
        entry.set("max_firings", json_opt_int(reach.max_firings[a]));
        actors.push_back(std::move(entry));
    }
    result.set("actors", std::move(actors));
    result.set("invariants", Json::integer(static_cast<std::int64_t>(
                                 intervals.invariants.size())));
    Json certificate = Json::object();
    certificate.set("verified", Json::boolean(check.ok));
    certificate.set("reason", Json::string(check.reason));
    result.set("certificate", std::move(certificate));
    Json verdicts = Json::object();
    verdicts.set("dead_actor", Json::boolean(dead_actor));
    verdicts.set("guaranteed_deadlock", Json::boolean(guaranteed_deadlock));
    result.set("verdicts", std::move(verdicts));

    const bool broken =
        !check.ok || !inconsistency.empty() || dead_actor || guaranteed_deadlock;
    exit_code = broken ? 1 : 0;
    return result;
}

Json ServeCore::op_fuzz_smoke(const Request& request, const Graph& graph,
                              int& exit_code, bool& cacheable) const {
    OracleLimits limits;
    limits.budget = effective_budget(request);
    // run_oracle converts a budget trip into a typed `reject`, so a starved
    // fuzz-smoke degrades per oracle instead of failing wholesale — but the
    // verdicts then depend on the budget, so such runs are not cacheable.
    cacheable = limits.budget.unlimited();
    Json oracles = Json::array();
    std::int64_t failures = 0;
    for (const Oracle& oracle : oracle_registry()) {
        if (oracle.extra) {
            // Extra oracles (the serve-route oracle itself) run daemon
            // sweeps of their own; skipping them here keeps fuzz-smoke
            // recursion-free.
            continue;
        }
        const Verdict verdict = run_oracle(oracle, graph, limits);
        failures += verdict.failed() ? 1 : 0;
        Json entry = Json::object();
        entry.set("id", Json::string(oracle.id));
        entry.set("verdict", Json::string(verdict_status_name(verdict.status)));
        if (!verdict.detail.empty()) {
            entry.set("detail", Json::string(verdict.detail));
        }
        oracles.push_back(std::move(entry));
    }
    Json result = Json::object();
    result.set("oracles", std::move(oracles));
    result.set("failures", Json::integer(failures));
    exit_code = failures > 0 ? 1 : 0;
    return result;
}

Json ServeCore::op_edit(const Request& request, const CancellationToken& token,
                        std::string& cache_state, int& exit_code) {
    // Resolve the parent: by the display id of an already-interned model,
    // or by submitting the model text alongside the script.
    GraphStore::Interned parent;
    if (!request.parent.empty()) {
        std::optional<GraphStore::Interned> found = store_.find_by_id(request.parent);
        if (!found) {
            throw BadRequestError("unknown parent graph \"" + request.parent +
                                  "\" (evicted or never interned; resubmit the "
                                  "model with \"model\" or \"model_path\")");
        }
        parent = std::move(*found);
    } else {
        const std::string model_text = request.model_path.empty()
                                           ? request.model
                                           : read_model_file(request.model_path);
        parent = store_.intern_text(model_text);
    }

    // The response is a pure function of (parent canonical text, canonical
    // edit script, follow-on op), so it caches and replays like any other
    // result — the persisted entry doubles as the child's LINEAGE record:
    // graph_key = parent text, op_key = the script, result = child text.
    const Json script = edits_json(request.edits);
    const std::string op_key = std::string(op_name(Op::edit)) + "|" +
                               script.dump() + "|" + request.then_op;
    if (request.no_cache) {
        cache_state = "bypass";
    } else if (const auto cached = store_.find_result(parent.key, op_key)) {
        cache_state = "hit";
        exit_code = cached->first;
        return Json::parse(cached->second);
    } else {
        cache_state = "miss";
    }

    const ExecutionBudget budget = effective_budget(request);
    if (budget.unlimited()) {
        // Prime the warm throughput state on the PARENT entry so the edits
        // below refine it instead of seeding a cold child.  Inconsistent
        // parents have no schedule to trace — edits still derive the child,
        // so the failure only skips the warm-up.
        try {
            warm_throughput(parent.graph);
        } catch (const Error&) {
        }
    }

    // The copy shares the parent's AnalysisManager until the first edit;
    // each mutator then records a MutationEvent and swaps in a manager
    // REFINED from the previous one (sdf/mutation.hpp), so the parent's
    // cached slots survive into the child wherever the delta allows.
    Graph child = parent.graph;
    std::uint64_t applied = 0;
    std::uint64_t kept = 0;
    std::uint64_t refined = 0;
    for (std::size_t i = 0; i < request.edits.size(); ++i) {
        const EditStep& step = request.edits[i];
        const std::string at = " (edit #" + std::to_string(i) + ")";
        const AnalysisManager* before = child.analyses().get();
        switch (step.kind) {
            case EditStep::Kind::execution_time: {
                const std::optional<ActorId> actor = child.find_actor(step.actor);
                if (!actor) {
                    throw BadRequestError("unknown actor \"" + step.actor + "\"" + at);
                }
                child.set_execution_time(*actor, step.value);
                break;
            }
            case EditStep::Kind::initial_tokens: {
                if (step.channel >= child.channel_count()) {
                    throw BadRequestError(
                        "channel " + std::to_string(step.channel) +
                        " out of range (graph has " +
                        std::to_string(child.channel_count()) + ")" + at);
                }
                child.set_initial_tokens(step.channel, step.value);
                break;
            }
            case EditStep::Kind::rates: {
                if (step.channel >= child.channel_count()) {
                    throw BadRequestError(
                        "channel " + std::to_string(step.channel) +
                        " out of range (graph has " +
                        std::to_string(child.channel_count()) + ")" + at);
                }
                child.set_rates(step.channel, step.production, step.consumption);
                break;
            }
        }
        // Each applied mutation swaps in a fresh manager whose kept/refined
        // counters describe that one refinement; no-op edits keep the old
        // manager (and would double-count it), so they count as neither
        // applied nor refined.
        if (child.analyses().get() != before) {
            ++applied;
            for (const AnalysisSlotStats& slot : child.analyses()->stats()) {
                kept += slot.kept;
                refined += slot.refined;
            }
        }
    }
    slots_kept_.fetch_add(kept, std::memory_order_relaxed);
    slots_refined_.fetch_add(refined, std::memory_order_relaxed);
    edits_applied_.fetch_add(applied, std::memory_order_relaxed);

    const GraphStore::Interned interned = store_.intern_graph(std::move(child));

    Json result = Json::object();
    result.set("parent", Json::string(parent.id));
    result.set("graph", Json::string(interned.id));
    // The canonical child text is the client's handle for any follow-up
    // request (and what makes the cached lineage record self-contained).
    result.set("model", Json::string(interned.key));
    result.set("applied", Json::integer(static_cast<std::int64_t>(applied)));
    result.set("actors",
               Json::integer(static_cast<std::int64_t>(interned.graph.actor_count())));
    result.set("channels", Json::integer(static_cast<std::int64_t>(
                               interned.graph.channel_count())));

    exit_code = 0;
    bool cacheable = true;
    if (!request.then_op.empty()) {
        // Run the follow-on analysis on the child THROUGH the result cache,
        // under the same key a direct request on the child model would use —
        // so the inline answer here warms that future request and vice
        // versa.
        const std::string then_key = request.then_op + "|";
        Json then_result;
        int then_exit = 0;
        bool served = false;
        if (!request.no_cache) {
            if (const auto cached = store_.find_result(interned.key, then_key)) {
                then_result = Json::parse(cached->second);
                then_exit = cached->first;
                served = true;
            }
        }
        if (!served) {
            bool then_cacheable = true;
            if (request.then_op == "throughput") {
                then_result = op_throughput(request, token, interned.graph, {},
                                            then_exit, then_cacheable);
            } else if (request.then_op == "lint") {
                then_result =
                    op_lint(request, token, interned.graph, then_exit, then_cacheable);
            } else {
                then_result = op_certify(request, token, interned.graph, then_exit);
            }
            if (!request.no_cache && then_cacheable && then_exit <= 1) {
                store_.store_result(interned.key, then_key, then_exit,
                                    then_result.dump());
            }
            cacheable = then_cacheable;
        }
        Json then = Json::object();
        then.set("op", Json::string(request.then_op));
        then.set("result", std::move(then_result));
        result.set("then", std::move(then));
        exit_code = then_exit;
    }
    if (!request.no_cache && cacheable && exit_code <= 1) {
        store_.store_result(parent.key, op_key, exit_code, result.dump());
    }
    return result;
}

Json ServeCore::op_stats() const {
    const ServeCounters tallies = counters();
    const StoreStats store = store_.stats();
    Json result = Json::object();
    Json requests = Json::object();
    requests.set("total", Json::integer(static_cast<std::int64_t>(tallies.requests)));
    requests.set("ok", Json::integer(static_cast<std::int64_t>(tallies.ok)));
    requests.set("errors", Json::integer(static_cast<std::int64_t>(tallies.errors)));
    result.set("requests", std::move(requests));
    Json cache = Json::object();
    cache.set("graphs", Json::integer(static_cast<std::int64_t>(store.graphs)));
    cache.set("results", Json::integer(static_cast<std::int64_t>(store.results)));
    cache.set("graph_hits",
              Json::integer(static_cast<std::int64_t>(store.graph_hits)));
    cache.set("graph_misses",
              Json::integer(static_cast<std::int64_t>(store.graph_misses)));
    cache.set("graph_evictions",
              Json::integer(static_cast<std::int64_t>(store.graph_evictions)));
    cache.set("result_hits",
              Json::integer(static_cast<std::int64_t>(store.result_hits)));
    cache.set("result_misses",
              Json::integer(static_cast<std::int64_t>(store.result_misses)));
    result.set("cache", std::move(cache));
    Json delta = Json::object();
    delta.set("edits", Json::integer(static_cast<std::int64_t>(
                           edits_applied_.load(std::memory_order_relaxed))));
    delta.set("kept", Json::integer(static_cast<std::int64_t>(
                          slots_kept_.load(std::memory_order_relaxed))));
    delta.set("refined", Json::integer(static_cast<std::int64_t>(
                             slots_refined_.load(std::memory_order_relaxed))));
    result.set("delta", std::move(delta));
    result.set("queue_depth",
               Json::integer(static_cast<std::int64_t>(
                   queue_depth_ ? queue_depth_() : 0)));
    return result;
}

Json ServeCore::op_health() const {
    const StoreStats store = store_.stats();
    Json result = Json::object();
    result.set("status", Json::string("ok"));
    result.set("queue_depth",
               Json::integer(static_cast<std::int64_t>(
                   queue_depth_ ? queue_depth_() : 0)));
    // in_flight includes the health request reporting it, so it is >= 1.
    result.set("in_flight", Json::integer(static_cast<std::int64_t>(
                                in_flight_.load(std::memory_order_relaxed))));
    result.set("reaped", Json::integer(static_cast<std::int64_t>(reaped())));
    result.set("rejected_oversize",
               Json::integer(static_cast<std::int64_t>(
                   rejected_oversize_.load(std::memory_order_relaxed))));
    result.set("deadline_ms",
               options_.request_deadline
                   ? Json::integer(options_.request_deadline->count())
                   : Json::make_null());
    Json cache = Json::object();
    cache.set("graphs", Json::integer(static_cast<std::int64_t>(store.graphs)));
    cache.set("results", Json::integer(static_cast<std::int64_t>(store.results)));
    cache.set("result_hits",
              Json::integer(static_cast<std::int64_t>(store.result_hits)));
    result.set("cache", std::move(cache));
    Json delta = Json::object();
    delta.set("edits", Json::integer(static_cast<std::int64_t>(
                           edits_applied_.load(std::memory_order_relaxed))));
    delta.set("kept", Json::integer(static_cast<std::int64_t>(
                          slots_kept_.load(std::memory_order_relaxed))));
    delta.set("refined", Json::integer(static_cast<std::int64_t>(
                             slots_refined_.load(std::memory_order_relaxed))));
    result.set("delta", std::move(delta));
    Json persist = Json::object();
    persist.set("enabled", Json::boolean(persist_ != nullptr));
    if (persist_ != nullptr) {
        const PersistStats disk = persist_->stats();
        persist.set("dir", Json::string(persist_->dir()));
        persist.set("warmed", Json::integer(static_cast<std::int64_t>(warmed_)));
        persist.set("writes", Json::integer(static_cast<std::int64_t>(disk.writes)));
        persist.set("write_errors",
                    Json::integer(static_cast<std::int64_t>(disk.write_errors)));
        persist.set("quarantined",
                    Json::integer(static_cast<std::int64_t>(disk.quarantined)));
        persist.set("loaded", Json::integer(static_cast<std::int64_t>(disk.loaded)));
    }
    result.set("persist", std::move(persist));
    return result;
}

}  // namespace serve
}  // namespace sdf
