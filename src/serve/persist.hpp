// persist.hpp — the crash-safe disk backing of the serve result cache.
//
// Every analysis result the daemon caches is a pure function of
// (canonical model text, op, canonical pipeline spec) — that is what made
// the in-memory cache bit-replayable, and it is what makes a DISK cache
// sound: an entry can be written once and replayed forever, on any later
// process, as long as it is provably intact.  This layer provides exactly
// that, with crash-only semantics:
//
//   * WRITES are atomic-or-absent.  An entry is serialised into a unique
//     temp file in the cache directory, fsync'ed, then rename(2)'d onto
//     its final name.  A crash at any instant leaves either the complete
//     entry, the old entry, or a stray temp file (swept at the next load)
//     — never a half-entry under the final name.
//   * EVERY entry carries a CRC-64 trailer (base/crc64.hpp) over the whole
//     record.  Torn writes — rename landed but the page cache tail did not
//     survive the crash — and any other corruption are detected at load.
//   * LOADS never fail the daemon.  A file that is truncated, corrupt, or
//     unreadable is QUARANTINED (renamed to <name>.quarantined, with a
//     warning on the log stream) and the warm start continues; the worst
//     outcome of any disk state is a clean cache miss.
//   * Persistence failures never fail a request.  put() reports failures
//     in the stats and returns; the in-memory cache and the response are
//     already correct.
//
// Entry files are content-addressed: <fnv(graph_key)>-<fnv(op_key)>.sdfp.
// The FULL keys are stored inside the record (the file name is an address,
// never an identity), so a warm start re-parses each graph key — which is
// the model's canonical text — and repopulates the GraphStore with
// bit-identical results.
//
// The record format is versioned and little-endian by definition:
//
//   offset  size  field
//   0       8     magic "SDFREDP1"
//   8       4     exit code (int32)
//   12      4     graph_key length (uint32)
//   16      4     op_key length (uint32)
//   20      8     result length (uint64)
//   28      ...   graph_key bytes, op_key bytes, result bytes
//   end-8   8     CRC-64/XZ of everything before the trailer
//
// Fault injection: put()/load_all() consume the io-write / io-fsync /
// io-read / torn-write countdowns of SDFRED_FAULT_INJECT (robust/fault.hpp)
// and the instance-level crash hooks in PersistOptions; the crash-restart
// fuzz oracle kills a simulated daemon at every one of these points and
// asserts restart equivalence.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

namespace sdf {
namespace serve {

/// Configuration of one PersistentCache.
struct PersistOptions {
    /// Cache directory; created (one level) when missing.  Must not be
    /// empty.
    std::string dir;
    /// fsync entry files before the rename and the directory afterwards.
    /// On by default — turning it off trades crash safety for speed (the
    /// CRC still catches the resulting torn entries).
    bool fsync_writes = true;
    /// CRASH HOOK: successful writes allowed before the simulated kill —
    /// later puts are dropped as if the process had died (no file, no
    /// error).  The crash-restart oracle sweeps this.
    std::uint64_t stop_after_writes = std::numeric_limits<std::uint64_t>::max();
    /// CRASH HOOK: tear the Nth successful write (1-based) at this byte
    /// offset — the rename still lands, the tail is lost, the CRC trailer
    /// with it.  Negative = disabled.
    std::int64_t tear_write_at_byte = -1;
    std::uint64_t tear_write_index = 1;
    /// Warning sink for quarantines and write failures; stderr when null.
    std::ostream* log = nullptr;
};

/// Counters, surfaced by the `health` op and the tests.
struct PersistStats {
    std::uint64_t writes = 0;        ///< entries durably written
    std::uint64_t write_errors = 0;  ///< failed puts (fault or real I/O error)
    std::uint64_t dropped = 0;       ///< puts suppressed by the crash hook
    std::uint64_t torn = 0;          ///< writes torn by the crash hook / fault
    std::uint64_t loaded = 0;        ///< entries replayed by load_all
    std::uint64_t quarantined = 0;   ///< corrupt entries moved aside
    std::uint64_t swept_temps = 0;   ///< stray temp files removed at load
};

/// One decoded entry.
struct PersistedEntry {
    std::string graph_key;  ///< canonical model text (parseable)
    std::string op_key;     ///< op + "|" + canonical pipeline spec
    int exit_code = 0;
    std::string result;     ///< canonical Json::dump of the result member
};

/// See the file comment.  All methods are safe to call from concurrent
/// server workers.
class PersistentCache {
public:
    /// Opens (creating if needed) the cache directory.  Throws sdf::Error
    /// when the directory cannot be created or is not writable — a daemon
    /// asked to persist somewhere impossible should fail at startup, not
    /// silently run volatile.
    explicit PersistentCache(PersistOptions options);

    /// Durably stores one entry (temp file + fsync + atomic rename).
    /// Returns false — after updating the stats — on any failure; never
    /// throws, never leaves a half-written entry under the final name.
    bool put(const std::string& graph_key, const std::string& op_key,
             int exit_code, const std::string& result) noexcept;

    /// Scans the directory and decodes every intact entry; corrupt,
    /// truncated or unreadable files are quarantined with a logged
    /// warning, stray temp files are swept.  Never throws.
    std::vector<PersistedEntry> load_all();

    /// Quarantines the on-disk entry for this key pair (used when a loaded
    /// entry fails a higher layer's validation, e.g. its graph key no
    /// longer parses).
    void quarantine(const std::string& graph_key, const std::string& op_key);

    /// Rewrites the index file (entry count + format version, written with
    /// the same temp+rename+CRC discipline) and fsyncs the directory.  The
    /// drain path of a graceful shutdown calls this; the index is advisory
    /// — load_all() trusts only the entry files.
    void sync() noexcept;

    [[nodiscard]] PersistStats stats() const;
    [[nodiscard]] const std::string& dir() const { return options_.dir; }

    /// The on-disk file name for this key pair (content address, not
    /// identity — the full keys live inside the record).
    static std::string entry_name(const std::string& graph_key,
                                  const std::string& op_key);

    /// Serialises / decodes one record (format above).  decode returns
    /// false with a reason instead of throwing: callers quarantine.
    static std::string encode(const PersistedEntry& entry);
    static bool decode(const std::string& bytes, PersistedEntry& out,
                       std::string& reason);

private:
    bool write_file(const std::string& path, const std::string& bytes,
                    std::string& error) noexcept;
    void warn(const std::string& message) noexcept;
    void quarantine_file(const std::string& name, const std::string& reason);

    PersistOptions options_;
    mutable std::mutex mutex_;
    PersistStats stats_;
    std::uint64_t temp_seq_ = 0;
    std::uint64_t write_attempts_ = 0;  ///< successful-write counter for the crash hooks
};

}  // namespace serve
}  // namespace sdf
