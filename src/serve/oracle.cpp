#include "serve/oracle.hpp"

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/governed.hpp"
#include "analysis/throughput.hpp"
#include "io/text.hpp"
#include "pass/executor.hpp"
#include "pass/pipeline.hpp"
#include "robust/fault.hpp"
#include "serve/service.hpp"
#include "verify/oracles.hpp"

namespace sdf {
namespace serve {

namespace {

constexpr const char* kId = "serve-route";
constexpr std::uint64_t kSteps = 200'000;

/// A daemon response, decoded back out of the wire format.
struct DaemonAnswer {
    bool ok = false;
    int exit_code = 1;
    std::string cache;
    std::string status;
    std::string method;
    std::string outcome;
    std::string period;
    std::vector<std::pair<std::string, std::string>> actors;
    std::string result_dump;  ///< the whole result member, for bit-identity
    int error_code = 0;
    std::string error_cause;
    std::string error_message;
};

DaemonAnswer decode(const std::string& line) {
    DaemonAnswer out;
    const Json response = Json::parse(line);
    if (const Json* member = response.find("exit")) {
        out.exit_code = static_cast<int>(member->as_integer());
    }
    if (const Json* member = response.find("ok")) {
        out.ok = member->as_boolean();
    }
    if (const Json* member = response.find("cache")) {
        out.cache = member->as_string();
    }
    if (const Json* result = response.find("result")) {
        out.result_dump = result->dump();
        if (const Json* member = result->find("status")) {
            out.status = member->as_string();
        }
        if (const Json* member = result->find("method")) {
            out.method = member->as_string();
        }
        if (const Json* member = result->find("outcome")) {
            out.outcome = member->as_string();
        }
        if (const Json* member = result->find("period")) {
            out.period = member->as_string();
        }
        if (const Json* member = result->find("actors")) {
            for (const Json& entry : member->items()) {
                out.actors.emplace_back(entry.find("actor")->as_string(),
                                        entry.find("throughput")->as_string());
            }
        }
    }
    if (const Json* error = response.find("error")) {
        if (const Json* member = error->find("code")) {
            out.error_code = static_cast<int>(member->as_integer());
        }
        if (const Json* member = error->find("cause")) {
            out.error_cause = member->as_string();
        }
        if (const Json* member = error->find("message")) {
            out.error_message = member->as_string();
        }
    }
    return out;
}

/// Re-arms the environment's fault plan so the route about to run sees the
/// same countdowns as the route before it.
void rearm_faults() {
    if (const char* spec = std::getenv("SDFRED_FAULT_INJECT")) {
        set_fault_injection(spec);
    }
}

Disagreement disagree(const std::string& quantity, const std::string& left,
                      const std::string& right) {
    Disagreement out;
    out.quantity = quantity;
    out.left_route = "serve daemon";
    out.left_value = left;
    out.right_route = "direct pipeline";
    out.right_value = right;
    return out;
}

/// True when this budget-trip cause is only reproducible by wall-clock
/// (so a one-sided trip is expected noise, not a bug).
bool nondeterministic_cause(const std::string& cause) {
    return cause == "deadline" || cause == "cancelled";
}

Json throughput_request(std::int64_t id, const std::string& model) {
    Json request = Json::object();
    request.set("id", Json::integer(id));
    request.set("op", Json::string("throughput"));
    request.set("model", Json::string(model));
    return request;
}

/// Compares the semantic fields of a successful daemon answer against a
/// direct Governed result.  Appends to `disagreements`.
void compare_governed(const DaemonAnswer& daemon,
                      const Governed<ThroughputResult>& direct,
                      const Graph& graph,
                      std::vector<Disagreement>& disagreements) {
    if (daemon.status != governed_status_name(direct.status)) {
        disagreements.push_back(disagree("governed status", daemon.status,
                                         governed_status_name(direct.status)));
        return;
    }
    const ThroughputResult& expected = *direct.value;
    const char* outcome = expected.outcome == ThroughputOutcome::deadlocked
                              ? "deadlocked"
                              : expected.outcome == ThroughputOutcome::unbounded
                                    ? "unbounded"
                                    : "finite";
    if (daemon.outcome != outcome) {
        disagreements.push_back(disagree("outcome", daemon.outcome, outcome));
        return;
    }
    if (expected.outcome == ThroughputOutcome::finite &&
        daemon.period != expected.period.to_string()) {
        disagreements.push_back(
            disagree("iteration period", daemon.period, expected.period.to_string()));
    }
    if (expected.outcome != ThroughputOutcome::unbounded) {
        if (daemon.actors.size() != graph.actor_count()) {
            disagreements.push_back(disagree(
                "per-actor entries", std::to_string(daemon.actors.size()),
                std::to_string(graph.actor_count())));
            return;
        }
        for (ActorId a = 0; a < graph.actor_count(); ++a) {
            if (daemon.actors[a].first != graph.actor(a).name ||
                daemon.actors[a].second != expected.per_actor[a].to_string()) {
                disagreements.push_back(disagree(
                    "throughput of " + graph.actor(a).name,
                    daemon.actors[a].first + "=" + daemon.actors[a].second,
                    graph.actor(a).name + "=" + expected.per_actor[a].to_string()));
            }
        }
    }
}

Verdict run_serve_route(const Graph& graph, const OracleLimits& limits) {
    if (graph.actor_count() == 0) {
        return Verdict::skip(kId, "empty graph: nothing to serve");
    }
    if (graph.actor_count() > limits.max_actors) {
        return Verdict::skip(kId, "actor count above oracle limit");
    }
    const std::string model = write_text_string(graph);
    std::vector<Disagreement> disagreements;

    ServeOptions options;
    options.cache_graphs = 4;
    ServeCore core(options);

    // ---- budgeted route with a pipeline (steps only: deterministic) ----
    Json budgeted = throughput_request(1, model);
    budgeted.set("pipeline", Json::string("selfloops"));
    Json budget = Json::object();
    budget.set("max_steps", Json::integer(static_cast<std::int64_t>(kSteps)));
    budgeted.set("budget", std::move(budget));
    const std::string budgeted_line = budgeted.dump();

    rearm_faults();
    const DaemonAnswer daemon = decode(core.handle_line(budgeted_line));

    rearm_faults();
    std::optional<Governed<ThroughputResult>> direct;
    std::optional<Graph> transformed;
    std::string direct_trip_cause;
    std::string direct_reject;
    try {
        ExecutorOptions executor_options;
        executor_options.budget.max_steps = kSteps;
        PipelineRun run = PipelineExecutor(std::move(executor_options))
                              .run(parse_pipeline("selfloops"),
                                   read_text_string(model));
        GovernOptions govern;
        govern.budget.max_steps =
            run.total.steps >= kSteps ? std::uint64_t{1} : kSteps - run.total.steps;
        transformed = run.graph;
        direct = governed_throughput(*transformed, govern);
        if (!direct->ok()) {
            direct_trip_cause = budget_cause_name(direct->cause);
        }
    } catch (const BudgetExceeded& e) {
        direct_trip_cause = budget_cause_name(e.cause());
    } catch (const Error& e) {
        direct_reject = e.what();
    }

    const bool daemon_tripped = daemon.exit_code == 4;
    const bool direct_tripped = !direct_trip_cause.empty();
    if (!direct_reject.empty()) {
        // The library refused the graph (inconsistent, overflow, ...): the
        // daemon must have refused it too, with a typed error response.
        if (daemon.exit_code == 1) {
            return Verdict::reject(kId, "both routes rejected: " + direct_reject);
        }
        return Verdict::fail(
            kId, "daemon accepted a graph the direct route rejects",
            {disagree("refusal", "exit " + std::to_string(daemon.exit_code),
                      direct_reject)});
    }
    if (daemon_tripped && direct_tripped) {
        return Verdict::reject(kId, "both routes budget-limited");
    }
    if (daemon_tripped != direct_tripped) {
        const std::string one_sided_cause =
            daemon_tripped ? daemon.error_cause : direct_trip_cause;
        if (nondeterministic_cause(one_sided_cause)) {
            return Verdict::reject(kId, "one-sided wall-clock budget trip");
        }
        return Verdict::fail(
            kId, "routes disagree on budget refusal",
            {disagree("budget trip",
                      daemon_tripped ? "429 (" + daemon.error_cause + ")" : "none",
                      direct_tripped ? direct_trip_cause : "none")});
    }
    if (!daemon.ok || daemon.exit_code != 0) {
        return Verdict::fail(kId, "daemon failed where the direct route succeeded",
                             {disagree("exit code",
                                       std::to_string(daemon.exit_code), "0")});
    }
    compare_governed(daemon, *direct, *transformed, disagreements);
    if (!disagreements.empty()) {
        return Verdict::fail(kId, "daemon and direct pipeline disagree",
                             std::move(disagreements));
    }

    // ---- cache replay: identical submission, bit-identical result ----
    if (daemon.status == "exact" && daemon.cache == "miss") {
        const DaemonAnswer replay = decode(core.handle_line(budgeted_line));
        if (replay.cache != "hit") {
            return Verdict::fail(
                kId, "identical resubmission missed the result cache",
                {disagree("cache state", replay.cache, "hit")});
        }
        if (replay.result_dump != daemon.result_dump ||
            replay.exit_code != daemon.exit_code) {
            return Verdict::fail(
                kId, "cache replay is not bit-identical",
                {disagree("replayed result", replay.result_dump,
                          daemon.result_dump)});
        }
    }

    // ---- unbudgeted, cache-bypassing route vs the raw symbolic engine ----
    Json unbudgeted = throughput_request(2, model);
    unbudgeted.set("no_cache", Json::boolean(true));
    rearm_faults();
    const DaemonAnswer fresh = decode(core.handle_line(unbudgeted.dump()));
    rearm_faults();
    try {
        const ThroughputResult expected = throughput_symbolic(read_text_string(model));
        if (fresh.exit_code == 4 &&
            nondeterministic_cause(fresh.error_cause)) {
            return Verdict::reject(kId, "one-sided wall-clock budget trip");
        }
        if (!fresh.ok || fresh.exit_code != 0) {
            return Verdict::fail(
                kId, "unbudgeted daemon route failed where symbolic succeeded",
                {disagree("exit code", std::to_string(fresh.exit_code), "0")});
        }
        Governed<ThroughputResult> as_governed;
        as_governed.status = GovernedStatus::exact;
        as_governed.value = expected;
        compare_governed(fresh, as_governed, read_text_string(model), disagreements);
    } catch (const BudgetExceeded&) {
        // An outer governor (OracleLimits) cut the direct call; accept any
        // daemon outcome for this sub-check.
        return Verdict::reject(kId, "outer budget cut the symbolic route");
    } catch (const Error& e) {
        if (fresh.exit_code != 1) {
            return Verdict::fail(
                kId, "unbudgeted routes disagree on refusal",
                {disagree("refusal", "exit " + std::to_string(fresh.exit_code),
                          e.what())});
        }
    }
    if (!disagreements.empty()) {
        return Verdict::fail(kId, "daemon and symbolic route disagree",
                             std::move(disagreements));
    }
    return Verdict::pass(kId);
}

}  // namespace

void register_serve_oracle() {
    Oracle oracle;
    oracle.id = kId;
    oracle.summary = "the serve daemon equals the in-process pipeline";
    oracle.invariant =
        "a throughput request through the daemon (protocol, store, cache, "
        "budget slices) reports the same status, outcome, period and rates as "
        "PipelineExecutor + governed_throughput composed directly, identical "
        "resubmissions replay bit-identically from the cache, and fault-"
        "injected runs degrade identically on both routes";
    oracle.run = &run_serve_route;
    register_extra_oracle(std::move(oracle));
}

}  // namespace serve
}  // namespace sdf
