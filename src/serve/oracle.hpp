// oracle.hpp — the serve-route differential oracle.
//
// The 13th entry of the verify registry, contributed at runtime through
// register_extra_oracle() because the dependency arrow points this way:
// sdfred_serve links sdfred_verify, never the reverse.  The oracle pits the
// whole daemon stack — JSON protocol, content-addressed store, result
// cache, budget slicing — against a hand-composed in-process pipeline of
// the same primitives, on the same graph:
//
//   * a budgeted throughput request (steps only, so the budget is
//     deterministic) with a `selfloops` pipeline must agree with
//     PipelineExecutor + governed_throughput on status, outcome, period
//     and per-actor rates — INCLUDING the degraded status when
//     SDFRED_FAULT_INJECT is armed (the oracle re-arms the environment's
//     plan before each route so both see identical countdowns);
//   * an identical resubmission must be served from the result cache with
//     a bit-identical result member;
//   * an unbudgeted no-cache request must agree with the direct symbolic
//     route.
//
// Budget trips that can only be told apart by wall-clock (an outer
// deadline from OracleLimits) resolve to `reject`, not `fail`, keeping the
// oracle deterministic under the fuzz harness's own governors.
#pragma once

namespace sdf {
namespace serve {

/// Adds the "serve-route" oracle to the verify registry (idempotent).
/// Call at startup — the CLI does, and so do the serve tests.
void register_serve_oracle();

/// Adds the "crash-restart" oracle (oracle_crash.cpp): simulated daemon
/// kills at every persistence point of a request script, restart on the
/// same cache directory, bit-identical replay or clean miss — corruption
/// is the only failing verdict.  Registered alongside the serve-route
/// oracle by the CLI and the serve tests.
void register_crash_restart_oracle();

}  // namespace serve
}  // namespace sdf
