// server.hpp — transports and dispatch for `sdfred serve`.
//
// The Server owns a ThreadPool and pushes request lines onto it via the
// pool's task API (base/thread_pool.hpp): each line becomes one task that
// runs ServeCore::handle_line and hands the response to a caller-supplied
// reply callback.  ADMISSION CONTROL is a hard bound on the pool's pending
// work — a line arriving while `max_queue` tasks are queued or running is
// refused immediately with a 503-style error (exit 4), the daemon analogue
// of the CLI's budget abort: the server sheds load instead of queueing
// without bound.
//
// Three transports feed the same submit() path:
//
//   run_stdio(in, out)   one request per stdin line, one response per
//                        stdout line.  With threads == 1 the pool runs
//                        tasks inline, so responses come back in request
//                        order — what the CI replay and scripting rely on.
//   run_unix(path)       SOCK_STREAM Unix listener; one handler thread per
//                        connection, newline-delimited both ways.
//   run_tcp(port)        the same on 127.0.0.1:port (loopback only: the
//                        protocol has no authentication).
//
// With more than one lane, responses are written as they finish — clients
// match them to requests by the echoed `id`, not by order.  Every loop
// exits when ServeCore observes a `shutdown` request, after drain()ing
// in-flight work.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>

#include "base/thread_pool.hpp"
#include "serve/service.hpp"

namespace sdf {
namespace serve {

/// Configuration of one Server.
struct ServerOptions {
    /// Thread-pool lanes (caller included).  1 = synchronous: every request
    /// handled inline in submission order.
    std::size_t threads = 4;
    /// Pending-request bound; submissions beyond it are refused with a
    /// 503-style error instead of queueing.
    std::size_t max_queue = 64;
};

/// See the file comment.
class Server {
public:
    Server(ServeCore& core, ServerOptions options = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Dispatches one request line.  `reply` is invoked exactly once with
    /// the response line — inline for refusals and single-lane pools,
    /// on a worker otherwise.  `reply` must be thread-safe across
    /// concurrent submissions.
    void submit(std::string line, std::function<void(std::string)> reply);

    /// Blocks until every submitted request has replied.
    void drain();

    /// Requests queued or running right now.
    [[nodiscard]] std::size_t queue_depth() const;

    /// Serves newline-delimited requests from `in` to `out` until EOF or a
    /// `shutdown` request.  Returns 0.
    int run_stdio(std::istream& in, std::ostream& out);

    /// Listens on a Unix stream socket at `path` (unlinking a stale file
    /// first) until a `shutdown` request.  Returns 0, or 2 when the socket
    /// cannot be created.
    int run_unix(const std::string& path);

    /// The same on TCP 127.0.0.1:`port`.
    int run_tcp(unsigned short port);

private:
    int run_listener(int listen_fd);
    void serve_connection(int fd);

    ServeCore& core_;
    ServerOptions options_;
    ThreadPool pool_;
};

}  // namespace serve
}  // namespace sdf
