// service.hpp — ServeCore, the transport-independent heart of `sdfred serve`.
//
// One ServeCore owns the content-addressed GraphStore and turns request
// lines into response lines (serve/protocol.hpp is the wire contract,
// docs/SERVE.md the prose spec).  It is deliberately transport-free: the
// Server (serve/server.hpp) feeds it from sockets or stdin, the golden
// protocol tests feed it strings, and the serve-route fuzz oracle feeds it
// graphs — all through the same handle_line().
//
// handle_line() never throws.  Every failure mode of the pipeline under it
// is caught and mapped onto the structured error member:
//
//   BadRequestError / PipelineParseError   → code 400, exit 2
//   ParseError (model or malformed JSON)   → code 422/400, exit 3/2
//   BudgetExceeded / bad_alloc             → code 429, exit 4, with cause
//   Error (semantic analysis failure)      → code 500, exit 1
//
// DETERMINISM is a design constraint, not an accident: a response's
// `result` member is a pure function of (canonical model, op, canonical
// pipeline spec) — lint runs without source locations, analysis results
// carry no wall-clock fields (timings live in the optional `wall_ms`
// response member, off by default), and Json::dump() is byte-stable.  That
// is what lets the result cache replay responses bit-identically and lets
// the stress test diff daemon answers against one-shot runs.
//
// Thread model: handle_line() is safe to call from any number of server
// workers concurrently; the store has its own lock and the counters are
// atomics.  Per-request budgets install a Governor only for the duration
// of the governed sections, so concurrent requests never share slices.
//
// SUPERVISION and DURABILITY are layered on without changing any of the
// above: ServeOptions::cache_dir attaches a crash-only disk cache
// (serve/persist.hpp) that the store writes through to and re-warms from,
// and ServeOptions::request_deadline arms a Watchdog that cancels requests
// which overrun their hard wall-clock deadline — the reaped worker unwinds
// through the ordinary BudgetExceeded path and answers 429 `cancelled`.
// The `health` op exposes both: queue depth, in-flight count, reap tally,
// and the persistence counters.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "robust/budget.hpp"
#include "serve/graph_store.hpp"
#include "serve/persist.hpp"
#include "serve/protocol.hpp"

namespace sdf {
namespace serve {

/// Configuration of one ServeCore.
struct ServeOptions {
    /// Graphs kept in the content-addressed store (LRU beyond this).
    std::size_t cache_graphs = 64;
    /// Budget applied to requests that do not carry their own.  Unlimited
    /// by default.
    ExecutionBudget default_budget;
    /// Attach "wall_ms" to every response.  Off by default so responses
    /// are byte-stable (golden tests, cache replay).
    bool timings = false;
    /// Disk backing for the result cache ("" = volatile).  Entries written
    /// here survive crashes and warm the store at the next start
    /// (serve/persist.hpp has the guarantees).
    std::string cache_dir;
    /// fsync persisted entries (see PersistOptions::fsync_writes).
    bool persist_fsync = true;
    /// HARD wall-clock deadline per request.  When set, every request runs
    /// governed (the deadline is folded into its budget) and a supervisor
    /// thread cancels requests that overrun — a hung worker becomes a 429
    /// `cancelled` response instead of a leaked pool slot.
    std::optional<std::chrono::milliseconds> request_deadline;
    /// Longest accepted request line, in bytes.  Oversized lines get an
    /// in-band 413 `payload-too-large` error (exit 2) without being parsed.
    std::size_t max_line_bytes = 8 * 1024 * 1024;
};

/// The reaper behind ServeOptions::request_deadline.  Workers arm() a
/// CancellationToken with a timeout before running a request and disarm()
/// it on completion; a supervisor thread cancels whatever overruns.  The
/// cancelled worker unwinds at its next governed checkpoint — cooperative,
/// like all governance here, so the reap count is the number of requests
/// that were stopped, not killed mid-instruction.
class Watchdog {
public:
    Watchdog();
    ~Watchdog();
    Watchdog(const Watchdog&) = delete;
    Watchdog& operator=(const Watchdog&) = delete;

    /// Registers `token` for cancellation `timeout` from now; returns the
    /// handle to disarm with.
    std::uint64_t arm(CancellationToken token, std::chrono::milliseconds timeout);

    /// Withdraws a handle after its request completed in time (no-op for a
    /// handle that was already reaped).
    void disarm(std::uint64_t handle);

    /// Requests cancelled because their deadline passed.
    [[nodiscard]] std::uint64_t reaped() const;

private:
    void loop();

    struct Armed {
        std::uint64_t handle;
        CancellationToken token;
        std::chrono::steady_clock::time_point deadline;
    };

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Armed> armed_;
    std::uint64_t next_handle_ = 1;
    std::uint64_t reaped_ = 0;
    bool stop_ = false;
    std::thread thread_;  ///< last member: starts after the state above
};

/// Request tallies, surfaced by the `stats` op.
struct ServeCounters {
    std::uint64_t requests = 0;  ///< lines handled, including malformed ones
    std::uint64_t ok = 0;        ///< responses with exit 0 or 1
    std::uint64_t errors = 0;    ///< responses with exit 2, 3 or 4
};

/// See the file comment.
class ServeCore {
public:
    explicit ServeCore(ServeOptions options = {});

    /// Handles one request line; returns the response line (no trailing
    /// newline).  Never throws.
    std::string handle_line(const std::string& line);

    /// True once a `shutdown` request was accepted.
    [[nodiscard]] bool shutdown_requested() const {
        return shutdown_.load(std::memory_order_relaxed);
    }

    /// Lets the transport report its queue depth through the `stats` and
    /// `health` ops.
    void set_queue_depth_fn(std::function<std::size_t()> fn) {
        queue_depth_ = std::move(fn);
    }

    /// Attaches an EXTERNAL persistent cache (not owned; the caller keeps
    /// it alive) and warms the store from it.  The crash-restart oracle
    /// uses this to hand in caches with armed crash hooks; daemons normally
    /// let the constructor build one from ServeOptions::cache_dir instead.
    /// Returns the number of results replayed.
    std::size_t attach_persistence(PersistentCache* persist);

    /// Flushes the persistence index (graceful-drain path); no-op when
    /// volatile.
    void sync_persistence();

    [[nodiscard]] PersistentCache* persistence() { return persist_; }

    /// Requests reaped by the deadline supervisor (0 when none configured).
    [[nodiscard]] std::uint64_t reaped() const {
        return watchdog_ ? watchdog_->reaped() : 0;
    }

    /// Requests currently inside handle_line across all workers.
    [[nodiscard]] std::uint64_t in_flight() const {
        return in_flight_.load(std::memory_order_relaxed);
    }

    /// The request-line bound the transports enforce incrementally.
    [[nodiscard]] std::size_t max_line_bytes() const {
        return options_.max_line_bytes;
    }

    [[nodiscard]] ServeCounters counters() const;
    [[nodiscard]] StoreStats store_stats() const { return store_.stats(); }

private:
    Json handle(const Json& request_json, const CancellationToken& token);
    Json run_model_op(const Request& request, const CancellationToken& token,
                      std::string& cache_state, int& exit_code);
    Json op_throughput(const Request& request, const CancellationToken& token,
                       const Graph& graph, const ResourceUsage& pipeline_used,
                       int& exit_code, bool& cacheable) const;
    Json op_lint(const Request& request, const CancellationToken& token,
                 const Graph& graph, int& exit_code, bool& cacheable) const;
    Json op_certify(const Request& request, const CancellationToken& token,
                    const Graph& graph, int& exit_code) const;
    Json op_fuzz_smoke(const Request& request, const Graph& graph,
                       int& exit_code, bool& cacheable) const;
    Json op_edit(const Request& request, const CancellationToken& token,
                 std::string& cache_state, int& exit_code);
    Json op_stats() const;
    Json op_health() const;
    [[nodiscard]] ExecutionBudget effective_budget(const Request& request) const;

    ServeOptions options_;
    GraphStore store_;
    std::unique_ptr<PersistentCache> owned_persist_;  ///< from cache_dir
    PersistentCache* persist_ = nullptr;  ///< owned_persist_ or external
    std::unique_ptr<Watchdog> watchdog_;  ///< when request_deadline is set
    std::function<std::size_t()> queue_depth_;
    std::atomic<bool> shutdown_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> ok_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> in_flight_{0};
    std::atomic<std::uint64_t> rejected_oversize_{0};
    /// Delta-refinement tallies across every `edit` request: analysis slots
    /// the mutation protocol KEPT or REFINED instead of recomputing
    /// (sdf/analysis_manager.hpp).  Surfaced by `stats` and `health`.
    std::atomic<std::uint64_t> slots_kept_{0};
    std::atomic<std::uint64_t> slots_refined_{0};
    std::atomic<std::uint64_t> edits_applied_{0};
    std::size_t warmed_ = 0;  ///< results replayed from disk at startup
};

}  // namespace serve
}  // namespace sdf
