// service.hpp — ServeCore, the transport-independent heart of `sdfred serve`.
//
// One ServeCore owns the content-addressed GraphStore and turns request
// lines into response lines (serve/protocol.hpp is the wire contract,
// docs/SERVE.md the prose spec).  It is deliberately transport-free: the
// Server (serve/server.hpp) feeds it from sockets or stdin, the golden
// protocol tests feed it strings, and the serve-route fuzz oracle feeds it
// graphs — all through the same handle_line().
//
// handle_line() never throws.  Every failure mode of the pipeline under it
// is caught and mapped onto the structured error member:
//
//   BadRequestError / PipelineParseError   → code 400, exit 2
//   ParseError (model or malformed JSON)   → code 422/400, exit 3/2
//   BudgetExceeded / bad_alloc             → code 429, exit 4, with cause
//   Error (semantic analysis failure)      → code 500, exit 1
//
// DETERMINISM is a design constraint, not an accident: a response's
// `result` member is a pure function of (canonical model, op, canonical
// pipeline spec) — lint runs without source locations, analysis results
// carry no wall-clock fields (timings live in the optional `wall_ms`
// response member, off by default), and Json::dump() is byte-stable.  That
// is what lets the result cache replay responses bit-identically and lets
// the stress test diff daemon answers against one-shot runs.
//
// Thread model: handle_line() is safe to call from any number of server
// workers concurrently; the store has its own lock and the counters are
// atomics.  Per-request budgets install a Governor only for the duration
// of the governed sections, so concurrent requests never share slices.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "robust/budget.hpp"
#include "serve/graph_store.hpp"
#include "serve/protocol.hpp"

namespace sdf {
namespace serve {

/// Configuration of one ServeCore.
struct ServeOptions {
    /// Graphs kept in the content-addressed store (LRU beyond this).
    std::size_t cache_graphs = 64;
    /// Budget applied to requests that do not carry their own.  Unlimited
    /// by default.
    ExecutionBudget default_budget;
    /// Attach "wall_ms" to every response.  Off by default so responses
    /// are byte-stable (golden tests, cache replay).
    bool timings = false;
};

/// Request tallies, surfaced by the `stats` op.
struct ServeCounters {
    std::uint64_t requests = 0;  ///< lines handled, including malformed ones
    std::uint64_t ok = 0;        ///< responses with exit 0 or 1
    std::uint64_t errors = 0;    ///< responses with exit 2, 3 or 4
};

/// See the file comment.
class ServeCore {
public:
    explicit ServeCore(ServeOptions options = {});

    /// Handles one request line; returns the response line (no trailing
    /// newline).  Never throws.
    std::string handle_line(const std::string& line);

    /// True once a `shutdown` request was accepted.
    [[nodiscard]] bool shutdown_requested() const {
        return shutdown_.load(std::memory_order_relaxed);
    }

    /// Lets the transport report its queue depth through the `stats` op.
    void set_queue_depth_fn(std::function<std::size_t()> fn) {
        queue_depth_ = std::move(fn);
    }

    [[nodiscard]] ServeCounters counters() const;
    [[nodiscard]] StoreStats store_stats() const { return store_.stats(); }

private:
    Json handle(const Json& request_json);
    Json run_model_op(const Request& request, std::string& cache_state,
                      int& exit_code);
    Json op_throughput(const Request& request, const Graph& graph,
                       const ResourceUsage& pipeline_used, int& exit_code,
                       bool& cacheable) const;
    Json op_lint(const Request& request, const Graph& graph, int& exit_code,
                 bool& cacheable) const;
    Json op_certify(const Request& request, const Graph& graph,
                    int& exit_code) const;
    Json op_fuzz_smoke(const Request& request, const Graph& graph,
                       int& exit_code, bool& cacheable) const;
    Json op_stats() const;
    [[nodiscard]] ExecutionBudget effective_budget(const Request& request) const;

    ServeOptions options_;
    GraphStore store_;
    std::function<std::size_t()> queue_depth_;
    std::atomic<bool> shutdown_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> ok_{0};
    std::atomic<std::uint64_t> errors_{0};
};

}  // namespace serve
}  // namespace sdf
