#include "serve/graph_store.hpp"

#include <algorithm>
#include <sstream>

#include "io/text.hpp"
#include "io/xml.hpp"
#include "serve/persist.hpp"

namespace sdf {
namespace serve {

namespace {

/// Models arrive as bytes with no filename, so the format is sniffed from
/// the content: SDF3-style XML opens with '<', the plain-text format never
/// does.  Either way the canonical key is the TEXT form — an XML model and
/// its text spelling intern to the same entry.
Graph parse_model(const std::string& raw_text) {
    for (const char c : raw_text) {
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
        if (c == '<') return read_xml_string(raw_text);
        break;
    }
    return read_text_string(raw_text);
}

}  // namespace

GraphStore::GraphStore(std::size_t max_graphs)
    : max_graphs_(std::max<std::size_t>(max_graphs, 1)) {}

void GraphStore::attach_persistence(PersistentCache* persist) {
    persist_ = persist;
}

std::size_t GraphStore::warm() {
    if (persist_ == nullptr) {
        return 0;
    }
    std::size_t replayed = 0;
    for (PersistedEntry& disk : persist_->load_all()) {
        try {
            // The graph key IS the canonical model text; it must parse and
            // canonicalise back to itself or the entry cannot be trusted.
            Graph parsed = parse_model(disk.graph_key);
            std::string key = write_text_string(parsed);
            if (key != disk.graph_key) {
                persist_->quarantine(disk.graph_key, disk.op_key);
                continue;
            }
            const std::lock_guard<std::mutex> lock(mutex_);
            auto it = by_key_.find(key);
            if (it == by_key_.end()) {
                entries_.push_front(
                    Entry{key, content_id(key), std::move(parsed), {}});
                by_key_.emplace(entries_.front().key, entries_.begin());
                evict_over_capacity();
                it = by_key_.find(key);
                if (it == by_key_.end()) {
                    continue;  // capacity 0 is clamped away, but stay safe
                }
            }
            it->second->results[disk.op_key] = {disk.exit_code,
                                                std::move(disk.result)};
            ++replayed;
        } catch (...) {
            persist_->quarantine(disk.graph_key, disk.op_key);
        }
    }
    return replayed;
}

std::string GraphStore::content_id(const std::string& text) {
    std::uint64_t hash = 14695981039346656037ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    static const char* kHex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = kHex[hash & 0xf];
        hash >>= 4;
    }
    return out;
}

GraphStore::Interned GraphStore::intern_text(const std::string& raw_text) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto memo = raw_memo_.find(raw_text);
        if (memo != raw_memo_.end()) {
            const auto it = by_key_.find(memo->second);
            if (it != by_key_.end()) {
                touch(it->second);
                ++stats_.graph_hits;
                return Interned{it->second->graph, it->second->key,
                                it->second->id, true};
            }
            // The memo outlived its entry (evicted): fall through and parse.
        }
    }

    // Parse and canonicalise outside the lock; concurrent submitters of the
    // same new model may both parse, and the first insert wins below.
    Graph parsed = parse_model(raw_text);
    std::string key = write_text_string(parsed);

    const std::lock_guard<std::mutex> lock(mutex_);
    if (raw_memo_.size() >= 8 * max_graphs_) {
        raw_memo_.clear();
    }
    raw_memo_.emplace(raw_text, key);
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) {
        // Same model through different bytes: keep the warm stored graph and
        // let it adopt anything the fresh parse somehow computed.
        it->second->graph.analyses()->adopt_all(*parsed.analyses());
        touch(it->second);
        ++stats_.graph_hits;
        return Interned{it->second->graph, it->second->key, it->second->id, true};
    }
    ++stats_.graph_misses;
    entries_.push_front(Entry{key, content_id(key), std::move(parsed), {}});
    by_key_.emplace(entries_.front().key, entries_.begin());
    evict_over_capacity();
    return Interned{entries_.front().graph, entries_.front().key,
                    entries_.front().id, false};
}

GraphStore::Interned GraphStore::intern_graph(Graph graph) {
    // Canonicalise outside the lock, exactly like intern_text's parse.
    std::string key = write_text_string(graph);

    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) {
        // The model is already stored (an edit script landed on a known
        // graph): keep the warm entry and let it adopt everything the
        // incoming graph's manager carries — refined slots included.
        it->second->graph.analyses()->adopt_all(*graph.analyses());
        touch(it->second);
        ++stats_.graph_hits;
        return Interned{it->second->graph, it->second->key, it->second->id, true};
    }
    ++stats_.graph_misses;
    entries_.push_front(Entry{key, content_id(key), std::move(graph), {}});
    by_key_.emplace(entries_.front().key, entries_.begin());
    evict_over_capacity();
    return Interned{entries_.front().graph, entries_.front().key,
                    entries_.front().id, false};
}

std::optional<GraphStore::Interned> GraphStore::find_by_id(const std::string& id) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->id == id) {
            touch(it);
            ++stats_.graph_hits;
            return Interned{it->graph, it->key, it->id, true};
        }
    }
    return std::nullopt;
}

std::optional<std::pair<int, std::string>> GraphStore::find_result(
    const std::string& graph_key, const std::string& op_key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_key_.find(graph_key);
    if (it != by_key_.end()) {
        const auto result = it->second->results.find(op_key);
        if (result != it->second->results.end()) {
            touch(it->second);
            ++stats_.result_hits;
            return result->second;
        }
    }
    ++stats_.result_misses;
    return std::nullopt;
}

void GraphStore::store_result(const std::string& graph_key,
                              const std::string& op_key, int exit_code,
                              const std::string& result) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = by_key_.find(graph_key);
        if (it != by_key_.end()) {
            it->second->results[op_key] = {exit_code, result};
        }
    }
    // Write through outside the lock: disk latency (and injected disk
    // faults) must never serialise the worker pool.  An evicted graph still
    // gets its entry written — the disk cache outlives the LRU.
    if (persist_ != nullptr) {
        persist_->put(graph_key, op_key, exit_code, result);
    }
}

StoreStats GraphStore::stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    StoreStats out = stats_;
    out.graphs = entries_.size();
    out.results = 0;
    for (const Entry& entry : entries_) {
        out.results += entry.results.size();
    }
    return out;
}

void GraphStore::touch(EntryList::iterator it) {
    entries_.splice(entries_.begin(), entries_, it);
}

void GraphStore::evict_over_capacity() {
    while (entries_.size() > max_graphs_) {
        by_key_.erase(entries_.back().key);
        entries_.pop_back();
        ++stats_.graph_evictions;
    }
}

}  // namespace serve
}  // namespace sdf
